"""Tests for the adaptive TopN / T_probing controller."""

import pytest

from repro.core.adaptive_robustness import AdaptiveRobustness
from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name


def build_world(config):
    system = EdgeSystem(config)
    for i in range(5):
        system.spawn_node(
            f"n{i}", profile_by_name("t2.xlarge"), GeoPoint(44.95 + i * 0.01, -93.25)
        )
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    return system, client


def test_controller_validation():
    with pytest.raises(ValueError):
        AdaptiveRobustness(min_top_n=5, max_top_n=3)
    with pytest.raises(ValueError):
        AdaptiveRobustness(min_period_ms=0.0)
    with pytest.raises(ValueError):
        AdaptiveRobustness(escalate_factor=1.0)
    with pytest.raises(ValueError):
        AdaptiveRobustness(decay_factor=0.9)
    with pytest.raises(ValueError):
        AdaptiveRobustness(quiet_window_ms=0.0)


def test_client_knobs_start_at_config():
    system, client = build_world(SystemConfig(seed=61, top_n=3))
    assert client.top_n == 3
    assert client.probing_period_ms == system.config.probing_period_ms


def test_escalation_on_failover():
    config = SystemConfig(seed=61, top_n=2, probing_period_ms=2_000.0)
    system, client = build_world(config)
    AdaptiveRobustness().attach(client)
    system.run_for(3_000.0)
    assert client.top_n == 2
    system.fail_node(client.current_edge)  # covered failover
    system.run_for(3_000.0)
    assert client.top_n == 3
    assert client.probing_period_ms < 2_000.0


def test_uncovered_failure_escalates_harder():
    config = SystemConfig(seed=61, top_n=1, probing_period_ms=2_000.0)
    system, client = build_world(config)
    controller = AdaptiveRobustness()
    controller.attach(client)
    system.run_for(3_000.0)
    system.fail_node(client.current_edge)  # no backups at TopN=1
    system.run_for(3_000.0)
    assert client.stats.uncovered_failures == 1
    assert client.top_n == 3  # +2 for the hard event
    assert client.probing_period_ms == pytest.approx(
        2_000.0 * controller.escalate_factor**2
    )


def test_bounds_are_respected():
    config = SystemConfig(seed=61, top_n=2, probing_period_ms=1_000.0)
    system, client = build_world(config)
    controller = AdaptiveRobustness(max_top_n=4, min_period_ms=800.0)
    controller.attach(client)
    for _ in range(4):  # repeated failures
        system.run_for(5_000.0)
        if client.current_edge is not None:
            system.fail_node(client.current_edge)
    system.run_for(3_000.0)
    assert client.top_n <= 4
    assert client.probing_period_ms >= 800.0


def test_quiet_period_decays_back_to_baseline():
    config = SystemConfig(seed=61, top_n=2, probing_period_ms=2_000.0)
    system, client = build_world(config)
    AdaptiveRobustness(quiet_window_ms=10_000.0).attach(client)
    system.run_for(3_000.0)
    system.fail_node(client.current_edge)
    system.run_for(3_000.0)
    escalated_top_n = client.top_n
    assert escalated_top_n > 2
    system.run_for(60_000.0)  # long quiet stretch
    assert client.top_n == 2
    assert client.probing_period_ms == pytest.approx(2_000.0)


def test_adaptive_period_changes_probe_cadence():
    """The self-rescheduling probe loop must honour the adapted period."""
    config = SystemConfig(
        seed=61, top_n=2, probing_period_ms=4_000.0, probing_jitter_ms=0.0
    )
    system, client = build_world(config)
    system.run_for(12_000.0)
    slow_probes = client.stats.probes_sent
    client.probing_period_ms = 500.0  # what an escalation would do
    system.run_for(12_000.0)
    fast_probes = client.stats.probes_sent - slow_probes
    assert fast_probes > 3 * slow_probes


def test_backup_list_grows_with_adapted_topn():
    config = SystemConfig(seed=61, top_n=2, probing_period_ms=1_000.0)
    system, client = build_world(config)
    system.run_for(3_000.0)
    assert len(client.failure_monitor.backups) == 1
    client.top_n = 4
    system.run_for(3_000.0)
    assert len(client.failure_monitor.backups) == 3
