"""Tests for the command-line interface."""

import json
import re
from pathlib import Path

import pytest

from repro.cli import COMMANDS, build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_no_command_prints_help_and_exits_2(capsys):
    assert main([]) == 2
    assert "Regenerate" in capsys.readouterr().out


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "V1" in out and "24.0" in out
    assert "Cloud" in out


def test_fig1_command_with_options(capsys):
    assert main(["fig1", "--seed", "7", "--probes", "2"]) == 0
    out = capsys.readouterr().out
    assert "volunteer" in out and "cloud" in out


def test_fig4_command(capsys):
    assert main(["fig4", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "proactive switch" in out
    assert "re-connect" in out


def test_fig3_command_cdf_flag(capsys):
    assert main(["fig3", "--seed", "7", "--cdf"]) == 0
    out = capsys.readouterr().out
    assert "CDF of" in out
    assert "p50" in out


def test_fig9_command_restricted_topn(capsys):
    assert main(["fig9", "--seed", "5", "--top-n", "1", "2"]) == 0
    out = capsys.readouterr().out
    assert "TopN" in out
    # only the requested rows
    lines = [l for l in out.splitlines() if l.strip().startswith(("1 ", "2 "))]
    assert len(lines) == 2


def test_parser_seed_default():
    parser = build_parser()
    args = parser.parse_args(["fig4"])
    assert args.seed == 42


def test_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out, f"{name!r} missing from --help"
    # the two newest subsystems must be advertised explicitly
    assert "sweep" in out and "trace" in out


def test_module_and_console_entry_points_expose_same_commands(capsys):
    """`python -m repro` and the `repro` console script must be the same
    program: the script target in pyproject.toml is repro.cli:main, and
    the parser built from it accepts exactly the COMMANDS set."""
    pyproject = (REPO_ROOT / "pyproject.toml").read_text()
    match = re.search(
        r"^\[project\.scripts\]\s*\nrepro\s*=\s*\"([^\"]+)\"",
        pyproject,
        re.MULTILINE,
    )
    assert match, "pyproject.toml must declare a [project.scripts] repro entry"
    assert match.group(1) == "repro.cli:main"

    main_py = (REPO_ROOT / "src" / "repro" / "__main__.py").read_text()
    assert "from repro.cli import main" in main_py
    assert "sys.exit(main())" in main_py

    parser = build_parser()
    actions = [a for a in parser._subparsers._group_actions][0]
    assert set(actions.choices) == set(COMMANDS) | {"list"}


def test_sweep_cli_roundtrip(tmp_path, capsys):
    store = tmp_path / "store"
    run_args = [
        "sweep", "run", "--experiment", "selftest",
        "--param", "scale=1.0,2.0", "--seeds", "2",
        "--store", str(store), "--serial",
    ]
    assert main(run_args) == 0
    out = capsys.readouterr().out
    assert "executed=4" in out and "failed=0" in out

    # Re-running resumes: everything is cached.
    assert main(run_args) == 0
    out = capsys.readouterr().out
    assert "executed=0" in out and "skipped(cached)=4" in out

    assert main(["sweep", "status", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "completed: 4/4" in out

    jsonl = tmp_path / "runs.jsonl"
    assert main([
        "sweep", "report", "--store", str(store), "--jsonl", str(jsonl),
    ]) == 0
    out = capsys.readouterr().out
    assert "value" in out
    assert len(jsonl.read_text().splitlines()) == 4


def test_sweep_list_names_builtin_experiments(capsys):
    assert main(["sweep", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig9_topn", "churn_trace", "network_study",
                 "qos_admission", "selftest", "policy_matrix"):
        assert name in out


def test_policy_list_command(capsys):
    assert main(["policy", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("lo", "go", "ewma", "reliability", "churn"):
        assert name in out


def test_sweep_run_policy_flag_overrides_grid(tmp_path, capsys):
    store = tmp_path / "store"
    assert main([
        "sweep", "run", "--experiment", "policy_matrix",
        "--policy", "lo,reliability",
        "--param", "churn_rate=2.0", "--param", "fault_family=node_crash",
        "--param", "horizon_ms=20000.0",
        "--seeds", "1", "--store", str(store), "--serial",
    ]) == 0
    out = capsys.readouterr().out
    assert "executed=2" in out and "failed=0" in out
    assert "failover_gap_p95_ms" in out


def test_sweep_run_unknown_policy_fails_fast(tmp_path):
    with pytest.raises(KeyError, match="nope"):
        main([
            "sweep", "run", "--experiment", "policy_matrix",
            "--policy", "nope",
            "--seeds", "1", "--store", str(tmp_path / "s"), "--serial",
        ])


def test_chaos_command_runs_sim_and_dumps_trace(tmp_path, capsys):
    out_path = tmp_path / "chaos.jsonl"
    assert main(["chaos", "--seed", "0", "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "backend=sim seed=0" in out
    assert "all recovery invariants hold" in out
    assert f"-> {out_path}" in out
    lines = out_path.read_text().splitlines()
    assert lines, "trace dump must not be empty"
    import json

    assert all("type" in json.loads(line) for line in lines[:10])


def test_chaos_check_passes_on_canonical_trace(tmp_path, capsys):
    trace = tmp_path / "chaos.jsonl"
    assert main(["chaos", "--seed", "0", "--out", str(trace)]) == 0
    capsys.readouterr()
    assert main(["chaos", "check", str(trace)]) == 0
    assert "all streaming invariants hold" in capsys.readouterr().out


def test_chaos_check_reports_violations_with_exit_1(tmp_path, capsys):
    import json

    from repro.obs.events import FrameStart

    trace = tmp_path / "bad.jsonl"
    events = [
        FrameStart(0.0, "user-01", "edge-a", 2),
        FrameStart(10.0, "user-01", "edge-a", 1),
    ]
    trace.write_text(
        "".join(json.dumps(e.to_dict()) + "\n" for e in events)
    )
    assert main(["chaos", "check", str(trace)]) == 1
    err = capsys.readouterr().err
    assert "invariant violation" in err
    assert "seq_monotonic" in err


def test_chaos_hunt_replay_cycle(tmp_path, capsys):
    artifact = tmp_path / "repro.json"
    code = main([
        "chaos", "hunt",
        "--scenario", "controlplane",
        "--seed", "0",
        "--attempts", "10",
        "--config", "failure_detection_ms=4000",
        "--out", str(artifact),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "found=True" in out
    assert artifact.exists()

    import json

    plan = json.loads(artifact.read_text())["plan"]
    n_rules = sum(len(v) for v in plan.values())
    assert n_rules <= 3

    assert main(["chaos", "replay", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "reproduced: identical violation" in out


def test_chaos_hunt_not_found_exits_1(tmp_path, capsys):
    code = main([
        "chaos", "hunt", "--seed", "0", "--attempts", "0",
        "--out", str(tmp_path / "repro.json"),
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert "no violation found" in captured.err
    assert not (tmp_path / "repro.json").exists()


def test_trace_summary_of_existing_file(tmp_path, capsys):
    from repro.obs import (
        FrameDone,
        FrameStart,
        JoinAccept,
        JoinAttempt,
        PhaseSpan,
        Tracer,
    )

    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sink=path)
    tracer.emit(JoinAttempt(0.0, "u1", "V1"))
    tracer.emit(JoinAccept(0.0, "u1", "V1"))
    tracer.emit(FrameStart(1.0, "u1", "V1", 1))
    tracer.emit(PhaseSpan(41.0, "u1", 1, "rtt", 10.0))
    tracer.emit(PhaseSpan(41.0, "u1", 1, "queue", 2.0))
    tracer.emit(PhaseSpan(41.0, "u1", 1, "process", 28.0))
    tracer.emit(FrameDone(41.0, "u1", "V1", 1, 1.0, 40.0))
    tracer.close()

    assert main(["trace", "--summary", str(path), "--timeline", "u1"]) == 0
    out = capsys.readouterr().out
    assert "frame_done" in out
    assert "Latency-phase breakdown" in out
    assert "phase reconciliation + event ordering: OK" in out
    assert "timeline for u1" in out


def test_bench_list_names_registered_benchmarks(capsys):
    assert main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("discovery", "steady_state", "metro"):
        assert name in out
    assert "bench_metro.py" in out


def test_bench_run_unknown_name_fails():
    with pytest.raises(KeyError, match="unknown benchmark"):
        main(["bench", "run", "nope"])


def test_bench_run_writes_scratch_not_baseline(tmp_path, capsys, monkeypatch):
    out_path = tmp_path / "bench.json"
    assert main([
        "bench", "run", "metro", "--",
        "--nodes", "200", "--users", "500", "--sim-seconds", "1",
        "--skip-compare", "--output", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "wall-s per simulated second" in out
    payload = json.loads(out_path.read_text())
    assert "metro" in payload
    assert payload["metro"]["wall_s_per_sim_s"] > 0


def test_sweep_cli_subprocess_platform_roundtrip(tmp_path, capsys):
    store = tmp_path / "store"
    run_args = [
        "sweep", "run", "--experiment", "selftest",
        "--param", "scale=1.0,2.0", "--seeds", "2",
        "--store", str(store), "--platform", "subprocess", "--workers", "2",
    ]
    assert main(run_args) == 0
    out = capsys.readouterr().out
    assert "platform=subprocess" in out
    assert "executed=4" in out and "failed=0" in out

    # Resume is platform-independent: the serial rerun is fully cached.
    assert main(run_args[:-4] + ["--serial"]) == 0
    out = capsys.readouterr().out
    assert "executed=0" in out and "skipped(cached)=4" in out


def test_sweep_status_summary_line(tmp_path, capsys):
    store = tmp_path / "store"
    assert main([
        "sweep", "run", "--experiment", "selftest",
        "--param", "scale=1.0", "--param", "fail=0,1", "--seeds", "1",
        "--store", str(store), "--serial",
    ]) == 0
    capsys.readouterr()
    assert main(["sweep", "status", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "completed: 1/2" in out
    assert "summary: failed=1 ok=1" in out
    assert "attempts=2" in out and "run-wall=" in out


def test_sweep_report_markdown_and_tagged_update(tmp_path, capsys):
    store = tmp_path / "store"
    assert main([
        "sweep", "run", "--experiment", "selftest",
        "--param", "scale=1.0,2.0", "--seeds", "2",
        "--store", str(store), "--serial",
    ]) == 0
    capsys.readouterr()

    assert main(["sweep", "report", "--store", str(store), "--markdown"]) == 0
    markdown = capsys.readouterr().out
    assert "#### `selftest`" in markdown and "±" in markdown

    doc = tmp_path / "EXPERIMENTS.md"
    doc.write_text("# Results\n")
    assert main([
        "sweep", "report", "--store", str(store),
        "--update", str(doc), "--tag", "selftest-demo",
    ]) == 0
    capsys.readouterr()
    text = doc.read_text()
    assert "<!-- sweep-report:selftest-demo -->" in text
    assert "#### `selftest`" in text

    # The committed section is current: --check passes...
    assert main([
        "sweep", "report", "--store", str(store),
        "--update", str(doc), "--tag", "selftest-demo", "--check",
    ]) == 0
    capsys.readouterr()

    # ...and a doctored section fails the byte-for-byte gate.
    doc.write_text(text.replace("scale=1.0", "scale=1.5"))
    with pytest.raises(SystemExit, match="report check failed"):
        main([
            "sweep", "report", "--store", str(store),
            "--update", str(doc), "--tag", "selftest-demo", "--check",
        ])


def test_sweep_list_shows_param_schema(capsys):
    assert main(["sweep", "list"]) == 0
    out = capsys.readouterr().out
    assert "controlplane_chaos" in out
    assert "parameters (pass as --param" in out
    for param in ("fault_family", "crash_marker", "shards", "qos_ms"):
        assert param in out
