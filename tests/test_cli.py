"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


def test_no_command_prints_help_and_exits_2(capsys):
    assert main([]) == 2
    assert "Regenerate" in capsys.readouterr().out


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in COMMANDS:
        assert name in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "V1" in out and "24.0" in out
    assert "Cloud" in out


def test_fig1_command_with_options(capsys):
    assert main(["fig1", "--seed", "7", "--probes", "2"]) == 0
    out = capsys.readouterr().out
    assert "volunteer" in out and "cloud" in out


def test_fig4_command(capsys):
    assert main(["fig4", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "proactive switch" in out
    assert "re-connect" in out


def test_fig3_command_cdf_flag(capsys):
    assert main(["fig3", "--seed", "7", "--cdf"]) == 0
    out = capsys.readouterr().out
    assert "CDF of" in out
    assert "p50" in out


def test_fig9_command_restricted_topn(capsys):
    assert main(["fig9", "--seed", "5", "--top-n", "1", "2"]) == 0
    out = capsys.readouterr().out
    assert "TopN" in out
    # only the requested rows
    lines = [l for l in out.splitlines() if l.strip().startswith(("1 ", "2 "))]
    assert len(lines) == 2


def test_parser_seed_default():
    parser = build_parser()
    args = parser.parse_args(["fig4"])
    assert args.seed == 42


def test_trace_summary_of_existing_file(tmp_path, capsys):
    from repro.obs import (
        FrameDone,
        FrameStart,
        JoinAccept,
        JoinAttempt,
        PhaseSpan,
        Tracer,
    )

    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sink=path)
    tracer.emit(JoinAttempt(0.0, "u1", "V1"))
    tracer.emit(JoinAccept(0.0, "u1", "V1"))
    tracer.emit(FrameStart(1.0, "u1", "V1", 1))
    tracer.emit(PhaseSpan(41.0, "u1", 1, "rtt", 10.0))
    tracer.emit(PhaseSpan(41.0, "u1", 1, "queue", 2.0))
    tracer.emit(PhaseSpan(41.0, "u1", 1, "process", 28.0))
    tracer.emit(FrameDone(41.0, "u1", "V1", 1, 1.0, 40.0))
    tracer.close()

    assert main(["trace", "--summary", str(path), "--timeline", "u1"]) == 0
    out = capsys.readouterr().out
    assert "frame_done" in out
    assert "Latency-phase breakdown" in out
    assert "phase reconciliation + event ordering: OK" in out
    assert "timeline for u1" in out
