"""Unit and property tests for the optimal-assignment solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.optimal import (
    OptimalInstance,
    evaluate_assignment,
    solve_optimal,
)
from repro.nodes.hardware import HardwareProfile, profile_by_name


def make_instance(n_users=3, node_specs=None, network=None, default_fps=20.0):
    node_specs = node_specs or {
        "fast": profile_by_name("V1"),
        "slow": profile_by_name("V5"),
    }
    users = [f"u{i}" for i in range(n_users)]
    nodes = list(node_specs)
    if network is None:
        network = {(u, n): 10.0 for u in users for n in nodes}
    return OptimalInstance(
        user_ids=users,
        node_ids=nodes,
        profiles=dict(node_specs),
        expected_network_ms=network,
        default_fps=default_fps,
    )


def test_instance_validation():
    with pytest.raises(ValueError):
        OptimalInstance([], ["n"], {"n": profile_by_name("V1")}, {})
    with pytest.raises(ValueError):
        OptimalInstance(["u"], [], {}, {})
    with pytest.raises(ValueError):  # missing profile
        OptimalInstance(["u"], ["n"], {}, {("u", "n"): 10.0})
    with pytest.raises(ValueError):  # missing network entry
        OptimalInstance(["u"], ["n"], {"n": profile_by_name("V1")}, {})


def test_evaluate_requires_complete_assignment():
    instance = make_instance(2)
    with pytest.raises(ValueError, match="unassigned"):
        evaluate_assignment(instance, {"u0": "fast"})
    with pytest.raises(ValueError, match="unknown node"):
        evaluate_assignment(instance, {"u0": "fast", "u1": "nope"})


def test_evaluate_single_user_cost():
    instance = make_instance(1)
    cost = evaluate_assignment(instance, {"u0": "fast"})
    # network 10 + idle-ish sojourn of one 20fps user on V1
    assert cost > 10.0 + profile_by_name("V1").base_frame_ms - 1.0
    assert cost < 80.0


def test_exhaustive_prefers_fast_idle_node():
    instance = make_instance(1)
    assignment, cost = solve_optimal(instance)
    assert assignment == {"u0": "fast"}


def test_optimal_spreads_under_contention():
    """Six full-rate users cannot all sit on one V1."""
    instance = make_instance(6)
    assignment, _ = solve_optimal(instance)
    assert len(set(assignment.values())) == 2


def test_optimal_respects_network_asymmetry():
    network = {
        ("u0", "fast"): 200.0,  # terrible path to the fast node
        ("u0", "slow"): 5.0,
    }
    instance = make_instance(1, network=network)
    assignment, _ = solve_optimal(instance)
    assert assignment == {"u0": "slow"}


def test_heuristic_path_used_for_large_instances():
    node_specs = {f"n{i}": profile_by_name("t2.xlarge") for i in range(6)}
    instance = make_instance(10, node_specs=node_specs)
    assignment, cost = solve_optimal(instance, exhaustive_limit=10)
    assert set(assignment) == set(instance.user_ids)
    assert cost == pytest.approx(evaluate_assignment(instance, assignment))


def test_heuristic_matches_exhaustive_on_small_instances():
    for seed in range(3):
        network = {
            (f"u{i}", n): 5.0 + ((i * 7 + j * 13 + seed * 17) % 40)
            for i in range(4)
            for j, n in enumerate(["fast", "slow"])
        }
        instance = make_instance(4, network=network)
        _, exact = solve_optimal(instance)  # 2^4 = 16: exhaustive
        _, heuristic = solve_optimal(instance, exhaustive_limit=1, seed=seed)
        assert heuristic == pytest.approx(exact, rel=0.02)


def test_solver_is_deterministic():
    node_specs = {f"n{i}": profile_by_name("t2.medium") for i in range(5)}
    instance = make_instance(9, node_specs=node_specs)
    a = solve_optimal(instance, exhaustive_limit=1, seed=5)
    b = solve_optimal(instance, exhaustive_limit=1, seed=5)
    assert a == b


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10))
@settings(max_examples=20, deadline=None)
def test_property_solver_no_worse_than_all_on_one_node(n_users, seed_offset):
    node_specs = {
        "a": profile_by_name("V1"),
        "b": HardwareProfile("b", "x", 4, 40.0 + seed_offset),
    }
    instance = make_instance(n_users, node_specs=node_specs)
    _, best = solve_optimal(instance)
    for node in instance.node_ids:
        lumped = {u: node for u in instance.user_ids}
        assert best <= evaluate_assignment(instance, lumped) + 1e-9


def test_custom_per_user_fps():
    instance = make_instance(2)
    instance.user_fps["u0"] = 5.0
    assert instance.fps("u0") == 5.0
    assert instance.fps("u1") == 20.0
