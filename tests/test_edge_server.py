"""Unit tests for the edge node server: probing APIs, seqNum join
protocol, what-if cache triggers, performance monitor, failure."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name
from repro.nodes.host_workload import HostWorkload, HostWorkloadSchedule


@pytest.fixture
def system():
    return EdgeSystem(SystemConfig(seed=1))


@pytest.fixture
def node(system):
    return system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))


def test_starts_alive_with_primed_cache(system, node):
    system.run_for(100.0)
    assert node.alive
    # the priming test workload measured an idle frame
    assert node.what_if_ms >= node.profile.base_frame_ms
    assert node.test_workload_invocations >= 1


def test_process_probe_returns_cached_values(system, node):
    system.run_for(100.0)
    reply = node.process_probe()
    assert reply is not None
    assert reply.node_id == "V1"
    assert reply.what_if_ms == node.what_if_ms
    assert reply.seq_num == node.seq_num
    assert reply.attached_users == 0


def test_probe_does_not_invoke_test_workload(system, node):
    system.run_for(100.0)
    invocations = node.test_workload_invocations
    for _ in range(50):
        node.process_probe()
    assert node.test_workload_invocations == invocations
    assert node.probes_served == 50


# ----------------------------------------------------------------------
# Join synchronization (Algorithm 1)
# ----------------------------------------------------------------------
def test_join_with_matching_seq_accepted(system, node):
    system.run_for(100.0)
    seq = node.seq_num
    reply = node.join("u1", seq, fps=20.0)
    assert reply.accepted
    assert node.seq_num == seq + 1
    assert "u1" in node.attached


def test_join_with_stale_seq_rejected(system, node):
    system.run_for(100.0)
    stale = node.seq_num - 1
    reply = node.join("u1", stale, fps=20.0)
    assert not reply.accepted
    assert "u1" not in node.attached
    assert node.joins_rejected == 1


def test_simultaneous_joins_serialize(system, node):
    """Two users probing the same seq: only the first join lands."""
    system.run_for(100.0)
    seq = node.seq_num
    first = node.join("u1", seq, fps=20.0)
    second = node.join("u2", seq, fps=20.0)
    assert first.accepted
    assert not second.accepted
    assert list(node.attached) == ["u1"]


def test_join_schedules_delayed_test_workload(system, node):
    system.run_for(100.0)
    invocations = node.test_workload_invocations
    node.join("u1", node.seq_num, fps=20.0)
    # not yet: delayed by 2x common RTT
    assert node.test_workload_invocations == invocations
    system.run_for(2 * system.config.common_rtt_ms + 1)
    assert node.test_workload_invocations == invocations + 1


def test_unexpected_join_cannot_be_rejected(system, node):
    system.run_for(100.0)
    seq = node.seq_num
    assert node.unexpected_join("u1", fps=20.0)
    assert node.seq_num == seq + 1
    assert "u1" in node.attached


def test_leave_triggers_state_change(system, node):
    system.run_for(100.0)
    node.unexpected_join("u1", fps=20.0)
    system.run_for(500.0)
    seq = node.seq_num
    invocations = node.test_workload_invocations
    node.leave("u1")
    assert "u1" not in node.attached
    assert node.seq_num == seq + 1
    system.run_for(500.0)
    assert node.test_workload_invocations > invocations


def test_leave_unknown_user_is_noop(system, node):
    system.run_for(100.0)
    seq = node.seq_num
    node.leave("ghost")
    assert node.seq_num == seq


# ----------------------------------------------------------------------
# What-if cache semantics
# ----------------------------------------------------------------------
def test_what_if_reflects_attached_demand(system, node):
    system.run_for(100.0)
    idle_whatif = node.what_if_ms
    for i in range(4):
        node.unexpected_join(f"u{i}", fps=20.0)
    system.run_for(1_000.0)
    assert node.what_if_ms > idle_whatif


def test_stay_projection_below_whatif_under_load(system, node):
    system.run_for(100.0)
    for i in range(4):
        node.unexpected_join(f"u{i}", fps=20.0)
    system.run_for(1_000.0)
    # staying (n users) must look no worse than joining fresh (n+1)
    assert node.stay_ms <= node.what_if_ms + 1e-9


def test_idle_cache_recovers_after_users_leave(system, node):
    system.run_for(100.0)
    for i in range(5):
        node.unexpected_join(f"u{i}", fps=20.0)
    system.run_for(1_000.0)
    loaded = node.what_if_ms
    for i in range(5):
        node.leave(f"u{i}")
    system.run_for(5_000.0)  # perf monitor refreshes the stale cache
    assert node.what_if_ms < loaded


# ----------------------------------------------------------------------
# Failure
# ----------------------------------------------------------------------
def test_failed_node_rejects_everything(system, node):
    system.run_for(100.0)
    node.fail()
    assert not node.alive
    assert node.failed_at_ms == system.sim.now
    assert node.process_probe() is None
    assert not node.join("u1", node.seq_num, fps=20.0).accepted
    assert not node.unexpected_join("u1", fps=20.0)
    assert node.receive_frame(None, system.sim.now) is None


def test_fail_is_idempotent(system, node):
    node.fail()
    at = node.failed_at_ms
    system.run_for(100.0)
    node.fail()
    assert node.failed_at_ms == at


def test_failed_node_stops_heartbeating(system, node):
    system.run_for(2_000.0)
    node.fail()
    system.run_for(100.0)  # drain any in-flight heartbeat delivery
    before = system.manager.heartbeats_received
    system.run_for(5_000.0)
    assert system.manager.heartbeats_received == before


# ----------------------------------------------------------------------
# Host workload interference
# ----------------------------------------------------------------------
def test_host_workload_slows_processing(system):
    schedule = HostWorkloadSchedule([HostWorkload(1_000.0, 10_000.0, 0.5)])
    node = system.spawn_node(
        "V2",
        profile_by_name("V2"),
        GeoPoint(44.95, -93.20),
        host_schedule=schedule,
    )
    system.run_for(500.0)
    assert node.processor.slowdown_factor == 1.0
    system.run_for(1_000.0)  # now inside the episode
    assert node.processor.slowdown_factor == pytest.approx(2.0)
    system.run_for(9_000.0)  # past the episode
    assert node.processor.slowdown_factor == 1.0


def test_status_snapshot_fields(system, node):
    system.run_for(100.0)
    status = node.status()
    assert status.node_id == "V1"
    assert status.cores == 8
    assert status.capacity_fps == pytest.approx(node.profile.capacity_fps)
    assert len(status.geohash) == 9
