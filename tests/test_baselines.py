"""Behavioural tests for the baseline selection strategies."""

import pytest

from repro.baselines.dedicated_only import dedicated_only_policy, is_dedicated
from repro.baselines.geo_proximity import GeoProximityClient
from repro.baselines.random_select import RandomSelectClient
from repro.baselines.resource_aware import ResourceAwareWRRClient
from repro.baselines.static_pin import StaticPinClient
from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name


def build_system(config=None):
    system = EdgeSystem(config or SystemConfig(seed=21, top_n=2))
    system.spawn_node("near-slow", profile_by_name("V5"), GeoPoint(44.971, -93.251))
    system.spawn_node("far-fast", profile_by_name("V1"), GeoPoint(44.90, -93.05))
    system.spawn_node(
        "dedicated",
        profile_by_name("D6"),
        GeoPoint(44.973, -93.257),
        dedicated=True,
    )
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    return system


# ----------------------------------------------------------------------
# Geo-proximity
# ----------------------------------------------------------------------
def test_geo_client_picks_geographically_closest():
    system = build_system()
    client = GeoProximityClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    assert client.current_edge == "near-slow"  # closest, capacity-blind


def test_geo_client_never_probes():
    system = build_system()
    client = GeoProximityClient(system, "alice")
    system.add_client(client)
    system.run_for(5_000.0)
    assert client.stats.probes_sent == 0


def test_geo_client_reattaches_after_failure():
    system = build_system()
    client = GeoProximityClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    system.fail_node("near-slow")
    # The dead node must first age out of the manager registry
    # (heartbeat timeout) before re-discovery can land elsewhere.
    system.run_for(8_000.0)
    assert client.stats.uncovered_failures == 1
    assert client.current_edge == "dedicated"  # the new closest


# ----------------------------------------------------------------------
# Resource-aware WRR
# ----------------------------------------------------------------------
def test_wrr_client_attaches_via_manager_assignment():
    system = build_system()
    client = ResourceAwareWRRClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    assert client.attached
    assert client.stats.probes_sent == 0


def test_wrr_assignment_is_static_while_node_lives():
    system = build_system()
    client = ResourceAwareWRRClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    first = client.current_edge
    system.run_for(10_000.0)
    assert client.current_edge == first
    assert client.stats.switches == 0


def test_wrr_client_recovers_from_failure():
    system = build_system()
    client = ResourceAwareWRRClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    victim = client.current_edge
    system.fail_node(victim)
    system.run_for(3_000.0)
    assert client.attached
    assert client.current_edge != victim


# ----------------------------------------------------------------------
# Static pin
# ----------------------------------------------------------------------
def test_pin_client_sticks_to_target():
    system = build_system()
    client = StaticPinClient(system, "alice", target_node_id="far-fast")
    system.add_client(client)
    system.run_for(5_000.0)
    assert client.current_edge == "far-fast"
    system.run_for(10_000.0)
    assert client.current_edge == "far-fast"


def test_pin_client_retries_until_target_exists():
    system = build_system()
    system.fail_node("far-fast")
    client = StaticPinClient(system, "alice", target_node_id="far-fast")
    system.add_client(client)
    system.run_for(2_000.0)
    assert not client.attached
    system.spawn_node("far-fast", profile_by_name("V1"), GeoPoint(44.90, -93.05))
    system.run_for(3_000.0)
    assert client.current_edge == "far-fast"


# ----------------------------------------------------------------------
# Random
# ----------------------------------------------------------------------
def test_random_client_attaches_somewhere():
    system = build_system()
    client = RandomSelectClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    assert client.current_edge in ("near-slow", "far-fast", "dedicated")


def test_random_client_seeded_choice_reproduces():
    def run():
        system = build_system()
        client = RandomSelectClient(system, "alice")
        system.add_client(client)
        system.run_for(3_000.0)
        return client.current_edge

    assert run() == run()


# ----------------------------------------------------------------------
# Dedicated-only policy
# ----------------------------------------------------------------------
def test_is_dedicated_predicate():
    system = build_system()
    system.run_for(200.0)
    statuses = {s.node_id: s for s in system.manager.alive_statuses()}
    assert is_dedicated(statuses["dedicated"])
    assert not is_dedicated(statuses["near-slow"])


def test_dedicated_only_policy_restricts_pool():
    config = SystemConfig(seed=21, top_n=3)
    system = EdgeSystem(config, global_policy=dedicated_only_policy())
    system.spawn_node("vol", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    system.spawn_node(
        "ded", profile_by_name("D6"), GeoPoint(44.97, -93.26), dedicated=True
    )
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    assert client.current_edge == "ded"


def test_client_centric_beats_random_on_average():
    """Sanity floor: informed selection must beat random attachment."""

    def mean_latency(client_cls, **kwargs):
        config = SystemConfig(seed=77, top_n=3)
        system = EdgeSystem(config)
        system.spawn_node("fast", profile_by_name("V1"), GeoPoint(44.975, -93.255))
        system.spawn_node("slow", profile_by_name("V5"), GeoPoint(44.972, -93.252))
        system.spawn_node("slow2", profile_by_name("V4"), GeoPoint(44.973, -93.256))
        system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
        client = client_cls(system, "alice", **kwargs)
        system.add_client(client)
        system.run_for(20_000.0)
        return client.stats.mean_latency_ms

    informed = mean_latency(EdgeClient)
    pinned_worst = mean_latency(StaticPinClient, target_node_id="slow")
    assert informed < pinned_worst
