"""Unit tests for the content-addressed run store."""

import json

import pytest

from repro.sweep.spec import SweepSpec
from repro.sweep.store import (
    STATUS_FAILED,
    STATUS_OK,
    RunRecord,
    RunStore,
)


def _record(key="abc123", status=STATUS_OK, **overrides):
    defaults = dict(
        run_key=key,
        experiment="selftest",
        params={"scale": 1.0},
        seed_index=0,
        root_seed=99,
        status=status,
        metrics={"value": 0.5} if status == STATUS_OK else {},
    )
    defaults.update(overrides)
    return RunRecord(**defaults)


def test_put_get_roundtrip(tmp_path):
    store = RunStore(tmp_path / "s")
    record = _record()
    store.put(record)
    assert store.get("abc123") == record
    assert "abc123" in store
    assert len(store) == 1


def test_record_file_is_single_json_line(tmp_path):
    store = RunStore(tmp_path / "s")
    store.put(_record())
    text = store.path_for("abc123").read_text()
    assert text.endswith("\n") and text.count("\n") == 1
    assert json.loads(text)["run_key"] == "abc123"


def test_atomic_write_leaves_no_tmp_droppings(tmp_path):
    store = RunStore(tmp_path / "s")
    for i in range(5):
        store.put(_record(key=f"k{i}"))
    leftovers = [p for p in store.runs_dir.iterdir() if p.suffix != ".json"]
    assert leftovers == []


def test_completed_keys_excludes_failures(tmp_path):
    store = RunStore(tmp_path / "s")
    store.put(_record(key="good"))
    store.put(_record(key="bad", status=STATUS_FAILED, error="boom"))
    assert store.completed_keys() == {"good"}
    assert len(store.records()) == 2


def test_last_write_wins(tmp_path):
    store = RunStore(tmp_path / "s")
    store.put(_record(status=STATUS_FAILED, error="first try"))
    store.put(_record(status=STATUS_OK))
    assert store.get("abc123").ok


def test_corrupt_record_treated_as_missing(tmp_path):
    store = RunStore(tmp_path / "s")
    store.put(_record())
    store.path_for("abc123").write_text("{ not json")
    assert store.get("abc123") is None
    assert store.completed_keys() == set()
    assert store.records() == []


def test_records_sorted_by_key(tmp_path):
    store = RunStore(tmp_path / "s")
    for key in ("zz", "aa", "mm"):
        store.put(_record(key=key))
    assert [r.run_key for r in store.records()] == ["aa", "mm", "zz"]


def test_invalid_status_rejected():
    with pytest.raises(ValueError):
        _record(status="exploded")


def test_manifest_roundtrip(tmp_path):
    store = RunStore(tmp_path / "s")
    assert store.load_manifest() is None
    spec = SweepSpec.build("selftest", {"scale": [1.0, 2.0]}, n_seeds=2)
    store.save_manifest(spec)
    assert store.load_manifest() == spec
    store.save_manifest(spec)  # idempotent re-save is fine


def test_manifest_refuses_different_spec(tmp_path):
    store = RunStore(tmp_path / "s")
    store.save_manifest(SweepSpec.build("selftest", {"scale": [1.0]}))
    with pytest.raises(ValueError, match="different sweep"):
        store.save_manifest(SweepSpec.build("selftest", {"scale": [9.0]}))


def test_export_jsonl(tmp_path):
    store = RunStore(tmp_path / "s")
    store.put(_record(key="k1"))
    store.put(_record(key="k2"))
    out = tmp_path / "all.jsonl"
    assert store.export_jsonl(out) == 2
    lines = out.read_text().splitlines()
    assert [json.loads(l)["run_key"] for l in lines] == ["k1", "k2"]


def test_interrupted_manifest_write_preserves_existing_manifest(
    tmp_path, monkeypatch
):
    """A crash mid-rewrite must not corrupt the sweep manifest.

    Mirrors the BENCH_perf.json regression test: the manifest goes
    through the same atomic tmp-file + rename path, so a failure at the
    rename leaves the old manifest byte-identical and leaks no tmp files.
    """
    from repro import fsutil

    store = RunStore(tmp_path / "s")
    spec = SweepSpec.build("selftest", {"scale": [1.0]})
    store.save_manifest(spec)
    before = store.manifest_path.read_text()

    def exploding_replace(src, dst):
        raise OSError("simulated crash during replace")

    monkeypatch.setattr(fsutil.os, "replace", exploding_replace)
    # Force a re-write attempt by removing the manifest from the check
    # path: write a *new* store object pointed at a fresh directory so
    # save_manifest actually writes (the idempotent path short-circuits).
    fresh = RunStore(tmp_path / "fresh")
    with pytest.raises(OSError):
        fresh.save_manifest(spec)
    assert not fresh.manifest_path.exists()
    leftovers = list((tmp_path / "fresh").glob("*.tmp*"))
    assert leftovers == []

    # The original store's manifest was never touched.
    assert store.manifest_path.read_text() == before
    assert store.load_manifest() == spec
