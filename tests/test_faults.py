"""Unit tests for ``repro.faults``: plans, matching, and the injector."""

import math

import pytest

from repro.faults import (
    MANAGER_ID,
    FaultInjector,
    FaultPlan,
    GrayNode,
    ManagerOutage,
    MessageFault,
    NodeCrash,
    Partition,
    Window,
)
from repro.obs.tracer import Tracer


# ----------------------------------------------------------------------
# Plan building blocks
# ----------------------------------------------------------------------
def test_window_is_half_open():
    w = Window(100.0, 200.0)
    assert not w.contains(99.9)
    assert w.contains(100.0)
    assert w.contains(199.9)
    assert not w.contains(200.0)


def test_window_defaults_cover_everything():
    w = Window()
    assert w.contains(0.0)
    assert w.contains(1e12)
    assert w.end_ms == math.inf


def test_window_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        Window(200.0, 100.0)


def test_message_fault_glob_matching():
    fault = MessageFault("r", src="user-*", dst="edge-a", ops=("frame",))
    assert fault.matches("user-01", "edge-a", "frame", 0.0)
    assert fault.matches("user-99", "edge-a", "frame", 0.0)
    assert not fault.matches("user-01", "edge-b", "frame", 0.0)
    assert not fault.matches("user-01", "edge-a", "join", 0.0)
    assert not fault.matches("edge-a", "user-01", "frame", 0.0)


def test_message_fault_empty_ops_matches_all_ops():
    fault = MessageFault("r", drop_p=1.0)
    for op in ("discover", "heartbeat", "probe", "join", "frame", "leave"):
        assert fault.matches("x", "y", op, 0.0)


def test_message_fault_validates_probabilities():
    with pytest.raises(ValueError):
        MessageFault("r", drop_p=1.5)
    with pytest.raises(ValueError):
        MessageFault("r", duplicate_p=-0.1)
    with pytest.raises(ValueError):
        MessageFault("r", ops=("not-an-op",))


def test_partition_blocks_both_directions_when_symmetric():
    cut = Partition("p", a="user-*", b="edge-b", window=Window(0.0, 100.0))
    assert cut.blocks("user-01", "edge-b", 50.0)
    assert cut.blocks("edge-b", "user-01", 50.0)
    assert not cut.blocks("user-01", "edge-b", 100.0)
    assert not cut.blocks("user-01", "edge-a", 50.0)


def test_partition_asymmetric_blocks_one_direction():
    cut = Partition("p", a="user-*", b="edge-b", symmetric=False)
    assert cut.blocks("user-01", "edge-b", 0.0)
    assert not cut.blocks("edge-b", "user-01", 0.0)


def test_node_crash_validates_restart_after_crash():
    NodeCrash("c", "edge-a", at_ms=100.0, restart_at_ms=200.0)
    with pytest.raises(ValueError):
        NodeCrash("c", "edge-a", at_ms=100.0, restart_at_ms=50.0)


def test_plan_rejects_duplicate_rule_ids():
    with pytest.raises(ValueError):
        FaultPlan(
            message_faults=(MessageFault("dup"),),
            outages=(ManagerOutage("dup", Window(0, 1)),),
        )


def test_plan_len_and_describe():
    plan = FaultPlan(
        message_faults=(MessageFault("m", drop_p=0.5),),
        crashes=(NodeCrash("c", "edge-a", at_ms=10.0),),
    )
    assert len(plan) == 2
    lines = plan.describe()
    assert any(line.startswith("m:") for line in lines)
    assert any(line.startswith("c:") for line in lines)


# ----------------------------------------------------------------------
# Injector decisions
# ----------------------------------------------------------------------
def test_injector_no_rules_always_delivers():
    injector = FaultInjector(FaultPlan(), seed=1)
    verdict = injector.decide("a", "b", "frame", 0.0)
    assert verdict.deliver
    assert verdict.extra_delay_ms == 0.0
    assert verdict.copies == 1


def test_injector_certain_drop_inside_window_only():
    plan = FaultPlan(
        message_faults=(
            MessageFault("d", window=Window(100.0, 200.0), drop_p=1.0),
        )
    )
    injector = FaultInjector(plan, seed=1)
    assert injector.decide("a", "b", "frame", 50.0).deliver
    verdict = injector.decide("a", "b", "frame", 150.0)
    assert not verdict.deliver
    assert verdict.rule_id == "d"
    assert injector.decide("a", "b", "frame", 250.0).deliver


def test_injector_delay_composes_with_duplicate():
    plan = FaultPlan(
        message_faults=(
            MessageFault("lag", delay_ms=40.0),
            MessageFault("echo", duplicate_p=1.0),
        )
    )
    injector = FaultInjector(plan, seed=1)
    verdict = injector.decide("a", "b", "frame", 0.0)
    assert verdict.deliver
    assert verdict.extra_delay_ms == pytest.approx(40.0)
    assert verdict.copies == 2


def test_injector_partition_beats_message_rules():
    plan = FaultPlan(
        message_faults=(MessageFault("lag", delay_ms=40.0),),
        partitions=(Partition("cut", a="a", b="b"),),
    )
    injector = FaultInjector(plan, seed=1)
    verdict = injector.decide("a", "b", "frame", 0.0)
    assert not verdict.deliver
    assert verdict.kind == "partition"


def test_injector_outage_blocks_manager_traffic_only():
    plan = FaultPlan(outages=(ManagerOutage("o", Window(0.0, 100.0)),))
    injector = FaultInjector(plan, seed=1)
    assert not injector.decide("u", MANAGER_ID, "discover", 50.0).deliver
    assert injector.decide("u", "edge-a", "frame", 50.0).deliver
    assert injector.decide("u", MANAGER_ID, "discover", 150.0).deliver
    assert injector.manager_down(50.0)
    assert not injector.manager_down(150.0)


def test_injector_same_seed_same_decision_sequence():
    plan = FaultPlan(message_faults=(MessageFault("d", drop_p=0.5),))
    def sequence(seed):
        injector = FaultInjector(plan, seed=seed)
        return [
            injector.decide("a", "b", "frame", float(t)).deliver
            for t in range(200)
        ]
    first = sequence(7)
    assert first == sequence(7)
    assert first != sequence(8)
    assert any(first) and not all(first)  # both outcomes appear


def test_injector_rules_draw_from_independent_streams():
    """Adding a second rule must not perturb the first rule's draws."""
    lone = FaultInjector(
        FaultPlan(message_faults=(MessageFault("d", drop_p=0.5),)), seed=3
    )
    paired = FaultInjector(
        FaultPlan(
            message_faults=(
                MessageFault("d", drop_p=0.5),
                MessageFault("other", src="nobody", drop_p=0.5),
            )
        ),
        seed=3,
    )
    lone_seq = [lone.decide("a", "b", "frame", float(t)).deliver for t in range(100)]
    paired_seq = [
        paired.decide("a", "b", "frame", float(t)).deliver for t in range(100)
    ]
    assert lone_seq == paired_seq


def _decision_seq(injector, n=200):
    out = []
    for t in range(n):
        d = injector.decide("a", "b", "frame", float(t))
        out.append((d.deliver, d.copies, round(d.extra_delay_ms, 9)))
    return out


def test_injector_rule_removal_leaves_surviving_streams_unperturbed():
    """Dropping rules never changes the draws of the rules that remain.

    This is the determinism contract the schedule-search shrinker leans
    on: a shrunk plan must replay its surviving faults exactly as the
    original did, or delta debugging would chase phantom timing shifts.
    """
    full = FaultPlan(
        message_faults=(
            MessageFault("keep", drop_p=0.4, delay_ms=10.0, delay_p=0.5),
            MessageFault("dead-weight", src="nobody", drop_p=0.9),
            MessageFault("more-weight", src="also-nobody", duplicate_p=0.9),
        )
    )
    shrunk = FaultPlan(
        message_faults=(
            MessageFault("keep", drop_p=0.4, delay_ms=10.0, delay_p=0.5),
        )
    )
    assert _decision_seq(FaultInjector(full, seed=7)) == _decision_seq(
        FaultInjector(shrunk, seed=7)
    )


def test_injector_rule_reordering_leaves_streams_unperturbed():
    """Rule order must not matter to any rule's private stream.

    Both rules match every frame, so first-drop-wins arbitration and the
    delay compositing both run — in both orders — over identical draws.
    """
    a = MessageFault("a", drop_p=0.3)
    b = MessageFault("b", delay_ms=25.0, delay_jitter_ms=10.0, delay_p=0.6)
    forward = FaultInjector(FaultPlan(message_faults=(a, b)), seed=11)
    backward = FaultInjector(FaultPlan(message_faults=(b, a)), seed=11)
    assert _decision_seq(forward) == _decision_seq(backward)


def test_plan_round_trips_through_dict():
    from repro.faults import plan_from_dict, plan_to_dict
    from repro.faults.scenarios import chaos_plan, controlplane_chaos_plan
    import json

    for plan in (
        chaos_plan(["edge-a", "edge-b", "edge-c"]),
        controlplane_chaos_plan([0, 1], ["edge-a", "edge-b"]),
        FaultPlan(outages=(ManagerOutage("forever", Window(100.0)),)),
    ):
        wire = json.loads(json.dumps(plan_to_dict(plan)))
        assert plan_from_dict(wire) == plan


def test_injector_gray_factor():
    plan = FaultPlan(
        gray_nodes=(GrayNode("g", "edge-a", Window(10.0, 20.0), slowdown=6.0),)
    )
    injector = FaultInjector(plan, seed=1)
    assert injector.gray_factor("edge-a", 15.0) == pytest.approx(6.0)
    assert injector.gray_factor("edge-a", 25.0) == pytest.approx(1.0)
    assert injector.gray_factor("edge-b", 15.0) == pytest.approx(1.0)


def test_injector_node_actions_sorted_and_complete():
    plan = FaultPlan(
        crashes=(NodeCrash("c", "edge-a", at_ms=300.0, restart_at_ms=900.0),),
        gray_nodes=(GrayNode("g", "edge-b", Window(100.0, 500.0), slowdown=4.0),),
        outages=(ManagerOutage("o", Window(200.0, 400.0)),),
    )
    injector = FaultInjector(plan, seed=1)
    actions = injector.node_actions()
    times = [a.t_ms for a in actions]
    assert times == sorted(times)
    kinds = {(a.kind, a.t_ms) for a in actions}
    assert ("crash", 300.0) in kinds
    assert ("restart", 900.0) in kinds
    assert ("gray_start", 100.0) in kinds
    assert ("gray_end", 500.0) in kinds
    assert ("outage_start", 200.0) in kinds
    assert ("outage_end", 400.0) in kinds


def test_injector_emits_typed_trace_events_and_counts():
    tracer = Tracer()
    plan = FaultPlan(message_faults=(MessageFault("d", drop_p=1.0),))
    injector = FaultInjector(plan, seed=1, tracer=tracer)
    injector.decide("a", "b", "frame", 5.0)
    events = list(tracer.events())
    assert len(events) == 1
    assert events[0].type == "fault_injected"
    assert events[0].rule_id == "d"
    assert events[0].kind == "drop"
    assert injector.injected["drop"] == 1


def test_injector_event_clock_overrides_timestamps():
    tracer = Tracer()
    plan = FaultPlan(message_faults=(MessageFault("d", drop_p=1.0),))
    injector = FaultInjector(plan, seed=1, tracer=tracer, event_clock=lambda: 123.0)
    injector.decide("a", "b", "frame", 5.0)
    (event,) = list(tracer.events())
    assert event.t_ms == pytest.approx(123.0)
