"""Unit tests for NetworkTopology and Link."""

import random

import pytest

from repro.geo.point import GeoPoint
from repro.net.latency import (
    JitterModel,
    DistanceRttModel,
    MatrixRttModel,
    NetworkTier,
)
from repro.net.link import CONNECTION_SETUP_RTTS, Link, LinkState
from repro.net.topology import NetworkEndpoint, NetworkTopology


@pytest.fixture
def topology():
    topo = NetworkTopology(
        rtt_model=DistanceRttModel(jitter=JitterModel(sigma=0.0, spike_probability=0.0)),
        rng=random.Random(1),
    )
    topo.add_endpoint(NetworkEndpoint("user", GeoPoint(44.97, -93.25)))
    topo.add_endpoint(
        NetworkEndpoint("edge", GeoPoint(44.95, -93.20), uplink_mbps=40.0)
    )
    return topo


def test_registry_roundtrip(topology):
    assert topology.has_endpoint("user")
    assert topology.endpoint("user").endpoint_id == "user"
    assert sorted(topology.endpoint_ids()) == ["edge", "user"]
    assert len(topology) == 2


def test_unknown_endpoint_raises(topology):
    with pytest.raises(KeyError, match="nope"):
        topology.endpoint("nope")


def test_remove_endpoint(topology):
    topology.remove_endpoint("edge")
    assert not topology.has_endpoint("edge")
    topology.remove_endpoint("edge")  # idempotent


def test_add_endpoint_duplicate_requires_explicit_replace(topology):
    with pytest.raises(ValueError, match="already registered"):
        topology.add_endpoint(NetworkEndpoint("user", GeoPoint(10.0, 10.0)))


def test_add_endpoint_replace_is_explicit(topology):
    topology.add_endpoint(NetworkEndpoint("user", GeoPoint(10.0, 10.0)), replace=True)
    assert topology.endpoint("user").point.lat == 10.0


def test_rtt_symmetric_in_expectation(topology):
    assert topology.expected_rtt_ms("user", "edge") == pytest.approx(
        topology.expected_rtt_ms("edge", "user")
    )


def test_one_way_is_half_rtt_without_jitter(topology):
    assert topology.one_way_ms("user", "edge") == pytest.approx(
        topology.expected_rtt_ms("user", "edge") / 2.0
    )


def test_transfer_uses_sender_uplink(topology):
    topology.bandwidth_model.contention_sigma = 0.0
    # user has default uplink 20 Mbps -> 8 ms for 0.02 MB
    assert topology.expected_transfer_ms("user", "edge", 0.02e6) == pytest.approx(8.0)


def test_distance_km(topology):
    assert topology.distance_km("user", "edge") > 0


def test_endpoint_info_carries_access_extra():
    endpoint = NetworkEndpoint(
        "x", GeoPoint(0, 0), tier=NetworkTier.LAN, access_extra_ms=3.0
    )
    assert endpoint.info().access_extra_ms == 3.0
    assert endpoint.info().tier is NetworkTier.LAN


# ----------------------------------------------------------------------
# RTT memoization
# ----------------------------------------------------------------------
def test_expected_rtt_is_memoized(topology):
    first = topology.expected_rtt_ms("user", "edge")
    assert ("user", "edge") in topology._expected_cache
    assert topology.expected_rtt_ms("user", "edge") == first


def test_replace_endpoint_invalidates_its_pairs(topology):
    before = topology.expected_rtt_ms("user", "edge")
    topology.add_endpoint(
        NetworkEndpoint("edge", GeoPoint(45.5, -94.0)), replace=True
    )
    after = topology.expected_rtt_ms("user", "edge")
    assert after != before  # the node moved; a stale cache would hide it


def test_remove_endpoint_invalidates_its_pairs(topology):
    topology.expected_rtt_ms("user", "edge")
    topology.remove_endpoint("edge")
    assert ("user", "edge") not in topology._expected_cache
    # pairs not touching the removed endpoint survive
    topology.add_endpoint(NetworkEndpoint("other", GeoPoint(44.96, -93.22)))
    topology.expected_rtt_ms("user", "other")
    topology.remove_endpoint("other")
    assert ("user", "other") not in topology._expected_cache


def test_swapping_rtt_model_drops_cache(topology):
    topology.expected_rtt_ms("user", "edge")
    topology.rtt_model = DistanceRttModel(
        jitter=JitterModel(sigma=0.0, spike_probability=0.0)
    )
    assert topology._expected_cache == {}


def test_matrix_model_expected_rtt_never_cached():
    """MatrixRttModel.set_rtt can retune pairs mid-run, so its expected
    RTTs must be recomputed every call — a cache would pin old values."""
    model = MatrixRttModel(default_ms=30.0)
    topo = NetworkTopology(rtt_model=model, rng=random.Random(3))
    topo.add_endpoint(NetworkEndpoint("a", GeoPoint(44.97, -93.25)))
    topo.add_endpoint(NetworkEndpoint("b", GeoPoint(44.95, -93.20)))
    assert topo.expected_rtt_ms("a", "b") == pytest.approx(30.0)
    model.set_rtt("a", "b", 55.0)
    assert topo.expected_rtt_ms("a", "b") == pytest.approx(55.0)


def test_memoized_samples_match_unmemoized_stream():
    """rtt_ms through the cache fast path must be bit-identical to what
    the model would sample directly with the same RNG stream."""

    def build():
        topo = NetworkTopology(
            rtt_model=DistanceRttModel(jitter=JitterModel(sigma=0.2)),
            rng=random.Random(11),
        )
        topo.add_endpoint(NetworkEndpoint("user", GeoPoint(44.97, -93.25)))
        topo.add_endpoint(NetworkEndpoint("edge", GeoPoint(44.95, -93.20)))
        return topo

    cached = build()
    via_cache = [cached.rtt_ms("user", "edge") for _ in range(50)]

    uncached = build()
    model = uncached.rtt_model
    direct = [
        model.sample_rtt_ms(
            uncached.endpoint("user").info(),
            uncached.endpoint("edge").info(),
            uncached.rng,
        )
        for _ in range(50)
    ]
    assert via_cache == direct


# ----------------------------------------------------------------------
# Link
# ----------------------------------------------------------------------
def test_link_starts_establishing():
    link = Link("u", "e", rtt_ms=20.0)
    assert link.state is LinkState.ESTABLISHING
    assert not link.usable


def test_link_mark_up_and_down():
    link = Link("u", "e", rtt_ms=20.0)
    link.mark_up(now=100.0)
    assert link.usable
    assert link.established_at == 100.0
    link.mark_down()
    assert not link.usable
    assert link.state is LinkState.DOWN


def test_link_establish_cost_scales_with_rtt():
    link = Link("u", "e", rtt_ms=20.0)
    assert link.establish_ms() == pytest.approx(CONNECTION_SETUP_RTTS * 20.0)
