"""Edge cases for the live runtime's protocol layer."""

import asyncio

import pytest

from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name
from repro.runtime import protocol
from repro.runtime.edge_server import LiveEdgeServer
from repro.runtime.protocol import PersistentConnection


def run(coro):
    return asyncio.run(coro)


def test_oversized_frame_rejected():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(b"x" * (protocol.MAX_FRAME_BYTES + 10) + b"\n")
        reader.feed_eof()
        with pytest.raises((protocol.ProtocolError, ValueError, LookupError)):
            await protocol.read_frame(reader)

    run(scenario())


def test_read_frame_eof_returns_none():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_eof()
        return await protocol.read_frame(reader)

    assert run(scenario()) is None


def test_request_to_dead_port_raises():
    async def scenario():
        with pytest.raises(OSError):
            # port 1 on localhost: connection refused
            await protocol.request("127.0.0.1", 1, "status", timeout=1.0)

    run(scenario())


def test_persistent_connection_reconnects_lazily():
    async def scenario():
        edge = LiveEdgeServer(
            "e1", profile_by_name("V1"), GeoPoint(44.98, -93.26), time_scale=0.01
        )
        await edge.start()
        connection = PersistentConnection(edge.host, edge.port, timeout=2.0)
        first = await connection.request("rtt_probe")
        assert first["ok"]
        assert connection.connected
        await connection.close()
        assert not connection.connected
        # a new request transparently re-opens the socket
        second = await connection.request("rtt_probe")
        assert second["ok"]
        await connection.close()
        await edge.stop()

    run(scenario())


def test_persistent_connection_detects_peer_death():
    async def scenario():
        edge = LiveEdgeServer(
            "e1", profile_by_name("V1"), GeoPoint(44.98, -93.26), time_scale=0.01
        )
        await edge.start()
        connection = PersistentConnection(edge.host, edge.port, timeout=2.0)
        await connection.request("rtt_probe")
        await edge.stop()  # node dies; standing socket severed
        with pytest.raises((protocol.ProtocolError, OSError, asyncio.TimeoutError)):
            await connection.request("rtt_probe")
        await connection.close()

    run(scenario())


def test_edge_malformed_frame_closes_connection_quietly():
    async def scenario():
        edge = LiveEdgeServer(
            "e1", profile_by_name("V1"), GeoPoint(44.98, -93.26), time_scale=0.01
        )
        await edge.start()
        reader, writer = await asyncio.open_connection(edge.host, edge.port)
        writer.write(b"this is not json\n")
        await writer.drain()
        # server drops the connection instead of crashing
        data = await reader.read()
        assert data == b""
        writer.close()
        # the node is still perfectly serviceable afterwards
        reply = await protocol.request(edge.host, edge.port, "status")
        assert reply["ok"]
        await edge.stop()

    run(scenario())


def test_frame_shedding_under_queue_pressure():
    async def scenario():
        edge = LiveEdgeServer(
            "slow", profile_by_name("V5"), GeoPoint(44.9, -93.1), time_scale=0.05
        )
        edge.max_queue_depth = 2
        await edge.start()
        # fire a burst far beyond the queue bound
        replies = await asyncio.gather(
            *[
                protocol.request(edge.host, edge.port, "frame", timeout=10.0)
                for _ in range(8)
            ]
        )
        await edge.stop()
        return replies

    replies = run(scenario())
    shed = [r for r in replies if not r.get("ok")]
    served = [r for r in replies if r.get("ok")]
    assert shed, "queue bound never engaged"
    assert served, "everything was shed"
    for r in shed:
        assert r["error"] == "overloaded"
