"""Property tests for the predictive selection policies.

Two families of invariants:

- **Determinism**: a policy fed the same observation sequence (and
  seed) twice produces identical rankings — the property that makes
  sim runs replayable and the live runtime debuggable.
- **Monotonicity**: strictly worse history never improves a node's
  standing. Scaling a node's RTT history up cannot move its EWMA rank
  forward; an extra failure cannot move its reliability rank forward;
  an extra vanish cannot move its backup slot forward.
"""

from __future__ import annotations

import copy
from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probing import ProbeOutcome
from repro.policy import (
    ChurnAwarePolicy,
    EwmaRttPolicy,
    RankingContext,
    ReliabilityPolicy,
)
from repro.policy.base import (
    CandidateChurn,
    NodeFailureObserved,
    ProbeObserved,
)

NODE_POOL = ["n1", "n2", "n3", "n4"]

delays = st.floats(min_value=0.1, max_value=400.0, allow_nan=False)


def outcome(node_id: str, d_prop: float, d_proc: float) -> ProbeOutcome:
    return ProbeOutcome(
        node_id=node_id,
        d_prop_ms=d_prop,
        d_proc_ms=d_proc,
        seq_num=0,
        attached_users=0,
        current_proc_ms=d_proc,
        stay_ms=d_proc,
    )


@st.composite
def observation_rounds(draw, min_rounds=1, max_rounds=6):
    """Rounds of probe observations over the node pool: a list of
    ``(now, [(node_id, d_prop, d_proc), ...])`` with increasing time."""
    n_rounds = draw(st.integers(min_value=min_rounds, max_value=max_rounds))
    rounds = []
    for i in range(n_rounds):
        nodes = draw(
            st.lists(
                st.sampled_from(NODE_POOL), min_size=1, max_size=4, unique=True
            )
        )
        samples = [(n, draw(delays), draw(delays)) for n in nodes]
        rounds.append((2_000.0 * (i + 1), samples))
    return rounds


def feed(policy, rounds) -> None:
    for now, samples in rounds:
        for node_id, d_prop, d_proc in samples:
            policy.observe(
                ProbeObserved(now, outcome(node_id, d_prop, d_proc))
            )


def final_ranking(policy, rounds) -> Tuple[str, ...]:
    now, samples = rounds[-1]
    outcomes = [outcome(n, dp, dq) for n, dp, dq in samples]
    ranking = policy.rank(outcomes, RankingContext(now=now + 1.0))
    return tuple(o.node_id for o in ranking.ranked)


# ----------------------------------------------------------------------
# Determinism under the same seed / observation sequence
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(observation_rounds())
def test_ewma_is_deterministic(rounds):
    a, b = EwmaRttPolicy(), EwmaRttPolicy()
    feed(a, rounds)
    feed(b, rounds)
    assert final_ranking(a, rounds) == final_ranking(b, rounds)


@settings(max_examples=100, deadline=None)
@given(observation_rounds(), st.integers(min_value=0, max_value=2**31))
def test_reliability_exploration_is_seed_deterministic(rounds, seed):
    """Even with exploration jitter on, equal seeds replay equal
    decisions — consecutive draws advance identically on both sides."""
    a = ReliabilityPolicy(explore_epsilon=0.3, seed=seed)
    b = ReliabilityPolicy(explore_epsilon=0.3, seed=seed)
    for policy in (a, b):
        feed(policy, rounds)
        for node in NODE_POOL[:2]:
            policy.observe(
                NodeFailureObserved(now=1.0, node_id=node, serving=False)
            )
    for _ in range(3):  # repeated rankings consume the RNG identically
        assert final_ranking(a, rounds) == final_ranking(b, rounds)


@settings(max_examples=100, deadline=None)
@given(observation_rounds())
def test_churn_is_deterministic(rounds):
    a, b = ChurnAwarePolicy(), ChurnAwarePolicy()
    vanish = CandidateChurn(now=1.0, appeared=(), vanished=("n1", "n3"))
    for policy in (a, b):
        feed(policy, rounds)
        policy.observe(vanish)
    assert final_ranking(a, rounds) == final_ranking(b, rounds)


# ----------------------------------------------------------------------
# Monotonicity: worse history never improves rank
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    observation_rounds(),
    st.sampled_from(NODE_POOL),
    st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
)
def test_ewma_worse_rtt_history_never_improves_rank(rounds, victim, scale):
    """Multiplying one node's entire RTT history by >= 1 can only move
    it backwards (or keep it in place) in the final ranking."""
    base = EwmaRttPolicy()
    feed(base, rounds)
    worse = EwmaRttPolicy()
    worse_rounds = [
        (
            now,
            [
                (n, d_prop * scale if n == victim else d_prop, d_proc)
                for n, d_prop, d_proc in samples
            ],
        )
        for now, samples in rounds
    ]
    feed(worse, worse_rounds)
    ranked_base = final_ranking(base, rounds)
    ranked_worse = final_ranking(worse, rounds)
    if victim in ranked_base:
        assert ranked_worse.index(victim) >= ranked_base.index(victim)


@settings(max_examples=100, deadline=None)
@given(observation_rounds(), st.sampled_from(NODE_POOL))
def test_reliability_extra_failure_never_improves_rank(rounds, victim):
    base = ReliabilityPolicy()
    feed(base, rounds)
    worse = copy.deepcopy(base)
    now = rounds[-1][0]
    worse.observe(NodeFailureObserved(now=now, node_id=victim, serving=True))
    ranked_base = final_ranking(base, rounds)
    ranked_worse = final_ranking(worse, rounds)
    if victim in ranked_base:
        assert ranked_worse.index(victim) >= ranked_base.index(victim)


@settings(max_examples=100, deadline=None)
@given(observation_rounds(), st.sampled_from(NODE_POOL))
def test_churn_extra_vanish_never_improves_backup_slot(rounds, victim):
    base = ChurnAwarePolicy()
    feed(base, rounds)
    worse = copy.deepcopy(base)
    now, samples = rounds[-1]
    worse.observe(CandidateChurn(now=now, appeared=(), vanished=(victim,)))
    ctx = RankingContext(now=now + 1.0)
    rest = [outcome(n, dp, dq) for n, dp, dq in samples]
    order_base = [o.node_id for o in base.order_backups(tuple(rest), ctx)]
    order_worse = [o.node_id for o in worse.order_backups(tuple(rest), ctx)]
    if victim in order_base:
        assert order_worse.index(victim) >= order_base.index(victim)
    # ...and nodes with equal instability keep their ranking order.
    others = [n for n in order_base if n != victim]
    assert [n for n in order_worse if n != victim] == others
