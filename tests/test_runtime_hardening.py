"""Tests for the hardened live runtime: retry budgets, circuit
breakers, the reconnect cap, and fail-fast behaviour against dead
peers."""

import asyncio
import random
import time

import pytest

from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name
from repro.runtime import LiveEdgeServer
from repro.runtime.protocol import (
    CircuitBreaker,
    EdgeUnreachableError,
    PersistentConnection,
    ProtocolError,
    RetryPolicy,
    call_with_retry,
)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# RetryPolicy / call_with_retry
# ----------------------------------------------------------------------
def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(budget_s=0.0)


def test_retry_policy_decorrelated_jitter_bounds():
    policy = RetryPolicy(base_delay_s=0.05, max_delay_s=0.5)
    rng = random.Random(1)
    delay = policy.base_delay_s
    for _ in range(100):
        delay = policy.next_delay(delay, rng)
        assert policy.base_delay_s <= delay <= policy.max_delay_s


def test_call_with_retry_succeeds_after_transient_failures():
    calls = []

    async def attempt():
        calls.append(1)
        if len(calls) < 3:
            raise asyncio.TimeoutError("transient")
        return {"ok": True}

    async def no_sleep(_):
        pass

    async def scenario():
        return await call_with_retry(
            attempt,
            RetryPolicy(max_attempts=5, budget_s=10.0),
            rng=random.Random(1),
            sleep=no_sleep,
        )

    assert run(scenario()) == {"ok": True}
    assert len(calls) == 3


def test_call_with_retry_exhausts_attempts():
    calls = []

    async def attempt():
        calls.append(1)
        raise ProtocolError("down")

    async def no_sleep(_):
        pass

    async def scenario():
        await call_with_retry(
            attempt,
            RetryPolicy(max_attempts=3, budget_s=10.0),
            rng=random.Random(1),
            sleep=no_sleep,
        )

    with pytest.raises(ProtocolError):
        run(scenario())
    assert len(calls) == 3


def test_call_with_retry_respects_latency_budget():
    """The budget bounds total time: no backoff sleep may cross it."""
    now = [0.0]

    async def fake_sleep(s):
        now[0] += s

    calls = []

    async def attempt():
        calls.append(1)
        now[0] += 0.1  # each attempt costs 100 ms
        raise asyncio.TimeoutError("down")

    async def scenario():
        await call_with_retry(
            attempt,
            RetryPolicy(
                max_attempts=100,
                budget_s=0.5,
                base_delay_s=0.2,
                max_delay_s=0.2,
            ),
            rng=random.Random(1),
            clock=lambda: now[0],
            sleep=fake_sleep,
        )

    with pytest.raises(asyncio.TimeoutError):
        run(scenario())
    # 100 attempts were allowed by count, but the 0.5 s budget admits
    # only a couple of 0.2 s backoffs between 0.1 s attempts.
    assert len(calls) <= 3
    assert now[0] <= 0.5 + 0.2


def test_call_with_retry_never_retries_unreachable():
    calls = []

    async def attempt():
        calls.append(1)
        raise EdgeUnreachableError("breaker open")

    async def scenario():
        await call_with_retry(
            attempt, RetryPolicy(max_attempts=5, budget_s=10.0)
        )

    with pytest.raises(EdgeUnreachableError):
        run(scenario())
    assert len(calls) == 1  # fail-fast is not hammered


def test_call_with_retry_reports_backoff_via_on_retry():
    schedule = []

    async def attempt():
        raise asyncio.TimeoutError("down")

    async def no_sleep(_):
        pass

    async def scenario():
        await call_with_retry(
            attempt,
            RetryPolicy(max_attempts=3, budget_s=10.0),
            rng=random.Random(1),
            on_retry=lambda n, d: schedule.append((n, d)),
            sleep=no_sleep,
        )

    with pytest.raises(asyncio.TimeoutError):
        run(scenario())
    assert [n for n, _ in schedule] == [1, 2]
    assert all(d > 0 for _, d in schedule)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
def test_breaker_opens_after_consecutive_failures():
    clock = [0.0]
    breaker = CircuitBreaker(3, 2.0, clock=lambda: clock[0])
    assert breaker.state == "closed"
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"  # not yet at the threshold
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(3, 2.0, clock=lambda: 0.0)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # streak broken
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "closed"


def test_breaker_half_open_admits_one_trial():
    clock = [0.0]
    breaker = CircuitBreaker(1, 2.0, clock=lambda: clock[0])
    breaker.record_failure()
    assert breaker.state == "open"
    clock[0] = 2.5
    assert breaker.state == "half_open"
    assert breaker.allow()  # the single trial
    assert not breaker.allow()  # concurrent caller keeps failing fast
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_breaker_half_open_failure_reopens_and_restarts_clock():
    clock = [0.0]
    breaker = CircuitBreaker(1, 2.0, clock=lambda: clock[0])
    breaker.record_failure()
    clock[0] = 2.5
    assert breaker.allow()
    breaker.record_failure()  # trial failed
    assert breaker.state == "open"
    clock[0] = 3.0  # only 0.5 s since reopening
    assert breaker.state == "open"
    clock[0] = 5.0
    assert breaker.state == "half_open"


def test_breaker_reports_transitions():
    transitions = []
    clock = [0.0]
    breaker = CircuitBreaker(
        1,
        2.0,
        clock=lambda: clock[0],
        on_transition=lambda old, new: transitions.append((old, new)),
    )
    breaker.record_failure()
    clock[0] = 2.5
    breaker.allow()
    breaker.record_success()
    assert transitions == [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
    ]


def test_breaker_validates_threshold():
    with pytest.raises(ValueError):
        CircuitBreaker(0)


# ----------------------------------------------------------------------
# PersistentConnection: reconnect cap + breaker fail-fast
# ----------------------------------------------------------------------
def _dead_port():
    """A localhost port with nothing listening (bind-then-close)."""
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def test_connection_validates_reconnect_cap():
    with pytest.raises(ValueError):
        PersistentConnection("127.0.0.1", 1, max_reconnect_attempts=0)


def test_connection_reconnect_cap_raises_unreachable():
    async def scenario():
        conn = PersistentConnection(
            "127.0.0.1", _dead_port(), timeout=0.2, max_reconnect_attempts=2
        )
        errors = []
        for _ in range(4):
            try:
                await conn.request("status")
            except EdgeUnreachableError:
                errors.append("unreachable")
            except (OSError, ProtocolError, asyncio.TimeoutError):
                errors.append("transport")
        await conn.close()
        return errors

    errors = run(scenario())
    # the first two failures pay real connect errors; once the cap is
    # hit every further request fails fast with the typed error
    assert errors[:2] == ["transport", "transport"]
    assert errors[2:] == ["unreachable", "unreachable"]


def test_connection_breaker_bounds_dead_edge_latency():
    """With a breaker, a dead edge costs ``failure_threshold`` timeouts
    total — requests after the trip return in microseconds, so tail
    latency against a dead peer is bounded by fail-fast."""

    async def scenario():
        breaker = CircuitBreaker(2, reset_timeout_s=60.0)
        conn = PersistentConnection(
            "127.0.0.1",
            _dead_port(),
            timeout=0.2,
            max_reconnect_attempts=100,  # isolate the breaker's effect
            breaker=breaker,
        )
        durations = []
        for _ in range(6):
            start = time.monotonic()
            with pytest.raises((EdgeUnreachableError, OSError, ProtocolError)):
                await conn.request("status")
            durations.append(time.monotonic() - start)
        await conn.close()
        return breaker.state, durations

    state, durations = run(scenario())
    assert state == "open"
    # p95-style bound: every post-trip request is far below the 0.2 s
    # connect timeout — fail-fast, not another timeout.
    for d in durations[2:]:
        assert d < 0.05


def test_connection_live_edge_round_trip_closes_breaker():
    """Against a live edge the breaker stays closed and requests flow."""

    async def scenario():
        edge = LiveEdgeServer(
            "e1", profile_by_name("V1"), GeoPoint(44.98, -93.26), time_scale=0.01
        )
        await edge.start()
        breaker = CircuitBreaker(2, reset_timeout_s=60.0)
        conn = PersistentConnection(
            edge.host, edge.port, timeout=1.0, breaker=breaker
        )
        try:
            reply = await conn.request("status")
            return breaker.state, reply["ok"]
        finally:
            await conn.close()
            await edge.stop()

    state, ok = run(scenario())
    assert state == "closed"
    assert ok is True
