"""Replicated shards, snapshot/restore, and the tombstone regression.

The regression the snapshot path exists to prevent: the machine's lazy
expiry heap accumulates one ``(stamp, node_id)`` entry per heartbeat —
tombstones for re-registered node ids are only discarded when popped.
Serializing the heap verbatim into a handoff would carry those stale
entries to a machine whose stamp table was rebuilt from the same dump,
so a node id reused across incarnations could be expired (or kept) off
the wrong incarnation's clock. Snapshots therefore carry exactly one
(status, stamp) pair per live node and restores rebuild a minimal heap.
"""

from __future__ import annotations

import pytest

from repro.controlplane.replication import ReplicatedShard
from repro.core.messages import DiscoveryQuery, NodeStatus
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.geo.geohash import encode
from repro.protocol.effects import NodeExpired, ReplyPartialCandidates
from repro.protocol.events import HeartbeatReceived, PartialDiscoveryRequested, PruneTick
from repro.protocol.global_select import GlobalSelectionMachine, RegistrySnapshot

TIMEOUT = 100.0


def status_at(node_id: str, lat: float = 44.97, lon: float = -93.25) -> NodeStatus:
    return NodeStatus(
        node_id=node_id,
        lat=lat,
        lon=lon,
        geohash=encode(lat, lon, precision=9),
        cores=4,
        capacity_fps=30.0,
        attached_users=0,
        utilization=0.25,
    )


def machine() -> GlobalSelectionMachine:
    return GlobalSelectionMachine(GlobalSelectionPolicy(), heartbeat_timeout=TIMEOUT)


def make_shard(replicas: int) -> ReplicatedShard:
    return ReplicatedShard(0, [machine() for _ in range(replicas)])


def partial_ids(m: GlobalSelectionMachine, now: float) -> tuple:
    query = DiscoveryQuery(user_id="u", lat=44.97, lon=-93.25, top_n=3)
    replies = [
        e
        for e in m.handle(
            PartialDiscoveryRequested(now=now, stamp=now, query=query, radius_km=50.0)
        )
        if isinstance(e, ReplyPartialCandidates)
    ]
    return tuple(s.node_id for s in replies[0].statuses)


class TestSnapshotDedupe:
    def test_reregistered_node_snapshots_to_one_heap_entry(self):
        m = machine()
        m.handle(HeartbeatReceived(stamp=1.0, status=status_at("x")))
        m.handle(HeartbeatReceived(stamp=50.0, status=status_at("x")))
        assert len(m._expiry_heap) == 2  # the live entry plus a tombstone

        snapshot = m.snapshot_state()
        assert len(snapshot.statuses) == 1
        assert snapshot.stamps == {"x": 50.0}

        restored = machine()
        restored.restore_state(snapshot)
        assert len(restored._expiry_heap) == 1
        assert restored._expiry_heap[0] == (50.0, "x")

    def test_handoff_never_resurrects_expired_node(self):
        """Node-id reuse across a handoff: the old incarnation's expiry
        must not leak onto the new incarnation's clock."""
        m = machine()
        m.handle(HeartbeatReceived(stamp=1.0, status=status_at("x")))
        # The first incarnation expires...
        effects = m.handle(PruneTick(stamp=1.0 + TIMEOUT + 1.0))
        assert any(
            isinstance(e, NodeExpired) and e.node_id == "x" for e in effects
        )
        # ...and the id is reused by a new incarnation mid-handoff.
        m.handle(HeartbeatReceived(stamp=150.0, status=status_at("x")))

        restored = machine()
        restored.restore_state(m.snapshot_state())
        # Old tombstone gone: pruning at a time that would pop the stale
        # (1.0, "x") entry leaves the new incarnation alive.
        assert not restored.handle(PruneTick(stamp=150.0 + TIMEOUT - 1.0))
        assert "x" in restored.registry
        # The new incarnation still expires on its own clock.
        effects = restored.handle(PruneTick(stamp=150.0 + TIMEOUT + 1.0))
        assert any(
            isinstance(e, NodeExpired) and e.node_id == "x" for e in effects
        )
        assert "x" not in restored.registry

    def test_snapshot_validates_id_stamp_agreement(self):
        with pytest.raises(ValueError):
            RegistrySnapshot(
                statuses=(status_at("a"),), stamps={"b": 1.0}, wrr_current={}
            )
        with pytest.raises(ValueError):
            RegistrySnapshot(
                statuses=(status_at("a"), status_at("a")),
                stamps={"a": 1.0},
                wrr_current={},
            )


class TestReplicatedShard:
    def test_heartbeats_replicate_to_all_alive(self):
        shard = make_shard(3)
        shard.apply_heartbeat(1.0, status_at("a"))
        for m in shard.machines:
            assert "a" in m.registry

    def test_standby_never_serves_until_promoted(self):
        shard = make_shard(2)
        shard.apply_heartbeat(1.0, status_at("a"))
        shard.mark_down(0)
        assert shard.serving_index() is None
        assert shard.serving_machine() is None
        promoted = shard.promote()
        assert promoted == 1
        assert shard.serving_index() == 1
        assert partial_ids(shard.serving_machine(), now=2.0) == ("a",)

    def test_promoted_standby_answers_identically(self):
        shard = make_shard(2)
        for i in range(5):
            shard.apply_heartbeat(float(i), status_at(f"n{i}", lat=44.9 + 0.01 * i))
        before = partial_ids(shard.machines[0], now=10.0)
        shard.mark_down(0)
        shard.promote()
        assert partial_ids(shard.serving_machine(), now=10.0) == before

    def test_downed_replica_misses_deltas_until_synced(self):
        shard = make_shard(2)
        shard.mark_down(1)
        shard.apply_heartbeat(1.0, status_at("a"))
        assert "a" not in shard.machines[1].registry
        shard.mark_up(1)
        entries = shard.sync_standby(1)
        assert entries == 1
        assert "a" in shard.machines[1].registry

    def test_sync_requires_serving_primary_and_distinct_target(self):
        shard = make_shard(2)
        with pytest.raises(ValueError):
            shard.sync_standby(shard.primary)
        shard.mark_down(shard.primary)
        with pytest.raises(RuntimeError):
            shard.sync_standby(1)

    def test_promote_with_no_alive_replicas_returns_none(self):
        shard = make_shard(2)
        shard.mark_down(0)
        shard.mark_down(1)
        assert shard.promote() is None
        assert shard.serving_index() is None
