"""Tests for the multi-application extension (§III-B)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.multiapp import ApplicationSpec, MultiAppDeployment
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name
from repro.workload.ar import ARApplication

AR = ApplicationSpec(ARApplication(name="ar"), service_scale=1.0)
OCR = ApplicationSpec(
    ARApplication(name="ocr", max_fps=5.0, target_latency_ms=300.0),
    service_scale=2.0,
)


@pytest.fixture
def deployment():
    system = EdgeSystem(SystemConfig(seed=7, top_n=2))
    dep = MultiAppDeployment(system, [AR, OCR])
    dep.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    dep.spawn_node("V2", profile_by_name("V2"), GeoPoint(44.95, -93.20))
    system.register_client_endpoint("a1", GeoPoint(44.97, -93.25))
    system.register_client_endpoint("o1", GeoPoint(44.96, -93.24))
    return dep


def test_spec_validation():
    with pytest.raises(ValueError):
        ApplicationSpec(ARApplication(name="bad"), service_scale=0.0)


def test_deployment_validation():
    system = EdgeSystem(SystemConfig(seed=7))
    with pytest.raises(ValueError):
        MultiAppDeployment(system, [])
    with pytest.raises(ValueError, match="duplicate"):
        MultiAppDeployment(system, [AR, AR])


def test_one_manager_per_application(deployment):
    assert set(deployment.managers) == {"ar", "ocr"}
    assert deployment.managers["ar"] is not deployment.managers["ocr"]


def test_per_app_seq_nums_are_independent(deployment):
    deployment.system.run_for(500.0)
    node = deployment.nodes["V1"]
    ar_service = node.service("ar")
    ocr_service = node.service("ocr")
    seq_before = ocr_service.seq_num
    ar_service.unexpected_join("a1", fps=20.0)
    assert ocr_service.seq_num == seq_before  # untouched


def test_unknown_app_rejected(deployment):
    with pytest.raises(KeyError):
        deployment.scoped_system("nope")


def test_clients_of_both_apps_attach_and_offload(deployment):
    system = deployment.system
    ar_client = deployment.make_client("a1", "ar")
    ocr_client = deployment.make_client("o1", "ocr")
    ar_client.start()
    ocr_client.start()
    system.run_for(20_000.0)
    assert ar_client.attached and ocr_client.attached
    assert ar_client.stats.frames_completed > 100
    assert ocr_client.stats.frames_completed > 20
    # OCR frames cost 2x the node's AR frame time: its latency is higher.
    assert ocr_client.stats.mean_latency_ms > ar_client.stats.mean_latency_ms


def test_applications_share_node_compute(deployment):
    """Frames of both applications flow through one machine queue."""
    system = deployment.system
    ar_client = deployment.make_client("a1", "ar")
    ocr_client = deployment.make_client("o1", "ocr")
    ar_client.start()
    ocr_client.start()
    system.run_for(10_000.0)
    if ar_client.current_edge == ocr_client.current_edge:
        node = deployment.nodes[ar_client.current_edge]
        total = ar_client.stats.frames_completed + ocr_client.stats.frames_completed
        assert node.shared_processor.frames_processed >= total


def test_app_hosting_can_be_restricted():
    system = EdgeSystem(SystemConfig(seed=9, top_n=2))
    dep = MultiAppDeployment(system, [AR, OCR])
    dep.spawn_node("ar-only", profile_by_name("V1"), GeoPoint(44.98, -93.26), apps=["ar"])
    dep.spawn_node("both", profile_by_name("V2"), GeoPoint(44.95, -93.20))
    system.register_client_endpoint("o1", GeoPoint(44.96, -93.24))
    ocr_client = dep.make_client("o1", "ocr")
    ocr_client.start()
    system.run_for(10_000.0)
    # The OCR client can only ever land on the node hosting OCR.
    assert ocr_client.current_edge == "both"
    assert "ocr" not in dep.nodes["ar-only"].services


def test_fail_node_breaks_both_apps(deployment):
    system = deployment.system
    ar_client = deployment.make_client("a1", "ar")
    ocr_client = deployment.make_client("o1", "ocr")
    ar_client.start()
    ocr_client.start()
    system.run_for(10_000.0)
    victim = ar_client.current_edge
    deployment.fail_node(victim)
    system.run_for(10_000.0)
    assert not deployment.nodes[victim].alive
    assert ar_client.current_edge != victim
    if ocr_client.current_edge is not None:
        assert ocr_client.current_edge != victim


def test_cross_app_contention_is_visible_to_probes(deployment):
    """Loading a node with OCR work raises the *AR* what-if on it —
    cross-application contention is part of the probe signal."""
    system = deployment.system
    system.run_for(1_000.0)
    node = deployment.nodes["V1"]
    ar_idle = node.service("ar").what_if_ms
    # Pile OCR users on V1 and let their frames flow.
    ocr_service = node.service("ocr")
    for i in range(4):
        ocr_service.unexpected_join(f"phantom-{i}", fps=5.0)
    for t in range(0, 2000, 50):  # 20 fps of 48 ms OCR frames
        node.shared_processor.submit(system.sim.now + t, service_ms=48.0)
    system.run_for(4_000.0)
    assert node.service("ar").what_if_ms > ar_idle
