"""Unit tests for host-workload interference."""

import random

import pytest

from repro.nodes.host_workload import HostWorkload, HostWorkloadSchedule


def test_episode_slowdown_factor():
    episode = HostWorkload(0.0, 1000.0, cpu_fraction=0.5)
    assert episode.slowdown_factor == pytest.approx(2.0)


def test_episode_active_interval_is_half_open():
    episode = HostWorkload(100.0, 200.0, 0.3)
    assert not episode.active_at(99.9)
    assert episode.active_at(100.0)
    assert episode.active_at(199.9)
    assert not episode.active_at(200.0)


def test_episode_validation():
    with pytest.raises(ValueError):
        HostWorkload(100.0, 100.0, 0.5)  # zero duration
    with pytest.raises(ValueError):
        HostWorkload(0.0, 1.0, 0.99)  # too hungry


def test_empty_schedule_is_always_idle():
    schedule = HostWorkloadSchedule.none()
    assert schedule.slowdown_at(12345.0) == 1.0
    assert len(schedule) == 0
    assert schedule.change_points() == []


def test_schedule_returns_active_episode_factor():
    schedule = HostWorkloadSchedule(
        [HostWorkload(100.0, 200.0, 0.5), HostWorkload(300.0, 400.0, 0.2)]
    )
    assert schedule.slowdown_at(50.0) == 1.0
    assert schedule.slowdown_at(150.0) == pytest.approx(2.0)
    assert schedule.slowdown_at(250.0) == 1.0
    assert schedule.slowdown_at(350.0) == pytest.approx(1.25)


def test_schedule_rejects_overlap():
    with pytest.raises(ValueError, match="overlap"):
        HostWorkloadSchedule(
            [HostWorkload(0.0, 100.0, 0.5), HostWorkload(50.0, 150.0, 0.5)]
        )


def test_schedule_sorts_episodes():
    schedule = HostWorkloadSchedule(
        [HostWorkload(300.0, 400.0, 0.2), HostWorkload(100.0, 200.0, 0.5)]
    )
    assert schedule.episodes[0].start_ms == 100.0


def test_change_points_cover_starts_and_ends():
    schedule = HostWorkloadSchedule([HostWorkload(100.0, 200.0, 0.5)])
    assert schedule.change_points() == [100.0, 200.0]


def test_generate_respects_horizon_and_no_overlap():
    rng = random.Random(4)
    schedule = HostWorkloadSchedule.generate(rng, horizon_ms=300_000.0)
    for episode in schedule.episodes:
        assert 0.0 <= episode.start_ms < episode.end_ms <= 300_000.0
    for earlier, later in zip(schedule.episodes, schedule.episodes[1:]):
        assert later.start_ms >= earlier.end_ms


def test_generate_is_seeded():
    a = HostWorkloadSchedule.generate(random.Random(7), 100_000.0)
    b = HostWorkloadSchedule.generate(random.Random(7), 100_000.0)
    assert [e.start_ms for e in a.episodes] == [e.start_ms for e in b.episodes]


def test_generate_validates():
    with pytest.raises(ValueError):
        HostWorkloadSchedule.generate(random.Random(0), horizon_ms=0.0)
    with pytest.raises(ValueError):
        HostWorkloadSchedule.generate(
            random.Random(0), 1000.0, cpu_fraction_range=(0.8, 0.5)
        )


def test_generate_fraction_range_respected():
    rng = random.Random(9)
    schedule = HostWorkloadSchedule.generate(
        rng, 600_000.0, mean_gap_ms=5_000.0, cpu_fraction_range=(0.3, 0.4)
    )
    assert len(schedule) > 0
    for episode in schedule.episodes:
        assert 0.3 <= episode.cpu_fraction <= 0.4
