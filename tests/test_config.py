"""Unit tests for SystemConfig validation and helpers."""

import pytest

from repro.core.config import SystemConfig


def test_defaults_are_paper_shaped():
    config = SystemConfig()
    assert config.top_n == 3
    assert config.backup_count == 2
    # The paper's default ranking is GO (average-optimizing).
    assert config.policy_spec is None
    assert config.selection_policy_spec == "go"


def test_with_top_n_copies():
    base = SystemConfig()
    with pytest.warns(DeprecationWarning, match="with_top_n"):
        varied = base.with_top_n(5)
    assert varied.top_n == 5
    assert base.top_n == 3
    assert varied.probing_period_ms == base.probing_period_ms


def test_with_arbitrary_changes_validated():
    with pytest.raises(ValueError):
        SystemConfig().with_(top_n=0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"top_n": 0},
        {"probing_period_ms": 0.0},
        {"probing_jitter_ms": -1.0},
        {"discovery_radius_km": 0.0},
        {"wide_radius_km": 10.0, "discovery_radius_km": 50.0},
        {"heartbeat_timeout_ms": 500.0, "heartbeat_period_ms": 1_000.0},
        {"failure_detection_ms": -1.0},
        {"switch_penalty_ms": -1.0},
        {"switch_penalty_fraction": 1.0},
        {"min_dwell_ms": -1.0},
        {"rtt_probe_samples": 0},
        {"qos_latency_ms": 0.0},
        {"perf_monitor_threshold": 0.0},
        {"max_discovery_retries": -1},
        {"cohort_tick_ms": 0.0},
        {"metro_shards": 0},
        {"shard_workers": 0},
        {"boundary_epoch_ms": -5.0},
        # The boundary channel must fire on a tick boundary.
        {"cohort_tick_ms": 300.0, "boundary_epoch_ms": 1_000.0},
        {"cohort_tick_ms": 500.0, "boundary_epoch_ms": 250.0},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        SystemConfig(**kwargs)


def test_metro_knobs_are_keyword_only():
    from dataclasses import fields

    kw_only = {f.name for f in fields(SystemConfig) if f.kw_only}
    assert {
        "cohort_batching", "cohort_tick_ms", "metro_shards",
        "shard_workers", "boundary_epoch_ms",
    } <= kw_only


def test_metro_knob_defaults_compose():
    config = SystemConfig(cohort_tick_ms=125.0, boundary_epoch_ms=500.0,
                          metro_shards=4, shard_workers=2)
    assert config.boundary_epoch_ms / config.cohort_tick_ms == 4.0
    assert config.metro_shards == 4
    assert config.shard_workers == 2


def test_qos_none_is_allowed():
    assert SystemConfig(qos_latency_ms=None).qos_latency_ms is None


def test_backup_count_is_topn_minus_one():
    assert SystemConfig(top_n=1).backup_count == 0
    assert SystemConfig(top_n=5).backup_count == 4


def test_config_is_frozen():
    with pytest.raises(AttributeError):
        SystemConfig().top_n = 7  # type: ignore[misc]
