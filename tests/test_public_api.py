"""The public import surface a downstream user relies on."""

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_subpackage_exports():
    import repro.baselines as baselines
    import repro.churn as churn
    import repro.core as core
    import repro.experiments as experiments
    import repro.geo as geo
    import repro.metrics as metrics
    import repro.net as net
    import repro.nodes as nodes
    import repro.runtime as runtime
    import repro.sim as sim
    import repro.workload as workload

    for module in (
        baselines, churn, core, experiments, geo, metrics, net, nodes,
        runtime, sim, workload,
    ):
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module.__name__}.{name}"


def test_version_is_semver_ish():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_readme_quickstart_is_accurate():
    """The README's quickstart snippet must keep working verbatim."""
    from repro import EdgeSystem, EdgeClient, SystemConfig
    from repro.geo import GeoPoint
    from repro.nodes import profile_by_name

    system = EdgeSystem(SystemConfig(top_n=3, seed=7))
    system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    system.spawn_node("V2", profile_by_name("V2"), GeoPoint(44.95, -93.20))
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    system.add_client(EdgeClient(system, "alice"))
    system.run_for(30_000)

    client = system.clients["alice"]
    assert client.current_edge in ("V1", "V2")
    assert client.stats.mean_latency_ms > 0


def test_experiment_runs_are_seed_deterministic():
    from repro.core.config import SystemConfig
    from repro.experiments.realworld import run_single_user_cdf

    a = run_single_user_cdf(
        SystemConfig(seed=13), target_nodes=("V1",), duration_ms=5_000.0
    )
    b = run_single_user_cdf(
        SystemConfig(seed=13), target_nodes=("V1",), duration_ms=5_000.0
    )
    assert a.latencies == b.latencies


def test_every_docstringed_public_module():
    """Every package module ships a module docstring (the API docs)."""
    import pathlib

    import repro

    src_root = pathlib.Path(repro.__file__).parent
    missing = []
    for path in src_root.rglob("*.py"):
        text = path.read_text()
        stripped = text.lstrip()
        if not stripped:
            continue
        if not stripped.startswith(('"""', "'''", 'r"""')):
            missing.append(str(path.relative_to(src_root)))
    assert missing == [], f"modules without docstrings: {missing}"
