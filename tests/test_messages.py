"""Unit and property tests for protocol messages and wire encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.core.messages import (
    CandidateList,
    DiscoveryQuery,
    JoinReply,
    LeaveNotice,
    NodeStatus,
    ProbeReply,
    from_wire,
    to_wire,
)


def make_status(**overrides):
    base = dict(
        node_id="V1",
        lat=44.98,
        lon=-93.26,
        geohash="9zvxg",
        cores=8,
        capacity_fps=83.0,
        attached_users=2,
        utilization=0.4,
    )
    base.update(overrides)
    return NodeStatus(**base)


def test_availability_score_is_free_cores():
    status = make_status(cores=8, utilization=0.25)
    assert status.availability_score == pytest.approx(6.0)


def test_availability_score_never_negative():
    assert make_status(utilization=1.5).availability_score == 0.0


def test_status_point_property():
    assert make_status().point.lat == 44.98


def test_discovery_query_point():
    query = DiscoveryQuery("u1", 44.0, -93.0, top_n=3)
    assert query.point.lon == -93.0


def test_candidate_list_len():
    assert len(CandidateList("u1", ("a", "b"))) == 2


# ----------------------------------------------------------------------
# Wire round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "message",
    [
        make_status(isp="comcast", dedicated=True),
        DiscoveryQuery("u1", 44.0, -93.0, top_n=3, exclude=("dead-1",)),
        CandidateList("u1", ("a", "b", "c"), generated_at_ms=12.0, widened=True),
        ProbeReply("V1", 35.0, 7, 3, 31.0, stay_ms=33.0),
        JoinReply("V1", True, 8),
        LeaveNotice("u1", "V1", reason="finish"),
    ],
)
def test_wire_roundtrip(message):
    assert from_wire(to_wire(message)) == message


def test_to_wire_rejects_non_message():
    with pytest.raises(TypeError):
        to_wire({"not": "a message"})


def test_from_wire_rejects_unknown_type():
    with pytest.raises(ValueError, match="unknown"):
        from_wire({"type": "Nonsense", "payload": {}})


def test_from_wire_rejects_malformed():
    with pytest.raises(ValueError):
        from_wire({"payload": {}})
    with pytest.raises(ValueError):
        from_wire("garbage")  # type: ignore[arg-type]


def test_wire_format_is_json_compatible():
    import json

    encoded = to_wire(CandidateList("u1", ("a", "b")))
    decoded = json.loads(json.dumps(encoded))
    assert from_wire(decoded) == CandidateList("u1", ("a", "b"))


@given(
    st.text(min_size=1, max_size=20),
    st.floats(min_value=-89, max_value=89),
    st.floats(min_value=-179, max_value=179),
    st.integers(min_value=1, max_value=10),
    st.lists(st.text(min_size=1, max_size=8), max_size=4),
)
def test_property_discovery_query_roundtrip(user_id, lat, lon, top_n, exclude):
    query = DiscoveryQuery(user_id, lat, lon, top_n, exclude=tuple(exclude))
    assert from_wire(to_wire(query)) == query


@given(
    st.floats(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=1_000),
    st.integers(min_value=0, max_value=50),
)
def test_property_probe_reply_roundtrip(what_if, seq, attached):
    reply = ProbeReply("n", what_if, seq, attached, what_if, stay_ms=what_if)
    assert from_wire(to_wire(reply)) == reply
