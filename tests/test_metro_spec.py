"""MetroSpec/ShardSpec validation and deterministic population synthesis."""

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.geo import geohash
from repro.metro.spec import (
    MetroSpec,
    ShardSpec,
    build_population,
    quantize_ticks,
)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"nodes": 0, "users": 10},
        {"nodes": 10, "users": 0},
        {"nodes": 10, "users": 10, "region_km": 0.0},
        {"nodes": 10, "users": 10, "fps": 0.0},
        {"nodes": 10, "users": 10, "frame_transfer_ms": -1.0},
        {"nodes": 10, "users": 10, "cell_precision": 0},
    ],
)
def test_invalid_metro_specs_rejected(kwargs):
    with pytest.raises(ValueError):
        MetroSpec(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"by": "hilbert"},
        {"count": 0},
        {"workers": 0},
        {"precision": 0},
        {"boundary_epoch_ms": 0.0},
    ],
)
def test_invalid_shard_specs_rejected(kwargs):
    with pytest.raises(ValueError):
        ShardSpec(**kwargs)


def test_shard_precision_must_not_exceed_cell_precision():
    spec = MetroSpec(nodes=10, users=10, cell_precision=5,
                     shard=ShardSpec(precision=7))
    with pytest.raises(ValueError, match="precision"):
        spec.effective_shard_precision


def test_effective_precisions_default_by_region():
    metro = MetroSpec(nodes=10, users=10, region_km=40.0)
    assert metro.effective_cell_precision == 5
    assert metro.effective_shard_precision == 4
    campus = MetroSpec(nodes=10, users=10, region_km=2.0)
    assert campus.effective_cell_precision == 6


def test_shard_spec_from_config():
    config = SystemConfig(metro_shards=4, shard_workers=2,
                          boundary_epoch_ms=2_000.0)
    shard = ShardSpec.from_config(config)
    assert shard.count == 4
    assert shard.workers == 2
    assert shard.boundary_epoch_ms == 2_000.0


def test_with_shard_returns_new_spec():
    spec = MetroSpec(nodes=10, users=10)
    sharded = spec.with_shard(ShardSpec(count=3))
    assert sharded.shard.count == 3
    assert spec.shard.count == 1
    assert sharded.nodes == spec.nodes


def test_interval_ms():
    assert MetroSpec(nodes=1, users=1, fps=10.0).interval_ms == 100.0
    assert MetroSpec(nodes=1, users=1, fps=4.0).interval_ms == 250.0


# ----------------------------------------------------------------------
# Population synthesis
# ----------------------------------------------------------------------
def test_population_is_deterministic_for_seed():
    spec = MetroSpec(nodes=200, users=500)
    a = build_population(spec, seed=7)
    b = build_population(spec, seed=7)
    assert np.array_equal(a.node_lat, b.node_lat)
    assert np.array_equal(a.user_lon, b.user_lon)
    assert np.array_equal(a.node_cell, b.node_cell)
    assert np.array_equal(a.user_phase_ms, b.user_phase_ms)


def test_population_varies_with_seed():
    spec = MetroSpec(nodes=200, users=500)
    a = build_population(spec, seed=7)
    b = build_population(spec, seed=8)
    assert not np.array_equal(a.node_lat, b.node_lat)


def test_population_cells_match_vectorized_encode():
    spec = MetroSpec(nodes=100, users=100)
    pop = build_population(spec, seed=3)
    assert np.array_equal(
        pop.node_cell,
        geohash.encode_cells(pop.node_lat, pop.node_lon,
                             pop.cell_precision),
    )


def test_population_stays_inside_region():
    spec = MetroSpec(nodes=500, users=500, region_km=10.0)
    pop = build_population(spec, seed=1)
    # 10 km radius is < 0.1 degrees of latitude around MSP.
    assert float(np.ptp(pop.node_lat)) < 0.2
    assert float(np.ptp(pop.user_lat)) < 0.2


def test_user_phases_cover_the_frame_interval():
    spec = MetroSpec(nodes=10, users=2_000, fps=10.0)
    pop = build_population(spec, seed=2)
    assert float(pop.user_phase_ms.min()) >= 0.0
    assert float(pop.user_phase_ms.max()) < spec.interval_ms


# ----------------------------------------------------------------------
# Tick arithmetic
# ----------------------------------------------------------------------
def test_quantize_ticks_rounds_up_to_whole_ticks():
    assert quantize_ticks(1_000.0, 250.0) == 4
    assert quantize_ticks(1_001.0, 250.0) == 5
    assert quantize_ticks(1.0, 250.0) == 1
    # Float noise just above a boundary must not add a spurious tick.
    assert quantize_ticks(250.0 * 3 + 1e-12, 250.0) == 3
