"""Unit and property tests for the event queue."""

import random

from hypothesis import given, strategies as st

from repro.sim.events import EventQueue


def test_pop_returns_none_when_empty():
    assert EventQueue().pop() is None


def test_events_pop_in_time_order():
    queue = EventQueue()
    queue.push(5.0, lambda: None)
    queue.push(1.0, lambda: None)
    queue.push(3.0, lambda: None)
    times = [queue.pop().time for _ in range(3)]
    assert times == [1.0, 3.0, 5.0]


def test_same_time_events_pop_in_insertion_order():
    queue = EventQueue()
    order = []
    first = queue.push(2.0, lambda: order.append("first"))
    second = queue.push(2.0, lambda: order.append("second"))
    assert queue.pop() is first
    assert queue.pop() is second


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    keep = queue.push(1.0, lambda: None)
    cancel = queue.push(0.5, lambda: None)
    cancel.cancel()
    assert queue.pop() is keep
    assert queue.pop() is None


def test_cancel_drops_callback_reference():
    holder = {"alive": True}

    def callback():
        return holder

    queue = EventQueue()
    event = queue.push(1.0, callback)
    event.cancel()
    assert event.callback is not callback


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    early.cancel()
    assert queue.peek_time() == 2.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_len_counts_heap_entries():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    assert bool(queue)
    queue.clear()
    assert len(queue) == 0
    assert not queue


def test_pending_snapshot_sorted_and_excludes_cancelled():
    queue = EventQueue()
    a = queue.push(3.0, lambda: None)
    b = queue.push(1.0, lambda: None)
    c = queue.push(2.0, lambda: None)
    c.cancel()
    assert queue.pending() == (b, a)


def test_event_repr_shows_state():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None, label="hello")
    assert "pending" in repr(event)
    assert "hello" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
def test_property_pop_order_is_nondecreasing(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100),
    st.data(),
)
def test_property_cancellation_removes_exactly_those_events(times, data):
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in times]
    to_cancel = data.draw(
        st.lists(st.integers(min_value=0, max_value=len(events) - 1), unique=True)
    )
    for index in to_cancel:
        events[index].cancel()
    surviving = sorted(
        t for i, t in enumerate(times) if i not in set(to_cancel)
    )
    popped = []
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append(event.time)
    assert popped == surviving


def test_large_random_workload_stays_ordered():
    rng = random.Random(7)
    queue = EventQueue()
    for _ in range(5_000):
        queue.push(rng.uniform(0, 1000), lambda: None)
    previous = -1.0
    count = 0
    while True:
        event = queue.pop()
        if event is None:
            break
        assert event.time >= previous
        previous = event.time
        count += 1
    assert count == 5_000


# ----------------------------------------------------------------------
# EventPool: recycled events must be indistinguishable from fresh ones.
# ----------------------------------------------------------------------
def test_pool_recycles_released_events():
    from repro.sim.events import EventPool

    pool = EventPool(max_size=8)
    queue = EventQueue()
    fired = []
    first = queue.push_pooled(pool, 1.0, lambda: fired.append("a"), "a")
    queue.pop().callback()
    pool.release(first)
    second = queue.push_pooled(pool, 2.0, lambda: fired.append("b"), "b")
    assert second is first  # same object, reinitialized
    assert second.time == 2.0 and second.label == "b"
    assert not second.cancelled
    queue.pop().callback()
    assert fired == ["a", "b"]
    assert pool.acquired == 2 and pool.recycled == 1


def test_pool_respects_max_size():
    from repro.sim.events import EventPool

    pool = EventPool(max_size=1)
    queue = EventQueue()
    events = [queue.push_pooled(pool, float(i), lambda: None) for i in range(3)]
    while queue.pop() is not None:
        pass
    for event in events:
        pool.release(event)
    # Only one slot: two of the three releases were dropped.
    recycled = [queue.push_pooled(pool, 9.0, lambda: None) for _ in range(3)]
    assert sum(1 for e in recycled if e in events) == 1
    assert pool.recycled == 1


def test_pooled_events_interleave_with_plain_pushes():
    from repro.sim.events import EventPool

    pool = EventPool()
    queue = EventQueue()
    order = []
    queue.push(2.0, lambda: order.append("plain"))
    queue.push_pooled(pool, 1.0, lambda: order.append("pooled"))
    for _ in range(2):
        queue.pop().callback()
    assert order == ["pooled", "plain"]


def test_pool_rejects_negative_max_size():
    from repro.sim.events import EventPool

    import pytest

    with pytest.raises(ValueError):
        EventPool(max_size=-1)
