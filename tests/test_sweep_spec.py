"""Unit tests for sweep specs and content-addressed run identity."""

import pytest

from repro.sweep.spec import RunSpec, SweepSpec, canonical_params, params_token


def _spec(**overrides):
    defaults = dict(
        experiment="selftest",
        grid={"scale": [1.0, 2.0], "mode": ["a", "b"]},
        n_seeds=3,
        base_seed=42,
    )
    defaults.update(overrides)
    grid = defaults.pop("grid")
    return SweepSpec.build(defaults.pop("experiment"), grid, **defaults)


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
def test_expansion_count_is_grid_times_seeds():
    spec = _spec()
    assert spec.total_runs() == 2 * 2 * 3
    assert len(spec.expand()) == 12


def test_expansion_order_is_deterministic():
    a = [r.run_key for r in _spec().expand()]
    b = [r.run_key for r in _spec().expand()]
    assert a == b


def test_expansion_is_insertion_order_independent():
    forward = SweepSpec.build("e", {"a": [1], "b": [2]}, n_seeds=1)
    reverse = SweepSpec.build("e", {"b": [2], "a": [1]}, n_seeds=1)
    assert forward == reverse
    assert [r.run_key for r in forward.expand()] == [
        r.run_key for r in reverse.expand()
    ]


def test_every_run_key_unique():
    keys = [r.run_key for r in _spec().expand()]
    assert len(set(keys)) == len(keys)


def test_empty_grid_axis_rejected():
    with pytest.raises(ValueError):
        SweepSpec.build("e", {"a": []})


def test_nonscalar_param_rejected():
    with pytest.raises(TypeError):
        SweepSpec.build("e", {"a": [[1, 2]]})
    with pytest.raises(TypeError):
        canonical_params({"a": {"nested": 1}})


def test_zero_seeds_rejected():
    with pytest.raises(ValueError):
        SweepSpec.build("e", {"a": [1]}, n_seeds=0)


# ----------------------------------------------------------------------
# run_key: content identity
# ----------------------------------------------------------------------
def test_run_key_stable_across_processes_by_construction():
    # sha256 of canonical content — pin one value so accidental format
    # changes (which would orphan every cached run) fail loudly.
    run = RunSpec("e", canonical_params({"a": 1}), 0, base_seed=42, salt="")
    assert run.run_key == RunSpec(
        "e", canonical_params({"a": 1}), 0, base_seed=42, salt=""
    ).run_key
    assert len(run.run_key) == 16
    int(run.run_key, 16)  # hex


@pytest.mark.parametrize(
    "change",
    [
        dict(experiment="other"),
        dict(params={"a": 2}),
        dict(params={"b": 1}),
        dict(seed_index=1),
        dict(base_seed=43),
        dict(salt="v2"),
    ],
)
def test_run_key_changes_with_any_content_field(change):
    base = dict(
        experiment="e", params={"a": 1}, seed_index=0, base_seed=42, salt=""
    )
    varied = dict(base, **change)
    a = RunSpec(
        base["experiment"], canonical_params(base["params"]),
        base["seed_index"], base["base_seed"], base["salt"],
    )
    b = RunSpec(
        varied["experiment"], canonical_params(varied["params"]),
        varied["seed_index"], varied["base_seed"], varied["salt"],
    )
    assert a.run_key != b.run_key


# ----------------------------------------------------------------------
# root_seed: independent random universes
# ----------------------------------------------------------------------
def test_root_seeds_distinct_across_runs():
    seeds = [r.root_seed for r in _spec().expand()]
    assert len(set(seeds)) == len(seeds)


def test_root_seed_is_pure_function_of_content():
    runs_a = _spec().expand()
    runs_b = _spec().expand()
    assert [r.root_seed for r in runs_a] == [r.root_seed for r in runs_b]


def test_root_seed_independent_of_grid_shape():
    # The same (experiment, params, seed_index) run must consume the
    # same universe whether it came from a 1-cell or a 10-cell grid —
    # that is what makes cached results reusable across sweep layouts.
    narrow = SweepSpec.build("e", {"a": [1]}, n_seeds=2).expand()
    wide = SweepSpec.build("e", {"a": [1, 2, 3]}, n_seeds=2).expand()
    narrow_map = {(r.params, r.seed_index): r.root_seed for r in narrow}
    wide_map = {(r.params, r.seed_index): r.root_seed for r in wide}
    for key, value in narrow_map.items():
        assert wide_map[key] == value


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def test_spec_dict_roundtrip():
    spec = _spec(salt="v1")
    assert SweepSpec.from_dict(spec.to_dict()) == spec


def test_runspec_dict_roundtrip():
    run = _spec().expand()[5]
    restored = RunSpec.from_dict(run.to_dict())
    assert restored == run
    assert restored.run_key == run.run_key


def test_params_token_canonical():
    assert params_token({"b": 2, "a": 1}) == params_token({"a": 1, "b": 2})
