"""Regression tests for BENCH_perf.json bookkeeping.

The writer must be atomic: a crash mid-write (simulated by making the
final ``os.replace`` fail) may lose the *new* section but must never
corrupt the sections already on disk.
"""

import json

import pytest

import repro.fsutil as fsutil
from repro.fsutil import atomic_write_text
from repro.metrics.bench import read_bench_section, record_bench_section


def test_record_merges_sections(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    record_bench_section(path, "discovery", {"qps": 100})
    record_bench_section(path, "sweep", {"speedup": 3.2})
    report = json.loads(path.read_text())
    assert report == {"discovery": {"qps": 100}, "sweep": {"speedup": 3.2}}
    assert read_bench_section(path, "sweep") == {"speedup": 3.2}


def test_record_overwrites_same_section(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    record_bench_section(path, "sweep", {"speedup": 1.0})
    record_bench_section(path, "sweep", {"speedup": 4.0})
    assert read_bench_section(path, "sweep") == {"speedup": 4.0}


def test_corrupt_report_replaced_not_crashed(tmp_path):
    path = tmp_path / "BENCH_perf.json"
    path.write_text("{ definitely not json")
    record_bench_section(path, "sweep", {"ok": 1})
    assert json.loads(path.read_text()) == {"sweep": {"ok": 1}}


def test_interrupted_write_preserves_existing_report(tmp_path, monkeypatch):
    path = tmp_path / "BENCH_perf.json"
    record_bench_section(path, "discovery", {"qps": 100})
    before = path.read_text()

    def exploding_replace(src, dst):
        raise OSError("simulated crash during replace")

    monkeypatch.setattr(fsutil.os, "replace", exploding_replace)
    with pytest.raises(OSError):
        record_bench_section(path, "sweep", {"speedup": 9.9})

    # The original report is byte-identical and no tmp files leak.
    assert path.read_text() == before
    leftovers = [p for p in tmp_path.iterdir() if p != path]
    assert leftovers == []


def test_atomic_write_text_roundtrip(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "hello\n")
    assert path.read_text() == "hello\n"
    atomic_write_text(path, "replaced\n")
    assert path.read_text() == "replaced\n"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


# ----------------------------------------------------------------------
# The perf-benchmark registry behind `repro bench`
# ----------------------------------------------------------------------
def test_registry_scripts_all_exist():
    from repro.metrics.bench import PERF_BENCHMARKS, perf_bench_dir

    perf = perf_bench_dir()
    for name, script in PERF_BENCHMARKS.items():
        assert (perf / script).is_file(), f"{name} -> {script}"


def test_perf_bench_dir_walks_up(tmp_path):
    from repro.metrics.bench import perf_bench_dir

    (tmp_path / "benchmarks" / "perf").mkdir(parents=True)
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert perf_bench_dir(nested) == tmp_path / "benchmarks" / "perf"


def test_run_perf_bench_rejects_unknown_name():
    from repro.metrics.bench import run_perf_bench

    with pytest.raises(KeyError, match="unknown benchmark"):
        run_perf_bench("no_such_bench")


def test_run_perf_bench_invokes_script_main(tmp_path):
    from repro.metrics.bench import run_perf_bench

    perf = tmp_path / "benchmarks" / "perf"
    perf.mkdir(parents=True)
    (perf / "bench_discovery.py").write_text(
        "import json, sys\n"
        "def main(argv):\n"
        "    json.dump(argv, open(argv[argv.index('--output') + 1], 'w'))\n"
        "    return 0\n"
    )
    out = tmp_path / "result.json"
    rc = run_perf_bench(
        "discovery", ["--output", str(out)], perf_dir=perf
    )
    assert rc == 0
    assert json.loads(out.read_text()) == ["--output", str(out)]
