"""Property: cohort batching is a pure optimization.

For any (seed, population shape, failure schedule) the cohort-batched
frame loop must emit exactly the same trace-event multiset as pushing
one pooled event per frame through the real event queue — same joins,
same frames at the same times with the same latencies, same failovers.
This is the load-bearing guarantee that lets the metro kernel default
to arrays without changing what the simulation *says happened*.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.metro.kernel import MetroKernel
from repro.metro.spec import MetroSpec, build_population
from repro.obs.tracer import Tracer


def run_mode(*, batched, seed, nodes, users, fail_first_at_ms, sim_seconds):
    config = SystemConfig(
        seed=seed, min_dwell_ms=1_000.0, cohort_batching=batched
    )
    spec = MetroSpec(nodes=nodes, users=users, region_km=15.0, fps=10.0)
    population = build_population(spec, config.seed)
    tracer = Tracer(enabled=True, capacity=1 << 20)
    kernel = MetroKernel(config, spec, population, tracer=tracer)
    if fail_first_at_ms is not None:
        kernel.schedule_node_fail(int(kernel.n_gid[0]), at_ms=fail_first_at_ms)
    report = kernel.run(sim_seconds)
    multiset = Counter(
        tuple(sorted(e.to_dict().items())) for e in tracer.events()
    )
    return report, multiset


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    nodes=st.integers(min_value=20, max_value=120),
    users=st.integers(min_value=30, max_value=400),
    fail_first_at_ms=st.one_of(
        st.none(), st.floats(min_value=500.0, max_value=3_000.0)
    ),
)
def test_batched_equals_per_client_event_multiset(
    seed, nodes, users, fail_first_at_ms
):
    sim_seconds = 4.0
    batched_report, batched_events = run_mode(
        batched=True, seed=seed, nodes=nodes, users=users,
        fail_first_at_ms=fail_first_at_ms, sim_seconds=sim_seconds,
    )
    per_client_report, per_client_events = run_mode(
        batched=False, seed=seed, nodes=nodes, users=users,
        fail_first_at_ms=fail_first_at_ms, sim_seconds=sim_seconds,
    )
    assert batched_events == per_client_events
    assert batched_report.frames_done == per_client_report.frames_done
    assert batched_report.frames_lost == per_client_report.frames_lost
    assert batched_report.switches == per_client_report.switches
    assert (
        batched_report.covered_failovers == per_client_report.covered_failovers
    )
    assert (
        batched_report.uncovered_failures
        == per_client_report.uncovered_failures
    )
