"""Unit tests for the hardware catalog."""

import pytest

from repro.nodes.hardware import (
    CLOUD_NODE,
    DEDICATED_PROFILES,
    EMULATION_PROFILES,
    HardwareProfile,
    VOLUNTEER_PROFILES,
    catalog_names,
    profile_by_name,
)


def test_table2_volunteer_frame_times():
    """The exact Table II processing times."""
    times = {p.name: p.base_frame_ms for p in VOLUNTEER_PROFILES}
    assert times == {"V1": 24.0, "V2": 32.0, "V3": 31.0, "V4": 45.0, "V5": 49.0}


def test_table2_volunteer_core_counts():
    cores = {p.name: p.cores for p in VOLUNTEER_PROFILES}
    assert cores == {"V1": 8, "V2": 6, "V3": 6, "V4": 4, "V5": 2}


def test_table2_dedicated_nodes():
    assert [p.name for p in DEDICATED_PROFILES] == ["D6", "D7", "D8", "D9"]
    assert all(p.base_frame_ms == 30.0 for p in DEDICATED_PROFILES)
    assert all(p.cores == 4 for p in DEDICATED_PROFILES)


def test_cloud_node_matches_table2():
    assert CLOUD_NODE.base_frame_ms == 30.0


def test_capacity_fps():
    v1 = profile_by_name("V1")
    assert v1.capacity_fps == pytest.approx(v1.parallelism * 1000.0 / 24.0)


def test_faster_hardware_has_higher_capacity():
    assert profile_by_name("V1").capacity_fps > profile_by_name("V5").capacity_fps


def test_lookup_by_name():
    assert profile_by_name("t2.xlarge") is EMULATION_PROFILES["t2.xlarge"]


def test_lookup_unknown_raises_with_known_names():
    with pytest.raises(KeyError, match="V1"):
        profile_by_name("not-a-machine")


def test_catalog_names_cover_all_groups():
    names = catalog_names()
    for expected in ("V1", "V5", "D6", "D9", "Cloud", "t2.medium", "t2.2xlarge"):
        assert expected in names


def test_profile_validation():
    with pytest.raises(ValueError):
        HardwareProfile("bad", "x", 0, 30.0)
    with pytest.raises(ValueError):
        HardwareProfile("bad", "x", 4, 0.0)
    with pytest.raises(ValueError):
        HardwareProfile("bad", "x", 4, 30.0, parallelism=0)


def test_scaled_profile():
    v1 = profile_by_name("V1")
    slow = v1.scaled(2.0)
    assert slow.base_frame_ms == 48.0
    assert slow.name == "V1x2"
    assert v1.base_frame_ms == 24.0  # original untouched


def test_scaled_rejects_nonpositive():
    with pytest.raises(ValueError):
        profile_by_name("V1").scaled(0.0)


def test_profiles_are_frozen():
    with pytest.raises(AttributeError):
        profile_by_name("V1").base_frame_ms = 1.0  # type: ignore[misc]
