"""Differential parity: the same scripted scenario through the simulated
and the live (loopback TCP) backends must yield the same protocol-level
decisions.

Both backends are thin drivers over the sans-IO machines in
``repro.protocol``; what differs is the I/O fabric (virtual-time method
calls vs real asyncio sockets) and therefore the *measurements* (RTTs,
what-if noise). The scripted scenario — three well-separated Table II
volunteers, one client joining, the serving node hard-killed, one
covered failover — is built so measurement noise cannot flip any
ranking, which makes every decision comparable exactly:

- the manager's candidate ranking (``DiscoveryReturned``),
- the chosen edge (``JoinAccept``),
- the adopted backup list,
- the failover target (``CoveredFailover``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Tuple

from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name
from repro.obs.events import CoveredFailover, DiscoveryReturned, JoinAccept
from repro.obs.tracer import Tracer

# Well-separated capacities (V1: 83 fps, V2: 62 fps, V5: 20 fps) and
# what-if delays (24/32/49 ms) so both the manager's availability
# ranking and the client's GO ranking are unambiguous on both backends.
NODES: List[Tuple[str, GeoPoint]] = [
    ("V1", GeoPoint(44.980, -93.260)),
    ("V2", GeoPoint(44.950, -93.200)),
    ("V5", GeoPoint(44.900, -93.100)),
]
CLIENT_POINT = GeoPoint(44.970, -93.250)


@dataclass
class DecisionTrace:
    """The protocol-level decisions extracted from one backend's run."""

    candidates: Tuple[str, ...]
    chosen: str
    backups: List[str]
    failover_target: str


def _extract(events, backups: List[str]) -> DecisionTrace:
    discovery = next(e for e in events if isinstance(e, DiscoveryReturned))
    join = next(e for e in events if isinstance(e, JoinAccept))
    failover = next(e for e in events if isinstance(e, CoveredFailover))
    return DecisionTrace(
        candidates=tuple(discovery.candidates),
        chosen=join.node_id,
        backups=backups,
        failover_target=failover.node_id,
    )


# ----------------------------------------------------------------------
# The scenario on the simulated backend
# ----------------------------------------------------------------------
def run_sim() -> DecisionTrace:
    from repro.api import ScenarioBuilder
    from repro.core.config import SystemConfig

    builder = (
        ScenarioBuilder(SystemConfig(top_n=3, seed=11))
        .observe(trace=True)
    )
    for node_id, point in NODES:
        builder = builder.node(node_id, profile_by_name(node_id), point=point)
    scenario = builder.client("u1", point=CLIENT_POINT).build_scenario()
    system, tracer = scenario.system, scenario.tracer
    assert tracer is not None

    # Run until the client has joined somewhere.
    for _ in range(100):
        system.run_for(100.0)
        if system.clients["u1"].current_edge is not None:
            break
    client = system.clients["u1"]
    assert client.current_edge is not None
    backups = list(client.failure_monitor.backups)

    # Hard-kill the serving node: the next frame send fails, the client
    # walks its backups (covered failover).
    system.fail_node(client.current_edge)
    for _ in range(100):
        system.run_for(100.0)
        if any(isinstance(e, CoveredFailover) for e in tracer.events()):
            break
    tracer.close()
    return _extract(tracer.events(), backups)


# ----------------------------------------------------------------------
# The same scenario on the live loopback backend
# ----------------------------------------------------------------------
async def run_live() -> DecisionTrace:
    from repro.runtime.client_runtime import LiveClient
    from repro.runtime.edge_server import LiveEdgeServer
    from repro.runtime.manager_server import ManagerServer

    tracer = Tracer(enabled=True)
    manager = ManagerServer(tracer=tracer)
    await manager.start()
    edges = []
    client = None
    try:
        for node_id, point in NODES:
            edge = LiveEdgeServer(
                node_id,
                profile_by_name(node_id),
                point,
                manager_host=manager.host,
                manager_port=manager.port,
                heartbeat_period_s=0.05,
                # Mild compression only: sleeping a 24 ms frame for 12 ms
                # keeps scheduler jitter (<~2 ms wall -> <~4 ms app) far
                # below the 8+ ms what-if gaps between the profiles.
                time_scale=0.5,
                tracer=tracer,
            )
            await edge.start()
            edges.append(edge)
        await asyncio.sleep(0.12)  # one heartbeat round

        client = LiveClient(
            "u1",
            CLIENT_POINT,
            manager.host,
            manager.port,
            top_n=3,
            tracer=tracer,
        )
        await client.select_and_join()
        assert client.current_edge is not None
        backups = list(client.backups)

        serving = next(e for e in edges if e.node_id == client.current_edge)
        await serving.stop()
        await client.offload_frame()  # lost frame -> covered failover
    finally:
        if client is not None:
            await client.close()
        for edge in edges:
            await edge.stop()
        await manager.stop()
    tracer.close()
    return _extract(tracer.events(), backups)


# ----------------------------------------------------------------------
def test_sim_and_live_decision_traces_match():
    sim = run_sim()
    live = asyncio.run(run_live())

    assert sim.candidates == live.candidates
    assert sim.chosen == live.chosen
    assert sim.backups == live.backups
    assert sim.failover_target == live.failover_target

    # And the decisions themselves are the expected ones, so a matching
    # regression on both backends cannot slip through as "parity".
    assert sim.chosen == "V1"
    assert sim.backups == ["V2", "V5"]
    assert sim.failover_target == "V2"
