"""Unit and scenario tests for the ``repro.policy`` subsystem.

Covers the registry/coercion surface (``build_policy``), the machine's
policy integration (score-based hysteresis, pickling with stateful
policies), the builder/runtime wiring, and the gray-node demotion case
the reliability policy exists for.
"""

import pickle

import pytest

from repro.api import ScenarioBuilder
from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.policies.local_policies import sort_by_local_overhead
from repro.core.probing import ProbeOutcome
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name
from repro.policy import (
    CallableRankingPolicy,
    ChurnAwarePolicy,
    EwmaRttPolicy,
    GlobalOverheadPolicy,
    LocalOverheadPolicy,
    QosGatedPolicy,
    RankingContext,
    ReliabilityPolicy,
    build_policy,
    describe,
    get,
    make,
    policy_names,
)
from repro.policy.base import NodeFailureObserved, ProbeObserved
from repro.protocol.effects import SendJoin
from repro.protocol.events import (
    CandidatesReceived,
    JoinResult,
    ProbesCompleted,
    RoundStarted,
)
from repro.protocol.selection import SelectionConfig, SelectionMachine


def outcome(node_id, d_prop, d_proc, users=0, current=None, stay=None):
    return ProbeOutcome(
        node_id=node_id,
        d_prop_ms=d_prop,
        d_proc_ms=d_proc,
        seq_num=0,
        attached_users=users,
        current_proc_ms=d_proc if current is None else current,
        stay_ms=d_proc if stay is None else stay,
    )


# ----------------------------------------------------------------------
# Registry + coercion
# ----------------------------------------------------------------------
def test_registry_lists_builtins():
    assert {"lo", "go", "ewma", "reliability", "churn"} <= set(policy_names())
    for name in policy_names():
        assert describe(name)


def test_make_passes_constructor_params():
    policy = make("ewma", alpha=0.5)
    assert isinstance(policy, EwmaRttPolicy)
    assert policy.alpha == 0.5


def test_get_unknown_name_lists_known():
    with pytest.raises(KeyError, match="reliability"):
        get("nope")


def test_build_policy_from_name():
    assert isinstance(build_policy("lo"), LocalOverheadPolicy)
    assert isinstance(build_policy("go"), GlobalOverheadPolicy)


def test_build_policy_deep_copies_prototypes():
    prototype = ReliabilityPolicy(failure_weight=9.0)
    a = build_policy(prototype)
    b = build_policy(prototype)
    assert a is not prototype and b is not prototype and a is not b
    assert a.failure_weight == 9.0
    # State never leaks between instances built from one prototype.
    a.observe(NodeFailureObserved(now=0.0, node_id="n1", serving=True))
    assert a.suspicion("n1", 0.0) > 0.0
    assert b.suspicion("n1", 0.0) == 0.0
    assert prototype.suspicion("n1", 0.0) == 0.0


def test_build_policy_wraps_legacy_callables():
    policy = build_policy(sort_by_local_overhead)
    assert isinstance(policy, CallableRankingPolicy)
    with pytest.raises(ValueError):
        build_policy(sort_by_local_overhead, params={"alpha": 0.5})


def test_build_policy_params_rejected_for_prototypes():
    with pytest.raises(ValueError):
        build_policy(LocalOverheadPolicy(), params={"x": 1})


def test_build_policy_qos_gate_wraps():
    policy = build_policy("lo", qos_latency_ms=50.0)
    assert isinstance(policy, QosGatedPolicy)
    ctx = RankingContext(now=0.0)
    kept = policy.eligible(
        [outcome("near", 10.0, 10.0), outcome("far", 80.0, 10.0)], ctx
    )
    assert [o.node_id for o in kept] == ["near"]


def test_build_policy_binds_seed():
    policy = build_policy("reliability", seed=99)
    assert policy.params()["seed"] == 99
    # An explicit constructor seed wins over a bound one.
    pinned = ReliabilityPolicy(seed=7)
    pinned.bind_seed(99)
    assert pinned.params()["seed"] == 7


# ----------------------------------------------------------------------
# Machine integration: score-based hysteresis (the dwell bugfix)
# ----------------------------------------------------------------------
def _attach(machine, node_id, d_prop, d_proc, now=0.0):
    machine.handle(RoundStarted(now=now))
    machine.handle(CandidatesReceived(now=now + 1, node_ids=(node_id,)))
    machine.handle(
        ProbesCompleted(
            now=now + 2, outcomes=(outcome(node_id, d_prop, d_proc),)
        )
    )
    machine.handle(
        JoinResult(
            now=now + 3, node_id=node_id, accepted=True, attempted_at=now + 2
        )
    )
    assert machine.current_edge == node_id


def _second_round(machine, outcomes, now=10_000.0):
    machine.handle(RoundStarted(now=now))
    machine.handle(
        CandidatesReceived(
            now=now + 1, node_ids=tuple(o.node_id for o in outcomes)
        )
    )
    return machine.handle(ProbesCompleted(now=now + 2, outcomes=tuple(outcomes)))


# The regression scenario: staying on A is attractive in LO terms (its
# stay-projection is decent) but terrible in GO terms (four attached
# users each eating 30 ms of degradation). Candidate B wins the GO
# ranking outright. The pre-refactor machine ranked with GO but ran
# hysteresis on raw LO, so it blocked the switch its own ranking asked
# for; hysteresis now compares the policy's own scores.
#   A (current, stay-substituted): LO = 5 + 40 = 45, GO = 4*30 + 45 = 165
#   B: LO = GO = 38 + 1 = 39
#   LO gate: 39 >= 45 * 0.85 - 5 = 33.25 -> stay
#   GO gate: 39 <  165 * 0.85 - 5 = 135.25 -> switch
HYSTERESIS_CONFIG = SelectionConfig(
    top_n=3, min_dwell_ms=0.0, switch_penalty_ms=5.0,
    switch_penalty_fraction=0.15,
)


def _hysteresis_round(policy):
    machine = SelectionMachine("u1", policy, HYSTERESIS_CONFIG)
    _attach(machine, "A", 5.0, 20.0)
    second = [
        outcome("A", 5.0, 40.0, users=4, current=10.0, stay=40.0),
        outcome("B", 38.0, 1.0, users=0),
    ]
    return machine, _second_round(machine, second)


def test_go_hysteresis_uses_go_scores():
    machine, effects = _hysteresis_round(GlobalOverheadPolicy())
    joins = [e for e in effects if isinstance(e, SendJoin)]
    assert [j.outcome.node_id for j in joins] == ["B"]


def test_lo_hysteresis_still_blocks_the_switch():
    machine, effects = _hysteresis_round(LocalOverheadPolicy())
    assert not any(isinstance(e, SendJoin) for e in effects)
    assert machine.current_edge == "A"


def test_legacy_callable_keeps_lo_hysteresis():
    """A wrapped legacy callable reports LO scores, so its hysteresis is
    exactly the pre-refactor behaviour even when the callable ranks by
    GO — that bit-identity is what the adapter exists for."""
    from repro.core.policies.local_policies import sort_by_global_overhead

    machine, effects = _hysteresis_round(
        CallableRankingPolicy(sort_by_global_overhead)
    )
    assert not any(isinstance(e, SendJoin) for e in effects)
    assert machine.current_edge == "A"


# ----------------------------------------------------------------------
# Machine pickling with stateful policies
# ----------------------------------------------------------------------
def test_machine_pickles_with_stateful_policy():
    machine = SelectionMachine(
        "u1",
        ReliabilityPolicy(seed=5),
        SelectionConfig(top_n=3, min_dwell_ms=0.0),
    )
    _attach(machine, "A", 5.0, 20.0)
    machine.policy.observe(
        NodeFailureObserved(now=100.0, node_id="A", serving=True)
    )
    clone = pickle.loads(pickle.dumps(machine))
    assert clone.current_edge == "A"
    assert clone.policy.suspicion("A", 100.0) == pytest.approx(
        machine.policy.suspicion("A", 100.0)
    )
    # The revived machine keeps working (and its detail guard is off).
    effects = _second_round(clone, [outcome("B", 10.0, 10.0)])
    assert any(isinstance(e, SendJoin) for e in effects)


# ----------------------------------------------------------------------
# Gray-node demotion (the chaos-matrix case, policy level)
# ----------------------------------------------------------------------
def test_reliability_demotes_gray_node_lo_keeps_selecting():
    """A gray node keeps advertising its stale cheap what-if. LO takes
    the bait every round; reliability saw the projection jump when the
    drift re-prime exposed the real rate, and holds the node down."""
    lo = LocalOverheadPolicy()
    rel = ReliabilityPolicy()

    # History: the gray node 'g' looked cheap, then its what-if jumped
    # 6x (the drift-triggered cache re-prime) — the gray signature.
    for policy in (lo, rel):
        policy.observe(ProbeObserved(0.0, outcome("g", 5.0, 10.0)))
        policy.observe(ProbeObserved(0.0, outcome("s", 8.0, 12.0)))
        policy.observe(ProbeObserved(2_000.0, outcome("g", 5.0, 60.0)))
        policy.observe(ProbeObserved(2_000.0, outcome("s", 8.0, 12.0)))

    # Now the gray window's cache is stale-cheap again.
    ctx = RankingContext(now=4_000.0)
    current = [outcome("g", 5.0, 10.0), outcome("s", 8.0, 12.0)]
    assert lo.rank(current, ctx).ranked[0].node_id == "g"
    ranking = rel.rank(current, ctx)
    assert ranking.ranked[0].node_id == "s"
    assert ranking.score_of("g") > ranking.score_of("s")


def test_reliability_gray_detector_ignores_population_pileups():
    """An honest population jump raises the raw what-if but not the
    per-capita figure — no gray mark, no penalty."""
    rel = ReliabilityPolicy()
    rel.observe(ProbeObserved(0.0, outcome("s", 8.0, 12.0, users=0)))
    # Three users piled on: what-if triples but per-capita is flat.
    rel.observe(ProbeObserved(2_000.0, outcome("s", 8.0, 48.0, users=3)))
    assert rel.suspicion("s", 2_000.0) == 0.0


# ----------------------------------------------------------------------
# Builder + system + live-runtime wiring
# ----------------------------------------------------------------------
def _two_client_system(builder_policy=None, **config_kwargs):
    config = SystemConfig(seed=3, **config_kwargs)
    builder = ScenarioBuilder(config)
    if builder_policy is not None:
        if isinstance(builder_policy, tuple):
            builder = builder.policy(builder_policy[0], **builder_policy[1])
        else:
            builder = builder.policy(builder_policy)
    system = (
        builder.node("V1", profile_by_name("V1"), point=GeoPoint(44.98, -93.26))
        .client("u1", EdgeClient, point=GeoPoint(44.97, -93.25))
        .client("u2", EdgeClient, point=GeoPoint(44.94, -93.18))
        .build()
    )
    return system


def test_builder_policy_by_name_with_params():
    system = _two_client_system(builder_policy=("ewma", {"alpha": 0.6}))
    policies = [system.clients[u].local_policy for u in ("u1", "u2")]
    assert all(isinstance(p, EwmaRttPolicy) for p in policies)
    assert all(p.alpha == 0.6 for p in policies)
    assert policies[0] is not policies[1]


def test_builder_policy_prototype_is_copied_per_client():
    prototype = ReliabilityPolicy(failure_weight=9.0)
    system = _two_client_system(builder_policy=prototype)
    policies = [system.clients[u].local_policy for u in ("u1", "u2")]
    assert all(isinstance(p, ReliabilityPolicy) for p in policies)
    assert prototype not in policies
    assert policies[0] is not policies[1]


def test_config_policy_spec_reaches_clients():
    system = _two_client_system(policy_spec="churn")
    assert all(
        isinstance(system.clients[u].local_policy, ChurnAwarePolicy)
        for u in ("u1", "u2")
    )


def test_config_qos_still_wraps_named_policies():
    system = _two_client_system(policy_spec="ewma", qos_latency_ms=90.0)
    policy = system.clients["u1"].local_policy
    assert isinstance(policy, QosGatedPolicy)


def test_per_client_reliability_seeds_differ():
    system = _two_client_system(policy_spec="reliability")
    seeds = {
        system.clients[u].local_policy.params()["seed"] for u in ("u1", "u2")
    }
    assert len(seeds) == 2 and None not in seeds


def test_live_client_accepts_policy():
    from repro.runtime.client_runtime import LiveClient

    client = LiveClient(
        "u1", GeoPoint(44.97, -93.25), "127.0.0.1", 1, policy="reliability"
    )
    assert isinstance(client.policy, ReliabilityPolicy)
    assert client.policy.params()["seed"] is not None
    client.policy = "ewma"
    assert isinstance(client.policy, EwmaRttPolicy)
