"""Tests for the fluent scenario-building API (repro.api)."""

import warnings

import pytest

from repro.api import EndpointSpec, ScenarioBuilder
from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.net.latency import NetworkTier
from repro.nodes.hardware import profile_by_name


def test_builder_wires_nodes_and_clients():
    scenario = (
        ScenarioBuilder(SystemConfig(top_n=2, seed=7))
        .node("V1", profile_by_name("V1"), point=GeoPoint(44.98, -93.26))
        .node("V2", profile_by_name("V2"), point=GeoPoint(44.95, -93.20))
        .client("alice", point=GeoPoint(44.97, -93.25))
        .client_endpoint("bob", point=GeoPoint(44.93, -93.18))
        .build_scenario()
    )
    system = scenario.system
    assert scenario.node_ids == ["V1", "V2"]
    assert scenario.user_ids == ["alice", "bob"]
    assert system.alive_node_count() == 2
    assert list(system.clients) == ["alice"]  # bob is endpoint-only
    assert system.topology.has_endpoint("bob")


def test_builder_default_spec_applies_at_point():
    system = (
        ScenarioBuilder(SystemConfig(seed=1))
        .default_node_spec(
            EndpointSpec(GeoPoint(0, 0), tier=NetworkTier.LAN, uplink_mbps=123.0)
        )
        .node("V1", profile_by_name("V1"), point=GeoPoint(44.98, -93.26))
        .build()
    )
    endpoint = system.topology.endpoint("V1")
    assert endpoint.point == GeoPoint(44.98, -93.26)
    assert endpoint.tier is NetworkTier.LAN
    assert endpoint.uplink_mbps == 123.0


def test_builder_explicit_spec_wins_over_default():
    spec = EndpointSpec(GeoPoint(44.90, -93.10), isp="isp-x")
    system = (
        ScenarioBuilder(SystemConfig(seed=1))
        .default_node_spec(EndpointSpec(GeoPoint(0, 0), isp="isp-default"))
        .node("V1", profile_by_name("V1"), spec)
        .build()
    )
    assert system.topology.endpoint("V1").isp == "isp-x"


def test_builder_rejects_spec_and_point_together():
    builder = ScenarioBuilder(SystemConfig(seed=1))
    with pytest.raises(ValueError, match="not both"):
        builder.node(
            "V1",
            profile_by_name("V1"),
            EndpointSpec(GeoPoint(0, 0)),
            point=GeoPoint(1, 1),
        )


def test_builder_rejects_missing_position():
    builder = ScenarioBuilder(SystemConfig(seed=1))
    with pytest.raises(ValueError, match="needs a spec"):
        builder.node("V1", profile_by_name("V1"))


def test_builder_client_factory_and_start_flag():
    calls = []

    def factory(system, user_id):
        client = EdgeClient(system, user_id)
        calls.append(user_id)
        return client

    system = (
        ScenarioBuilder(SystemConfig(seed=1))
        .node("V1", profile_by_name("V1"), point=GeoPoint(44.98, -93.26))
        .client("alice", factory, point=GeoPoint(44.97, -93.25), start=False)
        .build()
    )
    assert calls == ["alice"]
    assert "alice" in system.clients
    # start=False: no probing scheduled yet, so the client is unattached
    system.run_for(3_000.0)
    assert system.clients["alice"].current_edge is None


def test_builder_run_matches_manual_construction():
    """The builder is wiring sugar: same declarations, same trajectory."""

    def manual():
        system = EdgeSystem(SystemConfig(seed=77, top_n=2))
        system.add_node(
            "V1", profile_by_name("V1"), EndpointSpec(GeoPoint(44.98, -93.26))
        )
        system.add_node(
            "V2", profile_by_name("V2"), EndpointSpec(GeoPoint(44.95, -93.20))
        )
        system.add_client_endpoint("alice", EndpointSpec(GeoPoint(44.97, -93.25)))
        system.add_client(EdgeClient(system, "alice"))
        system.run_for(10_000.0)
        return system.clients["alice"].stats.latencies_ms

    def built():
        system = (
            ScenarioBuilder(SystemConfig(seed=77, top_n=2))
            .node("V1", profile_by_name("V1"), point=GeoPoint(44.98, -93.26))
            .node("V2", profile_by_name("V2"), point=GeoPoint(44.95, -93.20))
            .client("alice", point=GeoPoint(44.97, -93.25))
            .build()
        )
        system.run_for(10_000.0)
        return system.clients["alice"].stats.latencies_ms

    assert manual() == built()


def test_deprecated_wrappers_still_work_and_warn():
    system = EdgeSystem(SystemConfig(seed=1))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
        system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    assert [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert system.topology.has_endpoint("V1")
    assert system.topology.has_endpoint("alice")


# ----------------------------------------------------------------------
# Metro-scale declarations
# ----------------------------------------------------------------------
def test_builder_metro_builds_a_runnable_simulation():
    from repro.api import MetroSpec
    from repro.metro.runner import MetroSimulation

    sim = (
        ScenarioBuilder(SystemConfig(seed=3))
        .metro(nodes=100, users=300, region_km=10.0)
        .build_metro()
    )
    assert isinstance(sim, MetroSimulation)
    assert isinstance(sim.spec, MetroSpec)
    report = sim.run(2.0)
    assert report.frames_done > 0


def test_builder_metro_accepts_full_spec():
    from repro.api import MetroSpec, ShardSpec

    spec = MetroSpec(nodes=50, users=100, shard=ShardSpec(count=2))
    sim = ScenarioBuilder(SystemConfig(seed=3)).metro(spec=spec).build_metro()
    assert sim.spec is spec


def test_builder_metro_rejects_spec_and_shape_together():
    from repro.api import MetroSpec

    with pytest.raises(ValueError, match="not both"):
        ScenarioBuilder(SystemConfig()).metro(
            nodes=10, spec=MetroSpec(nodes=1, users=1)
        )


def test_builder_metro_requires_shape():
    with pytest.raises(ValueError, match="nodes"):
        ScenarioBuilder(SystemConfig()).metro()


def test_builder_shard_overrides_compose_with_metro():
    sim = (
        ScenarioBuilder(SystemConfig(seed=3))
        .metro(nodes=100, users=300, shards=1)
        .shard(by="geohash", count=2, workers=2, boundary_epoch_ms=500.0)
        .build_metro()
    )
    assert sim.spec.shard.count == 2
    assert sim.spec.shard.workers == 2
    assert sim.spec.shard.boundary_epoch_ms == 500.0


def test_builder_build_metro_requires_metro_call():
    with pytest.raises(ValueError, match="metro"):
        ScenarioBuilder(SystemConfig()).build_metro()


def test_builder_observe_trace_flows_into_metro():
    sim = (
        ScenarioBuilder(SystemConfig(seed=3))
        .observe(trace=True)
        .metro(nodes=50, users=100)
        .build_metro()
    )
    report = sim.run(1.0)
    assert len(report.trace_events) > 0
    types = {e.type for e in report.trace_events}
    assert "join_accept" in types and "frame_done" in types
