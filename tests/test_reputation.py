"""Tests for the reputation-weighted global selection extension."""

import pytest

from repro.core.config import SystemConfig
from repro.core.manager import CentralManager
from repro.core.messages import DiscoveryQuery
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.core.policies.reputation import (
    ReputationTracker,
    reputation_sort_key,
)
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name


# ----------------------------------------------------------------------
# Tracker semantics
# ----------------------------------------------------------------------
def test_unknown_identity_scores_neutral_prior():
    tracker = ReputationTracker()
    assert tracker.reliability("ghost", 0.0) == pytest.approx(0.5)


def test_uptime_earns_trust():
    tracker = ReputationTracker(target_session_ms=10_000.0)
    tracker.record_online("steady", 0.0)
    assert tracker.reliability("steady", 100_000.0) > 0.8


def test_departures_cost_trust():
    tracker = ReputationTracker(target_session_ms=10_000.0)
    for start in range(0, 50_000, 10_000):
        tracker.record_online("flaky", float(start))
        tracker.record_departure("flaky", float(start) + 500.0)  # 0.5 s sessions
    assert tracker.reliability("flaky", 50_000.0) < 0.25


def test_reputation_survives_rejoin():
    tracker = ReputationTracker(target_session_ms=10_000.0)
    tracker.record_online("x", 0.0)
    tracker.record_departure("x", 100.0)
    before = tracker.reliability("x", 200.0)
    tracker.record_online("x", 200.0)  # same identity returns
    assert tracker.reliability("x", 300.0) == pytest.approx(before, abs=0.01)


def test_departure_without_session_is_ignored():
    tracker = ReputationTracker()
    tracker.record_departure("never-seen", 100.0)
    assert tracker.reliability("never-seen", 200.0) == pytest.approx(0.5)


def test_double_online_does_not_double_count_sessions():
    tracker = ReputationTracker()
    tracker.record_online("x", 0.0)
    tracker.record_online("x", 10.0)
    assert tracker._records["x"].sessions == 1


def test_tracker_validation():
    with pytest.raises(ValueError):
        ReputationTracker(target_session_ms=0.0)


def test_known_identities():
    tracker = ReputationTracker()
    tracker.record_online("b", 0.0)
    tracker.record_online("a", 0.0)
    assert tracker.known_identities() == ("a", "b")


# ----------------------------------------------------------------------
# Manager wiring + sort key
# ----------------------------------------------------------------------
def build_system_with_reputation(seed=71):
    config = SystemConfig(seed=seed, top_n=2)
    system = EdgeSystem(config)
    tracker = ReputationTracker(target_session_ms=5_000.0)
    policy = GlobalSelectionPolicy(
        sort_key_factory=reputation_sort_key(tracker, lambda: system.sim.now)
    )
    system.manager = CentralManager(system, policy, reputation=tracker)
    return system, tracker


def test_manager_feeds_tracker_on_heartbeat_and_departure():
    system, tracker = build_system_with_reputation()
    system.spawn_node("v", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    system.run_for(2_000.0)
    assert "v" in tracker.known_identities()
    assert tracker._records["v"].online
    system.fail_node("v")
    system.run_for(system.config.heartbeat_timeout_ms + 2_000.0)
    system.manager.alive_statuses()  # pruning records the departure
    assert not tracker._records["v"].online
    assert tracker._records["v"].departures == 1


def test_flaky_node_loses_candidate_rank():
    system, tracker = build_system_with_reputation()
    # Two identical nodes; 'flaky' has a record of repeated short sessions.
    system.spawn_node("flaky", profile_by_name("V1"), GeoPoint(44.96, -93.24))
    system.spawn_node("proven", profile_by_name("V1"), GeoPoint(44.96, -93.24))
    for start in range(0, 40_000, 10_000):
        tracker.record_online("flaky", float(start))
        tracker.record_departure("flaky", float(start) + 300.0)
    tracker.record_online("proven", 0.0)
    system.run_for(2_000.0)  # heartbeats land (re-marking both online)
    query = DiscoveryQuery("u1", 44.97, -93.25, top_n=2)
    result = system.manager.discover(query)
    assert list(result.node_ids)[0] == "proven"


def test_without_history_order_falls_back_to_availability():
    system, tracker = build_system_with_reputation()
    system.spawn_node("big", profile_by_name("V1"), GeoPoint(44.96, -93.24))
    system.spawn_node("small", profile_by_name("V5"), GeoPoint(44.96, -93.24))
    system.run_for(2_000.0)
    query = DiscoveryQuery("u1", 44.97, -93.25, top_n=2)
    result = system.manager.discover(query)
    assert list(result.node_ids)[0] == "big"
