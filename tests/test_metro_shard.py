"""Sharded metro runs: partitioning, bit-identity, handoffs, workers."""

from collections import Counter

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.metro.kernel import MetroKernel
from repro.metro.runner import MetroSimulation
from repro.metro.shard import plan_shards
from repro.metro.spec import MetroSpec, ShardSpec, build_population
from repro.obs.tracer import Tracer

SPEC = MetroSpec(nodes=600, users=2_000, region_km=20.0, fps=10.0)


def config_for_tests(**overrides):
    kwargs = {"seed": 5, "min_dwell_ms": 1_000.0}
    kwargs.update(overrides)
    return SystemConfig(**kwargs)


def event_multiset(events):
    return Counter(tuple(sorted(e.to_dict().items())) for e in events)


# ----------------------------------------------------------------------
# Partition planning
# ----------------------------------------------------------------------
def test_plan_single_shard_owns_everything():
    population = build_population(SPEC, seed=5)
    plan = plan_shards(SPEC, population)
    assert plan.count == 1
    assert plan.node_gids[0].size == SPEC.nodes
    assert plan.user_gids[0].size == SPEC.users
    assert plan.ghost_gids[0].size == 0
    assert plan.export_gids[0].size == 0


def test_plan_partitions_are_disjoint_and_complete():
    spec = SPEC.with_shard(ShardSpec(count=3))
    population = build_population(spec, seed=5)
    plan = plan_shards(spec, population)
    assert plan.count == 3
    all_nodes = np.concatenate(plan.node_gids)
    all_users = np.concatenate(plan.user_gids)
    assert sorted(all_nodes.tolist()) == list(range(spec.nodes))
    assert sorted(all_users.tolist()) == list(range(spec.users))
    for g in range(3):
        # A shard never ghosts a node it owns.
        assert not set(plan.ghost_gids[g]) & set(plan.node_gids[g])
        # Every ghost is exported by its owning shard.
        for gid, owner in zip(plan.ghost_gids[g], plan.ghost_owners[g]):
            assert gid in plan.export_gids[owner]
            assert plan.node_shard[gid] == owner


def test_plan_is_deterministic():
    spec = SPEC.with_shard(ShardSpec(count=4))
    population = build_population(spec, seed=5)
    a = plan_shards(spec, population)
    b = plan_shards(spec, population)
    for g in range(4):
        assert np.array_equal(a.node_gids[g], b.node_gids[g])
        assert np.array_equal(a.ghost_gids[g], b.ghost_gids[g])


# ----------------------------------------------------------------------
# shards=1 == the unsharded kernel, event for event
# ----------------------------------------------------------------------
def test_single_shard_is_bit_identical_to_unsharded_kernel():
    config = config_for_tests()
    sim = MetroSimulation(SPEC, config, capture_trace=True)
    sim.schedule_node_fail(3, at_ms=2_000.0)
    sharded = sim.run(6.0)

    population = build_population(SPEC, config.seed)
    tracer = Tracer(enabled=True, capacity=1 << 20)
    kernel = MetroKernel(config, SPEC, population, shard_id="shard0",
                         tracer=tracer)
    kernel.schedule_node_fail(3, at_ms=2_000.0)
    direct = kernel.run(6.0)

    # Ordered equality — not just the multiset: same events, same order.
    assert [e.to_dict() for e in sharded.trace_events] == [
        e.to_dict() for e in tracer.events()
    ]
    assert sharded.frames_done == direct.frames_done
    assert sharded.latency_sum_ms == direct.latency_sum_ms
    assert sharded.latency_max_ms == direct.latency_max_ms
    assert sharded.covered_failovers == direct.covered_failovers


# ----------------------------------------------------------------------
# Sharded determinism + the boundary channel
# ----------------------------------------------------------------------
def test_sharded_run_is_deterministic():
    spec = SPEC.with_shard(ShardSpec(count=2))
    runs = [
        MetroSimulation(spec, config_for_tests(), capture_trace=True).run(6.0)
        for _ in range(2)
    ]
    assert runs[0].frames_done == runs[1].frames_done
    assert runs[0].switches == runs[1].switches
    assert runs[0].handoffs == runs[1].handoffs
    assert runs[0].latency_sum_ms == runs[1].latency_sum_ms
    assert event_multiset(runs[0].trace_events) == event_multiset(
        runs[1].trace_events
    )


def test_boundary_handoffs_migrate_users_between_shards():
    """Regression: ghost selections must actually move users across the
    boundary channel — and conserve them."""
    spec = MetroSpec(
        nodes=600, users=2_000, region_km=20.0, fps=10.0,
        shard=ShardSpec(count=2),
    )
    config = config_for_tests(probing_period_ms=2_000.0)
    report = MetroSimulation(spec, config, capture_trace=True).run(10.0)
    assert report.handoffs > 0
    handoff_events = [
        e for e in report.trace_events if e.type == "shard_handoff"
    ]
    assert len(handoff_events) == report.handoffs
    for event in handoff_events:
        assert event.from_shard != event.to_shard
    # Conservation: every handoff out arrives somewhere.
    assert sum(r.handoffs_out for r in report.shard_reports) == sum(
        r.handoffs_in for r in report.shard_reports
    )
    # No users were lost to the channel: all frames accounted for.
    assert report.frames_done + report.frames_lost == 2_000 * 10 * 10


def test_failure_under_sharding_is_conservative_and_deterministic():
    """A node death routes to the owning shard; the run keeps every
    frame accounted for and replays identically."""
    spec = SPEC.with_shard(ShardSpec(count=2))
    config = config_for_tests()
    population = build_population(spec, config.seed)
    plan = plan_shards(spec, population)
    victim = int(plan.node_gids[0][0])

    def run_with_failure():
        sim = MetroSimulation(spec, config, capture_trace=True)
        sim.schedule_node_fail(victim, at_ms=2_000.0)
        return sim.run(6.0)

    first = run_with_failure()
    assert first.covered_failovers + first.uncovered_failures > 0
    assert first.frames_done + first.frames_lost == 2_000 * 10 * 6
    fails = [e for e in first.trace_events if e.type == "node_fail"]
    assert [e.node_id for e in fails] == [f"n{victim}"]

    second = run_with_failure()
    assert second.frames_done == first.frames_done
    assert second.covered_failovers == first.covered_failovers
    assert event_multiset(second.trace_events) == event_multiset(
        first.trace_events
    )


# ----------------------------------------------------------------------
# Worker processes are a pure wall-clock optimization
# ----------------------------------------------------------------------
def test_forked_workers_match_serial_results():
    pytest.importorskip("multiprocessing")
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    spec = SPEC.with_shard(ShardSpec(count=2, workers=1))
    serial = MetroSimulation(spec, config_for_tests(), capture_trace=True).run(5.0)
    spec_workers = SPEC.with_shard(ShardSpec(count=2, workers=2))
    forked = MetroSimulation(
        spec_workers, config_for_tests(), capture_trace=True
    ).run(5.0)
    assert forked.frames_done == serial.frames_done
    assert forked.switches == serial.switches
    assert forked.handoffs == serial.handoffs
    assert forked.latency_sum_ms == serial.latency_sum_ms
    assert event_multiset(forked.trace_events) == event_multiset(
        serial.trace_events
    )


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
def test_config_alone_can_turn_on_sharding():
    config = config_for_tests(metro_shards=2)
    sim = MetroSimulation(SPEC, config)
    assert sim.spec.shard.count == 2


def test_explicit_shard_spec_wins_over_config():
    config = config_for_tests(metro_shards=4)
    sim = MetroSimulation(SPEC.with_shard(ShardSpec(count=2)), config)
    assert sim.spec.shard.count == 2


def test_epoch_must_align_with_tick():
    spec = SPEC.with_shard(ShardSpec(count=2, boundary_epoch_ms=300.0))
    with pytest.raises(ValueError, match="whole multiple"):
        MetroSimulation(spec, config_for_tests())
