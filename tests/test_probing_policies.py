"""Unit and property tests for probe outcomes (LO/GO) and local policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.probing import ProbeOutcome
from repro.core.policies.local_policies import (
    policy_for,
    sort_by_global_overhead,
    sort_by_local_overhead,
    sort_with_qos,
)


def outcome(node_id="n", d_prop=10.0, d_proc=30.0, n=0, current=30.0, seq=0):
    return ProbeOutcome(
        node_id=node_id,
        d_prop_ms=d_prop,
        d_proc_ms=d_proc,
        seq_num=seq,
        attached_users=n,
        current_proc_ms=current,
    )


# ----------------------------------------------------------------------
# LO / GO arithmetic (the §IV-D formulas)
# ----------------------------------------------------------------------
def test_local_overhead_is_prop_plus_proc():
    assert outcome(d_prop=12.0, d_proc=30.0).local_overhead_ms == 42.0


def test_global_overhead_formula():
    # GO = n * (what_if - current) + LO
    o = outcome(d_prop=10.0, d_proc=40.0, n=3, current=30.0)
    assert o.global_overhead_ms == pytest.approx(3 * 10.0 + 50.0)


def test_degradation_clamped_at_zero():
    o = outcome(d_proc=25.0, current=30.0, n=5)
    assert o.degradation_ms == 0.0
    assert o.global_overhead_ms == o.local_overhead_ms


def test_idle_node_go_equals_lo():
    o = outcome(n=0, d_proc=45.0, current=45.0)
    assert o.global_overhead_ms == o.local_overhead_ms


def test_outcome_validation():
    with pytest.raises(ValueError):
        outcome(d_prop=-1.0)
    with pytest.raises(ValueError):
        outcome(n=-1)


@given(
    st.floats(min_value=0, max_value=1_000),
    st.floats(min_value=0, max_value=1_000),
    st.integers(min_value=0, max_value=50),
    st.floats(min_value=0, max_value=1_000),
)
def test_property_go_at_least_lo(d_prop, d_proc, n, current):
    o = outcome(d_prop=d_prop, d_proc=d_proc, n=n, current=current)
    assert o.global_overhead_ms >= o.local_overhead_ms - 1e-9


# ----------------------------------------------------------------------
# Local selection policies
# ----------------------------------------------------------------------
def test_lo_policy_picks_lowest_latency():
    fast = outcome("fast", d_prop=5.0, d_proc=20.0)
    slow = outcome("slow", d_prop=20.0, d_proc=50.0)
    assert sort_by_local_overhead([slow, fast])[0] is fast


def test_lo_ignores_existing_users():
    crowded = outcome("crowded", d_prop=5.0, d_proc=30.0, n=10, current=20.0)
    idle = outcome("idle", d_prop=10.0, d_proc=30.0, n=0)
    assert sort_by_local_overhead([idle, crowded])[0] is crowded


def test_go_policy_penalizes_inflicted_degradation():
    # identical LO, but joining 'crowded' would slow 10 existing users
    crowded = outcome("crowded", d_prop=5.0, d_proc=30.0, n=10, current=20.0)
    idle = outcome("idle", d_prop=5.0, d_proc=30.0, n=0)
    assert sort_by_global_overhead([crowded, idle])[0] is idle


def test_policies_deterministic_tiebreak_by_node_id():
    a = outcome("a")
    b = outcome("b")
    assert [o.node_id for o in sort_by_local_overhead([b, a])] == ["a", "b"]


def test_policies_do_not_mutate_input():
    items = [outcome("b"), outcome("a")]
    sort_by_local_overhead(items)
    assert [o.node_id for o in items] == ["b", "a"]


def test_empty_input_gives_empty_ranking():
    assert sort_by_local_overhead([]) == []
    assert sort_by_global_overhead([]) == []


def test_qos_filters_violating_candidates():
    ok = outcome("ok", d_prop=10.0, d_proc=30.0)  # LO 40
    bad = outcome("bad", d_prop=100.0, d_proc=100.0)  # LO 200
    policy = sort_with_qos(100.0)
    ranked = policy([bad, ok])
    assert [o.node_id for o in ranked] == ["ok"]


def test_qos_can_reject_everyone():
    bad = outcome("bad", d_prop=100.0, d_proc=100.0)
    assert sort_with_qos(50.0)([bad]) == []


def test_qos_validates_bound():
    with pytest.raises(ValueError):
        sort_with_qos(0.0)


def test_qos_base_policy_override():
    crowded = outcome("crowded", d_prop=5.0, d_proc=30.0, n=10, current=20.0)
    idle = outcome("idle", d_prop=5.0, d_proc=30.0, n=0)
    by_lo = sort_with_qos(1_000.0, base_policy=sort_by_local_overhead)
    assert by_lo([crowded, idle])[0].node_id == "crowded"


def test_policy_for_resolves_config_flags():
    crowded = outcome("crowded", d_prop=5.0, d_proc=30.0, n=10, current=20.0)
    idle = outcome("idle", d_prop=5.0, d_proc=30.0, n=0)
    assert policy_for(True)([crowded, idle])[0].node_id == "idle"
    assert policy_for(False)([crowded, idle])[0].node_id == "crowded"
    qos = policy_for(True, qos_latency_ms=10.0)
    assert qos([crowded, idle]) == []


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=500),
            st.floats(min_value=0, max_value=500),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_rankings_are_permutations_and_sorted(raw):
    outcomes = [
        outcome(f"n{i}", d_prop=p, d_proc=q, n=n, current=q * 0.8)
        for i, (p, q, n) in enumerate(raw)
    ]
    for policy, key in (
        (sort_by_local_overhead, lambda o: o.local_overhead_ms),
        (sort_by_global_overhead, lambda o: o.global_overhead_ms),
    ):
        ranked = policy(outcomes)
        assert sorted(o.node_id for o in ranked) == sorted(o.node_id for o in outcomes)
        values = [key(o) for o in ranked]
        assert values == sorted(values)
