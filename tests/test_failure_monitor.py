"""Unit tests for the failure monitor's backup bookkeeping."""

from repro.core.failure_monitor import FailureMonitor


def test_starts_empty():
    monitor = FailureMonitor()
    assert len(monitor) == 0
    assert monitor.next_backup() is None


def test_update_replaces_list():
    monitor = FailureMonitor()
    monitor.update_backups(["a", "b"])
    monitor.update_backups(["c"])
    assert monitor.backups == ["c"]


def test_next_backup_pops_best_first():
    monitor = FailureMonitor()
    monitor.update_backups(["second-best", "third-best"])
    assert monitor.next_backup() == "second-best"
    assert monitor.next_backup() == "third-best"
    assert monitor.next_backup() is None


def test_remove_drops_dead_node():
    monitor = FailureMonitor()
    monitor.update_backups(["a", "b", "c"])
    monitor.remove("b")
    assert monitor.backups == ["a", "c"]


def test_remove_missing_is_noop():
    monitor = FailureMonitor()
    monitor.update_backups(["a"])
    monitor.remove("zzz")
    assert monitor.backups == ["a"]


def test_update_copies_input():
    monitor = FailureMonitor()
    source = ["a", "b"]
    monitor.update_backups(source)
    source.append("c")
    assert monitor.backups == ["a", "b"]


def test_counters():
    monitor = FailureMonitor()
    monitor.note_covered()
    monitor.note_covered()
    monitor.note_uncovered()
    assert monitor.failovers_attempted == 3
    assert monitor.failovers_covered == 2
    assert monitor.failovers_uncovered == 1
