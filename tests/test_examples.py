"""The examples must actually run — they are the documentation."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    load_example("quickstart.py").main()
    out = capsys.readouterr().out
    assert "alice" in out and "bob" in out
    assert "mean latency" in out


def test_multi_application_runs(capsys):
    load_example("multi_application.py").main()
    out = capsys.readouterr().out
    assert "ar-assistance" in out
    assert "ocr-scanner" in out
    assert "shared queue" in out


def test_churn_resilience_runs(capsys):
    load_example("churn_resilience.py").main()
    out = capsys.readouterr().out
    assert "TopN=1" in out and "TopN=3" in out
    assert "uncovered failures" in out


def test_live_cluster_runs(capsys):
    import asyncio

    module = load_example("live_cluster.py")
    asyncio.run(module.main())
    out = capsys.readouterr().out
    assert "Manager listening" in out
    assert "Killing" in out


def test_metro_scale_runs(capsys):
    load_example("metro_scale.py").main()
    out = capsys.readouterr().out
    assert "5000 nodes, 20000 users, 2 shards" in out
    assert "covered failovers" in out
    assert "shard handoffs" in out


@pytest.mark.slow
def test_selection_strategies_runs(capsys):
    load_example("selection_strategies.py").main()
    out = capsys.readouterr().out
    assert "client_centric" in out
    assert "latency reduction" in out


def test_ar_cognitive_assistance_runs(capsys):
    load_example("ar_cognitive_assistance.py").main()
    out = capsys.readouterr().out
    assert "Users per node" in out
    assert "latency distribution" in out
