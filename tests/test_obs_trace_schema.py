"""Golden-schema tests: the simulator and the live loopback runtime
must tell the same story in the same event language.

One seeded sim scenario and one loopback live scenario each run the
full lifecycle — discovery, probing, join, frame serving, a node
failure, a covered failover — and both traces must (a) contain every
golden lifecycle event type, (b) satisfy the causal ordering rules
(join before serve, failover only after failure, answers only after
questions), and (c) reconcile their phase spans against the recorded
frame latencies."""

import pytest

from repro.obs import GOLDEN_LIFECYCLE_TYPES, TraceAnalyzer, event_from_dict, load_trace, validate_event_order
from repro.obs.scenarios import run_live_trace_scenario_sync, run_sim_trace_scenario


@pytest.fixture(scope="module")
def sim_events():
    return run_sim_trace_scenario(seed=7, duration_ms=12_000.0)


@pytest.fixture(scope="module")
def live_events():
    return run_live_trace_scenario_sync(frames=6)


# ----------------------------------------------------------------------
# Golden schema: both backends emit the full lifecycle vocabulary
# ----------------------------------------------------------------------
def test_sim_trace_covers_golden_types(sim_events):
    observed = {e.type for e in sim_events}
    assert GOLDEN_LIFECYCLE_TYPES <= observed


def test_live_trace_covers_golden_types(live_events):
    observed = {e.type for e in live_events}
    assert GOLDEN_LIFECYCLE_TYPES <= observed


def test_backends_share_one_schema(sim_events, live_events):
    """Any type the live runtime emits, the sim vocabulary knows (and
    vice versa for everything non-timing-dependent): a JSONL line from
    either backend round-trips through the same registry."""
    for event in [*sim_events, *live_events]:
        wire = event.to_dict()
        assert event_from_dict(wire).to_dict() == wire


# ----------------------------------------------------------------------
# Ordering rules
# ----------------------------------------------------------------------
def test_sim_trace_event_order(sim_events):
    assert validate_event_order(sim_events) == []


def test_live_trace_event_order(live_events):
    assert validate_event_order(live_events) == []


# ----------------------------------------------------------------------
# Phase reconciliation: rtt + queue + process == latency
# ----------------------------------------------------------------------
def test_sim_phases_reconcile_exactly(sim_events):
    analyzer = TraceAnalyzer(sim_events)
    assert analyzer.reconciliation_errors(tolerance_ms=1e-6) == []
    total = analyzer.total_breakdown()
    assert total.frames > 0
    assert total.phase_sum_ms == pytest.approx(total.latency_ms)


def test_live_phases_reconcile_exactly(live_events):
    analyzer = TraceAnalyzer(live_events)
    assert analyzer.reconciliation_errors(tolerance_ms=1e-6) == []
    total = analyzer.total_breakdown()
    assert total.frames > 0
    assert total.phase_sum_ms == pytest.approx(total.latency_ms)


# ----------------------------------------------------------------------
# Failover story
# ----------------------------------------------------------------------
def test_sim_failover_recovery_measured(sim_events):
    gaps = TraceAnalyzer(sim_events).failover_gaps()
    assert gaps, "the seeded sim scenario must produce at least one recovery"
    assert all(gap >= 0.0 for _, gap in gaps)


def test_live_failover_recovery_measured(live_events):
    gaps = TraceAnalyzer(live_events).failover_gaps()
    assert gaps, "the live scenario must produce at least one recovery"
    assert all(gap >= 0.0 for _, gap in gaps)


# ----------------------------------------------------------------------
# JSONL sink parity
# ----------------------------------------------------------------------
def test_sim_jsonl_sink_matches_ring(tmp_path):
    path = tmp_path / "sim.jsonl"
    events = run_sim_trace_scenario(seed=11, sink_path=path, duration_ms=4_000.0)
    loaded = load_trace(path)
    assert loaded == [e.to_dict() for e in events]
    assert TraceAnalyzer(loaded).reconciliation_errors() == []


def test_live_jsonl_sink_matches_ring(tmp_path):
    path = tmp_path / "live.jsonl"
    events = run_live_trace_scenario_sync(sink_path=path, frames=4)
    loaded = load_trace(path)
    assert loaded == [e.to_dict() for e in events]
    assert validate_event_order(loaded) == []
