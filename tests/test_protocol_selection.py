"""Property and edge-case tests for the sans-IO selection machine.

These exercise :class:`repro.protocol.selection.SelectionMachine`
directly — no simulator, no sockets. Because the sim and live backends
are thin drivers over this exact class, every invariant proved here
holds on both backends by construction.
"""

from __future__ import annotations

from typing import List, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies.local_policies import sort_by_global_overhead
from repro.core.probing import ProbeOutcome
from repro.protocol.effects import (
    Attached,
    EmitTrace,
    ProbeCandidates,
    SendDiscovery,
    SendFailoverJoin,
    SendJoin,
    UpdateBackups,
)
from repro.protocol.events import (
    CandidatesReceived,
    EdgeFailed,
    FailoverResult,
    JoinResult,
    ProbesCompleted,
    RoundStarted,
)
from repro.protocol.selection import SelectionConfig, SelectionMachine

# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
node_ids = st.lists(
    st.sampled_from([f"n{i}" for i in range(8)]), min_size=0, max_size=6, unique=True
)
delays = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)


def outcome_for(node_id: str, d_prop: float, d_proc: float, users: int) -> ProbeOutcome:
    return ProbeOutcome(
        node_id=node_id,
        d_prop_ms=d_prop,
        d_proc_ms=d_proc,
        seq_num=0,
        attached_users=users,
        current_proc_ms=d_proc * 0.8,
        stay_ms=d_proc,
    )


@st.composite
def probe_rounds(draw):
    """A candidate list plus probe outcomes for a (possibly strict)
    subset of it — probes to dead/unreachable candidates return nothing."""
    candidates = draw(node_ids)
    answered = [c for c in candidates if draw(st.booleans())]
    outcomes = [
        outcome_for(
            c,
            draw(delays),
            draw(delays),
            draw(st.integers(min_value=0, max_value=5)),
        )
        for c in answered
    ]
    return candidates, outcomes


def fresh_machine(top_n: int = 3) -> SelectionMachine:
    return SelectionMachine(
        "u-prop",
        sort_by_global_overhead,
        SelectionConfig(top_n=top_n, min_dwell_ms=0.0),
    )


def run_round(
    machine: SelectionMachine, candidates: List[str], outcomes: List[ProbeOutcome]
) -> List:
    """Drive one selection round up to (and including) ranking."""
    effects = machine.handle(RoundStarted(now=0.0))
    assert any(isinstance(e, SendDiscovery) for e in effects)
    effects = machine.handle(
        CandidatesReceived(now=1.0, node_ids=tuple(candidates))
    )
    probe_req: Optional[ProbeCandidates] = next(
        (e for e in effects if isinstance(e, ProbeCandidates)), None
    )
    if probe_req is None:
        return []  # empty candidate list: round already concluded
    # Only outcomes for nodes the machine asked to probe may answer.
    answered = [o for o in outcomes if o.node_id in probe_req.node_ids]
    return machine.handle(ProbesCompleted(now=2.0, outcomes=tuple(answered)))


# ----------------------------------------------------------------------
# Satellite 3a: a join is only ever sent to a probed node.
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(probe_rounds())
def test_send_join_targets_only_probed_nodes(round_data):
    candidates, outcomes = round_data
    machine = fresh_machine()
    effects = run_round(machine, candidates, outcomes)
    probed = {o.node_id for o in outcomes}
    for effect in effects:
        if isinstance(effect, SendJoin):
            assert effect.outcome.node_id in probed
            # ...and the join carries that node's probe verbatim, so the
            # seqNum echoed in Join() is the one learned from the probe.
            assert effect.outcome in outcomes


@settings(max_examples=100, deadline=None)
@given(probe_rounds())
def test_no_probe_answers_means_no_join(round_data):
    candidates, _ = round_data
    machine = fresh_machine()
    effects = run_round(machine, candidates, [])
    assert not any(isinstance(e, SendJoin) for e in effects)
    assert machine.current_edge is None
    assert not machine.round_in_progress


# ----------------------------------------------------------------------
# Satellite 3b: backups are exactly the ranked non-chosen candidates.
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(probe_rounds(), st.integers(min_value=1, max_value=5))
def test_backups_are_ranked_non_chosen(round_data, top_n):
    candidates, outcomes = round_data
    machine = fresh_machine(top_n=top_n)
    effects = run_round(machine, candidates, outcomes)
    join = next((e for e in effects if isinstance(e, SendJoin)), None)
    if join is None:
        return  # nothing rankable this round; nothing to check
    chosen = join.outcome.node_id
    effects = machine.handle(
        JoinResult(now=3.0, node_id=chosen, accepted=True, attempted_at=2.5)
    )
    ranked = sort_by_global_overhead(outcomes)
    expected = [o.node_id for o in ranked if o.node_id != chosen][: top_n - 1]
    assert machine.monitor.backups == expected
    update = next(e for e in effects if isinstance(e, UpdateBackups))
    assert [o.node_id for o in update.outcomes] == expected


# ----------------------------------------------------------------------
# Satellite 4: edge dies between join-accept and the next driver step.
# ----------------------------------------------------------------------
def test_failover_covered_when_edge_dies_right_after_join_accept():
    """The join-accept transition must commit the edge AND adopt the
    backups atomically: an ``EdgeFailed`` arriving as the *very next*
    event already finds the backup list populated, so the failure is
    covered. One protocol test — both backends execute this machine.
    """
    machine = fresh_machine(top_n=3)
    outcomes = [
        outcome_for("fast", 1.0, 10.0, 0),
        outcome_for("mid", 5.0, 20.0, 1),
        outcome_for("slow", 9.0, 40.0, 2),
    ]
    effects = run_round(machine, ["fast", "mid", "slow"], outcomes)
    join = next(e for e in effects if isinstance(e, SendJoin))
    assert join.outcome.node_id == "fast"
    effects = machine.handle(
        JoinResult(now=3.0, node_id="fast", accepted=True, attempted_at=2.5)
    )
    # Atomicity: backups were adopted in the SAME handle() call that
    # attached us — no driver step runs in between.
    assert machine.current_edge == "fast"
    assert machine.monitor.backups == ["mid", "slow"]

    # The edge dies immediately after accepting the join.
    effects = machine.handle(EdgeFailed(now=4.0, node_id="fast"))
    assert [type(e).__name__ for e in effects] == ["SendFailoverJoin"]
    assert effects[0].node_id == "mid"

    effects = machine.handle(
        FailoverResult(now=5.0, node_id="mid", accepted=True, rtt_ms=5.0)
    )
    attached = next(e for e in effects if isinstance(e, Attached))
    assert attached.via == "failover"
    assert machine.current_edge == "mid"
    assert machine.monitor.failovers_covered == 1
    assert machine.monitor.failovers_uncovered == 0
    trace_names = [
        type(e.event).__name__ for e in effects if isinstance(e, EmitTrace)
    ]
    assert "CoveredFailover" in trace_names


def test_failover_walks_past_dead_backup():
    machine = fresh_machine(top_n=3)
    outcomes = [
        outcome_for("a", 1.0, 10.0, 0),
        outcome_for("b", 2.0, 20.0, 0),
        outcome_for("c", 3.0, 30.0, 0),
    ]
    run_round(machine, ["a", "b", "c"], outcomes)
    machine.handle(JoinResult(now=3.0, node_id="a", accepted=True, attempted_at=2.5))
    effects = machine.handle(EdgeFailed(now=4.0, node_id="a"))
    assert effects[0].node_id == "b"
    # First backup is dead too: the machine walks to the next one.
    effects = machine.handle(
        FailoverResult(now=5.0, node_id="b", accepted=False)
    )
    assert isinstance(effects[0], SendFailoverJoin)
    assert effects[0].node_id == "c"


def test_uncovered_failure_triggers_rediscovery():
    machine = fresh_machine(top_n=1)  # top_n=1 -> no backups at all
    outcomes = [outcome_for("only", 1.0, 10.0, 0)]
    run_round(machine, ["only"], outcomes)
    machine.handle(
        JoinResult(now=3.0, node_id="only", accepted=True, attempted_at=2.5)
    )
    assert machine.monitor.backups == []
    effects = machine.handle(EdgeFailed(now=4.0, node_id="only"))
    trace_names = [
        type(e.event).__name__ for e in effects if isinstance(e, EmitTrace)
    ]
    assert "UncoveredFailure" in trace_names
    assert any(isinstance(e, SendDiscovery) for e in effects)
    assert machine.round_in_progress


def test_rejected_join_repeats_from_discovery_then_gives_up():
    machine = fresh_machine()
    outcomes = [outcome_for("a", 1.0, 10.0, 0)]
    run_round(machine, ["a"], outcomes)
    for attempt in range(machine.config.max_discovery_retries):
        effects = machine.handle(
            JoinResult(now=3.0, node_id="a", accepted=False, attempted_at=2.5)
        )
        assert any(isinstance(e, SendDiscovery) for e in effects), attempt
        machine.handle(CandidatesReceived(now=4.0, node_ids=("a",)))
        machine.handle(ProbesCompleted(now=5.0, outcomes=tuple(outcomes)))
    effects = machine.handle(
        JoinResult(now=6.0, node_id="a", accepted=False, attempted_at=5.5)
    )
    assert not any(isinstance(e, SendDiscovery) for e in effects)
    assert not machine.round_in_progress


def test_unknown_event_raises():
    machine = fresh_machine()
    with pytest.raises(TypeError):
        machine.handle(object())  # type: ignore[arg-type]
