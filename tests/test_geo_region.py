"""Unit tests for metro-area placement."""

import random

import pytest

from repro.geo.region import MSP_CENTER, MetroArea, PlacementStyle


@pytest.fixture
def metro():
    return MetroArea(center=MSP_CENTER, radius_km=16.0, rng=random.Random(5))


@pytest.mark.parametrize("style", list(PlacementStyle))
def test_samples_stay_inside_disc(metro, style):
    for _ in range(200):
        point = metro.sample(style)
        assert metro.contains(point)


def test_sample_many_count(metro):
    points = metro.sample_many(25)
    assert len(points) == 25


def test_sample_many_rejects_negative(metro):
    with pytest.raises(ValueError):
        metro.sample_many(-1)


def test_seeded_layouts_reproduce():
    a = MetroArea(rng=random.Random(9)).sample_many(10)
    b = MetroArea(rng=random.Random(9)).sample_many(10)
    assert a == b


def test_different_seeds_differ():
    a = MetroArea(rng=random.Random(1)).sample_many(10)
    b = MetroArea(rng=random.Random(2)).sample_many(10)
    assert a != b


def test_uniform_disc_spreads_beyond_half_radius(metro):
    # With area-uniform sampling, ~75% of points lie beyond r/2.
    points = metro.sample_many(400, PlacementStyle.UNIFORM_DISC)
    outer = sum(
        1 for p in points if metro.center.distance_km(p) > metro.radius_km / 2
    )
    assert outer / len(points) > 0.6


def test_gaussian_concentrates_toward_center(metro):
    points = metro.sample_many(400, PlacementStyle.GAUSSIAN)
    inner = sum(
        1 for p in points if metro.center.distance_km(p) < metro.radius_km / 2
    )
    assert inner / len(points) > 0.5


def test_clustered_style_reuses_cluster_centers(metro):
    first = metro.sample(PlacementStyle.CLUSTERED)
    assert metro._clusters is not None
    centers = list(metro._clusters)
    metro.sample(PlacementStyle.CLUSTERED)
    assert metro._clusters == centers
    assert metro.contains(first)


def test_validation():
    with pytest.raises(ValueError):
        MetroArea(radius_km=0.0)
    with pytest.raises(ValueError):
        MetroArea(n_clusters=0)


def test_contains_boundary():
    metro = MetroArea(radius_km=10.0, rng=random.Random(0))
    inside = metro.center.offset_km(9.99, 0.0)
    outside = metro.center.offset_km(10.5, 0.0)
    assert metro.contains(inside)
    assert not metro.contains(outside)
