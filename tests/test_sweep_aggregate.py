"""Unit tests for cross-seed aggregation."""

import math

import pytest

from repro.sweep.aggregate import (
    aggregate_records,
    aggregates_digest,
    comparison_table,
    metric_names,
    reduce_metric,
    t_critical,
)
from repro.sweep.store import STATUS_FAILED, STATUS_OK, RunRecord


def _record(params, seed_index, metrics, status=STATUS_OK):
    return RunRecord(
        run_key=f"k{seed_index}{sorted(params.items())}",
        experiment="e",
        params=params,
        seed_index=seed_index,
        root_seed=0,
        status=status,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# reduce_metric
# ----------------------------------------------------------------------
def test_reduce_metric_known_values():
    # n=5 sample: mean 3, sample std sqrt(2.5), t(4)=2.776
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    agg = reduce_metric(values)
    assert agg.n == 5
    assert agg.mean == pytest.approx(3.0)
    assert agg.p50 == pytest.approx(3.0)
    assert agg.p95 == pytest.approx(4.8)  # linear interpolation
    assert agg.std == pytest.approx(math.sqrt(2.5))
    assert agg.ci_half_width == pytest.approx(
        2.776 * math.sqrt(2.5) / math.sqrt(5)
    )


def test_reduce_metric_single_sample_has_zero_ci():
    agg = reduce_metric([7.0])
    assert agg.n == 1
    assert agg.mean == 7.0
    assert agg.std == 0.0
    assert agg.ci_half_width == 0.0


def test_reduce_metric_empty_rejected():
    with pytest.raises(ValueError):
        reduce_metric([])


def test_t_critical_table_and_asymptote():
    assert t_critical(4) == 2.776
    assert t_critical(1) == 12.706
    assert t_critical(1000) == 1.96
    with pytest.raises(ValueError):
        t_critical(0)


# ----------------------------------------------------------------------
# aggregate_records
# ----------------------------------------------------------------------
def test_grouping_by_parameter_cell():
    records = [
        _record({"top_n": 1}, 0, {"lat": 10.0}),
        _record({"top_n": 1}, 1, {"lat": 12.0}),
        _record({"top_n": 2}, 0, {"lat": 8.0}),
    ]
    cells = aggregate_records(records)
    assert len(cells) == 2
    one = cells['e|{"top_n":1}']
    assert one.n_seeds == 2
    assert one.metrics["lat"].mean == pytest.approx(11.0)
    two = cells['e|{"top_n":2}']
    assert two.n_seeds == 1


def test_failed_records_excluded():
    records = [
        _record({"a": 1}, 0, {"m": 1.0}),
        _record({"a": 1}, 1, {}, status=STATUS_FAILED),
    ]
    cells = aggregate_records(records)
    assert cells['e|{"a":1}'].n_seeds == 1


def test_digest_is_order_insensitive_but_value_sensitive():
    a = [_record({"x": 1}, 0, {"m": 1.0}), _record({"x": 2}, 0, {"m": 2.0})]
    digest_fwd = aggregates_digest(aggregate_records(a))
    digest_rev = aggregates_digest(aggregate_records(list(reversed(a))))
    assert digest_fwd == digest_rev

    b = [_record({"x": 1}, 0, {"m": 1.0}), _record({"x": 2}, 0, {"m": 2.5})]
    assert aggregates_digest(aggregate_records(b)) != digest_fwd


def test_metric_names_union():
    records = [
        _record({"x": 1}, 0, {"m1": 1.0}),
        _record({"x": 2}, 0, {"m2": 2.0}),
    ]
    assert metric_names(aggregate_records(records)) == ["m1", "m2"]


# ----------------------------------------------------------------------
# comparison_table
# ----------------------------------------------------------------------
def test_comparison_table_shape_and_order():
    records = [
        _record({"top_n": n}, s, {"lat": 10.0 * n + s})
        for n in (1, 2) for s in range(3)
    ]
    headers, rows = comparison_table(aggregate_records(records), "lat")
    assert headers == ["cell", "seeds", "mean", "p50", "p95", "ci95 ±"]
    assert [row[0] for row in rows] == ["top_n=1", "top_n=2"]
    assert all(row[1] == 3 for row in rows)


def test_comparison_table_skips_cells_missing_metric():
    records = [
        _record({"x": 1}, 0, {"m1": 1.0}),
        _record({"x": 2}, 0, {"m2": 2.0}),
    ]
    _, rows = comparison_table(aggregate_records(records), "m1")
    assert len(rows) == 1
