"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now == 0.0


def test_starts_at_custom_time():
    assert SimClock(12.5).now == 12.5


def test_rejects_negative_start():
    with pytest.raises(ValueError):
        SimClock(-1.0)


def test_advance_moves_forward():
    clock = SimClock()
    clock.advance_to(5.0)
    assert clock.now == 5.0
    clock.advance_to(7.25)
    assert clock.now == 7.25


def test_advance_to_same_time_is_allowed():
    clock = SimClock(3.0)
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_advance_backwards_raises():
    clock = SimClock(10.0)
    with pytest.raises(ValueError, match="backwards"):
        clock.advance_to(9.999)


def test_now_seconds_converts_from_ms():
    clock = SimClock(1_500.0)
    assert clock.now_seconds == pytest.approx(1.5)


def test_reset_returns_to_start():
    clock = SimClock()
    clock.advance_to(100.0)
    clock.reset()
    assert clock.now == 0.0


def test_reset_to_custom_time():
    clock = SimClock()
    clock.advance_to(100.0)
    clock.reset(50.0)
    assert clock.now == 50.0


def test_reset_rejects_negative():
    with pytest.raises(ValueError):
        SimClock().reset(-5.0)


def test_repr_mentions_time():
    assert "12.5" in repr(SimClock(12.5))
