"""Unit tests for RTT models and jitter."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.geo.point import GeoPoint
from repro.net.latency import (
    DistanceRttModel,
    EndpointInfo,
    HashedPairRttModel,
    JitterModel,
    MatrixRttModel,
    NetworkTier,
)


def make_endpoint(eid, lat=44.97, lon=-93.26, tier=NetworkTier.HOME_WIFI, **kwargs):
    return EndpointInfo(endpoint_id=eid, point=GeoPoint(lat, lon), tier=tier, **kwargs)


# ----------------------------------------------------------------------
# JitterModel
# ----------------------------------------------------------------------
def test_jitter_zero_sigma_zero_spikes_is_identity():
    jitter = JitterModel(sigma=0.0, spike_probability=0.0)
    assert jitter.apply(25.0, random.Random(1)) == 25.0


def test_jitter_is_mean_preserving():
    jitter = JitterModel(sigma=0.2, spike_probability=0.0)
    rng = random.Random(3)
    samples = [jitter.apply(50.0, rng) for _ in range(20_000)]
    assert sum(samples) / len(samples) == pytest.approx(50.0, rel=0.02)


def test_jitter_spikes_add_latency():
    jitter = JitterModel(sigma=0.0, spike_probability=1.0, spike_ms=30.0)
    rng = random.Random(4)
    samples = [jitter.apply(10.0, rng) for _ in range(2_000)]
    assert sum(samples) / len(samples) == pytest.approx(40.0, rel=0.1)


def test_jitter_validates_parameters():
    with pytest.raises(ValueError):
        JitterModel(sigma=-0.1)
    with pytest.raises(ValueError):
        JitterModel(spike_probability=1.5)


# ----------------------------------------------------------------------
# DistanceRttModel
# ----------------------------------------------------------------------
def test_distance_rtt_grows_with_distance():
    model = DistanceRttModel()
    near = make_endpoint("near", 44.98, -93.26)
    far = make_endpoint("far", 41.88, -87.63)  # Chicago
    user = make_endpoint("user", 44.97, -93.25)
    assert model.expected_rtt_ms(user, far) > model.expected_rtt_ms(user, near)


def test_tier_inflation_orders_volunteer_below_cloud():
    model = DistanceRttModel()
    user = make_endpoint("user")
    volunteer = make_endpoint("vol", 44.96, -93.24, NetworkTier.HOME_WIFI)
    cloud = make_endpoint("cloud", 44.96, -93.24, NetworkTier.CLOUD)
    assert model.expected_rtt_ms(user, volunteer) < model.expected_rtt_ms(user, cloud)


def test_access_extra_adds_round_trip_cost():
    model = DistanceRttModel()
    user = make_endpoint("user")
    clean = make_endpoint("clean", 44.96, -93.24)
    noisy = EndpointInfo(
        "noisy", GeoPoint(44.96, -93.24), NetworkTier.HOME_WIFI, access_extra_ms=10.0
    )
    delta = model.expected_rtt_ms(user, noisy) - model.expected_rtt_ms(user, clean)
    assert delta == pytest.approx(20.0)  # 10 ms each way


def test_same_isp_discount_applies():
    model = DistanceRttModel(same_isp_discount_ms=2.0)
    a = EndpointInfo("a", GeoPoint(44.97, -93.25), isp="comcast")
    b_same = EndpointInfo("b", GeoPoint(44.96, -93.24), isp="comcast")
    b_other = EndpointInfo("c", GeoPoint(44.96, -93.24), isp="usi")
    assert model.expected_rtt_ms(a, b_same) == pytest.approx(
        model.expected_rtt_ms(a, b_other) - 2.0
    )


def test_distance_model_validates_params():
    with pytest.raises(ValueError):
        DistanceRttModel(floor_ms=-1.0)
    with pytest.raises(ValueError):
        DistanceRttModel(path_stretch=0.5)


def test_samples_center_on_expected():
    model = DistanceRttModel(jitter=JitterModel(sigma=0.1, spike_probability=0.0))
    user = make_endpoint("user")
    node = make_endpoint("node", 44.9, -93.1)
    rng = random.Random(11)
    expected = model.expected_rtt_ms(user, node)
    samples = [model.sample_rtt_ms(user, node, rng) for _ in range(5_000)]
    assert sum(samples) / len(samples) == pytest.approx(expected, rel=0.03)


# ----------------------------------------------------------------------
# MatrixRttModel
# ----------------------------------------------------------------------
def test_matrix_model_set_and_get():
    model = MatrixRttModel(default_ms=30.0)
    model.set_rtt("u1", "e1", 12.0)
    a, b = make_endpoint("u1"), make_endpoint("e1")
    assert model.expected_rtt_ms(a, b) == 12.0
    assert model.expected_rtt_ms(b, a) == 12.0  # symmetric by default


def test_matrix_model_asymmetric_entry():
    model = MatrixRttModel()
    model.set_rtt("u1", "e1", 12.0, symmetric=False)
    assert model.base_rtt_ms("u1", "e1") == 12.0
    assert model.base_rtt_ms("e1", "u1") == model.default_ms


def test_matrix_model_default_for_unknown_pairs():
    model = MatrixRttModel(default_ms=33.0)
    assert model.base_rtt_ms("x", "y") == 33.0


def test_matrix_model_self_pair_is_near_zero():
    assert MatrixRttModel().base_rtt_ms("x", "x") < 1.0


def test_matrix_model_rejects_negative():
    with pytest.raises(ValueError):
        MatrixRttModel().set_rtt("a", "b", -1.0)


def test_matrix_configured_pairs_counts_directed():
    model = MatrixRttModel()
    model.set_rtt("a", "b", 10.0)
    assert model.configured_pairs() == 2


# ----------------------------------------------------------------------
# HashedPairRttModel
# ----------------------------------------------------------------------
def test_hashed_model_is_deterministic_and_symmetric():
    model = HashedPairRttModel(8.0, 55.0, seed=7)
    assert model.base_rtt_ms("u1", "e1") == model.base_rtt_ms("e1", "u1")
    again = HashedPairRttModel(8.0, 55.0, seed=7)
    assert model.base_rtt_ms("u1", "e1") == again.base_rtt_ms("u1", "e1")


def test_hashed_model_seed_changes_values():
    a = HashedPairRttModel(8.0, 55.0, seed=1).base_rtt_ms("u1", "e1")
    b = HashedPairRttModel(8.0, 55.0, seed=2).base_rtt_ms("u1", "e1")
    assert a != b


def test_hashed_model_validates_range():
    with pytest.raises(ValueError):
        HashedPairRttModel(10.0, 5.0)


@given(st.text(min_size=1, max_size=10), st.text(min_size=1, max_size=10))
def test_property_hashed_rtt_in_range(a, b):
    model = HashedPairRttModel(8.0, 55.0, seed=0)
    value = model.base_rtt_ms(a, b)
    if a == b:
        assert value < 1.0
    else:
        assert 8.0 <= value <= 55.0
