"""Unit tests for the Central Manager: registry, discovery, WRR."""

import pytest

from repro.core.config import SystemConfig
from repro.core.messages import DiscoveryQuery
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name


@pytest.fixture
def system():
    system = EdgeSystem(SystemConfig(seed=2, top_n=3))
    system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    system.spawn_node("V2", profile_by_name("V2"), GeoPoint(44.95, -93.20))
    system.spawn_node("V5", profile_by_name("V5"), GeoPoint(44.90, -93.10))
    system.run_for(200.0)  # let first heartbeats land
    return system


def query(top_n=3, exclude=(), lat=44.97, lon=-93.25):
    return DiscoveryQuery("u1", lat, lon, top_n=top_n, exclude=exclude)


def test_heartbeats_populate_registry(system):
    assert sorted(system.manager.known_node_ids()) == ["V1", "V2", "V5"]


def test_discover_returns_topn(system):
    result = system.manager.discover(query(top_n=2))
    assert len(result.node_ids) == 2
    assert system.manager.queries_served == 1


def test_discover_prefers_higher_availability(system):
    result = system.manager.discover(query(top_n=3))
    # V1 has 8 free cores, V5 has 2: V1 must rank above V5
    ids = list(result.node_ids)
    assert ids.index("V1") < ids.index("V5")


def test_discover_respects_exclude(system):
    result = system.manager.discover(query(exclude=("V1",)))
    assert "V1" not in result.node_ids


def test_stale_nodes_age_out(system):
    system.nodes["V2"].fail()
    system.run_for(system.config.heartbeat_timeout_ms + 1_500.0)
    assert "V2" not in [s.node_id for s in system.manager.alive_statuses()]


def test_forget_node(system):
    system.manager.forget_node("V1")
    assert "V1" not in system.manager.known_node_ids()
    assert "V1" not in system.manager.spatial_index


def test_spatial_index_tracks_registry_through_expiry(system):
    assert sorted(system.manager.spatial_index.node_ids()) == ["V1", "V2", "V5"]
    system.nodes["V2"].fail()
    system.run_for(system.config.heartbeat_timeout_ms + 1_500.0)
    system.manager.prune_stale()
    assert "V2" not in system.manager.spatial_index
    # survivors keep heartbeating and stay indexed
    assert sorted(system.manager.spatial_index.node_ids()) == ["V1", "V5"]


def test_expiry_heap_keeps_fresh_nodes(system):
    """Superseded heap entries (older heartbeats of a live node) must be
    skipped, not expire the node."""
    system.run_for(system.config.heartbeat_timeout_ms * 3)
    system.manager.prune_stale()
    assert sorted(system.manager.known_node_ids()) == ["V1", "V2", "V5"]


def test_discover_far_user_widens(system):
    # a user ~300 km away: outside the 80 km radius, inside the 400 km one
    result = system.manager.discover(query(lat=42.5, lon=-92.0))
    assert result.widened
    assert len(result.node_ids) > 0


def test_discover_empty_registry():
    system = EdgeSystem(SystemConfig(seed=3))
    result = system.manager.discover(query())
    assert result.node_ids == ()


# ----------------------------------------------------------------------
# Smooth weighted round robin (resource-aware baseline support)
# ----------------------------------------------------------------------
def test_wrr_assign_spreads_proportionally(system):
    counts = {"V1": 0, "V2": 0, "V5": 0}
    for _ in range(160):
        target = system.manager.wrr_assign(query())
        counts[target] += 1
    # weights are free cores: 8 / 6 / 2 -> expect ~80 / ~60 / ~20
    assert counts["V1"] > counts["V2"] > counts["V5"] > 0
    assert counts["V1"] == pytest.approx(80, abs=15)


def test_wrr_assign_respects_exclude(system):
    for _ in range(20):
        assert system.manager.wrr_assign(query(exclude=("V1", "V2"))) == "V5"


def test_wrr_assign_none_when_no_nodes():
    system = EdgeSystem(SystemConfig(seed=4))
    assert system.manager.wrr_assign(query()) is None


def test_wrr_smoothness_no_bursts(system):
    """Smooth WRR interleaves rather than grouping same-node picks."""
    picks = [system.manager.wrr_assign(query()) for _ in range(16)]
    longest_run = 1
    run = 1
    for a, b in zip(picks, picks[1:]):
        run = run + 1 if a == b else 1
        longest_run = max(longest_run, run)
    assert longest_run <= 3
