"""Tests for the fault-schedule search engine (``repro.faults.search``).

The expensive end of the pyramid — hunt, shrink, replay — is exercised
once, on the weakened-detection control-plane configuration that the CI
smoke job also uses: a deterministic find that shrinks to a tiny plan
and replays bit-identically.
"""

import json
import random

import pytest

from repro.faults import FaultPlan, NodeCrash
from repro.faults.search import (
    FaultSpace,
    HuntConfig,
    ReproArtifact,
    hunt,
    replay_artifact,
    run_plan,
    sample_plan,
    shrink,
)
from repro.obs.tracer import Tracer

#: The CI smoke configuration: a 4 s failure-detection window cannot
#: meet the nominal 250 ms promotion budget, so a shard-targeted outage
#: is guaranteed to violate — the hunt only has to sample one.
WEAKENED = HuntConfig(
    scenario="controlplane",
    attempts=10,
    config_overrides=(("failure_detection_ms", 4_000.0),),
)


# ----------------------------------------------------------------------
# The sampling space
# ----------------------------------------------------------------------
def test_fault_space_validates_inputs():
    with pytest.raises(ValueError):
        FaultSpace(edge_ids=())
    with pytest.raises(ValueError):
        FaultSpace(max_rules=0)
    with pytest.raises(ValueError):
        FaultSpace(active_fraction=1.5)
    with pytest.raises(ValueError):
        FaultSpace(families=("message", "meteor"))


def test_sample_plan_is_a_pure_function_of_the_rng():
    space = FaultSpace(shard_targets=(0, 1))
    plans = [sample_plan(space, random.Random("s:1")) for _ in range(2)]
    assert plans[0] == plans[1]
    assert sample_plan(space, random.Random("s:2")) != plans[0]


def test_sampled_plans_respect_the_settle_tail():
    """Every sampled schedule leaves the canonical fault-free tail: all
    windows closed and all crashed nodes restarted by
    ``active_fraction`` of the horizon."""
    space = FaultSpace(shard_targets=(0, 1))
    deadline = space.active_fraction * space.horizon_ms
    for seed in range(30):
        plan = sample_plan(space, random.Random(f"tail:{seed}"))
        assert 1 <= len(plan) <= space.max_rules
        for rule in (*plan.message_faults, *plan.partitions, *plan.outages,
                     *plan.gray_nodes):
            assert rule.window.end_ms <= deadline + 1e-9
        for crash in plan.crashes:
            assert crash.restart_at_ms is not None
            assert crash.restart_at_ms <= deadline + 1e-9


def test_sampled_outages_cover_shard_targets():
    space = FaultSpace(families=("outage",), shard_targets=(0, 1), max_rules=3)
    seen = set()
    for seed in range(40):
        plan = sample_plan(space, random.Random(f"shards:{seed}"))
        seen.update(o.shard for o in plan.outages)
    assert {0, 1, None} <= seen


def test_hunt_config_rejects_unknown_scenario():
    with pytest.raises(ValueError):
        HuntConfig(scenario="hybrid")


def test_controlplane_space_targets_populated_shards():
    from repro.faults.scenarios import _controlplane_layout

    space = HuntConfig(scenario="controlplane", shards=2).space()
    _, _, _, targets = _controlplane_layout(2)
    # Exactly the shards that own at least one edge node: a sampled
    # shard-targeted outage is guaranteed to hit a populated shard.
    assert space.shard_targets == tuple(targets)
    assert space.shard_targets
    assert all(0 <= s < 2 for s in space.shard_targets)
    assert HuntConfig(scenario="canonical").space().shard_targets == ()


# ----------------------------------------------------------------------
# Deterministic replay
# ----------------------------------------------------------------------
def test_run_plan_is_bit_identical_for_same_inputs():
    plan = FaultPlan(
        crashes=(NodeCrash("c", "edge-a", at_ms=4_000.0, restart_at_ms=9_000.0),)
    )
    config = HuntConfig(scenario="canonical")
    _, first = run_plan(plan, 5, config)
    _, second = run_plan(plan, 5, config)
    assert [e.to_dict() for e in first] == [e.to_dict() for e in second]


# ----------------------------------------------------------------------
# Hunt + shrink + artifact, end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def weakened_find():
    tracer = Tracer()
    result = hunt(WEAKENED, hunt_seed=0, tracer=tracer)
    return result, list(tracer.events())


def test_hunt_finds_and_shrinks_weakened_detection(weakened_find):
    result, _ = weakened_find
    assert result.found
    assert result.artifact is not None
    # The acceptance bar: a minimal reproducer of at most 3 rules.
    assert result.shrunk_rules <= 3
    assert result.shrunk_rules <= result.original_rules
    assert result.artifact.violation.invariant in (
        "promotion_budget",
        "failover_stall",
        "attachment_consistency",
    )
    assert any("shrunk" in line for line in result.summary_lines())


def test_hunt_emits_progress_and_shrink_events(weakened_find):
    result, events = weakened_find
    attempts = [e for e in events if e.type == "hunt_attempt"]
    steps = [e for e in events if e.type == "shrink_step"]
    assert len(attempts) == result.attempts
    assert attempts[-1].violations > 0
    assert len(steps) == result.shrink_runs
    assert {s.action for s in steps} <= {
        "drop_rules", "narrow_window", "reduce_targets"
    }
    assert any(s.kept for s in steps)


def test_hunt_is_deterministic(weakened_find):
    result, _ = weakened_find
    again = hunt(WEAKENED, hunt_seed=0)
    assert again.found
    assert again.attempts == result.attempts
    assert again.shrink_runs == result.shrink_runs
    assert again.artifact.plan == result.artifact.plan
    assert again.artifact.violation == result.artifact.violation


def test_artifact_round_trips_and_replays_bit_identically(
    weakened_find, tmp_path
):
    result, _ = weakened_find
    path = tmp_path / "repro.json"
    result.artifact.save(str(path))
    loaded = ReproArtifact.load(str(path))
    assert loaded == result.artifact
    # the artifact file is plain, versioned JSON
    data = json.loads(path.read_text())
    assert data["version"] == 1
    assert data["scenario"] == "controlplane"

    report, events, reproduced = replay_artifact(loaded)
    assert reproduced
    assert events
    assert any(
        v == loaded.violation for v in report.violations
    )


def test_shrunk_plan_is_one_minimal(weakened_find):
    """Removing any single rule from the reproducer loses the bug."""
    result, _ = weakened_find
    artifact = result.artifact
    config = artifact.hunt_config()
    signature = artifact.violation.invariant
    for rule in artifact.plan.all_rules():
        from repro.faults.search import _reproduces, _violations, _without_rule

        reduced = _without_rule(artifact.plan, rule.rule_id)
        if len(reduced) == 0:
            continue  # a 1-rule reproducer has nothing left to drop
        report, _ = run_plan(reduced, artifact.seed, config)
        assert not _reproduces(_violations(report), signature)


def test_hunt_with_zero_attempts_reports_not_found():
    result = hunt(HuntConfig(scenario="canonical", attempts=0), hunt_seed=0)
    assert not result.found
    assert result.attempts == 0
    assert result.artifact is None
    assert "found=False" in result.summary_lines()[0]


def test_shrink_respects_its_budget():
    plan = FaultPlan(
        crashes=(NodeCrash("c", "edge-a", at_ms=4_000.0, restart_at_ms=9_000.0),)
    )
    config = HuntConfig(scenario="canonical", shrink_budget=2)
    # Signature that never reproduces: every candidate costs one run and
    # the budget must stop the search, not the phase structure.
    shrunk, runs = shrink(plan, 5, config, "no_such_invariant")
    assert shrunk == plan
    assert runs <= 2
