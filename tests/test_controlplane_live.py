"""Live-runtime tests for the sharded control plane.

A :class:`RouterServer` speaks the single manager's wire protocol, so
these tests drive it with plain ``protocol.request`` calls exactly as a
``LiveClient``/``LiveEdgeServer`` would: heartbeat a spread of nodes,
discover, kill a shard's primary :class:`ManagerServer` mid-flight, and
check that the standby answer is bit-identical and the failover events
(``manager_promote``, ``registry_handoff``) fire.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.controlplane.live_driver import ControlPlaneCluster
from repro.core.messages import DiscoveryQuery, NodeStatus, to_wire
from repro.geo.geohash import encode
from repro.geo.point import GeoPoint
from repro.obs.tracer import Tracer
from repro.runtime import ManagerServer, protocol

CENTER = GeoPoint(44.97, -93.25)
NODE_OFFSETS = [(-24.0, -18.0), (-10.0, 6.0), (0.0, 0.0), (12.0, -8.0), (24.0, 16.0)]


def run(coro):
    return asyncio.run(coro)


def node_status(index: int) -> NodeStatus:
    point = CENTER.offset_km(*NODE_OFFSETS[index])
    return NodeStatus(
        node_id=f"edge-{index}",
        lat=point.lat,
        lon=point.lon,
        geohash=encode(point.lat, point.lon, precision=9),
        cores=4,
        capacity_fps=30.0,
        attached_users=0,
        utilization=0.1 * index,
    )


async def heartbeat_all(host: str, port: int) -> None:
    for index in range(len(NODE_OFFSETS)):
        await protocol.request(
            host,
            port,
            "heartbeat",
            {
                "status": to_wire(node_status(index)),
                "host": "127.0.0.1",
                "port": 9000 + index,
            },
        )


async def discover(host: str, port: int, user_id: str = "u"):
    query = DiscoveryQuery(user_id=user_id, lat=CENTER.lat, lon=CENTER.lon, top_n=3)
    return await protocol.request(host, port, "discover", {"query": to_wire(query)})


def test_router_answers_like_a_single_manager():
    """Wire-level golden parity: same heartbeats, same discover reply."""

    async def scenario():
        single = ManagerServer(tracer=Tracer.disabled())
        await single.start()
        cluster = ControlPlaneCluster(shards=2, replicas=2)
        await cluster.start()
        try:
            await heartbeat_all(single.host, single.port)
            await heartbeat_all(*cluster.address)
            want = await discover(single.host, single.port)
            got = await discover(*cluster.address)
            return want, got
        finally:
            await cluster.stop()
            await single.stop()

    want, got = run(scenario())
    assert want["ok"] and got["ok"]
    assert got["candidates"]["payload"]["node_ids"] == want["candidates"]["payload"]["node_ids"]
    assert got["candidates"]["payload"]["widened"] == want["candidates"]["payload"]["widened"]
    assert got["addresses"] == want["addresses"]


def test_kill_primary_promotes_standby_and_answers_identically():
    async def scenario():
        tracer = Tracer()
        cluster = ControlPlaneCluster(shards=2, replicas=2, tracer=tracer)
        await cluster.start()
        try:
            await heartbeat_all(*cluster.address)
            before = await discover(*cluster.address, user_id="u-before")
            await cluster.kill_primary(0)
            # The very next query rides the failed-RPC detection path:
            # mark down, promote, retry — one request, same answer.
            after = await discover(*cluster.address, user_id="u-after")
            status = await protocol.request(*cluster.address, "status")
            return before, after, status, [e.to_dict() for e in tracer.events()]
        finally:
            await cluster.stop()

    before, after, status, events = run(scenario())
    assert after["candidates"]["payload"]["node_ids"] == before["candidates"]["payload"]["node_ids"]
    assert status["promotions"] == 1
    assert status["primaries"][0] == 1
    assert status["down"][0] == [0]
    promotes = [e for e in events if e["type"] == "manager_promote"]
    assert len(promotes) == 1
    assert promotes[0]["shard"] == 0
    assert promotes[0]["reason"] == "unreachable"


def test_restart_replica_rejoins_with_registry_handoff():
    async def scenario():
        tracer = Tracer()
        cluster = ControlPlaneCluster(shards=2, replicas=2, tracer=tracer)
        await cluster.start()
        try:
            await heartbeat_all(*cluster.address)
            victim = await cluster.kill_primary(0)
            await discover(*cluster.address)  # trigger detection + promotion
            await cluster.restart_replica(0, victim)
            status = await protocol.request(*cluster.address, "status")
            # The returnee was re-seeded: its own registry holds the
            # shard's nodes even though it missed their heartbeats.
            rejoined = cluster.managers[0][victim]
            assert rejoined is not None
            replica_status = await protocol.request(
                "127.0.0.1", rejoined.port, "status"
            )
            return status, replica_status, [e.to_dict() for e in tracer.events()]
        finally:
            await cluster.stop()

    status, replica_status, events = run(scenario())
    assert status["down"] == [[], []]
    handoffs = [e for e in events if e["type"] == "registry_handoff"]
    assert len(handoffs) == 1
    assert handoffs[0]["reason"] == "rejoin"
    # The registry travelled by snapshot, not by replayed heartbeats.
    assert handoffs[0]["entries"] == len(replica_status["nodes"])
    assert replica_status["nodes"]  # non-empty: the snapshot travelled
    assert replica_status["heartbeats_received"] == 0


def test_unavailable_shard_hangs_up_instead_of_replying():
    """Every replica down: the router closes the connection without a
    reply, so the client errors into its DiscoveryFailed path rather
    than mistaking an outage for an empty candidate list."""

    async def scenario():
        cluster = ControlPlaneCluster(shards=1, replicas=1)
        await cluster.start()
        try:
            await heartbeat_all(*cluster.address)
            await cluster.kill_primary(0)
            with pytest.raises((protocol.ProtocolError, OSError)):
                await discover(*cluster.address)
            status = await protocol.request(*cluster.address, "status")
            return status
        finally:
            await cluster.stop()

    status = run(scenario())
    assert status["promotions"] == 0
    assert status["down"] == [[0]]


def test_heartbeats_replicate_to_standbys():
    async def scenario():
        cluster = ControlPlaneCluster(shards=1, replicas=3)
        await cluster.start()
        try:
            await heartbeat_all(*cluster.address)
            counts = []
            for server in cluster.managers[0]:
                assert server is not None
                reply = await protocol.request(
                    "127.0.0.1", server.port, "status"
                )
                counts.append(len(reply["nodes"]))
            return counts
        finally:
            await cluster.stop()

    assert run(scenario()) == [len(NODE_OFFSETS)] * 3
