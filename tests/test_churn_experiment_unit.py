"""Unit tests for churn-experiment internals."""

import pytest

from repro.core.config import SystemConfig
from repro.experiments.churn_experiment import (
    _recovery_downtimes,
    make_churn_trace,
)
from repro.metrics.collector import MetricsCollector
from repro.obs.events import CoveredFailover, FrameDone, UncoveredFailure


def frame_done(user_id, node_id, created_ms, latency_ms):
    done_ms = created_ms + (latency_ms or 0.0)
    return FrameDone(done_ms, user_id, node_id, 0, created_ms, latency_ms)


# ----------------------------------------------------------------------
# make_churn_trace acceptance criteria
# ----------------------------------------------------------------------
def test_trace_is_seed_deterministic():
    a = make_churn_trace(SystemConfig(seed=5))
    b = make_churn_trace(SystemConfig(seed=5))
    assert [(e.join_ms, e.fail_ms) for e in a.episodes] == [
        (e.join_ms, e.fail_ms) for e in b.episodes
    ]


def test_trace_differs_across_seeds():
    a = make_churn_trace(SystemConfig(seed=5))
    b = make_churn_trace(SystemConfig(seed=6))
    assert [(e.join_ms, e.fail_ms) for e in a.episodes] != [
        (e.join_ms, e.fail_ms) for e in b.episodes
    ]


def test_trace_acceptance_first_join_early():
    trace = make_churn_trace(SystemConfig(seed=7))
    assert trace.episodes[0].join_ms <= 5_000.0


def test_trace_acceptance_population_floor():
    trace = make_churn_trace(SystemConfig(seed=7), min_alive=2)
    for ms in range(10_000, 174_000, 1_000):
        assert trace.alive_count_at(float(ms)) >= 2


def test_trace_respects_custom_target():
    trace = make_churn_trace(
        SystemConfig(seed=7), target_total_nodes=None, min_alive=1
    )
    assert len(trace) > 0


# ----------------------------------------------------------------------
# Recovery-downtime extraction
# ----------------------------------------------------------------------
def make_metrics_with_gap():
    metrics = MetricsCollector()
    # frames complete steadily, then a gap around the failover at t=1000
    metrics.on_event(frame_done("u1", "A", 800.0, 50.0))  # completes 850
    metrics.on_event(frame_done("u1", "A", 900.0, 60.0))  # completes 960
    metrics.on_event(CoveredFailover(1_000.0, "u1", "B"))
    metrics.on_event(frame_done("u1", "B", 1_300.0, 80.0))  # completes 1380
    metrics.on_event(frame_done("u1", "B", 1_400.0, 70.0))
    return metrics


def test_downtime_is_gap_between_completions():
    downtimes = _recovery_downtimes(make_metrics_with_gap())
    assert downtimes == [pytest.approx(1_380.0 - 960.0)]


def test_downtime_ignores_other_users_frames():
    metrics = make_metrics_with_gap()
    metrics.on_event(frame_done("u2", "A", 1_000.0, 10.0))  # someone else's frame
    assert _recovery_downtimes(metrics) == [pytest.approx(420.0)]


def test_downtime_skips_events_without_surrounding_frames():
    metrics = MetricsCollector()
    metrics.on_event(UncoveredFailure(1_000.0, "u1"))  # no frames at all
    assert _recovery_downtimes(metrics) == []


def test_downtime_counts_both_event_kinds():
    metrics = make_metrics_with_gap()
    metrics.on_event(UncoveredFailure(1_001.0, "u1"))
    downtimes = _recovery_downtimes(metrics)
    assert len(downtimes) == 2


def test_downtime_lost_frames_do_not_mask_the_gap():
    metrics = make_metrics_with_gap()
    # a lost frame inside the outage must not shrink the measured gap
    metrics.on_event(frame_done("u1", "A", 1_050.0, None))
    assert _recovery_downtimes(metrics) == [pytest.approx(420.0)]
