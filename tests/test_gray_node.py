"""Gray-node blind-spot tests, on both backends.

A gray node serves frames slowly while answering heartbeats and probes
crisply. Liveness checks therefore never flag it — the manager keeps it
in the registry, no ``NodeFail`` fires. The only detection path is the
performance monitor: measured sojourns drift away from the cached
baseline and trigger a what-if refresh (``CacheMiss reason="drift"``).
"""

import asyncio

import pytest

from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.net.topology import EndpointSpec
from repro.nodes.hardware import profile_by_name
from repro.obs.tracer import Tracer
from repro.runtime import LiveEdgeServer, ManagerServer
from repro.runtime import protocol


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Simulated backend
# ----------------------------------------------------------------------
def _gray_sim():
    tracer = Tracer()
    system = EdgeSystem(
        SystemConfig(seed=11, probing_period_ms=2_000.0),
        trace=tracer,
    )
    center = GeoPoint(44.97, -93.25)
    for i, name in enumerate(("V1", "V2")):
        system.add_node(
            f"edge-{name}",
            profile_by_name(name),
            EndpointSpec(center.offset_km(1.0 + i, -1.0)),
        )
    system.add_client_endpoint("alice", EndpointSpec(center))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    return system, tracer, client


def test_sim_gray_node_blind_spot():
    system, tracer, client = _gray_sim()
    system.run_for(4_000.0)
    assert client.current_edge is not None
    gray_id = client.current_edge
    node = system.nodes[gray_id]
    baseline_what_if = node.what_if_ms

    drift_before = sum(
        1
        for e in tracer.events()
        if e.type == "cache_miss" and e.node_id == gray_id and e.reason == "drift"
    )
    node.processor.set_slowdown(8.0)
    system.run_for(6_000.0)

    # Blind spot: liveness never noticed — the node still heartbeats,
    # stays registered, and no failure was declared.
    system.manager.prune_stale()
    assert gray_id in system.manager.known_node_ids()
    assert node.alive
    assert not any(
        e.type == "node_fail" and e.node_id == gray_id for e in tracer.events()
    )
    assert client.stats.covered_failovers == 0
    assert client.stats.uncovered_failures == 0

    # Detection: the performance monitor's drift trigger fired and the
    # advertised what-if rose to reflect the real (slow) service rate.
    drift_after = sum(
        1
        for e in tracer.events()
        if e.type == "cache_miss" and e.node_id == gray_id and e.reason == "drift"
    )
    assert drift_after > drift_before
    assert node.what_if_ms > baseline_what_if


# ----------------------------------------------------------------------
# Live backend
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_live_gray_node_blind_spot():
    async def scenario():
        tracer = Tracer()
        manager = ManagerServer(tracer=tracer)
        await manager.start()
        edge = LiveEdgeServer(
            "gray-1",
            profile_by_name("V1"),
            GeoPoint(44.98, -93.26),
            manager_host=manager.host,
            manager_port=manager.port,
            heartbeat_period_s=0.05,
            time_scale=0.01,
            tracer=tracer,
            monitor_period_s=0.1,
        )
        await edge.start()
        try:
            baseline_what_if = edge.what_if_ms
            edge.set_slowdown(6.0)
            # keep frames flowing so measured sojourns reflect the slowdown
            for _ in range(12):
                reply = await protocol.request(edge.host, edge.port, "frame")
                assert reply["ok"]
                await asyncio.sleep(0.02)
            await asyncio.sleep(0.25)  # a couple of monitor periods
            status = await protocol.request(manager.host, manager.port, "status")
            events = list(tracer.events())
            return {
                "registry": status["nodes"],
                "what_if": edge.what_if_ms,
                "baseline": baseline_what_if,
                "types": [
                    (e.type, getattr(e, "reason", None)) for e in events
                ],
            }
        finally:
            await edge.stop()
            await manager.stop()

    result = run(scenario())
    # Blind spot: heartbeats kept the gray node registered; no failure.
    assert "gray-1" in result["registry"]
    assert ("node_fail", None) not in result["types"]
    # Detection: drift trigger fired; the what-if cache re-primed upward.
    assert ("cache_miss", "drift") in result["types"]
    assert result["what_if"] > result["baseline"]
