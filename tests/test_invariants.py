"""System-level invariants that must hold for any seed.

These run complete simulations across several seeds and assert
conservation/consistency properties — the class of bug unit tests miss
(double-counted frames, ghost attachments, negative accounting).
"""

import pytest

from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name

SEEDS = [1, 17, 99]


def run_world(seed, *, with_failures=False, duration_ms=20_000.0):
    config = SystemConfig(seed=seed, top_n=3, probing_period_ms=1_000.0)
    system = EdgeSystem(config)
    for i, name in enumerate(("V1", "V2", "V3", "D6")):
        system.spawn_node(
            name,
            profile_by_name(name),
            GeoPoint(44.94 + i * 0.012, -93.26 + i * 0.01),
        )
    for i in range(5):
        user = f"u{i}"
        system.register_client_endpoint(user, GeoPoint(44.96, -93.24 + i * 0.004))
        client = EdgeClient(system, user)
        system.clients[user] = client
        system.sim.schedule(i * 400.0, client.start)
    if with_failures:
        system.sim.schedule(8_000.0, lambda: system.fail_node("V1"))
        system.sim.schedule(
            12_000.0,
            lambda: system.spawn_node(
                "V1b", profile_by_name("V1"), GeoPoint(44.95, -93.25)
            ),
        )
    system.run_for(duration_ms)
    return system


@pytest.mark.parametrize("seed", SEEDS)
def test_frame_accounting_conserves(seed):
    system = run_world(seed)
    for client in system.clients.values():
        stats = client.stats
        # every sent frame either completed, was lost, or is in flight
        in_flight = stats.frames_sent - stats.frames_completed - stats.frames_lost
        assert 0 <= in_flight <= 10
        assert len(stats.latencies_ms) == stats.frames_completed


@pytest.mark.parametrize("seed", SEEDS)
def test_metrics_match_client_counters(seed):
    system = run_world(seed)
    for user_id, client in system.clients.items():
        assert system.metrics.probes_sent[user_id] == client.stats.probes_sent
        recorded = [
            r for r in system.metrics.frames if r.user_id == user_id
        ]
        completed = sum(1 for r in recorded if not r.lost)
        assert completed == client.stats.frames_completed


@pytest.mark.parametrize("seed", SEEDS)
def test_attachment_agreement_between_clients_and_nodes(seed):
    system = run_world(seed)
    # Quiesce: stop churn of rounds before checking agreement.
    for client in system.clients.values():
        assert client.attached
        node = system.nodes[client.current_edge]
        assert client.user_id in node.attached, (
            f"{client.user_id} believes it is on {client.current_edge} "
            f"but the node disagrees"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_no_user_attached_to_two_nodes(seed):
    system = run_world(seed)
    locations = {}
    for node_id, node in system.nodes.items():
        for user in node.attached:
            assert user not in locations, (
                f"{user} attached to both {locations[user]} and {node_id}"
            )
            locations[user] = node_id


@pytest.mark.parametrize("seed", SEEDS)
def test_latencies_physically_plausible(seed):
    system = run_world(seed)
    for record in system.metrics.frames:
        if record.latency_ms is None:
            continue
        # a completed frame cannot beat its node's bare processing time
        assert record.latency_ms > 10.0
        assert record.latency_ms < 60_000.0


@pytest.mark.parametrize("seed", SEEDS)
def test_invariants_survive_failures(seed):
    system = run_world(seed, with_failures=True)
    assert not system.nodes["V1"].alive
    for client in system.clients.values():
        assert client.current_edge != "V1"
        stats = client.stats
        in_flight = stats.frames_sent - stats.frames_completed - stats.frames_lost
        assert 0 <= in_flight <= 10
    # backup lists never contain the dead node after a probing period
    for client in system.clients.values():
        assert "V1" not in client.failure_monitor.backups


@pytest.mark.parametrize("seed", SEEDS)
def test_seq_num_monotone_nondecreasing_vs_joins(seed):
    system = run_world(seed)
    for node in system.nodes.values():
        # every accepted join/leave/monitor trigger bumped it at least once
        state_changes = node.joins_accepted
        assert node.seq_num >= state_changes


@pytest.mark.parametrize("seed", SEEDS)
def test_collector_population_series_is_consistent(seed):
    system = run_world(seed, with_failures=True)
    values = system.metrics.alive_nodes.values
    assert values[-1] == system.alive_node_count()
    assert all(v >= 0 for v in values)
