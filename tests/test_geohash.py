"""Unit and property tests for the GeoHash implementation."""

import pytest
from hypothesis import given, strategies as st

from repro.geo import geohash as gh
from repro.geo.point import GeoPoint

coords = st.tuples(
    st.floats(min_value=-89.9, max_value=89.9),
    st.floats(min_value=-179.9, max_value=179.9),
)


# ----------------------------------------------------------------------
# Known vectors (from the original geohash.org reference)
# ----------------------------------------------------------------------
def test_known_vector_ezs42():
    assert gh.encode(42.605, -5.603, 5) == "ezs42"


def test_known_vector_u4pruydqqvj():
    assert gh.encode(57.64911, 10.40744, 11) == "u4pruydqqvj"


def test_known_vector_9q8yy():
    # San Francisco area
    assert gh.encode(37.7749, -122.4194, 5) == "9q8yy"


def test_minneapolis_prefix_is_stable():
    msp = gh.encode(44.9778, -93.2650, 9)
    assert msp.startswith("9zvx")


# ----------------------------------------------------------------------
# Encode / decode
# ----------------------------------------------------------------------
def test_encode_validates_inputs():
    with pytest.raises(ValueError):
        gh.encode(91.0, 0.0)
    with pytest.raises(ValueError):
        gh.encode(0.0, 181.0)
    with pytest.raises(ValueError):
        gh.encode(0.0, 0.0, precision=0)


def test_decode_rejects_garbage():
    with pytest.raises(ValueError):
        gh.decode("")
    with pytest.raises(ValueError):
        gh.decode("abci")  # 'i' is not in the alphabet


def test_decode_is_case_insensitive():
    assert gh.decode("EZS42") == gh.decode("ezs42")


def test_bounding_box_contains_decoded_center():
    box = gh.bounding_box("ezs42")
    center = gh.decode("ezs42")
    lat_lo, lat_hi, lon_lo, lon_hi = box
    assert lat_lo <= center.lat <= lat_hi
    assert lon_lo <= center.lon <= lon_hi


def test_decode_with_error_bounds():
    center, lat_err, lon_err = gh.decode_with_error("ezs42")
    assert lat_err > 0 and lon_err > 0
    assert abs(center.lat - 42.605) <= lat_err * 2
    assert abs(center.lon - -5.603) <= lon_err * 2


@given(coords, st.integers(min_value=1, max_value=12))
def test_property_roundtrip_stays_in_cell(coord, precision):
    lat, lon = coord
    code = gh.encode(lat, lon, precision)
    assert len(code) == precision
    lat_lo, lat_hi, lon_lo, lon_hi = gh.bounding_box(code)
    assert lat_lo - 1e-9 <= lat <= lat_hi + 1e-9
    assert lon_lo - 1e-9 <= lon <= lon_hi + 1e-9


@given(coords, st.integers(min_value=2, max_value=12))
def test_property_prefix_containment(coord, precision):
    lat, lon = coord
    code = gh.encode(lat, lon, precision)
    shorter = gh.encode(lat, lon, precision - 1)
    assert code.startswith(shorter)


@given(coords)
def test_property_reencoding_center_reproduces_hash(coord):
    lat, lon = coord
    code = gh.encode(lat, lon, 8)
    center = gh.decode(code)
    assert gh.encode(center.lat, center.lon, 8) == code


# ----------------------------------------------------------------------
# Adjacency / neighbors
# ----------------------------------------------------------------------
def test_adjacent_east_west_are_inverse():
    code = "ezs42"
    assert gh.adjacent(gh.adjacent(code, "e"), "w") == code


def test_adjacent_north_south_are_inverse():
    code = "9zvxg"
    assert gh.adjacent(gh.adjacent(code, "n"), "s") == code


def test_adjacent_validates_direction():
    with pytest.raises(ValueError):
        gh.adjacent("ezs42", "x")
    with pytest.raises(ValueError):
        gh.adjacent("", "n")


def test_neighbors_returns_8_unique_cells():
    cells = gh.neighbors("9zvxg")
    assert len(cells) == 8
    assert len(set(cells)) == 8
    assert "9zvxg" not in cells


def test_neighbors_are_geographically_close():
    code = gh.encode(44.9778, -93.2650, 6)
    center = gh.decode(code)
    height_km, width_km = gh.cell_size_km(6)
    for neighbor in gh.neighbors(code):
        distance = center.distance_km(gh.decode(neighbor))
        assert distance <= 2.0 * max(height_km, width_km)


@given(coords, st.integers(min_value=3, max_value=8))
def test_property_neighbors_inverse_moves(coord, precision):
    lat, lon = coord
    code = gh.encode(lat, lon, precision)
    assert gh.adjacent(gh.adjacent(code, "n"), "s") == code
    assert gh.adjacent(gh.adjacent(code, "e"), "w") == code


# ----------------------------------------------------------------------
# Radius coverage
# ----------------------------------------------------------------------
def test_precision_for_radius_monotone():
    precisions = [gh.precision_for_radius_km(r) for r in (0.01, 1, 10, 100, 1000)]
    assert precisions == sorted(precisions, reverse=True)


def test_precision_for_radius_rejects_nonpositive():
    with pytest.raises(ValueError):
        gh.precision_for_radius_km(0.0)


def test_covering_cells_cover_points_within_radius():
    center = GeoPoint(44.9778, -93.2650)
    radius = 40.0
    cells = gh.covering_cells(center, radius)
    precision = len(cells[0])
    # points on the radius circle must land in one of the covering cells
    for bearing_deg in range(0, 360, 45):
        import math

        rad = math.radians(bearing_deg)
        point = center.offset_km(radius * 0.99 * math.cos(rad), radius * 0.99 * math.sin(rad))
        assert gh.encode(point.lat, point.lon, precision) in cells


def test_cell_size_km_known_precision_5():
    height, width = gh.cell_size_km(5)
    assert height == pytest.approx(4.9, rel=0.05)


def test_cell_size_rejects_bad_precision():
    with pytest.raises(ValueError):
        gh.cell_size_km(0)
    with pytest.raises(ValueError):
        gh.cell_size_km(13)


def test_common_prefix_length():
    assert gh.common_prefix_length("9zvxg", "9zvxg") == 5
    assert gh.common_prefix_length("9zvxg", "9zabc") == 2
    assert gh.common_prefix_length("abc", "xyz") == 0
    assert gh.common_prefix_length("ABC", "abc") == 3  # case-insensitive


# ----------------------------------------------------------------------
# Vectorized integer cells (the metro kernel's fast path)
# ----------------------------------------------------------------------
@given(
    st.floats(min_value=-89.9, max_value=89.9),
    st.floats(min_value=-179.9, max_value=179.9),
    st.integers(min_value=1, max_value=12),
)
def test_encode_cells_matches_scalar_encode(lat, lon, precision):
    import numpy as np

    cells = gh.encode_cells(
        np.array([lat]), np.array([lon]), precision
    )
    assert gh.cell_to_geohash(int(cells[0]), precision) == gh.encode(
        lat, lon, precision
    )


def test_cell_string_round_trip():
    for s in ["9", "9z", "9zvxg", "cbj0u3h1", "000000000000"]:
        assert gh.cell_to_geohash(gh.geohash_to_cell(s), len(s)) == s


def test_cell_parent_is_prefix_truncation():
    cell = gh.geohash_to_cell("9zvxg")
    assert gh.cell_parent(cell) == gh.geohash_to_cell("9zvx")
    assert gh.cell_parent(cell, levels=3) == gh.geohash_to_cell("9z")


@given(
    st.floats(min_value=-80.0, max_value=80.0),
    st.floats(min_value=-179.9, max_value=179.9),
    st.integers(min_value=2, max_value=8),
)
def test_cell_neighborhood_matches_string_neighbors(lat, lon, precision):
    import numpy as np

    cell = gh.encode_cells(np.array([lat]), np.array([lon]), precision)
    block = gh.cell_neighborhood(cell, precision)
    got = {gh.cell_to_geohash(int(c), precision) for c in block[0]}
    want = set(gh.neighbors(gh.encode(lat, lon, precision)))
    want.add(gh.encode(lat, lon, precision))
    assert got == want


def test_cell_neighborhood_wraps_longitude():
    import numpy as np

    cell = gh.encode_cells(np.array([0.0]), np.array([179.99]), 4)
    block = gh.cell_neighborhood(cell, 4)
    strings = {gh.cell_to_geohash(int(c), 4) for c in block[0]}
    # The antimeridian neighborhood spans both hemispheres.
    assert any(s.startswith("x") or s.startswith("r") for s in strings)
    assert any(s.startswith("8") or s.startswith("2") for s in strings)
