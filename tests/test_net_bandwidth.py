"""Unit tests for the transfer-delay model."""

import random

import pytest

from repro.net.bandwidth import BandwidthModel, transfer_ms


def test_transfer_ms_known_value():
    # 0.02 MB at 20 Mbps: 0.02e6*8 / 20e6 s = 8 ms
    assert transfer_ms(0.02e6, 20.0) == pytest.approx(8.0)


def test_transfer_ms_zero_size():
    assert transfer_ms(0.0, 10.0) == 0.0


def test_transfer_ms_validates():
    with pytest.raises(ValueError):
        transfer_ms(100.0, 0.0)
    with pytest.raises(ValueError):
        transfer_ms(-1.0, 10.0)


def test_bottleneck_is_minimum_of_up_and_down():
    model = BandwidthModel()
    assert model.bottleneck_mbps(20.0, 200.0) == 20.0
    assert model.bottleneck_mbps(100.0, 50.0) == 50.0


def test_defaults_used_when_unspecified():
    model = BandwidthModel(default_uplink_mbps=25.0, default_downlink_mbps=100.0)
    assert model.bottleneck_mbps(None, None) == 25.0


def test_expected_transfer_uses_bottleneck():
    model = BandwidthModel(contention_sigma=0.0)
    # sender uplink 20 dominates a 1000 Mbps receiver
    assert model.expected_transfer_ms(0.02e6, 20.0, 1000.0) == pytest.approx(8.0)


def test_uplink_dominates_regardless_of_edge_choice():
    """The paper's point: edge selection has limited effect on first-hop
    transfer; changing the receiver barely moves the delay."""
    model = BandwidthModel(contention_sigma=0.0)
    slow_receiver = model.expected_transfer_ms(0.02e6, 20.0, 200.0)
    fast_receiver = model.expected_transfer_ms(0.02e6, 20.0, 10_000.0)
    assert slow_receiver == fast_receiver


def test_sampled_transfer_centers_on_expected():
    model = BandwidthModel(contention_sigma=0.15)
    rng = random.Random(2)
    expected = model.expected_transfer_ms(0.02e6, 20.0)
    samples = [model.sample_transfer_ms(0.02e6, rng, 20.0) for _ in range(5_000)]
    assert sum(samples) / len(samples) == pytest.approx(expected, rel=0.05)


def test_sampled_transfer_without_noise_is_deterministic():
    model = BandwidthModel(contention_sigma=0.0)
    rng = random.Random(2)
    assert model.sample_transfer_ms(0.02e6, rng, 20.0) == pytest.approx(8.0)


def test_model_validates_parameters():
    with pytest.raises(ValueError):
        BandwidthModel(default_uplink_mbps=0.0)
    with pytest.raises(ValueError):
        BandwidthModel(contention_sigma=-0.1)
