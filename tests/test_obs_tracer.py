"""Unit tests for the observability layer: events, tracer, sinks,
analyzer, kernel profiler, and the deprecated metrics shims."""

import warnings

import pytest

from repro.metrics.collector import MetricsCollector
from repro.obs import (
    EVENT_TYPES,
    CoveredFailover,
    FrameDone,
    FrameStart,
    JoinAccept,
    JoinAttempt,
    JsonlSink,
    KernelProfiler,
    ListSink,
    NodeFail,
    PhaseSpan,
    ProbeSent,
    TraceAnalyzer,
    Tracer,
    event_from_dict,
    load_trace,
    validate_event_order,
)
from repro.sim.kernel import Simulator


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
def test_event_wire_roundtrip():
    original = FrameDone(12.5, "u1", "V1", 7, 10.0, 42.25)
    wire = original.to_dict()
    assert wire["type"] == "frame_done"
    restored = event_from_dict(wire)
    assert isinstance(restored, FrameDone)
    assert restored.to_dict() == wire


def test_event_registry_covers_all_tags():
    for tag, cls in EVENT_TYPES.items():
        assert cls.type == tag


def test_event_from_dict_rejects_unknown_type():
    with pytest.raises(KeyError):
        event_from_dict({"type": "warp_core_breach", "t_ms": 0.0})


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_tracer_captures_and_filters():
    tracer = Tracer()
    tracer.emit(ProbeSent(1.0, "u1", "V1"))
    tracer.emit(FrameDone(2.0, "u1", "V1", 1, 0.0, 30.0))
    tracer.emit(ProbeSent(3.0, "u1", "V2"))
    assert len(tracer) == 3
    probes = tracer.events("probe_sent")
    assert [e.node_id for e in probes] == ["V1", "V2"]
    tracer.clear()
    assert len(tracer) == 0


def test_tracer_ring_drops_oldest():
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.emit(ProbeSent(float(i), "u1", f"V{i}"))
    assert [e.t_ms for e in tracer.events()] == [3.0, 4.0]


def test_disabled_tracer_still_feeds_subscribers():
    tracer = Tracer.disabled()
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit(ProbeSent(1.0, "u1", "V1"))
    assert not tracer.enabled and not tracer
    assert len(tracer) == 0  # no capture...
    assert len(seen) == 1  # ...but reduction saw the event
    tracer.unsubscribe(seen.append)
    tracer.emit(ProbeSent(2.0, "u1", "V1"))
    assert len(seen) == 1


def test_jsonl_sink_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sink=path)
    tracer.emit(JoinAccept(1.0, "u1", "V1"))
    tracer.emit(FrameDone(2.0, "u1", "V1", 1, 0.5, None))
    tracer.close()
    loaded = load_trace(path)
    assert [e["type"] for e in loaded] == ["join_accept", "frame_done"]
    assert loaded[1]["latency_ms"] is None
    assert loaded == [e.to_dict() for e in tracer.events()]


def test_list_sink_receives_events():
    sink = ListSink()
    tracer = Tracer(sink=sink)
    tracer.emit(NodeFail(5.0, "V1"))
    assert [e.node_id for e in sink.events] == ["V1"]


def test_sink_silent_when_capture_disabled(tmp_path):
    path = tmp_path / "idle.jsonl"
    sink = JsonlSink(path)
    tracer = Tracer(enabled=False, sink=sink)
    tracer.emit(NodeFail(1.0, "V1"))
    tracer.close()
    assert sink.events_written == 0
    assert not path.exists()  # lazily opened: never touched


# ----------------------------------------------------------------------
# Analyzer
# ----------------------------------------------------------------------
def _served_frame(user, frame_id, t0, rtt, queue, process):
    latency = rtt + queue + process
    return [
        FrameStart(t0, user, "V1", frame_id),
        PhaseSpan(t0 + latency, user, frame_id, "rtt", rtt),
        PhaseSpan(t0 + latency, user, frame_id, "queue", queue),
        PhaseSpan(t0 + latency, user, frame_id, "process", process),
        FrameDone(t0 + latency, user, "V1", frame_id, t0, latency),
    ]


def test_phase_breakdown_reconciles():
    events = [
        JoinAttempt(0.0, "u1", "V1"),
        JoinAccept(0.0, "u1", "V1"),
        *_served_frame("u1", 1, 1.0, 10.0, 2.0, 30.0),
        *_served_frame("u1", 2, 60.0, 12.0, 0.0, 28.0),
    ]
    analyzer = TraceAnalyzer(events)
    assert analyzer.reconciliation_errors() == []
    assert validate_event_order(events) == []
    breakdown = analyzer.phase_breakdown()["u1"]
    assert breakdown.frames == 2
    assert breakdown.rtt_ms == pytest.approx(22.0)
    assert breakdown.phase_sum_ms == pytest.approx(breakdown.latency_ms)


def test_reconciliation_catches_bad_spans():
    events = [
        JoinAttempt(0.0, "u1", "V1"),
        JoinAccept(0.0, "u1", "V1"),
        *_served_frame("u1", 1, 1.0, 10.0, 2.0, 30.0),
    ]
    events[3].duration_ms += 5.0  # corrupt the rtt span
    assert TraceAnalyzer(events).reconciliation_errors()


def test_order_validator_flags_serve_before_attach():
    events = _served_frame("u1", 1, 1.0, 10.0, 2.0, 30.0)
    violations = validate_event_order(events)
    assert any("before any attach" in v for v in violations)


def test_order_validator_flags_failover_before_failure():
    events = [
        JoinAttempt(0.0, "u1", "V1"),
        JoinAccept(0.0, "u1", "V1"),
        CoveredFailover(5.0, "u1", "V2"),
    ]
    violations = validate_event_order(events)
    assert any("before any node_fail" in v for v in violations)


def test_failover_gap_histogram():
    events = [
        JoinAttempt(0.0, "u1", "V1"),
        JoinAccept(0.0, "u1", "V1"),
        NodeFail(100.0, "V1"),
        CoveredFailover(130.0, "u1", "V2"),
    ]
    analyzer = TraceAnalyzer(events)
    assert analyzer.failover_gaps() == [("u1", 30.0)]
    assert analyzer.failover_gap_histogram(bin_ms=50.0) == [(0.0, 1)]


def test_per_user_timeline_includes_relevant_node_fail():
    events = [
        JoinAttempt(0.0, "u1", "V1"),
        JoinAccept(0.0, "u1", "V1"),
        NodeFail(10.0, "V1"),
        NodeFail(11.0, "V9"),  # never interacted with u1
    ]
    timeline = TraceAnalyzer(events).per_user_timeline("u1")
    kinds = [(e["type"], e.get("node_id")) for e in timeline]
    assert ("node_fail", "V1") in kinds
    assert ("node_fail", "V9") not in kinds


# ----------------------------------------------------------------------
# Kernel profiler
# ----------------------------------------------------------------------
def test_kernel_profiler_aggregates_by_handler_kind():
    sim = Simulator()
    sim.profiler = KernelProfiler()
    sim.schedule(1.0, lambda: None, label="client.u1.probe")
    sim.schedule(2.0, lambda: None, label="client.u2.probe")
    sim.schedule(3.0, lambda: None, label="node.V1.heartbeat")
    sim.run()
    rows = {row[0]: row for row in sim.profiler.rows()}
    assert rows["probe"][1] == 2  # count column
    assert rows["heartbeat"][1] == 1
    assert sim.profiler.mean_queue_depth >= 0.0


def test_on_event_reduces_like_the_old_mutators():
    collector = MetricsCollector()
    collector.on_event(ProbeSent(0.0, "u1", "V1"))
    collector.on_event(FrameDone(40.0, "u1", "V1", 1, 0.0, 40.0))
    collector.on_event(FrameDone(80.0, "u1", "V1", 2, 50.0, None))
    assert collector.total_probes() == 1
    assert collector.completed_latencies() == [40.0]
    assert collector.lost_frames() == 1
    # unknown/detail events fall through untouched
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        collector.on_event(PhaseSpan(1.0, "u1", 1, "rtt", 10.0))
