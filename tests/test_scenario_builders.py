"""Property-style tests for the experiment scenario builders."""

import pytest

from repro.core.config import SystemConfig
from repro.experiments.scenario import (
    CHURN_NODE_MIX,
    EMULATION_NODE_MIX,
    build_emulation_system,
    build_real_world_system,
    emulation_node_profiles,
)
from repro.geo.region import MSP_CENTER


def test_real_world_layout_is_seed_deterministic():
    def layout(seed):
        scenario = build_real_world_system(SystemConfig(seed=seed), n_users=5)
        topo = scenario.system.topology
        return {
            eid: (topo.endpoint(eid).point.lat, topo.endpoint(eid).point.lon)
            for eid in topo.endpoint_ids()
        }

    assert layout(5) == layout(5)
    assert layout(5) != layout(6)


def test_real_world_volunteers_within_metro():
    scenario = build_real_world_system(SystemConfig(seed=5), n_users=3)
    topo = scenario.system.topology
    for node_id in scenario.volunteer_ids:
        assert MSP_CENTER.distance_km(topo.endpoint(node_id).point) <= 17.0


def test_real_world_cloud_is_far():
    scenario = build_real_world_system(SystemConfig(seed=5), n_users=1)
    topo = scenario.system.topology
    assert MSP_CENTER.distance_km(topo.endpoint(scenario.cloud_id).point) > 500.0


def test_real_world_users_have_isps_and_uplinks():
    scenario = build_real_world_system(SystemConfig(seed=5), n_users=6)
    topo = scenario.system.topology
    for user_id in scenario.user_ids:
        endpoint = topo.endpoint(user_id)
        assert endpoint.isp is not None
        assert endpoint.uplink_mbps == 20.0


def test_real_world_dedicated_flag_set():
    scenario = build_real_world_system(SystemConfig(seed=5), n_users=1)
    system = scenario.system
    for node_id in scenario.dedicated_ids:
        assert system.nodes[node_id].dedicated
    for node_id in scenario.volunteer_ids:
        assert not system.nodes[node_id].dedicated


def test_real_world_cloud_is_elastic():
    scenario = build_real_world_system(SystemConfig(seed=5), n_users=1)
    cloud = scenario.system.nodes[scenario.cloud_id]
    # elastic: can absorb many concurrent frames without queueing
    assert cloud.profile.parallelism >= 16


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_emulation_rtt_range_matches_paper(seed):
    """§V-D1: pairwise RTTs of 8-55 ms."""
    scenario = build_emulation_system(SystemConfig(seed=seed))
    rtts = list(scenario.expected_rtt.values())
    assert min(rtts) >= 5.0
    assert max(rtts) <= 70.0
    # genuine heterogeneity: a >2x spread between best and worst pairs
    assert max(rtts) > 2.0 * min(rtts)


def test_emulation_node_mix_counts():
    profiles = emulation_node_profiles(EMULATION_NODE_MIX)
    names = [p.name for p in profiles]
    assert names.count("t2.medium") == 4
    assert names.count("t2.xlarge") == 4
    assert names.count("t2.2xlarge") == 1


def test_churn_node_mix_counts():
    profiles = emulation_node_profiles(CHURN_NODE_MIX)
    names = [p.name for p in profiles]
    assert names.count("t2.medium") == 8
    assert names.count("t2.xlarge") == 8
    assert names.count("t2.2xlarge") == 2


def test_emulation_spawn_nodes_false_registers_users_only():
    scenario = build_emulation_system(SystemConfig(seed=3), spawn_nodes=False)
    assert scenario.node_ids == []
    assert scenario.system.alive_node_count() == 0
    assert len(scenario.user_ids) == 15


def test_emulation_expected_rtt_covers_all_pairs():
    scenario = build_emulation_system(SystemConfig(seed=3), n_users=4)
    assert len(scenario.expected_rtt) == 4 * 9
    for (user, node), value in scenario.expected_rtt.items():
        assert user.startswith("u") and node.startswith("e")
        assert value > 0
