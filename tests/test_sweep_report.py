"""Report-pipeline tests: Markdown rendering and tagged-section refresh.

The property under test is byte-reproducibility: equal stores render
equal Markdown, and ``update_tagged_section(..., check=True)`` is a
faithful is-it-stale oracle — that pair is what the CI job leans on
when it regenerates the committed EXPERIMENTS.md section and diffs.
"""

import pytest

from repro.sweep import (
    RunStore,
    SectionCheckFailed,
    SweepSpec,
    render_markdown,
    render_store_markdown,
    run_sweep,
    store_digest,
    tagged_section,
    update_tagged_section,
)
from repro.sweep.aggregate import aggregate_records
from repro.sweep.store import STATUS_FAILED, RunRecord

SPEC = SweepSpec.build("selftest", {"scale": [1.0, 2.0]}, n_seeds=3, base_seed=7)


def _filled_store(tmp_path, name="s"):
    store = RunStore(tmp_path / name)
    run_sweep(SPEC, store, serial=True)
    return store


# ----------------------------------------------------------------------
# Markdown rendering
# ----------------------------------------------------------------------
def test_markdown_has_table_per_experiment_with_ci(tmp_path):
    text = render_store_markdown(_filled_store(tmp_path))
    assert "#### `selftest`" in text
    assert "| cell | seeds | draws | value |" in text
    assert "scale=1.0" in text and "scale=2.0" in text
    assert "±" in text  # multi-seed cells render mean ± ci95


def test_markdown_is_deterministic_across_stores(tmp_path):
    a = _filled_store(tmp_path, "a")
    b = _filled_store(tmp_path, "b")
    assert store_digest(a) == store_digest(b)
    assert render_store_markdown(a) == render_store_markdown(b)


def test_markdown_single_seed_cell_renders_bare_mean(tmp_path):
    spec = SweepSpec.build("selftest", {"scale": [1.0]}, n_seeds=1, base_seed=7)
    store = RunStore(tmp_path / "s")
    run_sweep(spec, store, serial=True)
    text = render_store_markdown(store)
    assert "±" not in text
    assert "1 seed per cell" in text


def test_markdown_excludes_failed_runs(tmp_path):
    store = _filled_store(tmp_path)
    store.put(
        RunRecord(
            run_key="deadbeef",
            experiment="selftest",
            params={"scale": 9.0},
            seed_index=0,
            root_seed=1,
            status=STATUS_FAILED,
            metrics={},
            error="boom",
        )
    )
    assert "scale=9.0" not in render_store_markdown(store)


def test_markdown_experiment_filter(tmp_path):
    store = _filled_store(tmp_path)
    assert "selftest" in render_store_markdown(store, experiments=["selftest"])
    assert render_store_markdown(store, experiments=["other"]).startswith(
        "_no successful runs"
    )


def test_markdown_empty_store(tmp_path):
    assert render_store_markdown(RunStore(tmp_path / "s")).startswith(
        "_no successful runs"
    )


def test_markdown_escapes_pipes_in_cell_labels():
    records = [
        RunRecord(
            run_key="k1",
            experiment="e",
            params={"label": "a|b"},
            seed_index=0,
            root_seed=1,
            status="ok",
            metrics={"m": 1.0},
        )
    ]
    text = render_markdown(aggregate_records(records))
    assert "a\\|b" in text


# ----------------------------------------------------------------------
# Tagged-section splicing
# ----------------------------------------------------------------------
def test_update_appends_section_to_existing_document(tmp_path):
    doc = tmp_path / "EXPERIMENTS.md"
    doc.write_text("# Experiments\n\nprose.\n")
    assert update_tagged_section(doc, "demo", "body\n") is True
    text = doc.read_text()
    assert text.startswith("# Experiments")
    assert "<!-- sweep-report:demo -->" in text
    assert "<!-- /sweep-report:demo -->" in text
    assert "do not edit by hand" in text


def test_update_replaces_between_markers_preserving_surroundings(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "before\n\n<!-- sweep-report:t -->\nold\n<!-- /sweep-report:t -->\n\nafter\n"
    )
    update_tagged_section(doc, "t", "new body\n")
    text = doc.read_text()
    assert "old" not in text and "new body" in text
    assert text.startswith("before\n") and text.endswith("after\n")


def test_update_is_idempotent(tmp_path):
    doc = tmp_path / "doc.md"
    update_tagged_section(doc, "t", "body\n")
    first = doc.read_text()
    assert update_tagged_section(doc, "t", "body\n") is False
    assert doc.read_text() == first


def test_check_passes_on_current_section_and_fails_on_stale(tmp_path):
    doc = tmp_path / "doc.md"
    update_tagged_section(doc, "t", "body\n")
    assert update_tagged_section(doc, "t", "body\n", check=True) is False
    with pytest.raises(SectionCheckFailed, match="stale"):
        update_tagged_section(doc, "t", "different\n", check=True)
    # check never writes
    assert "body" in doc.read_text() and "different" not in doc.read_text()


def test_check_fails_on_missing_document(tmp_path):
    with pytest.raises(SectionCheckFailed):
        update_tagged_section(tmp_path / "absent.md", "t", "x\n", check=True)


def test_unclosed_marker_is_an_error(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("<!-- sweep-report:t -->\nno closing marker\n")
    with pytest.raises(ValueError, match="no closing marker"):
        update_tagged_section(doc, "t", "x\n")


def test_invalid_tag_rejected(tmp_path):
    with pytest.raises(ValueError, match="invalid section tag"):
        tagged_section("bad tag -->", "x")


def test_two_tags_coexist(tmp_path):
    doc = tmp_path / "doc.md"
    update_tagged_section(doc, "one", "first\n")
    update_tagged_section(doc, "two", "second\n")
    update_tagged_section(doc, "one", "first revised\n")
    text = doc.read_text()
    assert "first revised" in text and "second" in text
    assert text.count("<!-- sweep-report:one -->") == 1
    assert text.count("<!-- sweep-report:two -->") == 1
