"""The unsharded metro kernel: determinism, counters, stepping modes."""

from collections import Counter
from dataclasses import replace

import pytest

from repro.core.config import SystemConfig
from repro.metro.kernel import MetroKernel
from repro.metro.spec import MetroSpec, build_population
from repro.obs.tracer import Tracer


def make_kernel(config=None, *, nodes=150, users=600, tracer=None, fps=10.0):
    config = config if config is not None else SystemConfig(seed=5)
    spec = MetroSpec(nodes=nodes, users=users, region_km=20.0, fps=fps)
    population = build_population(spec, config.seed)
    return MetroKernel(config, spec, population, tracer=tracer)


def config_for_tests(**overrides):
    """Short-run friendly: dwell low enough that switches can happen."""
    kwargs = {"seed": 5, "min_dwell_ms": 1_000.0}
    kwargs.update(overrides)
    return SystemConfig(**kwargs)


def event_multiset(tracer):
    return Counter(
        tuple(sorted(e.to_dict().items())) for e in tracer.events()
    )


def test_all_users_attach_and_stream():
    kernel = make_kernel()
    report = kernel.run(5.0)
    assert report.unattached_initial == 0
    assert report.frames_done == 600 * 10 * 5
    assert report.frames_lost == 0
    assert report.mean_latency_ms > 0


def test_counters_are_deterministic_across_runs():
    a = make_kernel(config_for_tests()).run(10.0)
    b = make_kernel(config_for_tests()).run(10.0)
    assert a.frames_done == b.frames_done
    assert a.switches == b.switches
    assert a.latency_sum_ms == b.latency_sum_ms
    assert a.latency_max_ms == b.latency_max_ms


def test_trace_is_deterministic_and_ordered():
    tracers = [Tracer(enabled=True, capacity=1 << 20) for _ in range(2)]
    for tracer in tracers:
        make_kernel(config_for_tests(), tracer=tracer).run(5.0)
    a = [e.to_dict() for e in tracers[0].events()]
    b = [e.to_dict() for e in tracers[1].events()]
    assert a == b
    assert len(a) > 0


def test_scheduled_failure_is_detected_and_covered():
    tracer = Tracer(enabled=True, capacity=1 << 20)
    config = config_for_tests()
    kernel = make_kernel(config, tracer=tracer)
    victim = int(kernel.n_gid[0])
    kernel.schedule_node_fail(victim, at_ms=2_000.0)
    report = kernel.run(8.0)
    fails = tracer.events("node_fail")
    assert len(fails) == 1 and fails[0].node_id == f"n{victim}"
    # Every user parked on the victim either failed over or was orphaned.
    assert report.covered_failovers + report.uncovered_failures >= 0
    assert not kernel.n_alive[0]


def test_schedule_fail_rejects_unknown_node():
    kernel = make_kernel()
    with pytest.raises(KeyError):
        kernel.schedule_node_fail(10**9, at_ms=100.0)


def test_step_to_requires_tick_boundary():
    kernel = make_kernel()
    with pytest.raises(ValueError):
        kernel.step_to(333.0)  # not a multiple of cohort_tick_ms=250


def test_batched_and_per_client_counters_match():
    """The two stepping modes are observably the same simulation."""
    batched = make_kernel(config_for_tests(cohort_batching=True)).run(5.0)
    per_client = make_kernel(config_for_tests(cohort_batching=False)).run(5.0)
    assert batched.frames_done == per_client.frames_done
    assert batched.frames_lost == per_client.frames_lost
    assert batched.switches == per_client.switches
    assert batched.covered_failovers == per_client.covered_failovers
    # Identical per-frame latencies; the accumulation order differs, so
    # the float sums agree to rounding, not bit-for-bit.
    assert batched.latency_max_ms == per_client.latency_max_ms
    assert batched.mean_latency_ms == pytest.approx(
        per_client.mean_latency_ms, rel=1e-9
    )


def test_traced_and_untraced_batched_runs_agree():
    """Tracing swaps in a python loop; it must not change the physics."""
    tracer = Tracer(enabled=True, capacity=1 << 20)
    traced = make_kernel(config_for_tests(), tracer=tracer).run(5.0)
    untraced = make_kernel(config_for_tests()).run(5.0)
    assert traced.frames_done == untraced.frames_done
    assert traced.switches == untraced.switches
    assert traced.latency_sum_ms == untraced.latency_sum_ms
    assert traced.latency_max_ms == untraced.latency_max_ms


def test_per_client_mode_recycles_pooled_events():
    report = make_kernel(config_for_tests(cohort_batching=False)).run(5.0)
    assert report.pool_acquired == report.frames_advanced
    assert report.pool_recycled > report.pool_acquired // 2


def test_batched_mode_schedules_no_frame_events():
    report = make_kernel(config_for_tests(cohort_batching=True)).run(5.0)
    assert report.pool_acquired == 0


def test_run_rejects_nonpositive_horizon():
    kernel = make_kernel()
    with pytest.raises(ValueError):
        kernel.run(0.0)


def test_frame_accounting_matches_fps():
    config = config_for_tests()
    report = make_kernel(config, nodes=80, users=200, fps=4.0).run(10.0)
    assert report.frames_done + report.frames_lost == 200 * 4 * 10
