"""Unit tests for the streaming trace-invariant suite (``repro.verify``).

Each invariant is exercised on hand-built synthetic event sequences —
one that trips it and one nearby sequence that must not — then the full
suite is run over real canonical chaos traces from the sim backend,
which must come back clean.
"""

import pytest

from repro.obs.events import (
    AttachmentExpired,
    CoveredFailover,
    DegradedFallback,
    FaultInjected,
    FrameDone,
    FrameStart,
    JoinAccept,
    ManagerPromote,
    NodeFail,
    NodeRestart,
)
from repro.verify import (
    AttachmentConsistency,
    Budgets,
    ClientStall,
    DegradedFallbackCorrect,
    NoSplitBrain,
    PromotionBudget,
    SeqMonotonic,
    Violation,
    check_events,
    default_invariants,
)


def _check(events, invariant, **kwargs):
    return check_events(events, invariants=[invariant], **kwargs)


# ----------------------------------------------------------------------
# Violation / Budgets plumbing
# ----------------------------------------------------------------------
def test_violation_round_trips_through_dict():
    v = Violation("failover_stall", "user-01 stalled", 17, 1234.5, "user-01")
    assert Violation.from_dict(v.to_dict()) == v


def test_violation_str_names_end_of_trace():
    v = Violation("failover_stall", "silent", -1, 100.0)
    assert "end of trace" in str(v)
    assert "event #4" in str(Violation("x", "m", 4, 0.0))


def test_budgets_scaled_multiplies_every_budget():
    scaled = Budgets().scaled(0.2)
    assert scaled.promotion_ms == pytest.approx(50.0)
    assert scaled.failover_ms == pytest.approx(400.0)
    # identity scale returns the same object (cheap common case)
    b = Budgets()
    assert b.scaled(1.0) is b


def test_budgets_from_config_tracks_detection_window():
    class Cfg:
        failure_detection_ms = 300.0
        probing_period_ms = 2_000.0
        attachment_lease_ms = None

    b = Budgets.from_config(Cfg())
    assert b.promotion_ms == pytest.approx(350.0)
    assert b.failover_ms >= 2.0 * Cfg.probing_period_ms


def test_budgets_round_trip_and_unknown_keys_ignored():
    b = Budgets(promotion_ms=99.0)
    data = dict(b.to_dict(), bogus=1.0)
    assert Budgets.from_dict(data) == b


def test_check_events_rejects_nonpositive_time_scale():
    with pytest.raises(ValueError):
        check_events([], time_scale=0.0)


def test_check_events_skips_unknown_dict_event_types():
    events = [{"type": "from-the-future", "t_ms": 5.0}]
    assert check_events(events) == []


# ----------------------------------------------------------------------
# NoSplitBrain
# ----------------------------------------------------------------------
def test_no_split_brain_flags_double_promotion_in_one_epoch():
    events = [
        ManagerPromote(100.0, shard=0, replica=1, reason="failover"),
        ManagerPromote(150.0, shard=0, replica=2, reason="failover"),
    ]
    (violation,) = _check(events, NoSplitBrain(Budgets()))
    assert violation.invariant == "no_split_brain"
    assert "second primary" in violation.message
    assert violation.event_index == 1


def test_no_split_brain_allows_one_promotion_per_epoch():
    events = [
        ManagerPromote(100.0, shard=0, replica=1, reason="failover"),
        FaultInjected(200.0, "out-0", "outage_start", dst="shard:0"),
        ManagerPromote(300.0, shard=0, replica=0, reason="failover"),
    ]
    assert _check(events, NoSplitBrain(Budgets())) == []


def test_no_split_brain_flags_promotion_of_downed_replica():
    events = [
        ManagerPromote(50.0, shard=1, replica=2, reason="failover"),
        FaultInjected(100.0, "out-0", "outage_start", dst="shard:1"),
        ManagerPromote(150.0, shard=1, replica=2, reason="failover"),
    ]
    (violation,) = _check(events, NoSplitBrain(Budgets()))
    assert "downed primary" in violation.message
    assert violation.subject == "shard:1"


# ----------------------------------------------------------------------
# PromotionBudget
# ----------------------------------------------------------------------
def test_promotion_within_budget_is_clean():
    events = [
        FaultInjected(1_000.0, "out-0", "outage_start", dst="shard:0"),
        ManagerPromote(1_100.0, shard=0, replica=1, reason="failover"),
    ]
    assert _check(events, PromotionBudget(Budgets())) == []


def test_promotion_past_budget_is_flagged():
    events = [
        FaultInjected(1_000.0, "out-0", "outage_start", dst="shard:0"),
        ManagerPromote(1_600.0, shard=0, replica=1, reason="failover"),
    ]
    (violation,) = _check(events, PromotionBudget(Budgets()))
    assert violation.invariant == "promotion_budget"
    assert "600ms" in violation.message


def test_missing_promotion_needs_standby_evidence_or_assertion():
    events = [
        FaultInjected(1_000.0, "out-0", "outage_start", dst="shard:0"),
        NodeFail(5_000.0, "edge-z"),  # extends the trace past the budget
    ]
    # No promotion anywhere in the trace: replicas=1 is indistinguishable
    # from a broken standby, so nothing is reported by default...
    assert _check(events, PromotionBudget(Budgets())) == []
    # ...but the caller can assert standby capability.
    (violation,) = _check(
        events, PromotionBudget(Budgets(), expect_promotion=True)
    )
    assert "unanswered" in violation.message
    assert violation.event_index == 0


def test_expect_promotion_false_suppresses_even_with_other_promotes():
    events = [
        FaultInjected(1_000.0, "out-0", "outage_start", dst="shard:0"),
        ManagerPromote(1_050.0, shard=1, replica=1, reason="failover"),
    ]
    assert _check(
        events, PromotionBudget(Budgets(), expect_promotion=False)
    ) == []


# ----------------------------------------------------------------------
# ClientStall
# ----------------------------------------------------------------------
def test_client_stall_flags_gap_beyond_failover_budget():
    events = [
        JoinAccept(0.0, "user-01", "edge-a"),
        FrameDone(100.0, "user-01", "edge-a", 1, 50.0, latency_ms=50.0),
        FrameDone(2_500.0, "user-01", "edge-a", 2, 2_450.0, latency_ms=50.0),
    ]
    (violation,) = _check(events, ClientStall(Budgets()))
    assert violation.invariant == "failover_stall"
    assert "2400ms" in violation.message
    assert violation.subject == "user-01"


def test_client_stall_clean_when_frames_keep_flowing():
    events = [JoinAccept(0.0, "user-01", "edge-a")] + [
        FrameDone(t, "user-01", "edge-a", i + 1, t - 50.0, latency_ms=50.0)
        for i, t in enumerate((500.0, 1_500.0, 2_500.0))
    ]
    assert _check(events, ClientStall(Budgets())) == []


def test_client_stall_flags_join_without_any_frame():
    events = [JoinAccept(0.0, "user-02", "edge-a")]
    (violation,) = _check(events, ClientStall(Budgets()))
    assert "never completed" in violation.message
    assert violation.event_index == -1


def test_client_stall_flags_silent_tail():
    events = [
        JoinAccept(0.0, "user-01", "edge-a"),
        FrameDone(100.0, "user-01", "edge-a", 1, 50.0, latency_ms=50.0),
        NodeFail(3_000.0, "edge-b"),  # pushes end-of-trace past the budget
    ]
    (violation,) = _check(events, ClientStall(Budgets()))
    assert "silent for the last" in violation.message


# ----------------------------------------------------------------------
# SeqMonotonic
# ----------------------------------------------------------------------
def test_seq_monotonic_flags_repeat_and_regression():
    events = [
        FrameStart(0.0, "user-01", "edge-a", 1),
        FrameStart(10.0, "user-01", "edge-a", 2),
        FrameStart(20.0, "user-01", "edge-a", 2),
        FrameStart(30.0, "user-01", "edge-a", 1),
    ]
    violations = _check(events, SeqMonotonic(Budgets()))
    assert [v.event_index for v in violations] == [2, 3]
    assert all(v.invariant == "seq_monotonic" for v in violations)


def test_seq_monotonic_is_per_user():
    events = [
        FrameStart(0.0, "user-01", "edge-a", 5),
        FrameStart(10.0, "user-02", "edge-a", 5),
        FrameStart(20.0, "user-01", "edge-a", 6),
    ]
    assert _check(events, SeqMonotonic(Budgets())) == []


# ----------------------------------------------------------------------
# AttachmentConsistency
# ----------------------------------------------------------------------
def test_attachment_flags_join_to_dead_node():
    events = [
        NodeFail(100.0, "edge-a"),
        JoinAccept(200.0, "user-01", "edge-a"),
        NodeRestart(300.0, "edge-a"),
    ]
    (violation,) = _check(events, AttachmentConsistency(Budgets()))
    assert "joined dead node" in violation.message


def test_attachment_flags_failover_to_dead_node():
    events = [
        NodeFail(100.0, "edge-a"),
        CoveredFailover(200.0, "user-01", "edge-a"),
        NodeRestart(300.0, "edge-a"),  # restart clears attached-to-dead
    ]
    violations = _check(events, AttachmentConsistency(Budgets()))
    assert len(violations) == 1
    assert "failed over to dead node" in violations[0].message


def test_attachment_allows_inflight_completion_within_grace():
    events = [
        JoinAccept(0.0, "user-01", "edge-a"),
        NodeFail(100.0, "edge-a"),
        FrameDone(800.0, "user-01", "edge-a", 1, 50.0, latency_ms=750.0),
        NodeRestart(900.0, "edge-a"),
    ]
    assert _check(events, AttachmentConsistency(Budgets())) == []


def test_attachment_flags_completion_long_after_death():
    events = [
        NodeFail(100.0, "edge-a"),
        FrameDone(1_500.0, "user-01", "edge-a", 1, 50.0, latency_ms=1_450.0),
        NodeRestart(1_600.0, "edge-a"),
    ]
    (violation,) = _check(events, AttachmentConsistency(Budgets()))
    assert "after it died" in violation.message


def test_attachment_flags_double_attach():
    events = [
        JoinAccept(0.0, "user-01", "edge-a"),
        FrameStart(10.0, "user-01", "edge-b", 1),
    ]
    (violation,) = _check(events, AttachmentConsistency(Budgets()))
    assert "double-attach" in violation.message


def test_attachment_flags_stranded_admission_after_expiry():
    events = [
        AttachmentExpired(100.0, "edge-a", "user-01", idle_ms=800.0),
        FrameStart(1_200.0, "user-01", "edge-a", 1),
    ]
    (violation,) = _check(events, AttachmentConsistency(Budgets()))
    assert "stranded admission" in violation.message


def test_attachment_rejoin_clears_expiry():
    events = [
        AttachmentExpired(100.0, "edge-a", "user-01", idle_ms=800.0),
        JoinAccept(150.0, "user-01", "edge-a"),
        FrameStart(1_200.0, "user-01", "edge-a", 1),
    ]
    assert _check(events, AttachmentConsistency(Budgets())) == []


def test_attachment_flags_attached_to_dead_node_at_end():
    events = [
        JoinAccept(0.0, "user-01", "edge-a"),
        NodeFail(100.0, "edge-a"),
    ]
    (violation,) = _check(events, AttachmentConsistency(Budgets()))
    assert "at end of trace" in violation.message
    assert violation.event_index == -1


# ----------------------------------------------------------------------
# DegradedFallbackCorrect
# ----------------------------------------------------------------------
def test_degraded_fallback_without_evidence_is_flagged():
    events = [DegradedFallback(1_000.0, "user-01", reason="timeout")]
    (violation,) = _check(events, DegradedFallbackCorrect(Budgets()))
    assert "no manager outage" in violation.message


def test_degraded_fallback_near_outage_evidence_is_clean():
    events = [
        FaultInjected(900.0, "o", "outage", src="user-01", dst="central-manager"),
        DegradedFallback(1_000.0, "user-01", reason="timeout"),
    ]
    assert _check(events, DegradedFallbackCorrect(Budgets())) == []


def test_degraded_fallback_inside_open_window_is_clean():
    events = [
        FaultInjected(0.0, "o", "outage_start"),
        DegradedFallback(5_000.0, "user-01", reason="timeout"),
        FaultInjected(6_000.0, "o", "outage_end"),
    ]
    assert _check(events, DegradedFallbackCorrect(Budgets())) == []


def test_degraded_fallback_long_after_window_closes_is_flagged():
    events = [
        FaultInjected(0.0, "o", "outage_start"),
        FaultInjected(1_000.0, "o", "outage_end"),
        DegradedFallback(4_000.0, "user-01", reason="timeout"),
    ]
    (violation,) = _check(events, DegradedFallbackCorrect(Budgets()))
    assert "after the last outage evidence" in violation.message


# ----------------------------------------------------------------------
# The full suite over real traces
# ----------------------------------------------------------------------
def test_default_suite_has_every_invariant():
    names = {inv.name for inv in default_invariants(Budgets())}
    assert names == {
        "no_split_brain",
        "promotion_budget",
        "failover_stall",
        "seq_monotonic",
        "attachment_consistency",
        "degraded_fallback",
    }


def test_canonical_sim_chaos_trace_is_invariant_clean():
    from repro.faults.scenarios import run_sim_chaos

    report, events = run_sim_chaos(seed=0)
    assert report.ok, (report.problems, report.task_errors)
    assert check_events(events) == []
    # the wire-format path must agree with the typed path
    dicts = [e.to_dict() for e in events]
    assert check_events(dicts) == []


def test_canonical_controlplane_trace_is_invariant_clean():
    from repro.faults.scenarios import run_sim_controlplane_chaos

    report, events = run_sim_controlplane_chaos(seed=0)
    assert report.ok, (report.problems, report.task_errors)
    assert check_events(events, expect_promotion=True) == []


def test_weakened_detection_budget_trips_the_suite():
    """The CI smoke scenario: a 4 s detection window cannot meet the
    nominal 250 ms promotion budget — the suite must see it."""
    from repro.faults.scenarios import run_sim_controlplane_chaos

    _, events = run_sim_controlplane_chaos(
        seed=0, config_overrides={"failure_detection_ms": 4_000.0}
    )
    violations = check_events(events, expect_promotion=True)
    assert any(v.invariant == "promotion_budget" for v in violations)
