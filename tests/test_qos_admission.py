"""Tests for the QoS admission experiment (§IV-D extension)."""

import pytest

from repro.core.config import SystemConfig
from repro.experiments.qos_admission import run_qos_admission


@pytest.fixture(scope="module")
def result():
    return run_qos_admission(
        SystemConfig(seed=42),
        qos_latency_ms=90.0,
        user_counts=[6, 20],
        settle_ms=8_000.0,
        measure_ms=8_000.0,
        join_stagger_ms=1_000.0,
    )


def test_light_load_admits_everyone(result):
    cell = result.with_qos[6]
    assert cell.admitted == 6
    assert cell.rejected == 0


def test_overload_triggers_admission_control(result):
    with_qos = result.with_qos[20]
    without = result.without_qos[20]
    assert with_qos.rejected > 0
    assert without.rejected == 0


def test_admission_control_protects_admitted_users(result):
    with_qos = result.with_qos[20]
    without = result.without_qos[20]
    # Admitted users under QoS suffer far fewer violations than the
    # open-door population.
    assert with_qos.violation_rate < without.violation_rate / 2
    assert with_qos.admitted_mean_ms < without.admitted_mean_ms


def test_accounting_is_complete(result):
    for n, cell in result.with_qos.items():
        assert cell.admitted + cell.rejected == n
        assert 0.0 <= cell.violation_rate <= 1.0
