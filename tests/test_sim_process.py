"""Unit tests for generator-based processes."""

import pytest

from repro.sim.process import Process, sleep


def test_process_runs_to_completion(sim):
    log = []

    def worker():
        log.append(("start", sim.now))
        yield 10.0
        log.append(("mid", sim.now))
        yield sleep(5.0)
        log.append(("end", sim.now))

    Process(sim, worker())
    sim.run_until(100.0)
    assert log == [("start", 0.0), ("mid", 10.0), ("end", 15.0)]


def test_process_start_delay(sim):
    log = []

    def worker():
        log.append(sim.now)
        yield 1.0

    Process(sim, worker(), start_delay=5.0)
    sim.run_until(10.0)
    assert log == [5.0]


def test_process_finished_flag(sim):
    def worker():
        yield 1.0

    process = Process(sim, worker())
    assert not process.finished
    sim.run_until(10.0)
    assert process.finished


def test_stop_terminates_early(sim):
    log = []

    def worker():
        while True:
            yield 10.0
            log.append(sim.now)

    process = Process(sim, worker())
    sim.run_until(25.0)
    process.stop()
    sim.run_until(100.0)
    assert log == [10.0, 20.0]
    assert process.finished


def test_stop_is_idempotent(sim):
    def worker():
        yield 1.0

    process = Process(sim, worker())
    sim.run_until(5.0)
    process.stop()
    process.stop()
    assert process.finished


def test_on_finish_callback(sim):
    finished = []

    def worker():
        yield 1.0

    Process(sim, worker(), name="w", on_finish=lambda p: finished.append(p.name))
    sim.run_until(5.0)
    assert finished == ["w"]


def test_negative_yield_raises(sim):
    def worker():
        yield -1.0

    Process(sim, worker(), name="bad")
    with pytest.raises(ValueError, match="negative delay"):
        sim.run_until(5.0)


def test_sleep_rejects_negative():
    with pytest.raises(ValueError):
        sleep(-0.1)


def test_generator_cleanup_on_stop(sim):
    cleaned = []

    def worker():
        try:
            while True:
                yield 10.0
        finally:
            cleaned.append(True)

    process = Process(sim, worker())
    sim.run_until(15.0)
    process.stop()
    assert cleaned == [True]


def test_two_processes_interleave(sim):
    log = []

    def worker(name, period):
        while True:
            yield period
            log.append((name, sim.now))

    a = Process(sim, worker("a", 10.0))
    b = Process(sim, worker("b", 15.0))
    sim.run_until(30.0)
    # At t=30 both fire; b's resume was scheduled earlier (t=15 vs t=20),
    # so stable ordering puts b first.
    assert log == [("a", 10.0), ("b", 15.0), ("a", 20.0), ("b", 30.0), ("a", 30.0)]
    a.stop()
    b.stop()
