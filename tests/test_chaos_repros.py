"""Regression corpus: every minimal reproducer ever hunted stays pinned.

``tests/golden/chaos_repros/`` holds the artifacts emitted by past
chaos hunts (each a shrunk plan + seed + config + expected violation).
Replaying one must reproduce its violation *exactly* — same invariant,
same event index, same timestamp — forever. A failure here means the
determinism contract broke (injector draw order, sim scheduling, trace
schema) or a behaviour change genuinely fixed/moved the bug; either
way the artifact diff is the starting point, not a file to regenerate
blindly.
"""

from pathlib import Path

import pytest

from repro.faults.search import ReproArtifact, replay_artifact

CORPUS = Path(__file__).parent / "golden" / "chaos_repros"
ARTIFACTS = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert ARTIFACTS, f"no repro artifacts found under {CORPUS}"


@pytest.mark.parametrize(
    "path", ARTIFACTS, ids=[p.stem for p in ARTIFACTS]
)
def test_golden_repro_replays_bit_identically(path):
    artifact = ReproArtifact.load(str(path))
    assert artifact.version == 1
    # the corpus keeps only *minimal* reproducers
    assert len(artifact.plan) <= 3

    report, events, reproduced = replay_artifact(artifact)
    assert events, "replay produced an empty trace"
    assert reproduced, (
        f"{path.name}: expected violation did not reproduce exactly.\n"
        f"expected: {artifact.violation}\n"
        f"got: {[str(v) for v in getattr(report, 'violations', [])]}"
    )
