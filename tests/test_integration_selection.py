"""Integration tests: the full system behaving as the paper describes.

Each test runs a complete simulated deployment and asserts a *system-
level* property — accurate selection under heterogeneity, contention-
driven spreading, dynamic re-balancing, QoS admission, host-workload
reaction — rather than any single module's behaviour.
"""

import pytest

from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.policies.local_policies import sort_with_qos
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.nodes.hardware import HardwareProfile, profile_by_name
from repro.nodes.host_workload import HostWorkload, HostWorkloadSchedule


def test_selection_accounts_for_network_and_processing():
    """A slower machine on a much better network path must win —
    the paper's core heterogeneity argument (Fig. 3 / Table III)."""
    system = EdgeSystem(SystemConfig(seed=31, top_n=2))
    # Fast hardware, terrible access link (e.g. DSL volunteer).
    system.spawn_node(
        "fast-far",
        profile_by_name("V1"),  # 24 ms frames
        GeoPoint(44.96, -93.24),
        access_extra_ms=40.0,  # +80 ms RTT
    )
    # Slower hardware, pristine access link.
    system.spawn_node(
        "slow-near",
        profile_by_name("V3"),  # 31 ms frames
        GeoPoint(44.96, -93.24),
        access_extra_ms=0.0,
    )
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(5_000.0)
    assert client.current_edge == "slow-near"


def test_users_spread_across_nodes_under_contention():
    """Six full-rate users cannot pile onto one node: GO-driven selection
    must spread them (the elasticity claim of Fig. 5/6)."""
    system = EdgeSystem(SystemConfig(seed=32, top_n=3))
    for i, name in enumerate(("A", "B", "C")):
        system.spawn_node(
            name,
            profile_by_name("t2.xlarge"),  # cap ~66 fps each
            GeoPoint(44.95 + i * 0.01, -93.25),
        )
    for i in range(6):
        user = f"u{i}"
        system.register_client_endpoint(user, GeoPoint(44.96, -93.24 + i * 0.002))
        client = EdgeClient(system, user)
        system.clients[user] = client
        system.sim.schedule(i * 1_000.0, client.start)
    system.run_for(40_000.0)
    per_node = {}
    for client in system.clients.values():
        per_node[client.current_edge] = per_node.get(client.current_edge, 0) + 1
    # 6 users x 20 fps = 120 fps; one node holds 66 fps: at least 2 nodes used
    assert len(per_node) >= 2
    assert max(per_node.values()) <= 4


def test_rebalancing_when_a_better_node_joins():
    """Fig. 8's downward latency steps: a newly joined node is discovered
    within a few probing periods and wins load."""
    config = SystemConfig(seed=33, top_n=2, min_dwell_ms=2_000.0)
    system = EdgeSystem(config)
    system.spawn_node("old-slow", profile_by_name("V5"), GeoPoint(44.96, -93.24))
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(10_000.0)
    assert client.current_edge == "old-slow"
    before = client.stats.mean_latency_ms
    system.spawn_node("new-fast", profile_by_name("V1"), GeoPoint(44.96, -93.25))
    system.run_for(15_000.0)
    assert client.current_edge == "new-fast"
    window = system.metrics.completed_latencies(start_ms=18_000.0)
    after = sum(window) / len(window)
    assert after < before


def test_qos_policy_rejects_when_no_node_qualifies():
    """QoS-constrained selection refuses to attach instead of violating
    the bound (§IV-D's admission control)."""
    system = EdgeSystem(SystemConfig(seed=34, top_n=2))
    system.spawn_node(
        "distant",
        profile_by_name("V1"),
        GeoPoint(44.96, -93.24),
        access_extra_ms=100.0,  # LO far above any sane QoS
    )
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    client = EdgeClient(system, "alice", local_policy=sort_with_qos(60.0))
    system.add_client(client)
    system.run_for(10_000.0)
    assert not client.attached
    assert client.stats.frames_completed == 0


def test_host_workload_drives_users_away():
    """Trigger type 3 end to end: background host load inflates the
    what-if and the client leaves for an unaffected node."""
    config = SystemConfig(seed=35, top_n=2, min_dwell_ms=2_000.0)
    system = EdgeSystem(config)
    interference = HostWorkloadSchedule(
        [HostWorkload(8_000.0, 60_000.0, cpu_fraction=0.85)]
    )
    system.spawn_node(
        "volatile",
        profile_by_name("V1"),
        GeoPoint(44.96, -93.24),
        host_schedule=interference,
    )
    system.spawn_node("steady", profile_by_name("V2"), GeoPoint(44.96, -93.25))
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(6_000.0)
    assert client.current_edge == "volatile"  # faster while idle
    system.run_for(24_000.0)  # interference active
    assert client.current_edge == "steady"


def test_what_if_cache_bounds_test_invocations():
    """Many probes, few test-workload runs (Fig. 9 a vs b): probing reads
    the cache; only state changes invoke the synthetic workload."""
    config = SystemConfig(seed=36, top_n=2, probing_period_ms=500.0)
    system = EdgeSystem(config)
    system.spawn_node("A", profile_by_name("V1"), GeoPoint(44.96, -93.24))
    system.spawn_node("B", profile_by_name("V2"), GeoPoint(44.96, -93.25))
    for i in range(4):
        user = f"u{i}"
        system.register_client_endpoint(user, GeoPoint(44.97, -93.25))
        system.add_client(EdgeClient(system, user))
    system.run_for(30_000.0)
    probes = system.metrics.total_probes()
    invocations = system.metrics.total_test_invocations()
    assert probes > 4 * invocations


def test_continuous_service_through_repeated_failures():
    """Rolling failures with TopN=3: every failover is covered by a
    backup and frames keep completing (Fig. 4's continuous service)."""
    config = SystemConfig(seed=37, top_n=3)
    system = EdgeSystem(config)
    for i in range(5):
        system.spawn_node(
            f"n{i}", profile_by_name("t2.xlarge"), GeoPoint(44.95 + i * 0.01, -93.25)
        )
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(5_000.0)
    for _ in range(3):
        victim = client.current_edge
        system.fail_node(victim)
        system.run_for(6_000.0)
        assert client.attached
    assert client.stats.uncovered_failures == 0
    assert client.stats.covered_failovers == 3
    # service continuity: frames completed in every 5-second slice
    for start in range(0, 20_000, 5_000):
        window = system.metrics.completed_latencies(float(start), float(start + 5_000))
        assert window, f"no frames completed in [{start}, {start + 5000})"


def test_elastic_scaling_with_user_count():
    """Average latency grows gracefully (not cliff-like) as users double,
    while per-node placement respects capacity."""

    def average_with(n_users):
        system = EdgeSystem(SystemConfig(seed=38, top_n=3))
        for i in range(4):
            system.spawn_node(
                f"n{i}",
                profile_by_name("t2.xlarge"),
                GeoPoint(44.95 + i * 0.01, -93.25),
            )
        for i in range(n_users):
            user = f"u{i}"
            system.register_client_endpoint(user, GeoPoint(44.965, -93.245))
            client = EdgeClient(system, user)
            system.clients[user] = client
            system.sim.schedule(i * 500.0, client.start)
        system.run_for(30_000.0)
        per_user = system.metrics.per_user_mean_latency(start_ms=20_000.0)
        return sum(per_user.values()) / len(per_user)

    light = average_with(2)
    heavy = average_with(8)
    assert light < heavy < light * 4


def test_heterogeneous_capacity_gets_proportional_load():
    """A node with 4x the capacity should end up with more users."""
    system = EdgeSystem(SystemConfig(seed=39, top_n=2))
    big = HardwareProfile("big", "big", 8, 20.0, parallelism=4)  # 200 fps
    small = HardwareProfile("small", "small", 2, 40.0, parallelism=1)  # 25 fps
    system.spawn_node("big", big, GeoPoint(44.96, -93.24))
    system.spawn_node("small", small, GeoPoint(44.96, -93.25))
    for i in range(6):
        user = f"u{i}"
        system.register_client_endpoint(user, GeoPoint(44.97, -93.25))
        client = EdgeClient(system, user)
        system.clients[user] = client
        system.sim.schedule(i * 1_000.0, client.start)
    system.run_for(40_000.0)
    on_big = sum(1 for c in system.clients.values() if c.current_edge == "big")
    assert on_big >= 4
