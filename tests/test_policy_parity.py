"""Bit-identity pins for the policy refactor.

``tests/golden/lo_policy_trace.jsonl`` was recorded before
``SelectionMachine`` learned about :class:`repro.policy.SelectionPolicy`
objects, with the legacy ``use_global_overhead=False`` (LO) ranking.
Replaying the identical scenario through the policy subsystem must
reproduce that trace byte-for-byte — the only new output allowed is the
``policy_decision`` detail event, which we filter out before comparing
(and separately assert is present).

A second family of tests pins policy objects against the legacy ranking
callables they replaced: wiring ``LocalOverheadPolicy`` /
``GlobalOverheadPolicy`` must produce the same trace as wiring
``sort_by_local_overhead`` / ``sort_by_global_overhead`` directly.
"""

import json
from pathlib import Path

from repro.api import ScenarioBuilder
from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.policies.local_policies import (
    sort_by_global_overhead,
    sort_by_local_overhead,
)
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name
from repro.policy import GlobalOverheadPolicy, LocalOverheadPolicy

GOLDEN = Path(__file__).parent / "golden" / "lo_policy_trace.jsonl"

NODES = [
    ("V1", GeoPoint(44.980, -93.260)),
    ("V2", GeoPoint(44.950, -93.200)),
    ("V3", GeoPoint(44.935, -93.155)),
    ("V4", GeoPoint(44.915, -93.130)),
    ("V5", GeoPoint(44.900, -93.100)),
]
CLIENTS = [
    ("u1", GeoPoint(44.970, -93.250)),
    ("u2", GeoPoint(44.940, -93.180)),
    ("u3", GeoPoint(44.910, -93.120)),
]


def _run_scenario(config, policy=None):
    """The exact scenario the golden trace was recorded from."""
    builder = ScenarioBuilder(config).observe(trace=True)
    if policy is not None:
        builder = builder.policy(policy)
    for node_id, point in NODES:
        builder = builder.node(node_id, profile_by_name(node_id), point=point)
    for user_id, point in CLIENTS:
        builder = builder.client(user_id, point=point)
    scenario = builder.build_scenario()
    system, tracer = scenario.system, scenario.tracer

    system.run_for(6_000.0)
    victim = system.clients["u1"].current_edge
    assert victim is not None
    system.fail_node(victim)
    system.run_for(6_000.0)
    system.restart_node(victim)
    system.run_for(6_000.0)
    tracer.close()
    return [json.dumps(e.to_dict(), sort_keys=True) for e in tracer.events()]


def test_lo_policy_replays_pre_refactor_golden_trace():
    config = SystemConfig(
        seed=1234, top_n=3, probing_period_ms=2_000.0, policy_spec="lo"
    )
    lines = _run_scenario(config)

    decisions = [l for l in lines if '"type": "policy_decision"' in l]
    assert decisions, "refactored machine should emit policy_decision events"
    replay = [l for l in lines if '"type": "policy_decision"' not in l]

    golden = GOLDEN.read_text().splitlines()
    assert replay == golden


def _trace_with(policy):
    config = SystemConfig(seed=77, top_n=3, probing_period_ms=2_000.0)
    lines = _run_scenario(config, policy=policy)
    return [l for l in lines if '"type": "policy_decision"' not in l]


def test_lo_policy_object_matches_legacy_callable():
    assert _trace_with(LocalOverheadPolicy()) == _trace_with(
        sort_by_local_overhead
    )


def test_go_policy_object_matches_legacy_callable():
    assert _trace_with(GlobalOverheadPolicy()) == _trace_with(
        sort_by_global_overhead
    )


def test_policy_decisions_cover_every_probe_round():
    """Every client that completed a probe round got a scored decision."""
    config = SystemConfig(
        seed=1234, top_n=3, probing_period_ms=2_000.0, policy_spec="lo"
    )
    lines = _run_scenario(config)
    decisions = [
        json.loads(l) for l in lines if '"type": "policy_decision"' in l
    ]
    users = {d["user_id"] for d in decisions}
    assert users == {"u1", "u2", "u3"}
    for d in decisions:
        assert d["policy"] == "lo"
        assert len(d["ranked"]) == len(d["scores"]) > 0
        # LO scores are the local overheads, sorted ascending.
        assert list(d["scores"]) == sorted(d["scores"])
