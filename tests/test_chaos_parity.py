"""Differential chaos tests: the same seeded fault plan drives the
simulator and the live asyncio runtime, and both must uphold the same
recovery invariants.

Also pins the determinism contract: same seed → identical sim trace;
an *empty* plan must leave the simulation bit-identical to running
with no injector at all (fault hooks are zero-cost when idle).
"""

import asyncio

import pytest

from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.faults import FaultInjector, FaultPlan
from repro.faults.scenarios import chaos_plan, run_live_chaos, run_sim_chaos
from repro.geo.point import GeoPoint
from repro.net.topology import EndpointSpec
from repro.nodes.hardware import profile_by_name
from repro.obs.tracer import Tracer


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_sim_chaos_same_seed_identical_trace():
    report_a, events_a = run_sim_chaos(7)
    report_b, events_b = run_sim_chaos(7)
    assert report_a.ok and report_b.ok
    assert [e.to_dict() for e in events_a] == [e.to_dict() for e in events_b]
    assert report_a.injected == report_b.injected


def test_sim_chaos_seed_changes_trace():
    _, events_a = run_sim_chaos(7)
    _, events_b = run_sim_chaos(8)
    assert [e.to_dict() for e in events_a] != [e.to_dict() for e in events_b]


def _plain_scenario_events(faults):
    """A small fault-free scenario, with or without an (idle) injector."""
    tracer = Tracer()
    system = EdgeSystem(
        SystemConfig(seed=5, probing_period_ms=2_000.0),
        trace=tracer,
        faults=faults,
    )
    center = GeoPoint(44.97, -93.25)
    for i, name in enumerate(("V1", "V2")):
        system.add_node(
            f"edge-{name}",
            profile_by_name(name),
            EndpointSpec(center.offset_km(1.0 + i, -1.0)),
        )
    system.add_client_endpoint("alice", EndpointSpec(center))
    system.add_client(EdgeClient(system, "alice"))
    system.run_for(8_000.0)
    return [e.to_dict() for e in tracer.events()]


def test_empty_plan_is_bit_identical_to_no_injector():
    without = _plain_scenario_events(None)
    with_idle = _plain_scenario_events(FaultInjector(FaultPlan(), seed=5))
    assert without == with_idle
    assert any(e["type"] == "frame_done" for e in without)  # a real run


# ----------------------------------------------------------------------
# Chaos recovery, per backend
# ----------------------------------------------------------------------
def test_sim_chaos_recovers_with_canonical_plan():
    report, events = run_sim_chaos(0)
    assert report.ok, report.problems
    # every fault family of the canonical plan actually fired
    assert report.injected.get("drop", 0) > 0
    assert report.injected.get("delay", 0) > 0
    assert report.injected.get("crash", 0) == 1
    assert report.injected.get("outage", 0) > 0
    assert report.injected.get("gray_start", 0) == 1
    types = {e.type for e in events}
    assert "fault_injected" in types
    assert "node_restart" in types
    assert "degraded_fallback" in types
    assert report.frames_completed > 0


@pytest.mark.slow
def test_live_chaos_recovers_with_canonical_plan():
    report, _ = asyncio.run(run_live_chaos(0))
    assert report.ok, (report.problems, report.task_errors)
    assert report.task_errors == []
    assert report.injected.get("crash", 0) == 1
    assert report.injected.get("restart", 0) == 1
    assert report.event_counts.get("fault_injected", 0) > 0
    assert report.event_counts.get("node_restart", 0) == 1
    assert report.frames_completed > 0


@pytest.mark.slow
def test_chaos_parity_shared_invariants():
    """The differential check: one plan, two runtimes, same contract."""
    sim_report, sim_events = run_sim_chaos(1)
    live_report, _ = asyncio.run(run_live_chaos(1))
    for report in (sim_report, live_report):
        assert report.ok, (report.backend, report.problems)
        assert report.frames_completed > 0
        # the crash fired and the node came back in both worlds
        assert report.injected.get("crash", 0) == 1
        assert report.event_counts.get("node_restart", 0) == 1
        # message chaos actually happened
        assert report.injected.get("drop", 0) > 0
    sim_types = {e.type for e in sim_events}
    assert "covered_failover" in sim_types
    assert live_report.event_counts.get("covered_failover", 0) > 0


@pytest.mark.slow
def test_live_chaos_drains_crash_window_past_horizon():
    """A NodeCrash whose restart lands *beyond* the plan horizon must
    still be executed before teardown: the controller drains the whole
    action script, so the cluster is torn down with the node back up and
    no cancelled-task debris leaking into the loop."""
    from repro.faults import NodeCrash
    from repro.nodes.hardware import VOLUNTEER_PROFILES

    horizon = 2_000.0
    node_id = f"edge-01-{VOLUNTEER_PROFILES[0].name}"
    plan = FaultPlan(
        crashes=(
            NodeCrash(
                "late-crash", node_id, at_ms=1_000.0, restart_at_ms=3_000.0
            ),
        )
    )
    report, events = asyncio.run(
        run_live_chaos(3, horizon_ms=horizon, plan=plan)
    )
    assert report.task_errors == []
    # both halves of the crash window ran, even the post-horizon restart
    assert report.injected.get("crash", 0) == 1
    assert report.injected.get("restart", 0) == 1
    restarts = [e for e in events if e.type == "node_restart"]
    assert [e.node_id for e in restarts] == [node_id]
    # end-state recovery invariants hold on the torn-down cluster
    assert report.problems == []


# ----------------------------------------------------------------------
# The canonical plan itself
# ----------------------------------------------------------------------
def test_chaos_plan_covers_every_fault_family():
    plan = chaos_plan(["edge-a", "edge-b", "edge-c"], horizon_ms=20_000.0)
    assert plan.message_faults
    assert plan.partitions
    assert plan.crashes and plan.crashes[0].restart_at_ms is not None
    assert plan.outages
    assert plan.gray_nodes
    rule_ids = [r.rule_id for r in plan.all_rules()]
    assert len(rule_ids) == len(set(rule_ids))


def test_chaos_plan_tail_is_fault_free():
    """The last 20% of the horizon is a settle window: no rule is
    active there, so a run always ends in recoverable conditions."""
    horizon = 20_000.0
    plan = chaos_plan(["edge-a", "edge-b", "edge-c"], horizon_ms=horizon)
    settle_start = 0.8 * horizon
    for fault in plan.message_faults:
        assert fault.window.end_ms <= settle_start
    for cut in plan.partitions:
        assert cut.window.end_ms <= settle_start
    for outage in plan.outages:
        assert outage.window.end_ms <= settle_start
    for gray in plan.gray_nodes:
        assert gray.window.end_ms <= settle_start
    for crash in plan.crashes:
        assert (crash.restart_at_ms or crash.at_ms) <= settle_start
