"""Unit tests for the AR application model, frame source, adaptive rate
controller and test workload descriptor."""

import random

import pytest

from repro.workload.adaptive import AdaptiveRateController
from repro.workload.ar import ARApplication, DEFAULT_AR_APP
from repro.workload.frames import FrameSource
from repro.workload.synthetic import TestWorkload


# ----------------------------------------------------------------------
# ARApplication
# ----------------------------------------------------------------------
def test_default_app_matches_paper():
    assert DEFAULT_AR_APP.frame_bytes == pytest.approx(0.02e6)
    assert DEFAULT_AR_APP.max_fps == 20.0


def test_frame_interval():
    assert DEFAULT_AR_APP.frame_interval_ms == pytest.approx(50.0)
    assert DEFAULT_AR_APP.interval_ms_at(10.0) == pytest.approx(100.0)


def test_interval_rejects_nonpositive_fps():
    with pytest.raises(ValueError):
        DEFAULT_AR_APP.interval_ms_at(0.0)


def test_app_validation():
    with pytest.raises(ValueError):
        ARApplication(frame_bytes=0.0)
    with pytest.raises(ValueError):
        ARApplication(min_fps=25.0, max_fps=20.0)
    with pytest.raises(ValueError):
        ARApplication(target_latency_ms=0.0)
    with pytest.raises(ValueError):
        ARApplication(response_bytes=-1.0)


# ----------------------------------------------------------------------
# FrameSource
# ----------------------------------------------------------------------
def test_frames_have_unique_increasing_ids():
    source = FrameSource("u1", DEFAULT_AR_APP)
    a = source.next_frame(0.0)
    b = source.next_frame(50.0)
    assert b.frame_id > a.frame_id
    assert a.user_id == "u1"
    assert b.created_ms == 50.0


def test_frame_size_is_standard_without_jitter():
    source = FrameSource("u1", DEFAULT_AR_APP)
    assert source.next_frame(0.0).size_bytes == DEFAULT_AR_APP.frame_bytes


def test_frame_size_jitter_bounded():
    source = FrameSource("u1", DEFAULT_AR_APP, random.Random(1), size_jitter=0.2)
    for _ in range(100):
        size = source.next_frame(0.0).size_bytes
        assert 0.8 * DEFAULT_AR_APP.frame_bytes <= size <= 1.2 * DEFAULT_AR_APP.frame_bytes


def test_size_jitter_validation():
    with pytest.raises(ValueError):
        FrameSource("u1", DEFAULT_AR_APP, size_jitter=1.0)


def test_frames_created_counter():
    source = FrameSource("u1", DEFAULT_AR_APP)
    for _ in range(3):
        source.next_frame(0.0)
    assert source.frames_created == 3


# ----------------------------------------------------------------------
# AdaptiveRateController
# ----------------------------------------------------------------------
def test_controller_starts_at_max():
    controller = AdaptiveRateController(DEFAULT_AR_APP)
    assert controller.fps == DEFAULT_AR_APP.max_fps


def test_high_latency_decreases_rate():
    controller = AdaptiveRateController(DEFAULT_AR_APP)
    for _ in range(10):
        controller.observe(400.0)
    assert controller.fps < DEFAULT_AR_APP.max_fps


def test_rate_never_below_min():
    controller = AdaptiveRateController(DEFAULT_AR_APP)
    for _ in range(200):
        controller.observe(2_000.0)
    assert controller.fps == DEFAULT_AR_APP.min_fps


def test_low_latency_recovers_toward_max():
    controller = AdaptiveRateController(DEFAULT_AR_APP)
    for _ in range(50):
        controller.observe(1_000.0)
    depressed = controller.fps
    for _ in range(200):
        controller.observe(40.0)
    assert controller.fps > depressed
    assert controller.fps == DEFAULT_AR_APP.max_fps


def test_hysteresis_band_holds_rate():
    controller = AdaptiveRateController(DEFAULT_AR_APP)
    # drive down first
    for _ in range(20):
        controller.observe(400.0)
    held = controller.fps
    # observations inside (headroom*target, target) change nothing
    inside = DEFAULT_AR_APP.target_latency_ms * 0.95
    controller.smoothed_latency_ms = inside
    controller.observe(inside)
    assert controller.fps == held


def test_ewma_smooths_single_spike():
    controller = AdaptiveRateController(DEFAULT_AR_APP, ewma_alpha=0.1)
    for _ in range(20):
        controller.observe(50.0)
    controller.observe(300.0)  # one 2x-target spike
    # smoothed latency (0.1*300 + 0.9*~50 = 75) stays under target
    assert controller.fps == DEFAULT_AR_APP.max_fps


def test_observe_rejects_negative():
    controller = AdaptiveRateController(DEFAULT_AR_APP)
    with pytest.raises(ValueError):
        controller.observe(-1.0)


def test_reset_restores_max():
    controller = AdaptiveRateController(DEFAULT_AR_APP)
    for _ in range(50):
        controller.observe(2_000.0)
    controller.reset()
    assert controller.fps == DEFAULT_AR_APP.max_fps
    assert controller.smoothed_latency_ms == 0.0


def test_interval_property():
    controller = AdaptiveRateController(DEFAULT_AR_APP)
    assert controller.interval_ms == pytest.approx(50.0)


def test_controller_validation():
    with pytest.raises(ValueError):
        AdaptiveRateController(DEFAULT_AR_APP, decrease_factor=1.0)
    with pytest.raises(ValueError):
        AdaptiveRateController(DEFAULT_AR_APP, increase_fps=0.0)
    with pytest.raises(ValueError):
        AdaptiveRateController(DEFAULT_AR_APP, ewma_alpha=0.0)
    with pytest.raises(ValueError):
        AdaptiveRateController(DEFAULT_AR_APP, headroom=1.5)


def test_adjustments_counter():
    controller = AdaptiveRateController(DEFAULT_AR_APP)
    for _ in range(5):
        controller.observe(2_000.0)
    assert controller.adjustments > 0


# ----------------------------------------------------------------------
# TestWorkload
# ----------------------------------------------------------------------
def test_test_workload_uses_standard_frame():
    workload = TestWorkload(DEFAULT_AR_APP)
    assert workload.frame_bytes == DEFAULT_AR_APP.frame_bytes


def test_invocation_delay_is_two_rtts():
    workload = TestWorkload(DEFAULT_AR_APP)
    assert workload.invocation_delay_ms(20.0) == pytest.approx(40.0)


def test_invocation_delay_rejects_negative():
    with pytest.raises(ValueError):
        TestWorkload(DEFAULT_AR_APP).invocation_delay_ms(-1.0)
