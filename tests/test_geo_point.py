"""Unit tests for GeoPoint and haversine distance."""

import pytest
from hypothesis import given, strategies as st

from repro.geo.point import GeoPoint, haversine_km

MSP = GeoPoint(44.9778, -93.2650)
STP = GeoPoint(44.9537, -93.0900)  # Saint Paul, ~14 km east
CHICAGO = GeoPoint(41.8781, -87.6298)


def test_distance_to_self_is_zero():
    assert MSP.distance_km(MSP) == pytest.approx(0.0)


def test_known_metro_distance():
    # Minneapolis to Saint Paul is ~14 km.
    assert MSP.distance_km(STP) == pytest.approx(14.0, abs=1.5)


def test_known_long_distance():
    # Minneapolis to Chicago is ~570 km.
    assert MSP.distance_km(CHICAGO) == pytest.approx(570.0, abs=20.0)


def test_distance_is_symmetric():
    assert MSP.distance_km(CHICAGO) == pytest.approx(CHICAGO.distance_km(MSP))


def test_distance_miles_conversion():
    km = MSP.distance_km(CHICAGO)
    assert MSP.distance_miles(CHICAGO) == pytest.approx(km * 0.621371)


def test_latitude_bounds_validated():
    with pytest.raises(ValueError):
        GeoPoint(91.0, 0.0)
    with pytest.raises(ValueError):
        GeoPoint(-90.5, 0.0)


def test_longitude_bounds_validated():
    with pytest.raises(ValueError):
        GeoPoint(0.0, 181.0)
    with pytest.raises(ValueError):
        GeoPoint(0.0, -180.5)


def test_boundary_coordinates_accepted():
    GeoPoint(90.0, 180.0)
    GeoPoint(-90.0, -180.0)


def test_points_are_hashable_and_equal_by_value():
    assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
    assert hash(GeoPoint(1.0, 2.0)) == hash(GeoPoint(1.0, 2.0))
    assert len({GeoPoint(1.0, 2.0), GeoPoint(1.0, 2.0)}) == 1


def test_offset_km_roundtrip_distance():
    moved = MSP.offset_km(north_km=3.0, east_km=4.0)
    assert MSP.distance_km(moved) == pytest.approx(5.0, rel=0.02)


def test_offset_north_increases_latitude():
    moved = MSP.offset_km(north_km=10.0, east_km=0.0)
    assert moved.lat > MSP.lat
    assert moved.lon == pytest.approx(MSP.lon)


def test_offset_at_pole_raises():
    pole = GeoPoint(90.0, 0.0)
    with pytest.raises(ValueError):
        pole.offset_km(0.0, 1.0)


@given(
    st.floats(min_value=-80, max_value=80),
    st.floats(min_value=-179, max_value=179),
    st.floats(min_value=-80, max_value=80),
    st.floats(min_value=-179, max_value=179),
)
def test_property_distance_nonnegative_and_symmetric(lat1, lon1, lat2, lon2):
    a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
    d = haversine_km(a, b)
    assert d >= 0.0
    assert d == pytest.approx(haversine_km(b, a))
    # No two Earth points are farther than half the circumference.
    assert d <= 20_038.0


@given(
    st.floats(min_value=-70, max_value=70),
    st.floats(min_value=-179, max_value=179),
    st.floats(min_value=-20, max_value=20),
    st.floats(min_value=-20, max_value=20),
)
def test_property_offset_distance_matches_euclidean(lat, lon, north, east):
    origin = GeoPoint(lat, lon)
    moved = origin.offset_km(north, east)
    expected = (north**2 + east**2) ** 0.5
    assert origin.distance_km(moved) == pytest.approx(expected, rel=0.05, abs=0.05)
