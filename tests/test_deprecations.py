"""Formal coverage for the deprecation surface.

Policy: a shim ships for one release with a :class:`DeprecationWarning`,
then is removed. The PR 1 system-construction shims
(``spawn_node``/``register_client_endpoint``) are in their warning
release and must keep working; the PR 2 metrics mutators
(``record_*``) have completed the cycle and must be gone.
"""

import warnings

import pytest

from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.metrics.collector import MetricsCollector
from repro.nodes.hardware import profile_by_name


def make_system() -> EdgeSystem:
    return EdgeSystem(SystemConfig(seed=3))


def test_spawn_node_warns_and_still_works():
    system = make_system()
    with pytest.warns(DeprecationWarning, match="spawn_node is deprecated"):
        node = system.spawn_node(
            "V1", profile_by_name("V1"), GeoPoint(44.98, -93.26)
        )
    assert node is system.nodes["V1"]
    assert system.topology.has_endpoint("V1")
    assert node.alive


def test_register_client_endpoint_warns_and_still_works():
    system = make_system()
    with pytest.warns(
        DeprecationWarning, match="register_client_endpoint is deprecated"
    ):
        system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    assert system.topology.has_endpoint("alice")


def test_modern_construction_api_does_not_warn():
    from repro.net.topology import EndpointSpec

    system = make_system()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        system.add_node(
            "V1", profile_by_name("V1"), EndpointSpec(GeoPoint(44.98, -93.26))
        )
        system.add_client_endpoint("alice", EndpointSpec(GeoPoint(44.97, -93.25)))


def test_use_global_overhead_warns_and_maps_to_policy_spec():
    with pytest.warns(
        DeprecationWarning, match="use_global_overhead is deprecated"
    ):
        legacy_go = SystemConfig(use_global_overhead=True)
    assert legacy_go.selection_policy_spec == "go"
    with pytest.warns(DeprecationWarning):
        legacy_lo = SystemConfig(use_global_overhead=False)
    assert legacy_lo.selection_policy_spec == "lo"


def test_policy_spec_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        config = SystemConfig(policy_spec="reliability")
    assert config.selection_policy_spec == "reliability"
    assert SystemConfig().selection_policy_spec == "go"


def test_policy_spec_and_legacy_flag_together_rejected():
    with pytest.raises(ValueError, match="not both"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            SystemConfig(policy_spec="lo", use_global_overhead=True)


def test_metrics_record_shims_are_removed():
    collector = MetricsCollector()
    for name in (
        "record_frame",
        "record_probe",
        "record_discovery",
        "record_test_invocation",
        "record_join",
        "record_failure",
        "record_covered_failover",
        "record_switch",
        "record_alive_nodes",
    ):
        assert not hasattr(collector, name), name


def test_with_top_n_warns_and_still_works():
    with pytest.warns(DeprecationWarning, match="with_top_n"):
        varied = SystemConfig().with_top_n(5)
    assert varied.top_n == 5
    assert varied.backup_count == 4


def test_with_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert SystemConfig().with_(top_n=5).top_n == 5
