"""Unit tests for the control plane's geohash-range shard map."""

from __future__ import annotations

import pytest

from repro.controlplane.sharding import DEFAULT_SHARD_PRECISION, ShardMap
from repro.geo import geohash as gh


class TestShardMap:
    def test_single_shard_owns_everything(self):
        shard_map = ShardMap(count=1)
        assert shard_map.owner_of_cell(0) == 0
        assert shard_map.owner_of_cell(shard_map.cell_space - 1) == 0

    def test_ranges_partition_the_cell_space(self):
        shard_map = ShardMap(count=7, precision=3)
        covered = 0
        previous_end = 0
        for shard in range(7):
            start, end = shard_map.shard_range(shard)
            assert start == previous_end
            covered += end - start
            previous_end = end
        assert covered == shard_map.cell_space
        assert previous_end == shard_map.cell_space

    def test_owner_respects_range_boundaries(self):
        shard_map = ShardMap(count=4, precision=3)
        for shard in range(4):
            start, end = shard_map.shard_range(shard)
            assert shard_map.owner_of_cell(start) == shard
            assert shard_map.owner_of_cell(end - 1) == shard

    def test_owner_of_geohash_matches_cell_codec(self):
        shard_map = ShardMap(count=5)
        for geohash in ("9zvx", "9zvxk", "dp0qrs", "c2b2qhw9e"):
            cell = gh.geohash_to_cell(geohash[:DEFAULT_SHARD_PRECISION])
            assert shard_map.owner_of_geohash(geohash) == shard_map.owner_of_cell(cell)

    def test_owner_of_geohash_requires_shard_precision(self):
        shard_map = ShardMap(count=2, precision=4)
        with pytest.raises(ValueError):
            shard_map.owner_of_geohash("9zv")

    def test_short_cell_expands_to_owner_range(self):
        """A covering cell coarser than the shard precision can straddle
        shards: its owners are the owners of its child-cell range."""
        shard_map = ShardMap(count=8, precision=4)
        parent = "9zv"  # precision 3 < shard precision 4
        owners = shard_map.owners_of_cell_str(parent)
        children = {
            shard_map.owner_of_geohash(parent + suffix)
            for suffix in "0123456789bcdefghjkmnpqrstuvwxyz"
        }
        assert set(owners) == children
        # Geohash integer ranges are contiguous, so the owners are too.
        assert list(owners) == list(range(owners[0], owners[-1] + 1))

    def test_owners_for_cells_sorted_and_deduped(self):
        shard_map = ShardMap(count=8, precision=4)
        cells = ["9zvx", "9zvy", "9zvx", "dp0q"]
        owners = shard_map.owners_for_cells(cells)
        assert list(owners) == sorted(set(owners))

    def test_derive_bumps_epoch(self):
        shard_map = ShardMap(count=2)
        successor = shard_map.derive(count=4)
        assert successor.epoch == shard_map.epoch + 1
        assert successor.count == 4
        assert successor.precision == shard_map.precision

    def test_validations(self):
        with pytest.raises(ValueError):
            ShardMap(count=0)
        with pytest.raises(ValueError):
            ShardMap(count=1, precision=0)
        with pytest.raises(ValueError):
            ShardMap(count=1, epoch=-1)
        with pytest.raises(ValueError):
            ShardMap(count=1 << 20, precision=1)  # more shards than cells

    def test_describe_mentions_count_and_epoch(self):
        text = ShardMap(count=3, epoch=2).describe()
        assert "3" in text and "2" in text
