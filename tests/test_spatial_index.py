"""Spatial index unit tests + indexed-vs-linear selection parity.

The fast path's correctness claim is exact: for identical registry
contents, ``GlobalSelectionPolicy.select`` must return *bit-identical*
results whether candidates come from the geohash index or from a full
linear scan. The property tests here drive both paths over seeded
randomized registries and require equality, not approximation.
"""

import math
import random

import pytest

from repro.core.messages import DiscoveryQuery, NodeStatus
from repro.core.policies.global_policies import (
    GeoProximityFilter,
    GlobalSelectionPolicy,
)
from repro.geo.geohash import encode
from repro.geo.point import GeoPoint
from repro.geo.spatial_index import GeohashSpatialIndex
from repro.geo.region import MSP_CENTER


def random_point(rng: random.Random, radius_km: float = 60.0) -> GeoPoint:
    distance = radius_km * math.sqrt(rng.random())
    bearing = rng.uniform(0.0, 2.0 * math.pi)
    return MSP_CENTER.offset_km(
        distance * math.cos(bearing), distance * math.sin(bearing)
    )


def make_status(
    node_id: str, point: GeoPoint, rng: random.Random, reported_at: float = 0.0
) -> NodeStatus:
    return NodeStatus(
        node_id=node_id,
        lat=point.lat,
        lon=point.lon,
        geohash=encode(point.lat, point.lon, precision=9),
        cores=rng.choice((2, 4, 8)),
        capacity_fps=rng.uniform(5.0, 60.0),
        attached_users=rng.randrange(0, 4),
        utilization=rng.random(),
        isp=rng.choice((None, "isp-a", "isp-b")),
        reported_at_ms=reported_at,
    )


def random_registry(rng: random.Random, n: int):
    return [make_status(f"n{i:04d}", random_point(rng), rng) for i in range(n)]


# ----------------------------------------------------------------------
# Index mechanics
# ----------------------------------------------------------------------
def test_insert_and_query_by_prefix():
    rng = random.Random(1)
    index = GeohashSpatialIndex()
    status = make_status("a", GeoPoint(44.97, -93.25), rng)
    index.insert(status)
    assert "a" in index
    assert len(index) == 1
    # Queryable through every prefix depth up to max_precision.
    for depth in range(1, index.max_precision + 1):
        assert [s.node_id for s in index.query_cells([status.geohash[:depth]])] == ["a"]


def test_query_deeper_than_max_precision_truncates():
    rng = random.Random(2)
    index = GeohashSpatialIndex()
    status = make_status("a", GeoPoint(44.97, -93.25), rng)
    index.insert(status)
    # A precision-9 cell is deeper than the index keeps buckets for; the
    # lookup truncates to max_precision and still finds the node.
    assert [s.node_id for s in index.query_cells([status.geohash])] == ["a"]


def test_reinsert_same_cell_updates_status():
    rng = random.Random(3)
    index = GeohashSpatialIndex()
    point = GeoPoint(44.97, -93.25)
    index.insert(make_status("a", point, rng))
    fresher = make_status("a", point, rng, reported_at=999.0)
    index.insert(fresher)
    assert len(index) == 1
    (got,) = index.query_cells([fresher.geohash[:4]])
    assert got.reported_at_ms == 999.0


def test_move_between_cells_reindexes():
    rng = random.Random(4)
    index = GeohashSpatialIndex()
    old = make_status("a", GeoPoint(44.97, -93.25), rng)
    new = make_status("a", GeoPoint(45.40, -92.50), rng)  # different cell
    assert old.geohash[:4] != new.geohash[:4]
    index.insert(old)
    index.insert(new)
    assert index.query_cells([old.geohash[:6]]) == []
    assert [s.node_id for s in index.query_cells([new.geohash[:6]])] == ["a"]
    assert len(index) == 1


def test_remove_clears_all_buckets():
    rng = random.Random(5)
    index = GeohashSpatialIndex()
    status = make_status("a", GeoPoint(44.97, -93.25), rng)
    index.insert(status)
    index.remove("a")
    assert "a" not in index
    assert len(index) == 0
    for depth in range(1, index.max_precision + 1):
        assert index.query_cells([status.geohash[:depth]]) == []
    index.remove("a")  # idempotent


def test_query_cells_deduplicates_across_cells():
    rng = random.Random(6)
    index = GeohashSpatialIndex()
    status = make_status("a", GeoPoint(44.97, -93.25), rng)
    index.insert(status)
    # Two distinct deep cells truncating to the same max_precision
    # prefix must yield the node once, not once per cell.
    deep_a = status.geohash[: index.max_precision] + "0"
    deep_b = status.geohash[: index.max_precision] + "1"
    got = index.query_cells([deep_a, deep_b])
    assert [s.node_id for s in got] == ["a"]


# ----------------------------------------------------------------------
# Indexed select() == linear select() (the parity property)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [7, 11, 23, 61])
@pytest.mark.parametrize(
    "radius_km,wide_km", [(4.0, 120.0), (12.0, 200.0), (80.0, 400.0)]
)
def test_indexed_selection_matches_linear_scan(seed, radius_km, wide_km):
    rng = random.Random(seed)
    registry = random_registry(rng, 400)
    index = GeohashSpatialIndex()
    for status in registry:
        index.insert(status)
    policy = GlobalSelectionPolicy(
        geo_filter=GeoProximityFilter(radius_km=radius_km, wide_radius_km=wide_km)
    )
    for i in range(50):
        point = random_point(rng)
        query = DiscoveryQuery(
            user_id=f"u{i}",
            lat=point.lat,
            lon=point.lon,
            top_n=rng.choice((1, 3, 5)),
            isp=rng.choice((None, "isp-a")),
        )
        assert policy.select(query, index=index) == policy.select(
            query, nodes=registry
        )


def test_parity_with_exclude_and_predicate():
    rng = random.Random(99)
    registry = random_registry(rng, 200)
    index = GeohashSpatialIndex()
    for status in registry:
        index.insert(status)
    policy = GlobalSelectionPolicy(
        geo_filter=GeoProximityFilter(radius_km=12.0, wide_radius_km=200.0),
        node_predicate=lambda s: s.cores >= 4,
    )
    excluded = tuple(s.node_id for s in registry[::7])
    for i in range(30):
        point = random_point(rng)
        query = DiscoveryQuery(
            user_id=f"u{i}", lat=point.lat, lon=point.lon, top_n=3, exclude=excluded
        )
        assert policy.select(query, index=index) == policy.select(
            query, nodes=registry
        )


def test_parity_after_churn():
    """Insert/update/remove interleaving must not desync index and scan."""
    rng = random.Random(5)
    registry = {s.node_id: s for s in random_registry(rng, 150)}
    index = GeohashSpatialIndex()
    for status in registry.values():
        index.insert(status)
    policy = GlobalSelectionPolicy(
        geo_filter=GeoProximityFilter(radius_km=12.0, wide_radius_km=200.0)
    )
    for step in range(60):
        action = rng.random()
        if action < 0.4 and registry:  # move/refresh an existing node
            node_id = rng.choice(sorted(registry))
            status = make_status(node_id, random_point(rng), rng, reported_at=step)
            registry[node_id] = status
            index.insert(status)
        elif action < 0.7 and registry:  # node ages out
            node_id = rng.choice(sorted(registry))
            del registry[node_id]
            index.remove(node_id)
        else:  # node joins
            status = make_status(f"j{step:03d}", random_point(rng), rng)
            registry[status.node_id] = status
            index.insert(status)
        point = random_point(rng)
        query = DiscoveryQuery(
            user_id=f"u{step}", lat=point.lat, lon=point.lon, top_n=3
        )
        assert policy.select(query, index=index) == policy.select(
            query, nodes=list(registry.values())
        )


def test_select_requires_exactly_one_source():
    policy = GlobalSelectionPolicy()
    query = DiscoveryQuery(user_id="u", lat=44.9, lon=-93.2, top_n=3)
    with pytest.raises(TypeError, match="exactly one"):
        policy.select(query)
    with pytest.raises(TypeError, match="exactly one"):
        policy.select(query, nodes=[], index=GeohashSpatialIndex())
