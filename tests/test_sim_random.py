"""Unit tests for named random streams."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.random import RandomStreams, derive_seed


def test_same_seed_same_stream_reproduces():
    a = RandomStreams(42).get("network").random()
    b = RandomStreams(42).get("network").random()
    assert a == b


def test_different_names_are_independent():
    streams = RandomStreams(42)
    a = [streams.get("a").random() for _ in range(5)]
    b = [streams.get("b").random() for _ in range(5)]
    assert a != b


def test_adding_a_stream_does_not_perturb_existing():
    solo = RandomStreams(7)
    solo_values = [solo.get("churn").random() for _ in range(10)]

    multi = RandomStreams(7)
    multi.get("network").random()  # extra consumer created first
    multi_values = [multi.get("churn").random() for _ in range(10)]
    assert solo_values == multi_values


def test_get_returns_same_object_per_name():
    streams = RandomStreams(1)
    assert streams.get("x") is streams.get("x")


def test_contains():
    streams = RandomStreams(1)
    assert "x" not in streams
    streams.get("x")
    assert "x" in streams


def test_fork_is_deterministic_and_distinct():
    fork_a = RandomStreams(42).fork("child")
    fork_b = RandomStreams(42).fork("child")
    assert fork_a.root_seed == fork_b.root_seed
    assert fork_a.root_seed != RandomStreams(42).root_seed


def test_for_run_reproduces_for_same_index():
    a = RandomStreams(42).for_run(3).get("metric").random()
    b = RandomStreams(42).for_run(3).get("metric").random()
    assert a == b


def test_for_run_distinct_indexes_are_non_overlapping():
    base = RandomStreams(42)
    universes = [base.for_run(i) for i in range(8)]
    assert len({u.root_seed for u in universes}) == 8
    draws = [
        tuple(u.get("metric").random() for _ in range(4)) for u in universes
    ]
    # no run's draw sequence repeats another's
    assert len(set(draws)) == len(draws)


def test_for_run_differs_from_parent_universe():
    base = RandomStreams(42)
    assert base.for_run(0).root_seed != base.root_seed


def test_for_run_negative_index_rejected():
    with pytest.raises(ValueError):
        RandomStreams(42).for_run(-1)


def test_for_run_independent_of_parent_stream_usage():
    fresh = RandomStreams(7).for_run(2).get("x").random()
    used = RandomStreams(7)
    used.get("a").random()  # consume from the parent first
    assert used.for_run(2).get("x").random() == fresh


def test_derive_seed_is_stable_across_calls():
    assert derive_seed(42, "network") == derive_seed(42, "network")


def test_derive_seed_differs_by_name_and_seed():
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a") != derive_seed(43, "a")


#: Known-good value pins cross-process determinism (hash() would not be).
def test_derive_seed_known_value():
    first = derive_seed(0, "x")
    assert first == derive_seed(0, "x")
    assert 0 <= first < 2**64


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=30))
def test_property_derived_seeds_in_range(seed, name):
    value = derive_seed(seed, name)
    assert 0 <= value < 2**64
