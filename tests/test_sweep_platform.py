"""Platform-parity suite: every ExecutionPlatform yields the same bits.

The elasticity claim of the sweep engine is that *where* a run executes
is invisible in the results: the inline reference, the process pool,
and the subprocess fan-out must all converge to the same
``aggregates_digest`` — including after a worker is killed mid-grid and
the sweep is resumed. The kill tests use the ``selftest`` experiment's
``crash_marker`` knob (die hard once, succeed on retry), which makes
worker death deterministic without any timing games.
"""

from collections import Counter

import pytest

from repro.obs import ListSink, Tracer
from repro.sweep import (
    InlinePlatform,
    RunOutcome,
    RunStore,
    SubprocessPlatform,
    SweepInterrupted,
    SweepSpec,
    aggregates_digest,
    make_platform,
    platform_names,
    run_sweep,
)
from repro.sweep.platform import OUTCOME_LOST, ExecutionPlatform
from repro.sweep.worker import run_job

SPEC = SweepSpec.build("selftest", {"scale": [1.0, 2.0]}, n_seeds=3, base_seed=7)

PLATFORM_NAMES = ["inline", "pool", "subprocess"]


def _tracer():
    return Tracer(sink=ListSink())


def _digest(result):
    return aggregates_digest(result.aggregates())


# ----------------------------------------------------------------------
# The platform registry and outcome contract
# ----------------------------------------------------------------------
def test_platform_registry_names():
    assert set(platform_names()) == {"inline", "local", "pool", "subprocess"}


def test_make_platform_instances_satisfy_protocol():
    for name in platform_names():
        platform = make_platform(name, workers=2)
        assert isinstance(platform, ExecutionPlatform)
        platform.shutdown()


def test_make_platform_unknown_name():
    with pytest.raises(KeyError, match="unknown platform"):
        make_platform("ssh")


def test_local_is_the_inline_platform():
    platform = make_platform("local")
    assert isinstance(platform, InlinePlatform)
    platform.shutdown()


def test_outcome_terminality():
    assert RunOutcome("k", "ok").is_terminal
    assert RunOutcome("k", "failed").is_terminal
    assert not RunOutcome("k", "timeout").is_terminal
    assert not RunOutcome("k", OUTCOME_LOST).is_terminal


# ----------------------------------------------------------------------
# Cross-platform bit-identity
# ----------------------------------------------------------------------
def test_all_platforms_produce_identical_digests(tmp_path):
    digests = {}
    for name in PLATFORM_NAMES:
        result = run_sweep(
            SPEC, RunStore(tmp_path / name), platform=name, workers=2
        )
        assert result.executed == 6 and result.failed == 0
        assert result.platform in (name, "inline")
        digests[name] = _digest(result)
    assert len(set(digests.values())) == 1, digests


def test_platform_records_keep_expansion_order(tmp_path):
    expected = [r.run_key for r in SPEC.expand()]
    for name in PLATFORM_NAMES:
        result = run_sweep(
            SPEC, RunStore(tmp_path / name), platform=name, workers=2
        )
        assert [r.run_key for r in result.records] == expected


def test_failure_containment_on_every_platform(tmp_path):
    spec = SweepSpec.build(
        "selftest", {"scale": [1.0], "fail": [0, 1]}, n_seeds=2, base_seed=3
    )
    for name in PLATFORM_NAMES:
        result = run_sweep(
            spec, RunStore(tmp_path / name), platform=name, workers=2
        )
        assert result.executed == 4 and result.failed == 2
        by_status = Counter(r.status for r in result.records)
        assert by_status == {"ok": 2, "failed": 2}


# ----------------------------------------------------------------------
# Subprocess platform: dead workers, requeue, resume
# ----------------------------------------------------------------------
def test_subprocess_worker_kill_requeues_and_matches_uninterrupted(tmp_path):
    marker = tmp_path / "crash.marker"
    spec = SweepSpec.build(
        "selftest",
        {"scale": [1.0, 2.0], "crash_marker": [str(marker)]},
        n_seeds=2,
        base_seed=11,
    )

    # Uninterrupted baseline: marker pre-exists, nothing crashes.
    marker.write_text("pre-existing\n")
    baseline = run_sweep(spec, RunStore(tmp_path / "base"), serial=True)
    assert baseline.failed == 0

    # Live drill: first run kills its worker (os._exit), the platform
    # reaps the dead worker, hands the run back, and the retry succeeds.
    marker.unlink()
    sink = ListSink()
    result = run_sweep(
        spec,
        RunStore(tmp_path / "killed"),
        platform="subprocess",
        workers=2,
        tracer=Tracer(sink=sink),
    )
    assert result.executed == 4 and result.failed == 0
    assert result.retried >= 1
    events = Counter(e.type for e in sink.events)
    assert events["worker_dead"] >= 1
    assert events["run_requeued"] >= 1
    assert events["worker_spawn"] >= 2
    assert _digest(result) == _digest(baseline)

    # The crashed-then-retried run burned one extra attempt.
    attempts = {r.run_key: r.attempts for r in result.records}
    assert max(attempts.values()) == 2


def test_subprocess_interrupt_then_resume_matches_uninterrupted(tmp_path):
    uninterrupted = run_sweep(
        SPEC, RunStore(tmp_path / "full"), platform="subprocess", workers=2
    )

    store = RunStore(tmp_path / "resumed")
    with pytest.raises(SweepInterrupted):
        run_sweep(SPEC, store, platform="subprocess", workers=2, limit=2)
    assert len(store) == 2

    resumed = run_sweep(SPEC, store, platform="subprocess", workers=2)
    # The resume executes exactly the missing runs...
    assert resumed.skipped == 2 and resumed.executed == 4
    # ...and converges to the uninterrupted digest.
    assert _digest(resumed) == _digest(uninterrupted)


def test_subprocess_kill_mid_grid_then_resume(tmp_path):
    marker = tmp_path / "crash.marker"
    spec = SweepSpec.build(
        "selftest",
        {"scale": [1.0, 2.0], "crash_marker": [str(marker)]},
        n_seeds=2,
        base_seed=11,
    )
    marker.write_text("no crashes in the baseline\n")
    baseline = run_sweep(spec, RunStore(tmp_path / "base"), serial=True)

    # Interrupt after 1 run with the crash armed: the worker dies once
    # along the way, then --limit stops the sweep.
    marker.unlink()
    store = RunStore(tmp_path / "killed")
    with pytest.raises(SweepInterrupted):
        run_sweep(spec, store, platform="subprocess", workers=2, limit=1)

    # The crashed run was requeued within the limit, so the store holds
    # exactly one success; the resume executes exactly the missing three.
    assert len(store.completed_keys()) == 1
    resumed = run_sweep(spec, store, platform="subprocess", workers=2)
    assert resumed.skipped == 1 and resumed.executed == 3
    assert resumed.failed == 0
    assert _digest(resumed) == _digest(baseline)


def test_subprocess_respawn_budget_exhaustion_records_failures(tmp_path):
    # Every run kills its worker; with the respawn budget bounded the
    # sweep must still terminate, recording the runs as failed.
    spec = SweepSpec.build(
        "selftest", {"crash": [1], "scale": [1.0]}, n_seeds=2, base_seed=5
    )
    result = run_sweep(
        spec,
        RunStore(tmp_path / "s"),
        platform="subprocess",
        workers=1,
        retries=1,
    )
    assert result.executed == 2 and result.failed == 2
    assert all(not r.ok for r in result.records)


def test_subprocess_platform_rejects_submit_after_shutdown():
    platform = SubprocessPlatform(workers=1)
    platform.shutdown()
    with pytest.raises(RuntimeError, match="shut down"):
        platform.submit(SPEC.expand()[0])


# ----------------------------------------------------------------------
# The worker protocol unit
# ----------------------------------------------------------------------
def test_run_job_ok():
    result = run_job(
        {
            "op": "run",
            "run_key": "k1",
            "experiment": "selftest",
            "params": {"scale": 2.0},
            "root_seed": 1234,
        }
    )
    assert result["op"] == "result" and result["status"] == "ok"
    assert result["run_key"] == "k1"
    assert set(result["metrics"]) == {"value", "draws"}


def test_run_job_contains_experiment_failure():
    result = run_job(
        {
            "op": "run",
            "run_key": "k2",
            "experiment": "selftest",
            "params": {"fail": 1},
            "root_seed": 1,
        }
    )
    assert result["status"] == "failed"
    assert "asked to fail" in result["error"]
    assert result["metrics"] == {}


def test_run_job_unknown_experiment_is_contained():
    result = run_job(
        {"op": "run", "run_key": "k3", "experiment": "nope", "root_seed": 0}
    )
    assert result["status"] == "failed"
    assert "unknown sweepable experiment" in result["error"]
