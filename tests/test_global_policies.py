"""Unit tests for manager-side global selection policies."""

import pytest

from repro.core.messages import DiscoveryQuery, NodeStatus
from repro.core.policies.global_policies import (
    GeoProximityFilter,
    GlobalSelectionPolicy,
)
from repro.geo import geohash as gh
from repro.geo.point import GeoPoint

USER_POINT = GeoPoint(44.97, -93.25)


def status(node_id, lat, lon, cores=4, utilization=0.0, isp=None, dedicated=False):
    return NodeStatus(
        node_id=node_id,
        lat=lat,
        lon=lon,
        geohash=gh.encode(lat, lon, 9),
        cores=cores,
        capacity_fps=cores * 10.0,
        attached_users=0,
        utilization=utilization,
        isp=isp,
        dedicated=dedicated,
    )


def query(top_n=3, isp=None, exclude=()):
    return DiscoveryQuery(
        "u1", USER_POINT.lat, USER_POINT.lon, top_n=top_n, isp=isp, exclude=exclude
    )


NEAR = status("near", 44.96, -93.24)
NEAR_2 = status("near2", 44.98, -93.26)
FAR = status("far", 41.88, -87.63)  # Chicago, ~570 km


# ----------------------------------------------------------------------
# GeoProximityFilter
# ----------------------------------------------------------------------
def test_filter_keeps_local_nodes():
    geo = GeoProximityFilter(radius_km=80.0, wide_radius_km=1_000.0)
    kept, widened = geo.apply(USER_POINT, [NEAR, FAR], min_candidates=1)
    assert [n.node_id for n in kept] == ["near"]
    assert not widened


def test_filter_widens_when_below_min_candidates():
    geo = GeoProximityFilter(radius_km=80.0, wide_radius_km=1_000.0)
    kept, widened = geo.apply(USER_POINT, [NEAR, FAR], min_candidates=2)
    assert {n.node_id for n in kept} == {"near", "far"}
    assert widened


def test_filter_does_not_report_widened_when_nothing_gained():
    geo = GeoProximityFilter(radius_km=80.0, wide_radius_km=1_000.0)
    kept, widened = geo.apply(USER_POINT, [NEAR], min_candidates=3)
    assert [n.node_id for n in kept] == ["near"]
    assert not widened


def test_filter_validates():
    with pytest.raises(ValueError):
        GeoProximityFilter(radius_km=100.0, wide_radius_km=50.0)
    with pytest.raises(ValueError):
        GeoProximityFilter(min_candidates=-1)


# ----------------------------------------------------------------------
# GlobalSelectionPolicy
# ----------------------------------------------------------------------
def test_policy_truncates_to_topn():
    policy = GlobalSelectionPolicy()
    nodes = [NEAR, NEAR_2, status("near3", 44.95, -93.23)]
    ids, _ = policy.select(query(top_n=2), nodes)
    assert len(ids) == 2


def test_policy_ranks_more_free_cores_higher():
    policy = GlobalSelectionPolicy()
    small = status("small", 44.96, -93.24, cores=2)
    big = status("big", 44.96, -93.24, cores=8)
    ids, _ = policy.select(query(), [small, big])
    assert ids[0] == "big"


def test_policy_penalizes_utilization():
    policy = GlobalSelectionPolicy()
    loaded = status("loaded", 44.96, -93.24, cores=8, utilization=0.9)
    idle = status("idle", 44.96, -93.24, cores=4, utilization=0.0)
    ids, _ = policy.select(query(), [loaded, idle])
    assert ids[0] == "idle"  # 4 free cores beat 0.8 free cores


def test_affiliation_is_a_bonus_not_a_veto():
    """A same-ISP node gets a nudge, but a much larger node still wins —
    a lexicographic affiliation-first sort would hide it entirely."""
    policy = GlobalSelectionPolicy()
    same_isp_small = status("samesmall", 44.96, -93.24, cores=2, isp="x")
    other_isp_big = status("otherbig", 44.96, -93.24, cores=8, isp="y")
    ids, _ = policy.select(query(top_n=2, isp="x"), [same_isp_small, other_isp_big])
    assert ids[0] == "otherbig"
    # but between equals, affiliation breaks the tie
    same_equal = status("same", 44.96, -93.24, cores=4, isp="x")
    other_equal = status("other", 44.96, -93.24, cores=4, isp="y")
    ids, _ = policy.select(query(isp="x"), [other_equal, same_equal])
    assert ids[0] == "same"


def test_exclusion_applies_before_selection():
    policy = GlobalSelectionPolicy()
    ids, _ = policy.select(query(exclude=("near",)), [NEAR, NEAR_2])
    assert ids == ["near2"]


def test_node_predicate_restricts_pool():
    policy = GlobalSelectionPolicy(node_predicate=lambda s: s.dedicated)
    dedicated = status("ded", 44.96, -93.24, dedicated=True)
    ids, _ = policy.select(query(), [NEAR, dedicated])
    assert ids == ["ded"]


def test_selection_is_deterministic_on_ties():
    policy = GlobalSelectionPolicy()
    a = status("aaa", 44.96, -93.24)
    b = status("bbb", 44.96, -93.24)
    first, _ = policy.select(query(), [b, a])
    second, _ = policy.select(query(), [a, b])
    assert first == second == ["aaa", "bbb"]


def test_empty_pool_returns_empty():
    ids, widened = GlobalSelectionPolicy().select(query(), [])
    assert ids == []
    assert not widened
