"""Unit and property tests for the frame-processing queue and the
analytic sojourn model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.nodes.hardware import HardwareProfile, profile_by_name
from repro.nodes.processing import (
    FrameProcessor,
    analytic_sojourn_ms,
    offered_load,
)


@pytest.fixture
def xlarge():
    return profile_by_name("t2.xlarge")  # 30 ms, parallelism 1


def make_processor(base_ms=30.0, parallelism=1, **kwargs):
    profile = HardwareProfile("test", "test cpu", 4, base_ms, parallelism=parallelism)
    return FrameProcessor(profile, **kwargs)


# ----------------------------------------------------------------------
# FCFS queue semantics
# ----------------------------------------------------------------------
def test_idle_frame_takes_service_time():
    proc = make_processor(base_ms=30.0)
    frame = proc.submit(100.0)
    assert frame.sojourn_ms == pytest.approx(30.0)
    assert frame.wait_ms == 0.0


def test_back_to_back_frames_queue():
    proc = make_processor(base_ms=30.0)
    first = proc.submit(0.0)
    second = proc.submit(0.0)
    assert first.completion_ms == pytest.approx(30.0)
    assert second.start_ms == pytest.approx(30.0)
    assert second.sojourn_ms == pytest.approx(60.0)


def test_parallel_servers_serve_concurrently():
    proc = make_processor(base_ms=30.0, parallelism=2)
    a = proc.submit(0.0)
    b = proc.submit(0.0)
    c = proc.submit(0.0)
    assert a.completion_ms == pytest.approx(30.0)
    assert b.completion_ms == pytest.approx(30.0)
    assert c.start_ms == pytest.approx(30.0)


def test_gap_lets_queue_drain():
    proc = make_processor(base_ms=30.0)
    proc.submit(0.0)
    later = proc.submit(100.0)
    assert later.wait_ms == 0.0


def test_queue_depth_reflects_backlog():
    proc = make_processor(base_ms=30.0)
    assert proc.queue_depth(0.0) == 0
    for _ in range(4):
        proc.submit(0.0)
    assert proc.queue_depth(0.0) == 4


def test_bounded_queue_sheds_load():
    proc = make_processor(base_ms=30.0, max_queue_depth=3)
    accepted = [proc.submit(0.0) for _ in range(6)]
    dropped = [f for f in accepted if f is None]
    assert len(dropped) == 3


def test_slowdown_inflates_service():
    proc = make_processor(base_ms=30.0)
    proc.set_slowdown(2.0)
    assert proc.submit(0.0).sojourn_ms == pytest.approx(60.0)


def test_slowdown_rejects_below_one():
    with pytest.raises(ValueError):
        make_processor().set_slowdown(0.5)


def test_counters_track_frames():
    proc = make_processor()
    proc.submit(0.0)
    proc.submit(0.0, synthetic=True)
    assert proc.frames_processed == 2
    assert proc.synthetic_frames_processed == 1
    assert proc.total_busy_ms == pytest.approx(60.0)


def test_recent_mean_sojourn_excludes_synthetic():
    proc = make_processor(base_ms=30.0)
    proc.submit(0.0, synthetic=True)
    assert proc.recent_mean_sojourn_ms() is None
    proc.submit(100.0)
    assert proc.recent_mean_sojourn_ms() == pytest.approx(30.0)


def test_recent_mean_sojourn_time_window():
    proc = make_processor(base_ms=30.0)
    proc.submit(0.0)
    # completion at 30; far in the future the window is empty
    assert proc.recent_mean_sojourn_ms(now=10_000.0) is None
    assert proc.recent_mean_sojourn_ms(now=100.0) == pytest.approx(30.0)


def test_arrival_rate_counts_recent_real_frames():
    proc = make_processor()
    for t in range(0, 2000, 100):  # 10 fps over the 2 s window
        proc.submit(float(t))
    assert proc.arrival_rate_fps(2000.0) == pytest.approx(10.0)


def test_arrival_rate_ignores_synthetic_and_old():
    proc = make_processor()
    proc.submit(0.0, synthetic=True)
    proc.submit(0.0)
    assert proc.arrival_rate_fps(10_000.0) == 0.0


def test_offered_utilization_matches_offered_load():
    proc = make_processor(base_ms=50.0, parallelism=2)
    for t in range(0, 2000, 50):  # 20 fps
        proc.submit(float(t))
    # rho = 20 fps * 50 ms / (1000 * 2) = 0.5
    assert proc.offered_utilization(2000.0) == pytest.approx(0.5, rel=0.1)


def test_reset_clears_state():
    proc = make_processor()
    proc.submit(0.0)
    proc.reset()
    assert proc.queue_depth(0.0) == 0
    assert proc.recent_mean_sojourn_ms() is None
    assert proc.arrival_rate_fps(0.0) == 0.0


def test_utilization_bounded():
    proc = make_processor()
    for _ in range(10):
        proc.submit(0.0)
    assert 0.0 <= proc.utilization(0.0) <= 1.0


@given(st.lists(st.floats(min_value=0, max_value=10_000), min_size=1, max_size=100))
@settings(max_examples=50)
def test_property_sojourn_at_least_service(arrivals):
    proc = make_processor(base_ms=25.0, max_queue_depth=1_000)
    for t in sorted(arrivals):
        frame = proc.submit(t)
        assert frame is not None
        assert frame.sojourn_ms >= 25.0 - 1e-9
        assert frame.start_ms >= t


@given(st.lists(st.floats(min_value=0, max_value=5_000), min_size=2, max_size=60))
@settings(max_examples=50)
def test_property_completions_nondecreasing_per_server(arrivals):
    """With one server, completions must be strictly ordered FCFS."""
    proc = make_processor(base_ms=10.0, max_queue_depth=1_000)
    completions = [proc.submit(t).completion_ms for t in sorted(arrivals)]
    assert completions == sorted(completions)


# ----------------------------------------------------------------------
# Analytic model
# ----------------------------------------------------------------------
def test_analytic_idle_equals_service(xlarge):
    assert analytic_sojourn_ms(xlarge, 0.0) == xlarge.base_frame_ms


def test_analytic_monotone_in_load(xlarge):
    values = [analytic_sojourn_ms(xlarge, fps) for fps in (5, 15, 25, 31, 40, 80)]
    assert values == sorted(values)


def test_analytic_overload_keeps_gradient(xlarge):
    just_over = analytic_sojourn_ms(xlarge, xlarge.capacity_fps * 1.1)
    far_over = analytic_sojourn_ms(xlarge, xlarge.capacity_fps * 3.0)
    assert far_over > just_over * 1.5


def test_analytic_slowdown_scales(xlarge):
    assert analytic_sojourn_ms(xlarge, 10.0, slowdown_factor=2.0) > analytic_sojourn_ms(
        xlarge, 10.0
    )


def test_analytic_matches_simulated_periodic_arrivals(xlarge):
    """Calibration: with arrival_cv2=0.25 the model stays within ~35% of
    the simulated queue for jittered periodic arrivals at rho=0.8."""
    rng = random.Random(3)
    proc = FrameProcessor(xlarge, max_queue_depth=10_000)
    arrivals = []
    for user in range(2):  # 2 users x ~13.3 fps -> rho ~ 0.8
        t = rng.random() * 75.0
        while t < 60_000:
            arrivals.append(t + rng.gauss(0, 3))
            t += 75.0
    sojourns = [proc.submit(t).sojourn_ms for t in sorted(a for a in arrivals if a >= 0)]
    steady = sojourns[len(sojourns) // 2 :]
    simulated = sum(steady) / len(steady)
    predicted = analytic_sojourn_ms(xlarge, 1000.0 / 75.0 * 2)
    assert predicted == pytest.approx(simulated, rel=0.35)


def test_offered_load_formula():
    assert offered_load(20.0, 30.0, 1) == pytest.approx(0.6)
    assert offered_load(20.0, 30.0, 2) == pytest.approx(0.3)


def test_offered_load_validates():
    with pytest.raises(ValueError):
        offered_load(10.0, 30.0, 0)
    with pytest.raises(ValueError):
        offered_load(-1.0, 30.0, 1)
