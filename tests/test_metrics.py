"""Unit tests for stats, time series, the collector and report rendering."""

from typing import Optional

import pytest
from hypothesis import given, strategies as st

from repro.metrics.collector import MetricsCollector
from repro.metrics.report import format_cdf, format_table
from repro.obs.events import (
    CoveredFailover,
    FrameDone,
    JoinAccept,
    JoinReject,
    PopulationChanged,
    ProbeSent,
    Switch,
    UncoveredFailure,
)
from repro.obs.events import TestWorkloadInvoked as WorkloadInvoked  # noqa: N813

# ("Test"-prefixed names confuse pytest collection, hence the alias.)
from repro.metrics.stats import (
    cdf_points,
    mean,
    percentile,
    stddev,
    summarize,
)
from repro.metrics.timeseries import TimeSeries, bin_series


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def test_mean_and_stddev():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert stddev([2.0, 2.0, 2.0]) == 0.0
    assert stddev([0.0, 10.0]) == 5.0


def test_single_value_stddev_zero():
    assert stddev([7.0]) == 0.0


def test_empty_inputs_raise():
    for fn in (mean, stddev, cdf_points, summarize):
        with pytest.raises(ValueError):
            fn([])
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile():
    values = list(range(101))
    assert percentile(values, 50) == 50.0
    assert percentile(values, 0) == 0.0
    assert percentile(values, 100) == 100.0
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_cdf_points_shape():
    points = cdf_points([30.0, 10.0, 20.0])
    assert points == [(10.0, 1 / 3), (20.0, 2 / 3), (30.0, 1.0)]


def test_summarize_fields():
    summary = summarize([10.0, 20.0, 30.0, 40.0])
    assert summary.count == 4
    assert summary.mean_ms == 25.0
    assert summary.min_ms == 10.0
    assert summary.max_ms == 40.0
    assert "mean=25.0" in str(summary)


@given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=200))
def test_property_cdf_monotone_and_complete(values):
    points = cdf_points(values)
    fractions = [f for _, f in points]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
    xs = [v for v, _ in points]
    assert xs == sorted(xs)


@given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=2, max_size=200))
def test_property_mean_between_min_max(values):
    assert min(values) - 1e-9 <= mean(values) <= max(values) + 1e-9


# ----------------------------------------------------------------------
# time series
# ----------------------------------------------------------------------
def test_timeseries_append_and_window():
    series = TimeSeries(name="t")
    series.append(0.0, 1.0)
    series.append(10.0, 2.0)
    series.append(20.0, 3.0)
    assert len(series) == 3
    assert series.window(5.0, 20.0) == [2.0]


def test_timeseries_rejects_out_of_order():
    series = TimeSeries()
    series.append(10.0, 1.0)
    with pytest.raises(ValueError):
        series.append(5.0, 2.0)


def test_timeseries_value_at_step_semantics():
    series = TimeSeries()
    series.append(10.0, 1.0)
    series.append(20.0, 2.0)
    assert series.value_at(5.0) is None
    assert series.value_at(15.0) == 1.0
    assert series.value_at(20.0) == 2.0
    assert series.value_at(99.0) == 2.0


def test_bin_series_means():
    times = [0.0, 1.0, 5.0, 6.0]
    values = [10.0, 20.0, 30.0, 50.0]
    binned = bin_series(times, values, bin_ms=5.0)
    assert binned == [(0.0, 15.0), (5.0, 40.0)]


def test_bin_series_respects_bounds():
    binned = bin_series([0.0, 10.0, 20.0], [1.0, 2.0, 3.0], 5.0, start_ms=5.0, end_ms=15.0)
    assert binned == [(10.0, 2.0)]


def test_bin_series_validation():
    with pytest.raises(ValueError):
        bin_series([0.0], [1.0], 0.0)
    with pytest.raises(ValueError):
        bin_series([0.0], [1.0, 2.0], 5.0)


def test_bin_series_skips_empty_bins():
    binned = bin_series([0.0, 100.0], [1.0, 2.0], 10.0)
    assert binned == [(0.0, 1.0), (100.0, 2.0)]


# ----------------------------------------------------------------------
# collector (a pure reducer over trace events since the obs redesign)
# ----------------------------------------------------------------------
def frame_done(
    user_id: str, node_id: str, created_ms: float, latency_ms: Optional[float]
) -> FrameDone:
    done_ms = created_ms + (latency_ms or 0.0)
    return FrameDone(done_ms, user_id, node_id, 0, created_ms, latency_ms)


def test_collector_frame_reductions():
    collector = MetricsCollector()
    collector.on_event(frame_done("u1", "V1", 0.0, 40.0))
    collector.on_event(frame_done("u1", "V1", 100.0, 60.0))
    collector.on_event(frame_done("u2", "V2", 100.0, 100.0))
    collector.on_event(frame_done("u2", "V2", 200.0, None))  # lost
    assert collector.completed_latencies() == [40.0, 60.0, 100.0]
    assert collector.completed_latencies(user_id="u1") == [40.0, 60.0]
    assert collector.completed_latencies(start_ms=50.0, end_ms=150.0) == [60.0, 100.0]
    assert collector.lost_frames() == 1
    assert collector.lost_frames("u1") == 0


def test_collector_per_user_means():
    collector = MetricsCollector()
    collector.on_event(frame_done("u1", "V1", 0.0, 40.0))
    collector.on_event(frame_done("u1", "V1", 1.0, 60.0))
    collector.on_event(frame_done("u2", "V2", 2.0, 10.0))
    means = collector.per_user_mean_latency()
    assert means == {"u1": 50.0, "u2": 10.0}


def test_collector_counters():
    collector = MetricsCollector()
    for _ in range(3):
        collector.on_event(ProbeSent(0.0, "u1", "V1"))
    collector.on_event(ProbeSent(0.0, "u2", "V1"))
    collector.on_event(WorkloadInvoked(0.0, "V1"))
    collector.on_event(JoinAccept(1.0, "u1", "V1"))
    collector.on_event(JoinReject(2.0, "u1", "V2"))
    collector.on_event(UncoveredFailure(100.0, "u1"))
    collector.on_event(CoveredFailover(200.0, "u2", "V2"))
    collector.on_event(Switch(3.0, "u1", from_node="V1", to_node="V2"))
    assert collector.total_probes() == 4
    assert collector.total_test_invocations() == 1
    assert collector.join_accepts["u1"] == 1
    assert collector.join_rejects["u1"] == 1
    assert collector.total_failures() == 1
    assert collector.failure_events == [("u1", 100.0)]
    assert collector.failover_events == [("u2", 200.0)]
    assert collector.total_switches() == 1


def test_collector_population_series():
    collector = MetricsCollector()
    collector.on_event(PopulationChanged(0.0, 3))
    collector.on_event(PopulationChanged(10.0, 4))
    assert collector.alive_nodes.values == [3.0, 4.0]


def test_collector_has_no_legacy_mutators():
    # The one-release record_* deprecation shims are gone for good.
    for name in (
        "record_frame",
        "record_probe",
        "record_discovery",
        "record_test_invocation",
        "record_join",
        "record_failure",
        "record_covered_failover",
        "record_switch",
        "record_alive_nodes",
    ):
        assert not hasattr(MetricsCollector, name)


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
def test_format_table_aligns_and_titles():
    text = format_table(["name", "ms"], [["V1", 24.0], ["D6", 30.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "V1" in text and "24.0" in text
    # all data rows share the header's column separator positions
    assert lines[1].index("|") == lines[3].index("|")


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_cdf_picks_quantiles():
    points = cdf_points(list(range(1, 101)))
    text = format_cdf(points)
    assert "p50" in text
    assert "50.0" in text


def test_format_cdf_empty_raises():
    with pytest.raises(ValueError):
        format_cdf([])
