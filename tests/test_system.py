"""Unit tests for EdgeSystem wiring: spawn/fail, notifications, clients."""

import pytest

from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem, MANAGER_ID
from repro.geo.point import GeoPoint
from repro.net.latency import HashedPairRttModel
from repro.net.topology import NetworkTopology
from repro.nodes.hardware import profile_by_name


def test_manager_endpoint_auto_registered():
    system = EdgeSystem(SystemConfig(seed=1))
    assert system.topology.has_endpoint(MANAGER_ID)


def test_custom_topology_is_kept_even_when_empty():
    """Regression: NetworkTopology has __len__, so `topology or default`
    silently replaced an empty custom topology."""
    custom = NetworkTopology(rtt_model=HashedPairRttModel(8, 55, seed=7))
    system = EdgeSystem(SystemConfig(seed=1), topology=custom)
    assert system.topology is custom
    assert isinstance(system.topology.rtt_model, HashedPairRttModel)


def test_spawn_registers_endpoint_and_starts_node():
    system = EdgeSystem(SystemConfig(seed=1))
    node = system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    assert system.topology.has_endpoint("V1")
    assert node.alive
    assert system.alive_node_count() == 1


def test_spawn_duplicate_alive_id_rejected():
    system = EdgeSystem(SystemConfig(seed=1))
    system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    with pytest.raises(ValueError, match="already alive"):
        system.spawn_node("V1", profile_by_name("V2"), GeoPoint(44.95, -93.20))


def test_spawn_reuses_id_after_failure():
    system = EdgeSystem(SystemConfig(seed=1))
    system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    system.fail_node("V1")
    node = system.spawn_node("V1", profile_by_name("V2"), GeoPoint(44.95, -93.20))
    assert node.alive


def test_node_id_reuse_reregisters_endpoint():
    """Regression: a node id reused after fail_node must re-register its
    endpoint — the replacement may sit somewhere else entirely, and any
    memoized network state for the old endpoint must not leak to it."""
    from repro.net.topology import EndpointSpec

    system = EdgeSystem(SystemConfig(seed=1))
    system.add_node("V1", profile_by_name("V1"), EndpointSpec(GeoPoint(44.98, -93.26)))
    rtt_before = system.topology.expected_rtt_ms(MANAGER_ID, "V1")
    system.fail_node("V1")
    system.add_node("V1", profile_by_name("V2"), EndpointSpec(GeoPoint(46.50, -94.00)))
    assert system.topology.endpoint("V1").point == GeoPoint(46.50, -94.00)
    assert system.topology.expected_rtt_ms(MANAGER_ID, "V1") != rtt_before


def test_add_node_rejects_id_of_non_node_endpoint():
    from repro.net.topology import EndpointSpec

    system = EdgeSystem(SystemConfig(seed=1))
    system.add_client_endpoint("alice", EndpointSpec(GeoPoint(44.97, -93.25)))
    with pytest.raises(ValueError, match="non-node"):
        system.add_node("alice", profile_by_name("V1"), EndpointSpec(GeoPoint(44.98, -93.26)))


def test_fail_node_records_population_step():
    system = EdgeSystem(SystemConfig(seed=1))
    system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    system.spawn_node("V2", profile_by_name("V2"), GeoPoint(44.95, -93.20))
    system.fail_node("V1")
    assert system.alive_node_count() == 1
    assert system.metrics.alive_nodes.values[-1] == 1.0


def test_fail_unknown_node_is_noop():
    system = EdgeSystem(SystemConfig(seed=1))
    system.fail_node("ghost")  # no exception


def test_fail_notifies_affected_clients_after_detection_delay():
    config = SystemConfig(seed=1, top_n=2, failure_detection_ms=250.0)
    system = EdgeSystem(config)
    system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    system.spawn_node("V2", profile_by_name("V2"), GeoPoint(44.95, -93.20))
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    victim = client.current_edge
    system.fail_node(victim)
    system.run_for(200.0)  # before detection
    assert client.current_edge == victim
    system.run_for(100.0)  # after detection
    assert client.current_edge != victim


def test_add_client_requires_registered_endpoint():
    system = EdgeSystem(SystemConfig(seed=1))

    class Dummy:
        user_id = "ghost"

        def start(self):
            pass

        def observes_node(self, node_id):
            return False

        def on_edge_failure(self, node_id):
            pass

    with pytest.raises(ValueError, match="register"):
        system.add_client(Dummy())


def test_add_client_rejects_mis_shaped_client():
    system = EdgeSystem(SystemConfig(seed=1))

    class NotAClient:
        user_id = "ghost"

        def start(self):
            pass

    with pytest.raises(TypeError, match="ClientLike"):
        system.add_client(NotAClient())


def test_add_client_rejects_duplicates():
    system = EdgeSystem(SystemConfig(seed=1))
    system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    system.add_client(EdgeClient(system, "alice"))
    with pytest.raises(ValueError, match="already"):
        system.add_client(EdgeClient(system, "alice"))


def test_run_for_advances_clock():
    system = EdgeSystem(SystemConfig(seed=1))
    system.run_for(1_234.0)
    assert system.sim.now == 1_234.0
    system.run_for(766.0)
    assert system.sim.now == 2_000.0


def test_same_seed_reproduces_trajectory():
    def run():
        system = EdgeSystem(SystemConfig(seed=77, top_n=2))
        system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
        system.spawn_node("V2", profile_by_name("V2"), GeoPoint(44.95, -93.20))
        system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
        client = EdgeClient(system, "alice")
        system.add_client(client)
        system.run_for(10_000.0)
        return client.stats.latencies_ms

    assert run() == run()
