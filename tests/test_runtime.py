"""Tests for the live asyncio TCP runtime: protocol framing, manager,
edge servers, clients, and the full cluster."""

import asyncio

import pytest

from repro.geo.point import GeoPoint
from repro.nodes.hardware import VOLUNTEER_PROFILES, profile_by_name
from repro.runtime import LiveClient, LiveEdgeServer, LocalCluster, ManagerServer
from repro.runtime import protocol


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------
def test_encode_decode_roundtrip():
    frame = protocol.encode_frame("join", {"user_id": "u1", "seq_num": 3})
    decoded = protocol.decode_frame(frame)
    assert decoded == {"op": "join", "payload": {"user_id": "u1", "seq_num": 3}}


def test_decode_rejects_garbage():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_frame(b"not json\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_frame(b'{"payload": {}}\n')


def test_encode_defaults_empty_payload():
    decoded = protocol.decode_frame(protocol.encode_frame("ping"))
    assert decoded["payload"] == {}


# ----------------------------------------------------------------------
# Manager server
# ----------------------------------------------------------------------
def test_manager_heartbeat_and_status():
    async def scenario():
        manager = ManagerServer()
        await manager.start()
        edge = LiveEdgeServer(
            "e1",
            profile_by_name("V1"),
            GeoPoint(44.98, -93.26),
            manager_host=manager.host,
            manager_port=manager.port,
            heartbeat_period_s=0.05,
            time_scale=0.01,
        )
        await edge.start()
        await asyncio.sleep(0.15)
        status = await protocol.request(manager.host, manager.port, "status")
        await edge.stop()
        await manager.stop()
        return status

    status = run(scenario())
    assert status["ok"]
    assert status["nodes"] == ["e1"]
    assert status["heartbeats_received"] >= 1


def test_manager_unknown_op():
    async def scenario():
        manager = ManagerServer()
        await manager.start()
        reply = await protocol.request(manager.host, manager.port, "frobnicate")
        await manager.stop()
        return reply

    reply = run(scenario())
    assert not reply["ok"]
    assert "unknown op" in reply["error"]


# ----------------------------------------------------------------------
# Edge server
# ----------------------------------------------------------------------
def test_edge_probe_join_leave_cycle():
    async def scenario():
        edge = LiveEdgeServer(
            "e1", profile_by_name("V1"), GeoPoint(44.98, -93.26), time_scale=0.01
        )
        await edge.start()
        results = {}
        probe = await protocol.request(edge.host, edge.port, "process_probe")
        results["probe_ok"] = probe["ok"]
        seq = probe["probe"]["payload"]["seq_num"]
        join = await protocol.request(
            edge.host, edge.port, "join", {"user_id": "u1", "seq_num": seq}
        )
        results["join_accepted"] = join["accepted"]
        stale = await protocol.request(
            edge.host, edge.port, "join", {"user_id": "u2", "seq_num": seq}
        )
        results["stale_rejected"] = not stale["accepted"]
        frame = await protocol.request(edge.host, edge.port, "frame")
        results["frame_ok"] = frame["ok"]
        results["proc_ms"] = frame["proc_ms"]
        await protocol.request(edge.host, edge.port, "leave", {"user_id": "u1"})
        status = await protocol.request(edge.host, edge.port, "status")
        results["attached_after_leave"] = status["attached"]
        await edge.stop()
        return results

    results = run(scenario())
    assert results["probe_ok"]
    assert results["join_accepted"]
    assert results["stale_rejected"]
    assert results["frame_ok"]
    # sojourn is rescaled to application time: ~24 ms for V1
    assert results["proc_ms"] >= 20.0
    assert results["attached_after_leave"] == []


def test_edge_unexpected_join_never_rejected():
    async def scenario():
        edge = LiveEdgeServer(
            "e1", profile_by_name("V2"), GeoPoint(44.95, -93.20), time_scale=0.01
        )
        await edge.start()
        reply = await protocol.request(
            edge.host, edge.port, "unexpected_join", {"user_id": "u9"}
        )
        status = await protocol.request(edge.host, edge.port, "status")
        await edge.stop()
        return reply, status

    reply, status = run(scenario())
    assert reply["accepted"]
    assert status["attached"] == ["u9"]


def test_edge_rejects_bad_time_scale():
    with pytest.raises(ValueError):
        LiveEdgeServer("e", profile_by_name("V1"), GeoPoint(0, 0), time_scale=0.0)


# ----------------------------------------------------------------------
# Full cluster end to end
# ----------------------------------------------------------------------
def test_cluster_select_offload_and_failover():
    async def scenario():
        cluster = LocalCluster(
            VOLUNTEER_PROFILES[:3],
            n_clients=1,
            time_scale=0.01,
            heartbeat_period_s=0.05,
        )
        await cluster.start()
        try:
            client = cluster.clients[0]
            chosen = await client.select_and_join()
            latencies = [await client.offload_frame() for _ in range(5)]
            backups_before = list(client.backups)
            await cluster.kill_edge(chosen)
            lost = await client.offload_frame()  # triggers failover
            recovered = await client.offload_frame()
            return {
                "chosen": chosen,
                "latencies": [l for l in latencies if l is not None],
                "backups": backups_before,
                "lost": lost,
                "after": client.current_edge,
                "recovered": recovered,
                "failovers": client.failovers,
            }
        finally:
            await cluster.stop()

    result = run(scenario())
    assert result["chosen"].startswith("edge-")
    assert len(result["latencies"]) == 5
    assert len(result["backups"]) == 2  # TopN=3 -> 2 proactive backups
    assert result["lost"] is None
    assert result["after"] in result["backups"]
    assert result["recovered"] is not None
    assert result["failovers"] == 1


def test_cluster_two_clients_share_fleet():
    async def scenario():
        cluster = LocalCluster(
            VOLUNTEER_PROFILES[:2],
            n_clients=2,
            time_scale=0.01,
            heartbeat_period_s=0.05,
        )
        await cluster.start()
        try:
            attachments = []
            for client in cluster.clients:
                attachments.append(await client.select_and_join())
            # both edges must agree about who is attached where
            per_edge = {}
            for edge in cluster.edges:
                per_edge[edge.node_id] = sorted(edge.attached)
            return attachments, per_edge
        finally:
            await cluster.stop()

    attachments, per_edge = run(scenario())
    all_attached = [u for users in per_edge.values() for u in users]
    assert sorted(all_attached) == ["user-01", "user-02"]
    for client_name, edge_name in zip(("user-01", "user-02"), attachments):
        assert client_name in per_edge[edge_name]


def test_cluster_validates_profiles():
    with pytest.raises(ValueError):
        LocalCluster([], n_clients=1)


def test_cluster_manager_outage_degrades_gracefully():
    """Satellite of the fault-injection work: a Central Manager outage
    must not interrupt attached clients. Frames keep flowing on the
    standing edge connections, a selection round during the outage
    falls back to the last candidate list (degraded, not stalled), and
    once the manager returns heartbeats re-register every edge so
    fresh discovery works again."""
    from repro.obs.tracer import Tracer

    async def scenario():
        tracer = Tracer()
        cluster = LocalCluster(
            VOLUNTEER_PROFILES[:3],
            n_clients=1,
            time_scale=0.01,
            heartbeat_period_s=0.05,
            tracer=tracer,
        )
        await cluster.start()
        try:
            for edge in cluster.edges:
                edge.max_heartbeat_backoff_s = 0.2  # quick post-outage return
            client = cluster.clients[0]
            chosen = await client.select_and_join()

            await cluster.stop_manager()
            during = [await client.offload_frame() for _ in range(5)]
            # a probing round during the outage: discovery is dark, but
            # the round degrades to the remembered candidates + backups
            rejoined_during = await client.select_and_join()

            await cluster.restart_manager()
            await asyncio.sleep(0.5)  # heartbeats re-register the fleet
            status = await protocol.request(
                cluster.manager.host, cluster.manager.port, "status"
            )
            rejoined_after = await client.select_and_join()
            after = await client.offload_frame()
            types = [e.type for e in tracer.events()]
            return {
                "chosen": chosen,
                "during": during,
                "rejoined_during": rejoined_during,
                "registry": status["nodes"],
                "rejoined_after": rejoined_after,
                "after": after,
                "types": types,
            }
        finally:
            await cluster.stop()

    result = run(scenario())
    # frames never stopped while the manager was down
    assert all(latency is not None for latency in result["during"])
    # the outage round still produced an attachment, via the fallback
    assert result["rejoined_during"].startswith("edge-")
    assert "degraded_fallback" in result["types"]
    # the returned manager re-learned every edge from heartbeats
    assert len(result["registry"]) == 3
    # and fresh discovery works again end to end
    assert result["rejoined_after"].startswith("edge-")
    assert result["after"] is not None
