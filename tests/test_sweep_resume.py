"""Crash/resume integration: a sweep killed after K of N runs resumes
with exactly N-K executions and an aggregate identical to an
uninterrupted sweep's.

The "kill" is a poisoned experiment callable: while a poison marker
file exists, it raises ``KeyboardInterrupt`` as soon as K runs have
completed — the same signal a real Ctrl-C (or an OOM-killed driver
re-raised at the executor) delivers. The callable also appends one line
per *completed* execution to a counter file, so the test can assert how
many runs each phase actually performed, independently of what the
engine reports.
"""

import json
from pathlib import Path

import pytest

from repro.sweep import (
    RunStore,
    SweepSpec,
    SweepableExperiment,
    aggregates_digest,
    register,
    run_sweep,
)
from repro.sweep.registry import _REGISTRY

N_CELLS = 3
N_SEEDS = 2
N_TOTAL = N_CELLS * N_SEEDS
K_BEFORE_KILL = 2

_STATE: dict = {}


def _poisoned_experiment(params, root_seed):
    counter: Path = _STATE["counter"]
    poison: Path = _STATE["poison"]
    done = len(counter.read_text().splitlines()) if counter.exists() else 0
    if poison.exists() and done >= K_BEFORE_KILL:
        raise KeyboardInterrupt("simulated crash mid-sweep")
    from repro.sim.random import RandomStreams

    value = RandomStreams(root_seed).get("metric").random()
    with counter.open("a") as fh:
        fh.write(f"{params}:{root_seed}\n")
    return {"value": value * float(params["scale"])}


@pytest.fixture()
def poisoned(tmp_path):
    """Register the poisoned experiment and point it at tmp state."""
    _STATE["counter"] = tmp_path / "counter.txt"
    _STATE["poison"] = tmp_path / "poison.marker"
    name = "crash_resume_probe"
    register(
        SweepableExperiment(name=name, fn=_poisoned_experiment),
        replace=True,
    )
    yield name
    _REGISTRY.pop(name, None)


def _spec(name):
    return SweepSpec.build(
        name, {"scale": [1.0, 2.0, 3.0]}, n_seeds=N_SEEDS, base_seed=11
    )


def _executions():
    counter = _STATE["counter"]
    return len(counter.read_text().splitlines()) if counter.exists() else 0


def test_killed_sweep_resumes_with_exactly_the_missing_runs(
    poisoned, tmp_path
):
    spec = _spec(poisoned)
    store = RunStore(tmp_path / "store")

    # Phase 1: poison armed — the sweep dies after K completed runs.
    _STATE["poison"].touch()
    with pytest.raises(KeyboardInterrupt):
        run_sweep(spec, store, serial=True)
    assert _executions() == K_BEFORE_KILL
    assert len(store.completed_keys()) == K_BEFORE_KILL

    # Phase 2: poison removed — resume executes exactly N-K runs.
    _STATE["poison"].unlink()
    resumed = run_sweep(spec, store, serial=True)
    assert _executions() == N_TOTAL
    assert resumed.executed == N_TOTAL - K_BEFORE_KILL
    assert resumed.skipped == K_BEFORE_KILL
    assert resumed.failed == 0
    interrupted_digest = aggregates_digest(resumed.aggregates())

    # Reference: the same sweep, never interrupted, in a fresh store
    # with a fresh counter — aggregates must match exactly.
    _STATE["counter"] = tmp_path / "counter2.txt"
    clean = run_sweep(spec, RunStore(tmp_path / "store2"), serial=True)
    assert clean.executed == N_TOTAL
    assert aggregates_digest(clean.aggregates()) == interrupted_digest


def test_killed_parallel_sweep_resumes_identically(poisoned, tmp_path):
    """The resumed runs may execute under a 2-worker pool: the aggregate
    still matches the serial uninterrupted reference bit for bit."""
    spec = _spec(poisoned)
    store = RunStore(tmp_path / "store")

    _STATE["poison"].touch()
    with pytest.raises(KeyboardInterrupt):
        run_sweep(spec, store, serial=True)
    _STATE["poison"].unlink()

    # Parallel resume (fork start method inherits the registration).
    resumed = run_sweep(spec, store, workers=2)
    assert resumed.skipped == K_BEFORE_KILL
    assert resumed.executed == N_TOTAL - K_BEFORE_KILL

    _STATE["counter"] = tmp_path / "counter2.txt"
    clean = run_sweep(spec, RunStore(tmp_path / "store2"), serial=True)
    assert aggregates_digest(resumed.aggregates()) == aggregates_digest(
        clean.aggregates()
    )


def test_partial_store_survives_on_disk(poisoned, tmp_path):
    """What the interrupted phase persisted is valid, parseable JSONL."""
    spec = _spec(poisoned)
    store = RunStore(tmp_path / "store")
    _STATE["poison"].touch()
    with pytest.raises(KeyboardInterrupt):
        run_sweep(spec, store, serial=True)
    files = sorted(store.runs_dir.glob("*.json"))
    assert len(files) == K_BEFORE_KILL
    for path in files:
        record = json.loads(path.read_text())
        assert record["status"] == "ok"
        assert "value" in record["metrics"]
