"""Integration tests: full churn experiments behave as in §V-D2."""

import pytest

from repro.core.config import SystemConfig
from repro.experiments.churn_experiment import (
    make_churn_trace,
    run_churn_once,
    run_churn_trace,
)


@pytest.fixture(scope="module")
def trace():
    return make_churn_trace(SystemConfig(seed=5))


def test_trace_matches_paper_configuration(trace):
    assert len(trace) == 18  # "a total of 18 edge nodes"
    assert trace.horizon_ms == 180_000.0
    assert trace.episodes[0].join_ms <= 5_000.0


def test_trace_population_floor(trace):
    for ms in range(10_000, 170_000, 2_000):
        assert trace.alive_count_at(float(ms)) >= 2


@pytest.fixture(scope="module")
def churn_run(trace):
    return run_churn_once(SystemConfig(seed=5).with_(top_n=3), trace=trace)


def test_users_keep_completing_frames_through_churn(churn_run):
    """No extended outage: frames complete in every 10-s slice after the
    initial node arrivals."""
    for start in range(10_000, 180_000, 10_000):
        window = churn_run.metrics.completed_latencies(
            float(start), float(start + 10_000)
        )
        assert window, f"service gap in [{start}, {start + 10_000})"


def test_no_uncovered_failures_at_topn_3(churn_run):
    assert churn_run.metrics.total_failures() == 0


def test_failovers_were_actually_exercised(churn_run):
    """The trace kills nodes users sat on: backups must have absorbed a
    meaningful number of failovers, or the test proves nothing."""
    covered = sum(churn_run.metrics.covered_failovers.values())
    assert covered >= 5


def test_latency_recovers_after_population_growth(trace):
    """Fig. 8's signature: when nodes join (upward steps), the average
    latency within the following seconds is no worse than before."""
    result = run_churn_trace(SystemConfig(seed=5))
    assert result.total_nodes == 18
    assert len(result.latency_trace) > 20
    assert result.population_steps  # the grey stair line exists
    # steady-state average (after warmup) is application-usable
    steady = [v for t, v in result.latency_trace if t >= 30_000.0]
    assert sum(steady) / len(steady) < 250.0


def test_all_users_served_during_measurement_window(churn_run):
    per_user = churn_run.metrics.per_user_mean_latency(60_000.0, 120_000.0)
    assert len(per_user) == 10


def test_topn1_suffers_more_failures_than_topn3(trace):
    one = run_churn_once(SystemConfig(seed=5).with_(top_n=1), trace=trace)
    three = run_churn_once(SystemConfig(seed=5).with_(top_n=3), trace=trace)
    assert one.metrics.total_failures() > three.metrics.total_failures()


def test_same_trace_same_seed_reproduces(trace):
    a = run_churn_once(SystemConfig(seed=5).with_(top_n=2), trace=trace)
    b = run_churn_once(SystemConfig(seed=5).with_(top_n=2), trace=trace)
    assert a.metrics.total_probes() == b.metrics.total_probes()
    assert a.metrics.total_failures() == b.metrics.total_failures()
    assert len(a.metrics.frames) == len(b.metrics.frames)
