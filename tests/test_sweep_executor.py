"""Executor tests: serial/parallel parity, caching, failure containment.

The pool tests use the ``selftest`` experiment's ``fail``/``crash``/
``sleep_s`` knobs; pools are kept tiny (2 workers, a handful of runs)
so the whole module stays fast.
"""

from collections import Counter

import pytest

from repro.obs import ListSink, Tracer
from repro.sweep import (
    RunStore,
    SweepInterrupted,
    SweepSpec,
    aggregates_digest,
    run_sweep,
)

SPEC = SweepSpec.build("selftest", {"scale": [1.0, 2.0]}, n_seeds=3, base_seed=7)


def _tracer():
    return Tracer(sink=ListSink())


# ----------------------------------------------------------------------
# Basics + determinism
# ----------------------------------------------------------------------
def test_serial_runs_everything_in_order(tmp_path):
    result = run_sweep(SPEC, RunStore(tmp_path / "s"), serial=True)
    assert result.executed == 6 and result.skipped == 0 and result.failed == 0
    assert [r.run_key for r in result.records] == [
        r.run_key for r in SPEC.expand()
    ]


def test_store_is_optional():
    result = run_sweep(SPEC, None, serial=True)
    assert result.executed == 6
    assert all(r.ok for r in result.records)


def test_parallel_matches_serial_bit_identically(tmp_path):
    serial = run_sweep(SPEC, RunStore(tmp_path / "a"), serial=True)
    parallel = run_sweep(SPEC, RunStore(tmp_path / "b"), workers=2)
    assert [r.run_key for r in parallel.records] == [
        r.run_key for r in serial.records
    ]
    assert [r.metrics for r in parallel.records] == [
        r.metrics for r in serial.records
    ]
    assert aggregates_digest(parallel.aggregates()) == aggregates_digest(
        serial.aggregates()
    )


def test_resume_skips_completed_runs(tmp_path):
    store = RunStore(tmp_path / "s")
    first = run_sweep(SPEC, store, serial=True)
    again = run_sweep(SPEC, store, serial=True)
    assert again.executed == 0
    assert again.skipped == 6
    assert aggregates_digest(again.aggregates()) == aggregates_digest(
        first.aggregates()
    )


def test_limit_interrupts_then_resumes(tmp_path):
    store = RunStore(tmp_path / "s")
    with pytest.raises(SweepInterrupted):
        run_sweep(SPEC, store, serial=True, limit=2)
    assert len(store.completed_keys()) == 2
    finish = run_sweep(SPEC, store, serial=True)
    assert finish.executed == 4 and finish.skipped == 2


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        run_sweep(SPEC, None, workers=0)
    with pytest.raises(ValueError):
        run_sweep(SPEC, None, retries=-1)
    with pytest.raises(ValueError):
        run_sweep(SPEC, None, limit=-1)


# ----------------------------------------------------------------------
# Failure containment
# ----------------------------------------------------------------------
def test_experiment_exception_recorded_not_raised(tmp_path):
    spec = SweepSpec.build("selftest", {"fail": [0, 1]}, n_seeds=2)
    result = run_sweep(spec, RunStore(tmp_path / "s"), serial=True)
    assert result.executed == 4 and result.failed == 2
    by_status = Counter(r.status for r in result.records)
    assert by_status == {"ok": 2, "failed": 2}
    failed = [r for r in result.records if not r.ok]
    assert all("selftest experiment asked to fail" in r.error for r in failed)


def test_failed_runs_are_reexecuted_on_resume(tmp_path):
    store = RunStore(tmp_path / "s")
    spec = SweepSpec.build("selftest", {"fail": [0, 1]}, n_seeds=1)
    run_sweep(spec, store, serial=True)
    assert len(store.completed_keys()) == 1
    again = run_sweep(spec, store, serial=True)
    assert again.executed == 1  # only the failed one re-ran
    assert again.skipped == 1


def test_worker_crash_is_contained_and_retried(tmp_path):
    spec = SweepSpec.build("selftest", {"crash": [0, 1]}, n_seeds=2)
    result = run_sweep(spec, RunStore(tmp_path / "s"), workers=2, retries=1)
    assert result.executed == 4
    statuses = {
        (r.params["crash"], r.status) for r in result.records
    }
    assert statuses == {(0, "ok"), (1, "failed")}
    assert result.retried >= 1
    crashed = [r for r in result.records if r.params["crash"] == 1]
    assert all(r.attempts == 2 for r in crashed)  # retried once, then lost


def test_timeout_recorded_and_others_survive(tmp_path):
    spec = SweepSpec.build("selftest", {"sleep_s": [0.0, 30.0]}, n_seeds=1)
    result = run_sweep(
        spec, RunStore(tmp_path / "s"), workers=2, timeout_s=1.0, retries=0
    )
    statuses = {(r.params["sleep_s"], r.status) for r in result.records}
    assert statuses == {(0.0, "ok"), (30.0, "timeout")}


def test_unknown_experiment_fails_runs_not_engine():
    spec = SweepSpec.build("no_such_experiment", {"a": [1]})
    result = run_sweep(spec, None, serial=True)
    assert result.failed == 1
    assert "unknown sweepable experiment" in result.records[0].error


# ----------------------------------------------------------------------
# Trace events
# ----------------------------------------------------------------------
def test_lifecycle_events_emitted(tmp_path):
    store = RunStore(tmp_path / "s")
    tracer = _tracer()
    run_sweep(SPEC, store, serial=True, tracer=tracer)
    counts = Counter(e.type for e in tracer.events())
    assert counts["sweep_run_started"] == 6
    assert counts["sweep_run_finished"] == 6
    assert counts["sweep_run_skipped"] == 0

    resume_tracer = _tracer()
    run_sweep(SPEC, store, serial=True, tracer=resume_tracer)
    resumed = Counter(e.type for e in resume_tracer.events())
    assert resumed == {"sweep_run_skipped": 6}


def test_retry_event_emitted_on_crash(tmp_path):
    spec = SweepSpec.build("selftest", {"crash": [1]}, n_seeds=1)
    tracer = _tracer()
    run_sweep(spec, RunStore(tmp_path / "s"), workers=2, retries=1,
              tracer=tracer)
    counts = Counter(e.type for e in tracer.events())
    assert counts["sweep_run_retried"] == 1
    assert counts["sweep_run_finished"] == 1


def test_sweep_events_roundtrip_wire_schema():
    from repro.obs import event_from_dict

    tracer = _tracer()
    run_sweep(SweepSpec.build("selftest", {"scale": [1.0]}), None,
              serial=True, tracer=tracer)
    for event in tracer.events():
        assert event_from_dict(event.to_dict()).to_dict() == event.to_dict()
