"""Sim-driver tests for the sharded control plane.

Covers the golden parity contract (a sharded/replicated manager answers
discovery bit-identically to the seed's single manager over a live
system), the shard-outage failover sequence (down -> detection window ->
standby promotion -> rejoin handoff), the degraded path when a shard has
no standby, epoch-change registry handoff, and the chaos scenario family
wrapping it all.
"""

from __future__ import annotations

import pytest

from repro.api import ScenarioBuilder
from repro.controlplane.errors import ControlPlaneUnavailable
from repro.controlplane.sim_driver import ShardedCentralManager
from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.manager import CentralManager
from repro.core.messages import DiscoveryQuery
from repro.core.system import EdgeSystem
from repro.faults.scenarios import run_sim_controlplane_chaos
from repro.geo.point import GeoPoint
from repro.net.topology import EndpointSpec
from repro.nodes.hardware import profile_by_name
from repro.obs.tracer import Tracer

CENTER = GeoPoint(44.97, -93.25)
#: Offsets tens of km apart: the nodes land in several precision-4
#: geohash cells, so shards>1 actually partitions the registry.
NODE_OFFSETS = [(-24.0, -18.0), (-10.0, 6.0), (0.0, 0.0), (12.0, -8.0), (24.0, 16.0)]


def build_system(
    *, shards: int = 1, replicas: int = 1, seed: int = 3, with_client: bool = False
) -> EdgeSystem:
    tracer = Tracer()
    config = SystemConfig(
        seed=seed,
        top_n=3,
        probing_period_ms=3_000.0,
        control_plane_shards=shards,
        control_plane_replicas=replicas,
    )
    system = EdgeSystem(config, trace=tracer)
    profiles = ("V1", "V2", "V5", "V1", "V2")
    for i, (dx, dy) in enumerate(NODE_OFFSETS):
        system.add_node(
            f"edge-{i}",
            profile_by_name(profiles[i]),
            EndpointSpec(CENTER.offset_km(dx, dy)),
        )
    if with_client:
        system.add_client_endpoint("alice", EndpointSpec(CENTER.offset_km(0.5, 0.5)))
        system.add_client(EdgeClient(system, "alice"))
    return system


def queries_at_each_node(top_n: int = 3):
    return [
        DiscoveryQuery(
            user_id=f"q{i}",
            lat=CENTER.offset_km(dx, dy).lat,
            lon=CENTER.offset_km(dx, dy).lon,
            top_n=top_n,
        )
        for i, (dx, dy) in enumerate(NODE_OFFSETS)
    ]


# ----------------------------------------------------------------------
# Wiring + golden parity
# ----------------------------------------------------------------------
def test_default_config_uses_the_seed_manager():
    assert isinstance(build_system().manager, CentralManager)


def test_shards_or_replicas_select_the_control_plane():
    assert isinstance(build_system(shards=2).manager, ShardedCentralManager)
    assert isinstance(build_system(replicas=2).manager, ShardedCentralManager)


def test_scenario_builder_control_plane_knob():
    scenario = (
        ScenarioBuilder(SystemConfig(seed=4))
        .control_plane(shards=2, replicas=2)
        .node("edge-a", profile_by_name("V1"), point=CENTER.offset_km(1.0, 0.0))
        .build_scenario()
    )
    manager = scenario.system.manager
    assert isinstance(manager, ShardedCentralManager)
    assert len(manager.shards) == 2
    assert manager.shards[0].replicas == 2


def test_scenario_builder_control_plane_validates():
    with pytest.raises(ValueError):
        ScenarioBuilder(SystemConfig()).control_plane(shards=0)


@pytest.mark.parametrize("shards,replicas", [(2, 1), (3, 2), (1, 2)])
def test_discover_parity_with_single_manager(shards, replicas):
    """Same seed, same heartbeat traffic: the sharded control plane's
    merged answers equal the single manager's, id-for-id."""
    reference = build_system()
    sharded = build_system(shards=shards, replicas=replicas)
    reference.run_for(4_000.0)
    sharded.run_for(4_000.0)
    for query in queries_at_each_node():
        want = reference.manager.discover(query)
        got = sharded.manager.discover(query)
        assert got.node_ids == want.node_ids
        assert got.widened == want.widened


def test_full_run_client_parity():
    """End-to-end: a client driving a sharded system completes the same
    frames against the same edges as one driving the seed manager."""
    reference = build_system(with_client=True)
    sharded = build_system(shards=2, replicas=2, with_client=True)
    reference.run_for(10_000.0)
    sharded.run_for(10_000.0)
    ref_client = reference.clients["alice"]
    cp_client = sharded.clients["alice"]
    assert cp_client.stats.frames_completed == ref_client.stats.frames_completed
    assert cp_client.current_edge == ref_client.current_edge


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------
def test_shard_outage_promotes_standby_after_detection_window():
    system = build_system(shards=2, replicas=2)
    system.run_for(2_000.0)
    manager = system.manager
    assert isinstance(manager, ShardedCentralManager)
    manager.on_shard_outage_start(0)
    assert manager.shards[0].serving_index() is None
    # Inside the detection window: not yet promoted.
    system.run_for(manager.promotion_delay_ms / 2)
    assert manager.promotions == 0
    system.run_for(manager.promotion_delay_ms)
    assert manager.promotions == 1
    assert manager.shards[0].serving_index() == 1
    kinds = [e.to_dict()["type"] for e in system.trace.events()]
    assert "manager_promote" in kinds

    # The outage lifts: the old primary rejoins as a standby, re-seeded
    # from the promoted replica's snapshot.
    manager.on_shard_outage_end(0)
    assert manager.shards[0].alive_replicas() == [0, 1]
    assert manager.shards[0].primary == 1
    kinds = [e.to_dict()["type"] for e in system.trace.events()]
    assert "registry_handoff" in kinds
    registries = [m.registry for m in manager.shards[0].machines]
    assert registries[0] == registries[1]


def test_outage_ending_inside_detection_window_skips_promotion():
    system = build_system(shards=2, replicas=2)
    system.run_for(2_000.0)
    manager = system.manager
    manager.on_shard_outage_start(0)
    manager.on_shard_outage_end(0)
    system.run_for(2 * manager.promotion_delay_ms)
    assert manager.promotions == 0
    assert manager.shards[0].primary == 0
    assert manager.shards[0].serving_index() == 0


def test_unreplicated_shard_outage_degrades_then_resumes():
    """replicas=1: nothing to promote — discovery touching a downed
    shard raises ControlPlaneUnavailable (the caller's cue to take the
    DiscoveryFailed -> degraded-fallback path), and the old primary
    resumes with its registry intact when the outage lifts."""
    system = build_system(shards=2, replicas=1)
    system.run_for(2_000.0)
    manager = system.manager
    before = [manager.discover(q).node_ids for q in queries_at_each_node()]
    manager.on_shard_outage_start(0)
    manager.on_shard_outage_end(1)  # no-op: shard 1 has no outage
    system.run_for(2 * manager.promotion_delay_ms)
    assert manager.promotions == 0
    with pytest.raises(ControlPlaneUnavailable):
        for query in queries_at_each_node():
            manager.discover(query)
    manager.on_shard_outage_end(0)
    after = [manager.discover(q).node_ids for q in queries_at_each_node()]
    assert after == before


def test_heartbeats_keep_standbys_warm_through_outage():
    """Delta replication: heartbeats arriving while the primary is down
    still land on the standby, so the promoted registry is current."""
    system = build_system(shards=2, replicas=2)
    system.run_for(2_000.0)
    manager = system.manager
    manager.on_shard_outage_start(0)
    system.run_for(4_000.0)  # heartbeat traffic continues; promotion fires
    assert manager.promotions == 1
    serving = manager.shards[0].serving_machine()
    assert serving is not None and len(serving.registry) > 0
    assert manager.heartbeats_dropped == 0


# ----------------------------------------------------------------------
# Epoch change
# ----------------------------------------------------------------------
def test_apply_shard_map_preserves_answers_and_bumps_epoch():
    system = build_system(shards=2, replicas=2)
    system.run_for(4_000.0)
    manager = system.manager
    before = [manager.discover(q).node_ids for q in queries_at_each_node()]
    old_epoch = manager.shard_map.epoch
    manager.apply_shard_map(manager.shard_map.derive(count=4))
    assert manager.shard_map.epoch == old_epoch + 1
    assert len(manager.shards) == 4
    after = [manager.discover(q).node_ids for q in queries_at_each_node()]
    assert after == before
    handoffs = [
        e.to_dict()
        for e in system.trace.events()
        if e.to_dict()["type"] == "registry_handoff"
    ]
    assert handoffs and all(h["reason"] == "epoch" for h in handoffs)


def test_apply_shard_map_rejects_stale_epoch():
    system = build_system(shards=2)
    manager = system.manager
    with pytest.raises(ValueError):
        manager.apply_shard_map(manager.shard_map)


# ----------------------------------------------------------------------
# Chaos family
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 3])
def test_controlplane_chaos_recovers(seed):
    report, events = run_sim_controlplane_chaos(seed)
    assert report.ok, report.problems
    kinds = [e.to_dict()["type"] for e in events]
    assert "manager_promote" in kinds
    assert "registry_handoff" in kinds


def test_controlplane_chaos_is_seed_deterministic():
    _, events_a = run_sim_controlplane_chaos(5)
    _, events_b = run_sim_controlplane_chaos(5)
    assert [e.to_dict() for e in events_a] == [e.to_dict() for e in events_b]
