"""Unit/behavioural tests for the client: Algorithm 2, switching,
hysteresis, failure monitor integration, offloading."""

import pytest

from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name


def build_system(config=None, nodes=("V1", "V2", "V5")):
    system = EdgeSystem(config or SystemConfig(seed=9, top_n=2))
    points = {
        "V1": GeoPoint(44.98, -93.26),
        "V2": GeoPoint(44.95, -93.20),
        "V3": GeoPoint(44.96, -93.22),
        "V5": GeoPoint(44.90, -93.10),
    }
    for name in nodes:
        system.spawn_node(name, profile_by_name(name), points[name])
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    return system


def test_client_attaches_after_first_round():
    system = build_system()
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(2_000.0)
    assert client.attached
    assert client.current_edge in ("V1", "V2", "V5")
    assert client.stats.joins_accepted == 1


def test_client_picks_best_performing_node(attached_client):
    """With heterogeneous hardware and similar RTTs, the fast V1 wins."""
    assert attached_client.current_edge == "V1"


def test_backups_hold_unselected_candidates():
    system = build_system(SystemConfig(seed=9, top_n=3))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    assert len(client.failure_monitor.backups) == 2
    assert client.current_edge not in client.failure_monitor.backups


def test_backup_count_respects_topn():
    system = build_system(SystemConfig(seed=9, top_n=1))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    assert client.attached
    assert client.failure_monitor.backups == []


def test_offloading_produces_latencies():
    system = build_system()
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(10_000.0)
    stats = client.stats
    assert stats.frames_completed > 100
    # e2e must exceed the node's raw processing time
    assert stats.mean_latency_ms > profile_by_name(client.current_edge).base_frame_ms


def test_probes_counted_per_candidate():
    config = SystemConfig(seed=9, top_n=3, probing_period_ms=1_000.0)
    system = build_system(config)
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(5_100.0)
    # ~6 rounds (initial + 5 periodic) x 3 candidates
    assert client.stats.probes_sent >= 12
    assert system.metrics.probes_sent["alice"] == client.stats.probes_sent


def test_client_switches_to_better_node_when_current_degrades():
    config = SystemConfig(seed=9, top_n=2, min_dwell_ms=1_000.0)
    system = build_system(config, nodes=("V1", "V2"))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    first = client.current_edge
    # Saturate the chosen node with 6 phantom users at full rate.
    node = system.nodes[first]
    for i in range(6):
        node.unexpected_join(f"phantom-{i}", fps=20.0)
        node.processor.submit(system.sim.now)  # make them visible
    system.run_for(10_000.0)
    assert client.current_edge != first
    assert client.stats.switches >= 1


def test_dwell_prevents_immediate_reswitch():
    config = SystemConfig(seed=9, top_n=2, min_dwell_ms=60_000.0)
    system = build_system(config)
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(20_000.0)
    assert client.stats.switches == 0


def test_stop_sends_leave():
    system = build_system()
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    edge = system.nodes[client.current_edge]
    client.stop()
    system.run_for(500.0)
    assert "alice" not in edge.attached
    assert not client.attached


def test_stop_is_idempotent_and_halts_frames():
    system = build_system()
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    client.stop()
    client.stop()
    sent = client.stats.frames_sent
    system.run_for(3_000.0)
    assert client.stats.frames_sent == sent


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------
def test_failover_switches_to_backup():
    system = build_system(SystemConfig(seed=9, top_n=3))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    victim = client.current_edge
    expected_backup = client.failure_monitor.backups[0]
    system.fail_node(victim)
    system.run_for(1_000.0)
    assert client.current_edge == expected_backup
    assert client.stats.covered_failovers == 1
    assert client.stats.uncovered_failures == 0


def test_failover_skips_dead_backup():
    system = build_system(SystemConfig(seed=9, top_n=3))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    victim = client.current_edge
    first_backup, second_backup = client.failure_monitor.backups[:2]
    # kill the first backup silently (no notification race: direct fail)
    system.nodes[first_backup].fail()
    system.fail_node(victim)
    system.run_for(1_500.0)
    assert client.current_edge == second_backup


def test_no_backups_is_uncovered_failure_then_rediscovery():
    system = build_system(SystemConfig(seed=9, top_n=1), nodes=("V1", "V2"))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    victim = client.current_edge
    survivor = "V2" if victim == "V1" else "V1"
    system.fail_node(victim)
    system.run_for(5_000.0)
    assert client.stats.uncovered_failures == 1
    assert client.current_edge == survivor


def test_backup_failure_prunes_list_without_detaching():
    system = build_system(SystemConfig(seed=9, top_n=3))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    current = client.current_edge
    backup = client.failure_monitor.backups[0]
    system.fail_node(backup)
    system.run_for(500.0)
    assert client.current_edge == current
    assert backup not in client.failure_monitor.backups


def test_frames_lost_during_failure_are_recorded():
    system = build_system(SystemConfig(seed=9, top_n=3))
    client = EdgeClient(system, "alice")
    system.add_client(client)
    system.run_for(3_000.0)
    system.fail_node(client.current_edge)
    system.run_for(2_000.0)
    assert client.stats.frames_lost > 0


def test_join_rejection_repeats_from_discovery():
    """Force a seq mismatch on every candidate: the client must retry
    discovery and count the rejections."""
    system = build_system(SystemConfig(seed=9, top_n=2))
    client = EdgeClient(system, "alice")

    # Sabotage: bump seq numbers right after every probe.
    original = client._probe_candidates

    def sabotaged(node_ids):
        original(node_ids)
        for node in system.nodes.values():
            node.seq_num += 1

    client._probe_candidates = sabotaged
    system.add_client(client)
    system.run_for(2_000.0)
    assert client.stats.joins_rejected >= 1
    assert not client.attached or client.stats.joins_accepted >= 1
