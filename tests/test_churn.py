"""Unit and statistical tests for churn models, traces and injection."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.churn.injector import ChurnInjector
from repro.churn.models import PoissonArrivalModel, WeibullLifetimeModel
from repro.churn.trace import ChurnTrace, NodeEpisode, generate_trace
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.geo.region import MSP_CENTER
from repro.nodes.hardware import profile_by_name


# ----------------------------------------------------------------------
# Poisson arrivals
# ----------------------------------------------------------------------
def test_poisson_mean_matches_k():
    model = PoissonArrivalModel(k=4.0)
    rng = random.Random(1)
    counts = [model.sample_count(rng) for _ in range(20_000)]
    assert sum(counts) / len(counts) == pytest.approx(4.0, rel=0.03)


def test_poisson_variance_matches_k():
    model = PoissonArrivalModel(k=4.0)
    rng = random.Random(2)
    counts = [model.sample_count(rng) for _ in range(20_000)]
    mean = sum(counts) / len(counts)
    var = sum((c - mean) ** 2 for c in counts) / len(counts)
    assert var == pytest.approx(4.0, rel=0.08)


def test_epoch_arrivals_inside_epoch_and_sorted():
    model = PoissonArrivalModel(k=4.0, epoch_ms=30_000.0)
    rng = random.Random(3)
    for epoch_start in (0.0, 30_000.0, 60_000.0):
        times = model.sample_epoch_arrivals(rng, epoch_start)
        assert times == sorted(times)
        for t in times:
            assert epoch_start <= t < epoch_start + 30_000.0


def test_poisson_validation():
    with pytest.raises(ValueError):
        PoissonArrivalModel(k=0.0)
    with pytest.raises(ValueError):
        PoissonArrivalModel(epoch_ms=0.0)


# ----------------------------------------------------------------------
# Weibull lifetimes
# ----------------------------------------------------------------------
def test_weibull_mean_matches_target():
    model = WeibullLifetimeModel(mean_ms=50_000.0, shape=1.5)
    rng = random.Random(4)
    samples = [model.sample_lifetime_ms(rng) for _ in range(20_000)]
    assert sum(samples) / len(samples) == pytest.approx(50_000.0, rel=0.03)


def test_weibull_scale_derivation():
    model = WeibullLifetimeModel(mean_ms=50_000.0, shape=1.5)
    assert model.scale_ms == pytest.approx(
        50_000.0 / math.gamma(1.0 + 1.0 / 1.5)
    )


def test_weibull_floor_at_one_second():
    model = WeibullLifetimeModel(mean_ms=2_000.0, shape=0.5)
    rng = random.Random(5)
    assert all(model.sample_lifetime_ms(rng) >= 1_000.0 for _ in range(2_000))


def test_weibull_validation():
    with pytest.raises(ValueError):
        WeibullLifetimeModel(mean_ms=0.0)
    with pytest.raises(ValueError):
        WeibullLifetimeModel(shape=0.0)


# ----------------------------------------------------------------------
# Trace generation
# ----------------------------------------------------------------------
def test_episode_validation():
    with pytest.raises(ValueError):
        NodeEpisode("n", 100.0, 100.0)


def test_episode_alive_interval():
    episode = NodeEpisode("n", 10.0, 20.0)
    assert not episode.alive_at(9.9)
    assert episode.alive_at(10.0)
    assert not episode.alive_at(20.0)
    assert episode.lifetime_ms == 10.0


def test_generate_trace_target_total():
    rng = random.Random(6)
    trace = generate_trace(rng, horizon_ms=180_000.0, target_total_nodes=18)
    assert len(trace) == 18
    assert all(e.join_ms < 180_000.0 for e in trace.episodes)


def test_generate_trace_sorted_and_unique_ids():
    rng = random.Random(7)
    trace = generate_trace(rng, horizon_ms=180_000.0)
    joins = [e.join_ms for e in trace.episodes]
    assert joins == sorted(joins)
    ids = [e.node_id for e in trace.episodes]
    assert len(set(ids)) == len(ids)


def test_generate_trace_impossible_target_raises():
    rng = random.Random(8)
    with pytest.raises(ValueError):
        generate_trace(
            rng, horizon_ms=30_000.0, target_total_nodes=500, max_attempts=5
        )


def test_population_steps_match_alive_count():
    rng = random.Random(9)
    trace = generate_trace(rng, horizon_ms=180_000.0)
    for t, count in trace.population_steps():
        assert count == trace.alive_count_at(t)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20)
def test_property_alive_count_nonnegative(seed):
    trace = generate_trace(random.Random(seed), horizon_ms=120_000.0)
    for ms in range(0, 120_000, 5_000):
        assert trace.alive_count_at(float(ms)) >= 0


def test_generation_is_seeded():
    a = generate_trace(random.Random(10), horizon_ms=120_000.0)
    b = generate_trace(random.Random(10), horizon_ms=120_000.0)
    assert [(e.join_ms, e.fail_ms) for e in a.episodes] == [
        (e.join_ms, e.fail_ms) for e in b.episodes
    ]


# ----------------------------------------------------------------------
# Injection
# ----------------------------------------------------------------------
def test_injector_replays_trace_population():
    system = EdgeSystem(SystemConfig(seed=12))
    trace = ChurnTrace(
        episodes=[
            NodeEpisode("vol-a", 1_000.0, 50_000.0),
            NodeEpisode("vol-b", 2_000.0, 10_000.0),
            NodeEpisode("vol-c", 12_000.0, 60_000.0),
        ],
        horizon_ms=60_000.0,
    )
    injector = ChurnInjector(
        system, [profile_by_name("t2.xlarge")], center=MSP_CENTER
    )
    injector.install(trace)
    system.run_for(5_000.0)
    assert set(system.alive_node_ids()) == {"vol-a", "vol-b"}
    system.run_for(6_000.0)  # t=11s: vol-b died
    assert set(system.alive_node_ids()) == {"vol-a"}
    system.run_for(2_000.0)  # t=13s: vol-c joined
    assert set(system.alive_node_ids()) == {"vol-a", "vol-c"}
    system.run_for(42_000.0)  # t=55s
    assert set(system.alive_node_ids()) == {"vol-c"}


def test_injector_rejects_id_collision():
    system = EdgeSystem(SystemConfig(seed=12))
    system.spawn_node("vol-a", profile_by_name("V1"), MSP_CENTER)
    injector = ChurnInjector(system, [profile_by_name("V1")], center=MSP_CENTER)
    trace = ChurnTrace([NodeEpisode("vol-a", 1_000.0, 5_000.0)], 10_000.0)
    with pytest.raises(ValueError, match="collides"):
        injector.install(trace)


def test_injector_requires_profiles():
    system = EdgeSystem(SystemConfig(seed=12))
    with pytest.raises(ValueError):
        ChurnInjector(system, [], center=MSP_CENTER)


def test_injector_matches_profiles_deterministically():
    def run():
        system = EdgeSystem(SystemConfig(seed=13))
        injector = ChurnInjector(
            system,
            [profile_by_name("t2.medium"), profile_by_name("t2.xlarge")],
            center=MSP_CENTER,
        )
        trace = ChurnTrace(
            [NodeEpisode(f"vol-{i}", 100.0 * i + 1, 50_000.0) for i in range(4)],
            60_000.0,
        )
        injector.install(trace)
        system.run_for(1_000.0)
        return {n: node.profile.name for n, node in system.nodes.items()}

    assert run() == run()


def test_injector_custom_placer():
    system = EdgeSystem(SystemConfig(seed=14))
    fixed = MSP_CENTER
    injector = ChurnInjector(
        system,
        [profile_by_name("V1")],
        center=MSP_CENTER,
        placer=lambda episode: fixed,
    )
    trace = ChurnTrace([NodeEpisode("vol-x", 100.0, 5_000.0)], 10_000.0)
    injector.install(trace)
    system.run_for(500.0)
    assert system.topology.endpoint("vol-x").point == fixed


# ----------------------------------------------------------------------
# Crash-and-return episodes (restart under the same node id)
# ----------------------------------------------------------------------
def test_restart_episode_validation_and_kind():
    plain = NodeEpisode("vol-a", 1_000.0, 5_000.0)
    assert plain.kind == "fail"
    restart = NodeEpisode("vol-a", 1_000.0, 5_000.0, restart_ms=9_000.0)
    assert restart.kind == "restart"
    with pytest.raises(ValueError, match="restart"):
        NodeEpisode("vol-a", 1_000.0, 5_000.0, restart_ms=4_000.0)


def test_restart_episode_alive_interval():
    episode = NodeEpisode("vol-a", 1_000.0, 5_000.0, restart_ms=9_000.0)
    assert not episode.alive_at(500.0)
    assert episode.alive_at(1_000.0)
    assert not episode.alive_at(5_000.0)  # crashed
    assert not episode.alive_at(8_999.0)  # still down
    assert episode.alive_at(9_000.0)  # back under the same id
    assert episode.alive_at(1e9)  # stays up to the horizon


def test_restart_episode_population_steps():
    trace = ChurnTrace(
        episodes=[NodeEpisode("vol-a", 1_000.0, 5_000.0, restart_ms=9_000.0)],
        horizon_ms=20_000.0,
    )
    assert trace.population_steps() == [
        (1_000.0, 1),
        (5_000.0, 0),
        (9_000.0, 1),
    ]
    assert trace.alive_count_at(9_500.0) == 1


def test_injector_restart_reuses_node_id_with_fresh_state():
    """Node-id reuse regression: the restarted volunteer is a fresh
    process — seqNum back at 0, empty attachment table, re-primed
    what-if cache — not a resurrected copy of the pre-crash state."""
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    system = EdgeSystem(SystemConfig(seed=12), trace=tracer)
    trace = ChurnTrace(
        episodes=[
            NodeEpisode("vol-a", 1_000.0, 5_000.0, restart_ms=9_000.0),
        ],
        horizon_ms=20_000.0,
    )
    injector = ChurnInjector(
        system, [profile_by_name("t2.xlarge")], center=MSP_CENTER
    )
    injector.install(trace)

    system.run_for(2_000.0)  # t=2s: first incarnation is up
    first = system.nodes["vol-a"]
    # poison the pre-crash state so staleness would be visible
    first.seq_num = 7
    first.attached = {"ghost-user": 20.0}
    first.what_if_ms = 12_345.0

    system.run_for(4_000.0)  # t=6s: crashed
    assert not system.nodes["vol-a"].alive

    system.run_for(4_000.0)  # t=10s: restarted under the same id
    second = system.nodes["vol-a"]
    assert second is not first  # a genuinely fresh process
    assert second.alive
    assert second.seq_num == 0
    assert second.attached == {}
    assert second.what_if_ms != 12_345.0  # cache re-primed, not inherited

    # the restart re-primed the what-if cache: one "prime" per incarnation
    primes = [
        e
        for e in tracer.events()
        if e.type == "cache_miss"
        and e.node_id == "vol-a"
        and e.reason == "prime"
    ]
    assert len(primes) == 2
    restarts = [e for e in tracer.events() if e.type == "node_restart"]
    assert [e.node_id for e in restarts] == ["vol-a"]


def test_injector_restart_skipped_if_node_never_failed():
    """A restart scheduled for a node that is somehow still alive is a
    no-op, not an error."""
    system = EdgeSystem(SystemConfig(seed=12))
    trace = ChurnTrace(
        episodes=[
            NodeEpisode("vol-a", 1_000.0, 50_000.0, restart_ms=60_000.0),
        ],
        horizon_ms=70_000.0,
    )
    injector = ChurnInjector(
        system, [profile_by_name("t2.xlarge")], center=MSP_CENTER
    )
    injector.install(trace)
    system.run_for(52_000.0)  # past fail_ms: the node crashed
    assert not system.nodes["vol-a"].alive
    # someone else already brought it back before the scheduled restart
    system.restart_node("vol-a")
    revived = system.nodes["vol-a"]
    system.run_for(10_000.0)  # past restart_ms: the no-op restart fires
    assert system.nodes["vol-a"] is revived  # not restarted a second time
