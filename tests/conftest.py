"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.nodes.hardware import profile_by_name
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def config() -> SystemConfig:
    """A fast-cadence config for quick test runs."""
    return SystemConfig(
        top_n=2,
        probing_period_ms=1_000.0,
        probing_jitter_ms=50.0,
        heartbeat_period_ms=500.0,
        heartbeat_timeout_ms=1_500.0,
        seed=99,
    )


@pytest.fixture
def small_system(config: SystemConfig) -> EdgeSystem:
    """Three heterogeneous volunteers + two user endpoints, not started."""
    system = EdgeSystem(config)
    system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.98, -93.26))
    system.spawn_node("V2", profile_by_name("V2"), GeoPoint(44.95, -93.20))
    system.spawn_node("V5", profile_by_name("V5"), GeoPoint(44.90, -93.10))
    system.register_client_endpoint("alice", GeoPoint(44.97, -93.25))
    system.register_client_endpoint("bob", GeoPoint(44.93, -93.18))
    return system


@pytest.fixture
def attached_client(small_system: EdgeSystem) -> EdgeClient:
    """A client that has completed its first selection round."""
    client = EdgeClient(small_system, "alice")
    small_system.add_client(client)
    small_system.run_for(3_000)
    assert client.attached, "client failed to attach during fixture setup"
    return client
