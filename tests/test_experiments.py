"""Smoke tests for every experiment builder (tiny parameters).

The benchmarks run the full-size versions; here each experiment is
exercised end to end with reduced durations so regressions in the
builders surface in the unit suite within seconds.
"""

import pytest

from repro.core.config import SystemConfig
from repro.experiments.emulation import run_user_traces, run_vs_optimal
from repro.experiments.network_study import run_network_study
from repro.experiments.realworld import (
    run_elasticity_sweep,
    run_failover_trace,
    run_pairwise_selection,
    run_single_user_cdf,
)
from repro.experiments.scenario import (
    build_emulation_system,
    build_real_world_system,
)


CONFIG = SystemConfig(seed=50)


def test_real_world_scenario_inventory():
    scenario = build_real_world_system(CONFIG, n_users=4)
    assert scenario.volunteer_ids == ["V1", "V2", "V3", "V4", "V5"]
    assert scenario.dedicated_ids == ["D6", "D7", "D8", "D9"]
    assert scenario.cloud_id == "Cloud"
    assert len(scenario.user_ids) == 4
    assert len(scenario.all_node_ids) == 10


def test_real_world_scenario_restrictions():
    scenario = build_real_world_system(
        CONFIG, n_users=1, include_volunteers=False, include_cloud=False
    )
    assert scenario.volunteer_ids == []
    assert scenario.cloud_id is None
    assert scenario.all_node_ids == ["D6", "D7", "D8", "D9"]


def test_emulation_scenario_matches_paper_fleet():
    scenario = build_emulation_system(CONFIG, n_users=3)
    assert len(scenario.node_ids) == 9
    mediums = [n for n in scenario.node_ids if "t2.medium" in n]
    assert len(mediums) == 4
    assert len(scenario.expected_rtt) == 3 * 9
    rtts = list(scenario.expected_rtt.values())
    assert min(rtts) >= 5.0 and max(rtts) <= 70.0


def test_fig1_network_study():
    result = run_network_study(CONFIG, n_users=4, probes_per_pair=3)
    summaries = result.summaries()
    assert set(summaries) == {"volunteer", "local_zone", "cloud"}
    # the paper's headline: cloud far above both edge classes
    assert summaries["cloud"].mean_ms > summaries["volunteer"].mean_ms
    assert summaries["cloud"].mean_ms > summaries["local_zone"].mean_ms


def test_fig1_validates_probe_count():
    with pytest.raises(ValueError):
        run_network_study(CONFIG, probes_per_pair=0)


def test_fig3_single_user_cdf():
    result = run_single_user_cdf(
        CONFIG, target_nodes=("V1", "V5"), duration_ms=6_000.0
    )
    assert set(result.latencies) == {"V1", "V5"}
    means = result.means()
    assert means["V1"] < means["V5"]  # faster hardware, similar network
    cdfs = result.cdfs()
    assert cdfs["V1"][-1][1] == pytest.approx(1.0)


def test_table3_pairwise_selection():
    result = run_pairwise_selection(
        CONFIG, n_probe_users=1, measure_duration_ms=5_000.0, select_duration_ms=5_000.0
    )
    user = result.user_ids[0]
    row = result.row(user)
    assert len(row) == len(result.node_ids)
    # the selected node should be (near) the row's minimum
    chosen = result.selected[user]
    chosen_ms = result.pairwise_ms[(user, chosen)]
    assert chosen_ms <= min(row) * 1.25


def test_fig4_failover_trace():
    result = run_failover_trace(CONFIG, fail_at_ms=5_000.0, duration_ms=10_000.0)
    # proactive switch avoids the re-discovery latency cliff
    assert result.proactive_peak_ms < result.reactive_peak_ms
    assert result.reactive_peak_ms > 500.0


def test_fig5_elasticity_sweep_small():
    result = run_elasticity_sweep(
        CONFIG,
        user_counts=[2],
        strategies=("client_centric", "closest_cloud"),
        settle_ms=4_000.0,
        measure_ms=5_000.0,
        join_stagger_ms=500.0,
    )
    ours = result.series("client_centric")[0]
    cloud = result.series("closest_cloud")[0]
    assert ours < cloud  # edge beats WAN at trivial load


def test_fig6_user_traces_small():
    result = run_user_traces(CONFIG, methods=("client_centric",), bin_ms=5_000.0)
    traces = result.traces["client_centric"]
    assert len(traces) == 15
    assert all(len(trace) > 0 for trace in traces.values())


def test_fig7_vs_optimal_small():
    result = run_vs_optimal(CONFIG, methods=("client_centric", "geo_proximity"))
    assert result.optimal_ms > 0
    # locality-blind-to-capacity lands far above; ours stays near optimal
    assert result.overhead_pct("client_centric") < result.overhead_pct(
        "geo_proximity"
    )
