"""Unit tests for the simulator kernel."""

import pytest

from repro.sim.events import Event
from repro.sim.kernel import Simulator


def test_schedule_and_run_until_executes_in_order(sim):
    log = []
    sim.schedule(10.0, lambda: log.append("b"))
    sim.schedule(5.0, lambda: log.append("a"))
    sim.run_until(20.0)
    assert log == ["a", "b"]
    assert sim.now == 20.0


def test_run_until_includes_boundary_events(sim):
    log = []
    sim.schedule_at(10.0, lambda: log.append("edge"))
    sim.run_until(10.0)
    assert log == ["edge"]


def test_run_until_leaves_future_events_pending(sim):
    log = []
    sim.schedule(50.0, lambda: log.append("later"))
    sim.run_until(10.0)
    assert log == []
    sim.run_until(60.0)
    assert log == ["later"]


def test_clock_advances_to_event_time_during_dispatch(sim):
    seen = []
    sim.schedule(7.5, lambda: seen.append(sim.now))
    sim.run_until(100.0)
    assert seen == [7.5]


def test_negative_delay_clamped_to_now(sim):
    sim.schedule(3.0, lambda: None)
    sim.run_until(3.0)
    log = []
    sim.schedule(-5.0, lambda: log.append(sim.now))
    sim.run_until(3.0)
    assert log == [3.0]


def test_schedule_at_past_raises(sim):
    sim.schedule(5.0, lambda: None)
    sim.run_until(5.0)
    with pytest.raises(ValueError, match="past"):
        sim.schedule_at(4.0, lambda: None)


def test_events_scheduled_during_dispatch_run_same_pass(sim):
    log = []

    def outer():
        log.append("outer")
        sim.schedule(1.0, lambda: log.append("inner"))

    sim.schedule(1.0, outer)
    sim.run_until(10.0)
    assert log == ["outer", "inner"]


def test_step_executes_single_event(sim):
    log = []
    sim.schedule(1.0, lambda: log.append(1))
    sim.schedule(2.0, lambda: log.append(2))
    assert sim.step()
    assert log == [1]
    assert sim.step()
    assert log == [1, 2]
    assert not sim.step()


def test_run_drains_queue(sim):
    log = []
    for i in range(5):
        sim.schedule(float(i), lambda i=i: log.append(i))
    sim.run()
    assert log == [0, 1, 2, 3, 4]


def test_run_respects_max_events(sim):
    log = []
    for i in range(5):
        sim.schedule(float(i), lambda i=i: log.append(i))
    sim.run(max_events=2)
    assert log == [0, 1]


def test_stop_halts_run_until(sim):
    log = []
    sim.schedule(1.0, lambda: (log.append("first"), sim.stop()))
    sim.schedule(2.0, lambda: log.append("second"))
    sim.run_until(10.0)
    assert log == ["first", ("second",)] or log[0] == "first"
    assert "second" not in log


def test_exceptions_propagate_without_handler(sim):
    def boom():
        raise RuntimeError("kaboom")

    sim.schedule(1.0, boom)
    with pytest.raises(RuntimeError, match="kaboom"):
        sim.run_until(5.0)


def test_error_handler_swallows_and_continues():
    captured = []

    def handler(exc: BaseException, event: Event) -> None:
        captured.append(str(exc))

    sim = Simulator(error_handler=handler)
    sim.schedule(1.0, lambda: (_ for _ in ()).throw(RuntimeError("bad node")))
    done = []
    sim.schedule(2.0, lambda: done.append(True))
    sim.run_until(5.0)
    assert captured == ["bad node"]
    assert done == [True]


def test_events_processed_counter(sim):
    for i in range(3):
        sim.schedule(float(i), lambda: None)
    sim.run_until(10.0)
    assert sim.events_processed == 3


# ----------------------------------------------------------------------
# Periodic timers
# ----------------------------------------------------------------------
def test_every_fires_at_period(sim):
    ticks = []
    sim.every(10.0, lambda: ticks.append(sim.now))
    sim.run_until(35.0)
    assert ticks == [10.0, 20.0, 30.0]


def test_every_with_start_after(sim):
    ticks = []
    sim.every(10.0, lambda: ticks.append(sim.now), start_after=0.0)
    sim.run_until(25.0)
    assert ticks == [0.0, 10.0, 20.0]


def test_every_cancel_stops_future_firings(sim):
    ticks = []
    handle = sim.every(10.0, lambda: ticks.append(sim.now))
    sim.run_until(15.0)
    handle.cancel()
    sim.run_until(100.0)
    assert ticks == [10.0]
    assert handle.cancelled


def test_every_cancel_from_inside_callback(sim):
    ticks = []
    handle = sim.every(5.0, lambda: (ticks.append(sim.now), handle.cancel()))
    sim.run_until(50.0)
    assert ticks == [5.0]


def test_every_with_jitter_uses_callback(sim):
    ticks = []
    sim.every(10.0, lambda: ticks.append(sim.now), jitter=lambda: 1.0)
    sim.run_until(35.0)
    assert ticks == [10.0, 21.0, 32.0]


def test_every_rejects_nonpositive_period(sim):
    with pytest.raises(ValueError):
        sim.every(0.0, lambda: None)


def test_every_negative_jitter_never_goes_nonpositive(sim):
    ticks = []
    sim.every(10.0, lambda: ticks.append(sim.now), jitter=lambda: -20.0)
    sim.run_until(30.0)
    # delay would be -10 -> falls back to the nominal period
    assert ticks == [10.0, 20.0, 30.0]
