"""Property test: sharded routed discovery == single-manager select.

The control plane's determinism contract, held bit-for-bit: over random
node populations (including expired-heartbeat entries) and random query
points (including points whose covering cells straddle shard
boundaries), the :class:`ShardRouter`'s merged TopN — fetched from
machines that each hold only their shard's partition of the registry —
equals the answer one machine holding the whole registry gives, same
ids, same order, same ``widened`` flag.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane.router import PartialSelection, ShardRouter
from repro.controlplane.sharding import ShardMap
from repro.core.messages import DiscoveryQuery, NodeStatus
from repro.core.policies.global_policies import (
    GeoProximityFilter,
    GlobalSelectionPolicy,
)
from repro.geo.geohash import encode
from repro.protocol.effects import ReplyCandidates, ReplyPartialCandidates
from repro.protocol.events import (
    DiscoveryRequested,
    HeartbeatReceived,
    PartialDiscoveryRequested,
)
from repro.protocol.global_select import GlobalSelectionMachine

#: Heartbeats older than this (at query time ``NOW``) are expired.
TIMEOUT = 100.0
NOW = 250.0
FRESH_STAMP = 200.0  # alive at NOW
STALE_STAMP = 0.0  # expired at NOW

# A box a few hundred km across: spans many precision-4 cells, so
# random points land on both sides of shard boundaries.
lats = st.floats(min_value=44.0, max_value=46.0, allow_nan=False)
lons = st.floats(min_value=-94.0, max_value=-91.0, allow_nan=False)


@st.composite
def populations(draw) -> List[Tuple[NodeStatus, float]]:
    n = draw(st.integers(min_value=0, max_value=24))
    out: List[Tuple[NodeStatus, float]] = []
    for i in range(n):
        lat, lon = draw(lats), draw(lons)
        status = NodeStatus(
            node_id=f"n{i:02d}",
            lat=lat,
            lon=lon,
            geohash=encode(lat, lon, precision=9),
            cores=draw(st.integers(min_value=1, max_value=16)),
            capacity_fps=30.0,
            attached_users=0,
            utilization=draw(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
            ),
            isp=draw(st.sampled_from([None, "ispA", "ispB"])),
        )
        stamp = draw(st.sampled_from([FRESH_STAMP, STALE_STAMP]))
        out.append((status, stamp))
    return out


@st.composite
def queries(draw) -> DiscoveryQuery:
    return DiscoveryQuery(
        user_id="u",
        lat=draw(lats),
        lon=draw(lons),
        top_n=draw(st.integers(min_value=1, max_value=5)),
        isp=draw(st.sampled_from([None, "ispA"])),
    )


@settings(max_examples=120, deadline=None)
@given(
    population=populations(),
    query=queries(),
    shards=st.sampled_from([1, 2, 3, 5]),
    radius_km=st.sampled_from([5.0, 25.0, 120.0]),
)
def test_routed_select_is_bit_identical(population, query, shards, radius_km):
    policy = GlobalSelectionPolicy(
        geo_filter=GeoProximityFilter(radius_km=radius_km, wide_radius_km=400.0)
    )

    reference = GlobalSelectionMachine(policy, heartbeat_timeout=TIMEOUT)
    shard_map = ShardMap(count=shards)
    router = ShardRouter(shard_map, policy)
    machines = [
        GlobalSelectionMachine(policy, heartbeat_timeout=TIMEOUT)
        for _ in range(shards)
    ]
    for status, stamp in population:
        reference.handle(HeartbeatReceived(stamp=stamp, status=status))
        machines[router.owner_of(status)].handle(
            HeartbeatReceived(stamp=stamp, status=status)
        )

    # Expired nodes surface NodeExpired effects alongside the reply —
    # pick out the reply on both sides.
    (want,) = [
        e
        for e in reference.handle(
            DiscoveryRequested(now=NOW, stamp=NOW, query=query)
        )
        if isinstance(e, ReplyCandidates)
    ]

    def fetch(shard: int, phase_radius_km: float) -> PartialSelection:
        (reply,) = [
            e
            for e in machines[shard].handle(
                PartialDiscoveryRequested(
                    now=NOW, stamp=NOW, query=query, radius_km=phase_radius_km
                )
            )
            if isinstance(e, ReplyPartialCandidates)
        ]
        return PartialSelection(
            shard=shard, count=reply.count, statuses=reply.statuses
        )

    routed = router.select(query, fetch)
    assert routed.node_ids == want.node_ids
    assert routed.widened == want.widened
