"""Ablation — how much the contention model matters to the headline.

DESIGN.md calls out the frame-queue contention model as a key design
decision. This ablation reruns the 15-user real-world comparison with
node parallelism scaled up (lighter contention) and down (heavier) by
rebuilding the volunteer catalog, and checks the paper's qualitative
ordering (ours <= resource-aware < dedicated-only) holds across the
regime — i.e. the headline is not an artifact of one calibration point.
"""

from conftest import run_once
from dataclasses import replace

from repro.core.config import SystemConfig
from repro.experiments.realworld import run_elasticity_sweep
from repro.metrics.report import format_table
from repro.nodes import hardware


def run_with_parallelism_factor(seed, factor):
    """Temporarily scale every volunteer profile's parallelism."""
    original = list(hardware.VOLUNTEER_PROFILES)
    scaled = [
        replace(p, parallelism=max(1, int(p.parallelism * factor)))
        for p in original
    ]
    hardware.VOLUNTEER_PROFILES[:] = scaled
    try:
        result = run_elasticity_sweep(
            SystemConfig(seed=seed),
            user_counts=[15],
            strategies=("client_centric", "resource_aware", "dedicated_only"),
        )
        return {s: result.series(s)[0] for s in result.averages_ms}
    finally:
        hardware.VOLUNTEER_PROFILES[:] = original


def run_sweep(seed):
    return {
        "0.5x capacity": run_with_parallelism_factor(seed, 0.5),
        "1x capacity (paper calib.)": run_with_parallelism_factor(seed, 1.0),
        "2x capacity": run_with_parallelism_factor(seed, 2.0),
    }


def test_ablation_contention(benchmark, bench_config):
    results = run_once(benchmark, run_sweep, bench_config.seed)

    rows = [
        [regime, values["client_centric"], values["resource_aware"],
         values["dedicated_only"]]
        for regime, values in results.items()
    ]
    print()
    print(
        format_table(
            ["volunteer capacity", "client-centric", "resource-aware",
             "dedicated-only"],
            rows,
            title="Ablation — 15-user latency (ms) across contention regimes",
        )
    )

    for regime, values in results.items():
        ours = values["client_centric"]
        # The qualitative ordering survives recalibration.
        assert ours <= values["resource_aware"] * 1.10, regime
        assert ours < values["dedicated_only"], regime
    # More volunteer capacity helps the volunteer-using strategies.
    assert (
        results["2x capacity"]["client_centric"]
        < results["0.5x capacity"]["client_centric"]
    )
