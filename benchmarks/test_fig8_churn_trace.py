"""Fig. 8 — average latency of 10 static users under high node churn,
against the alive-node stair line (TopN = 3).

Paper: "Whenever new edge nodes join the system (upward steps), the
average latency correspondingly decreases within seconds. ... When edge
nodes leave the system (downward steps), the average latency does
increase but there is no service disruption."
"""

from conftest import run_once

from repro.experiments.churn_experiment import run_churn_trace
from repro.metrics.report import format_table


def test_fig8_churn_trace(benchmark, bench_config):
    result = run_once(benchmark, run_churn_trace, bench_config)

    print()
    print(f"Fig. 8 — {result.total_nodes} volunteer episodes over 3 minutes")
    print("  population steps:", [
        f"{t/1000:.0f}s:{c}" for t, c in result.population_steps
    ])
    rows = [
        [f"{t / 1000:.0f}-{t / 1000 + 5:.0f}s", v]
        for t, v in result.latency_trace
    ]
    print(format_table(["window", "avg latency ms"], rows))

    assert result.total_nodes == 18  # the paper's selected configuration

    # Shape: after the initial scramble the service is continuously
    # usable; the worst 5-s window stays bounded.
    steady = {t: v for t, v in result.latency_trace if t >= 30_000.0}
    assert steady, "no steady-state windows recorded"
    assert max(steady.values()) < 400.0
    assert min(steady.values()) < 100.0

    # Population/latency anti-correlation: windows with more alive nodes
    # average lower latency than windows with fewer.
    def population_at(t_ms):
        count = 0
        for step_t, step_c in result.population_steps:
            if step_t > t_ms:
                break
            count = step_c
        return count

    rich = [v for t, v in steady.items() if population_at(t) >= 6]
    poor = [v for t, v in steady.items() if population_at(t) <= 3]
    if rich and poor:
        assert sum(rich) / len(rich) < sum(poor) / len(poor)
