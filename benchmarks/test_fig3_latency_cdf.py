"""Fig. 3 — CDF of end-to-end latency from one user to 4 edge servers.

Paper: well-connected volunteers (V1, V2) deliver better end-to-end
latency than the dedicated Local Zone instance (D6), because their
network proximity outweighs D6's hardware; the slow V4 trails.
"""

from conftest import run_once

from repro.experiments.realworld import run_single_user_cdf
from repro.metrics.report import format_cdf, format_table


def test_fig3_latency_cdf(benchmark, bench_config):
    result = run_once(
        benchmark,
        run_single_user_cdf,
        bench_config,
        target_nodes=("V1", "V2", "V4", "D6"),
        duration_ms=30_000.0,
    )

    means = result.means()
    print()
    print(
        format_table(
            ["edge server", "mean e2e ms"],
            [[node, means[node]] for node in ("V1", "V2", "V4", "D6")],
            title=f"Fig. 3 — user {result.user_id} vs 4 edge servers",
        )
    )
    for node, points in result.cdfs().items():
        print(format_cdf(points, label=f"{node} e2e latency (ms)"))

    # Shape (the paper's claim): well-connected volunteers "can deliver
    # better performance compared to dedicated nodes" — the best
    # volunteer beats D6 — and V1 (fast, near) is the overall winner.
    # Which volunteer trails depends on each one's network access draw,
    # in the paper's measurements as in ours.
    assert means["V1"] == min(means.values())
    assert means["V1"] < means["D6"]
    assert max(means.values()) > means["D6"]  # some volunteer loses to D6
    for points in result.cdfs().values():
        assert points[-1][1] == 1.0
