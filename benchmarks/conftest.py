"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation, prints the corresponding rows/series, and asserts the
*shape* of the result (who wins, by roughly what factor, where the
crossover falls) — absolute numbers depend on the simulated substrate
and are recorded in EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig

#: One seed for the whole harness so EXPERIMENTS.md numbers reproduce.
BENCH_SEED = 42


@pytest.fixture
def bench_config() -> SystemConfig:
    return SystemConfig(seed=BENCH_SEED)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are multi-second simulations; statistical timing
    repetition would multiply the harness runtime for no insight.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
