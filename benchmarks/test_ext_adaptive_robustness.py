"""Extension — churn-adaptive TopN / T_probing (§IV-E, closed-loop).

The paper leaves the robustness knobs to the operator. This bench runs
the §V-D2 churn workload with (a) the paper's fixed TopN=3, (b) a cheap
fixed TopN=2 with slow probing, and (c) the adaptive controller starting
from the cheap configuration — showing the controller buys back fixed-3
robustness while idling at the cheap settings whenever churn allows.
"""

from conftest import run_once

from repro.core.adaptive_robustness import AdaptiveRobustness
from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.experiments.churn_experiment import make_churn_trace
from repro.experiments.scenario import (
    CHURN_NODE_MIX,
    build_emulation_system,
    emulation_node_profiles,
)
from repro.churn.injector import ChurnInjector
from repro.geo.region import MSP_CENTER
from repro.metrics.report import format_table


def run_variant(seed, *, top_n, period_ms, adaptive, trace):
    config = SystemConfig(seed=seed, top_n=top_n, probing_period_ms=period_ms)
    scenario = build_emulation_system(config, n_users=10, spawn_nodes=False)
    system = scenario.system
    ChurnInjector(
        system,
        emulation_node_profiles(CHURN_NODE_MIX),
        center=MSP_CENTER,
        placement_radius_km=80.0,
    ).install(trace)
    for user_id in scenario.user_ids:
        client = EdgeClient(system, user_id)
        system.clients[user_id] = client
        client.start()
        if adaptive:
            AdaptiveRobustness(quiet_window_ms=20_000.0).attach(client)
    system.run_for(180_000.0)
    return {
        "probes": system.metrics.total_probes(),
        "failures": system.metrics.total_failures(),
        "covered": sum(system.metrics.covered_failovers.values()),
    }


def run_all(seed):
    trace = make_churn_trace(SystemConfig(seed=seed))
    return {
        "fixed TopN=3, 2s": run_variant(
            seed, top_n=3, period_ms=2_000.0, adaptive=False, trace=trace
        ),
        "fixed TopN=2, 4s": run_variant(
            seed, top_n=2, period_ms=4_000.0, adaptive=False, trace=trace
        ),
        "adaptive (from 2, 4s)": run_variant(
            seed, top_n=2, period_ms=4_000.0, adaptive=True, trace=trace
        ),
    }


def test_ext_adaptive_robustness(benchmark, bench_config):
    results = run_once(benchmark, run_all, bench_config.seed)

    rows = [
        [name, values["probes"], values["covered"], values["failures"]]
        for name, values in results.items()
    ]
    print()
    print(
        format_table(
            ["configuration", "probes (overhead)", "covered failovers",
             "uncovered failures"],
            rows,
            title="Extension — adaptive robustness under the §V-D2 churn",
        )
    )

    fixed3 = results["fixed TopN=3, 2s"]
    cheap = results["fixed TopN=2, 4s"]
    adaptive = results["adaptive (from 2, 4s)"]
    # The controller must not exceed the heavyweight config's overhead...
    assert adaptive["probes"] < fixed3["probes"]
    # ...while matching (or beating) the cheap config's robustness.
    assert adaptive["failures"] <= cheap["failures"]
