"""Fig. 1 — RTT from metro users to volunteers / Local Zone / cloud.

Paper: volunteer edge nodes in the same metro deliver lower RTT than the
AWS Local Zone, and both sit far below the closest cloud region.
"""

from conftest import run_once

from repro.experiments.network_study import run_network_study
from repro.metrics.report import format_table


def test_fig1_network_study(benchmark, bench_config):
    result = run_once(
        benchmark, run_network_study, bench_config, n_users=15, probes_per_pair=20
    )
    summaries = result.summaries()

    rows = [
        [name, s.mean_ms, s.p50_ms, s.p90_ms, s.min_ms, s.max_ms]
        for name, s in summaries.items()
    ]
    print()
    print(
        format_table(
            ["target class", "mean", "p50", "p90", "min", "max"],
            rows,
            title="Fig. 1 — RTT (ms) from 15 metro users",
        )
    )

    volunteer = summaries["volunteer"]
    local_zone = summaries["local_zone"]
    cloud = summaries["cloud"]
    # Shape: volunteers (class mean) at or below the Local Zone, with the
    # best volunteers far below it; cloud multiples above both.
    assert volunteer.mean_ms <= local_zone.mean_ms * 1.1
    assert volunteer.min_ms < local_zone.min_ms
    assert cloud.mean_ms > 2.0 * local_zone.mean_ms
    assert cloud.mean_ms > 2.0 * volunteer.mean_ms
