"""Fig. 4 — re-connect vs immediate connection switch upon node failure.

Paper: the re-connection approach suffers "a large service downtime to
re-discover an alternative edge node upon failure", while the proactive
approach "can immediately switch to a backup edge node maintaining the
continuous service".
"""

from conftest import run_once

from repro.experiments.realworld import run_failover_trace
from repro.metrics.report import format_table


def test_fig4_failover_trace(benchmark, bench_config):
    result = run_once(
        benchmark,
        run_failover_trace,
        bench_config,
        fail_at_ms=10_000.0,
        duration_ms=20_000.0,
    )

    print()
    print(
        format_table(
            ["approach", "peak latency after failure (ms)", "frames completed"],
            [
                ["proactive switch (ours)", result.proactive_peak_ms, len(result.proactive)],
                ["re-connect", result.reactive_peak_ms, len(result.reactive)],
            ],
            title=f"Fig. 4 — node killed at t={result.fail_at_ms / 1000:.0f}s",
        )
    )
    # Print the latency trace around the failure for both approaches.
    for label, trace in (("proactive", result.proactive), ("reactive", result.reactive)):
        around = [
            (t, v)
            for t, v in trace
            if result.fail_at_ms - 1_000 <= t <= result.fail_at_ms + 4_000
        ]
        sampled = around[:: max(1, len(around) // 12)]
        print(f"  {label} trace (ms):", [f"{t/1000:.1f}s:{v:.0f}" for t, v in sampled])

    # Shape: the reactive spike dwarfs the proactive one (order of
    # magnitude in the paper's trace).
    assert result.reactive_peak_ms > 5.0 * result.proactive_peak_ms
    # Proactive service stays continuously usable (< 10x steady state).
    steady = [v for t, v in result.proactive if t < result.fail_at_ms]
    steady_mean = sum(steady) / len(steady)
    assert result.proactive_peak_ms < 10.0 * steady_mean
