"""Extension — QoS-constrained admission control (§IV-D).

The paper sketches the mechanism; this bench quantifies the trade: under
overload, filtering candidates by the QoS bound rejects surplus users
and protects the admitted population's latency, whereas open-door
admission spreads violations across everyone.
"""

from conftest import run_once

from repro.experiments.qos_admission import run_qos_admission
from repro.metrics.report import format_table

USER_COUNTS = [5, 10, 15, 20]
QOS_MS = 90.0


def test_ext_qos_admission(benchmark, bench_config):
    result = run_once(
        benchmark,
        run_qos_admission,
        bench_config,
        qos_latency_ms=QOS_MS,
        user_counts=USER_COUNTS,
    )

    rows = []
    for n in USER_COUNTS:
        w, wo = result.with_qos[n], result.without_qos[n]
        rows.append(
            [
                n,
                f"{w.admitted}/{n}",
                f"{w.violation_rate:.1%}",
                f"{w.admitted_mean_ms:.0f}" if w.admitted_mean_ms else "-",
                f"{wo.violation_rate:.1%}",
                f"{wo.admitted_mean_ms:.0f}" if wo.admitted_mean_ms else "-",
            ]
        )
    print()
    print(
        format_table(
            ["users", "admitted (QoS)", "violations (QoS)", "mean ms (QoS)",
             "violations (open)", "mean ms (open)"],
            rows,
            title=f"Extension — admission control at QoS = {QOS_MS:.0f} ms",
        )
    )

    # Light load: everyone admitted either way.
    assert result.with_qos[5].rejected == 0
    # Overload: admission control engages and protects latency.
    heavy_with = result.with_qos[20]
    heavy_without = result.without_qos[20]
    assert heavy_with.rejected > 0
    assert heavy_with.violation_rate < heavy_without.violation_rate
    assert heavy_with.admitted_mean_ms < heavy_without.admitted_mean_ms
