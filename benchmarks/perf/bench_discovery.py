"""Discovery-query throughput: spatial-index fast path vs linear scan.

Fills a Central Manager's registry with N synthetic metro-scale
heartbeats, then answers the same batch of discovery queries two ways:

- **indexed** — ``policy.select(query, index=manager.spatial_index)``,
  the geohash-bucketed fast path ``CentralManager.discover`` uses.
- **linear** — ``policy.select(query, nodes=manager.alive_statuses())``,
  the pre-index full-registry scan (haversine against every node per
  query).

Every query's TopN answer is asserted bit-identical between the two
paths before timing, then both are timed and the speedup is written to
``BENCH_perf.json``.

Run:  PYTHONPATH=src python benchmarks/perf/bench_discovery.py --nodes 5000
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time
from pathlib import Path
from typing import List

from repro.core.config import SystemConfig
from repro.core.messages import DiscoveryQuery, NodeStatus
from repro.core.policies.global_policies import (
    GeoProximityFilter,
    GlobalSelectionPolicy,
)
from repro.core.system import EdgeSystem
from repro.geo.geohash import encode
from repro.geo.point import GeoPoint
from repro.geo.region import MSP_CENTER
from repro.metrics.bench import record_bench_section


def random_point(rng: random.Random, center: GeoPoint, radius_km: float) -> GeoPoint:
    distance = radius_km * math.sqrt(rng.random())
    bearing = rng.uniform(0.0, 2.0 * math.pi)
    return center.offset_km(
        distance * math.cos(bearing), distance * math.sin(bearing)
    )


def synthetic_status(node_id: str, point: GeoPoint, rng: random.Random) -> NodeStatus:
    return NodeStatus(
        node_id=node_id,
        lat=point.lat,
        lon=point.lon,
        geohash=encode(point.lat, point.lon, precision=9),
        cores=rng.choice((2, 4, 6, 8, 16)),
        capacity_fps=rng.uniform(5.0, 60.0),
        attached_users=rng.randrange(0, 5),
        utilization=rng.random(),
        reported_at_ms=0.0,
    )


def build_manager(n_nodes: int, region_km: float, radius_km: float, seed: int):
    """A manager over N synthetic heartbeats in a metro-sized disc."""
    rng = random.Random(seed)
    # Wide fallback = the whole metro: "remote nodes ... useful as a
    # last resort" never live outside the region the fleet occupies.
    policy = GlobalSelectionPolicy(
        geo_filter=GeoProximityFilter(radius_km=radius_km, wide_radius_km=region_km * 2)
    )
    system = EdgeSystem(SystemConfig(seed=seed), global_policy=policy)
    manager = system.manager
    for i in range(n_nodes):
        point = random_point(rng, MSP_CENTER, region_km)
        manager.receive_heartbeat(synthetic_status(f"n{i:05d}", point, rng))
    return system, manager, rng


def make_queries(
    n_queries: int, region_km: float, top_n: int, rng: random.Random
) -> List[DiscoveryQuery]:
    queries = []
    for i in range(n_queries):
        point = random_point(rng, MSP_CENTER, region_km)
        queries.append(
            DiscoveryQuery(
                user_id=f"u{i:04d}", lat=point.lat, lon=point.lon, top_n=top_n
            )
        )
    return queries


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=5000)
    parser.add_argument("--queries", type=int, default=300)
    parser.add_argument("--repeat", type=int, default=3, help="timing repetitions; best is kept")
    # 80 km ~= the paper's "within 50 miles" emulation region (§V-D).
    parser.add_argument("--region-km", type=float, default=80.0, help="metro disc radius")
    parser.add_argument("--radius-km", type=float, default=4.0, help="discovery radius")
    parser.add_argument("--top-n", type=int, default=3, help="SystemConfig's default TopN")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output", type=Path, default=Path(__file__).resolve().parents[2] / "BENCH_perf.json"
    )
    args = parser.parse_args(argv)

    system, manager, rng = build_manager(
        args.nodes, args.region_km, args.radius_km, args.seed
    )
    policy = manager.policy
    queries = make_queries(args.queries, args.region_km, args.top_n, rng)
    index = manager.spatial_index

    # Parity first: the indexed answer must be bit-identical to the scan.
    mismatches = 0
    for query in queries:
        indexed = policy.select(query, index=index)
        linear = policy.select(query, nodes=manager.alive_statuses())
        if indexed != linear:
            mismatches += 1
            print(f"PARITY MISMATCH for {query.user_id}: {indexed} != {linear}")
    if mismatches:
        print(f"FAILED: {mismatches}/{len(queries)} queries disagree")
        return 1

    def timed(run) -> float:
        best = float("inf")
        for _ in range(args.repeat):
            t0 = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - t0)
        return best

    linear_s = timed(
        lambda: [policy.select(q, nodes=manager.alive_statuses()) for q in queries]
    )
    indexed_s = timed(lambda: [policy.select(q, index=index) for q in queries])

    linear_qps = len(queries) / linear_s
    indexed_qps = len(queries) / indexed_s
    speedup = indexed_qps / linear_qps

    result = {
        "nodes": args.nodes,
        "queries": len(queries),
        "region_km": args.region_km,
        "discovery_radius_km": args.radius_km,
        "top_n": args.top_n,
        "seed": args.seed,
        "linear_queries_per_s": round(linear_qps, 1),
        "indexed_queries_per_s": round(indexed_qps, 1),
        "speedup": round(speedup, 2),
        "parity": "identical",
    }
    record_bench_section(args.output, "discovery", result)

    print(f"nodes={args.nodes}  queries={len(queries)}  "
          f"radius={args.radius_km}km over {args.region_km}km region")
    print(f"  linear scan : {linear_qps:10.1f} queries/s")
    print(f"  spatial idx : {indexed_qps:10.1f} queries/s")
    print(f"  speedup     : {speedup:10.2f}x   (parity: identical)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
