"""Sharded discovery throughput: routed fan-out + cross-shard TopN merge.

Fills ``shards`` partitioned :class:`GlobalSelectionMachine` registries
with N synthetic metro-scale heartbeats (ownership by geohash range,
exactly the control plane's shard map), then answers the same batch of
discovery queries through the :class:`ShardRouter` at each shard count.

Before timing, every routed answer is asserted bit-identical to a
single-manager reference (the control plane's determinism contract).
The timed phase records, per shard count:

- ``queries_per_s`` — full routed selections (plan, fan-out, merge);
- ``cross_shard_fraction`` — queries whose covering cells straddled a
  shard boundary (fan-out > 1);
- ``merge_overhead_fraction`` — time spent outside the per-shard
  fetches (planning + widening decision + global merge), the price of
  the distributed cut.

Run:  PYTHONPATH=src python benchmarks/perf/bench_discovery_sharded.py --nodes 100000
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.controlplane.router import PartialSelection, ShardRouter
from repro.controlplane.sharding import DEFAULT_SHARD_PRECISION, ShardMap
from repro.core.messages import DiscoveryQuery, NodeStatus
from repro.core.policies.global_policies import (
    GeoProximityFilter,
    GlobalSelectionPolicy,
)
from repro.geo.geohash import encode
from repro.geo.point import GeoPoint
from repro.geo.region import MSP_CENTER
from repro.metrics.bench import record_bench_section
from repro.protocol.effects import ReplyPartialCandidates
from repro.protocol.events import (
    DiscoveryRequested,
    HeartbeatReceived,
    PartialDiscoveryRequested,
)
from repro.protocol.global_select import GlobalSelectionMachine


def random_point(rng: random.Random, center: GeoPoint, radius_km: float) -> GeoPoint:
    distance = radius_km * math.sqrt(rng.random())
    bearing = rng.uniform(0.0, 2.0 * math.pi)
    return center.offset_km(
        distance * math.cos(bearing), distance * math.sin(bearing)
    )


def synthetic_status(node_id: str, point: GeoPoint, rng: random.Random) -> NodeStatus:
    return NodeStatus(
        node_id=node_id,
        lat=point.lat,
        lon=point.lon,
        geohash=encode(point.lat, point.lon, precision=9),
        cores=rng.choice((2, 4, 6, 8, 16)),
        capacity_fps=rng.uniform(5.0, 60.0),
        attached_users=rng.randrange(0, 5),
        utilization=rng.random(),
        reported_at_ms=0.0,
    )


def build_population(
    n_nodes: int, region_km: float, seed: int
) -> Tuple[List[NodeStatus], random.Random]:
    rng = random.Random(seed)
    statuses = [
        synthetic_status(f"n{i:06d}", random_point(rng, MSP_CENTER, region_km), rng)
        for i in range(n_nodes)
    ]
    return statuses, rng


def build_shards(
    statuses: List[NodeStatus],
    shards: int,
    policy: GlobalSelectionPolicy,
) -> Tuple[ShardRouter, List[GlobalSelectionMachine]]:
    """Partition the population into per-shard machines by ownership."""
    shard_map = ShardMap(count=shards, precision=DEFAULT_SHARD_PRECISION)
    router = ShardRouter(shard_map, policy)
    machines = [
        GlobalSelectionMachine(policy, heartbeat_timeout=float("inf"))
        for _ in range(shards)
    ]
    for status in statuses:
        machines[router.owner_of(status)].handle(
            HeartbeatReceived(stamp=0.0, status=status)
        )
    return router, machines


def make_queries(
    n_queries: int, region_km: float, top_n: int, rng: random.Random
) -> List[DiscoveryQuery]:
    return [
        DiscoveryQuery(
            user_id=f"u{i:04d}",
            lat=(p := random_point(rng, MSP_CENTER, region_km)).lat,
            lon=p.lon,
            top_n=top_n,
        )
        for i in range(n_queries)
    ]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=100_000)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--repeat", type=int, default=3, help="timing repetitions; best is kept")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 4, 16])
    parser.add_argument("--region-km", type=float, default=80.0, help="metro disc radius")
    parser.add_argument("--radius-km", type=float, default=4.0, help="discovery radius")
    parser.add_argument("--top-n", type=int, default=3)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output", type=Path, default=Path(__file__).resolve().parents[2] / "BENCH_perf.json"
    )
    args = parser.parse_args(argv)

    policy = GlobalSelectionPolicy(
        geo_filter=GeoProximityFilter(
            radius_km=args.radius_km, wide_radius_km=args.region_km * 2
        )
    )
    statuses, rng = build_population(args.nodes, args.region_km, args.seed)
    queries = make_queries(args.queries, args.region_km, args.top_n, rng)

    # The single-manager reference every shard count must match.
    reference = GlobalSelectionMachine(policy, heartbeat_timeout=float("inf"))
    for status in statuses:
        reference.handle(HeartbeatReceived(stamp=0.0, status=status))
    expected = []
    for query in queries:
        (reply,) = reference.handle(
            DiscoveryRequested(now=0.0, stamp=0.0, query=query)
        )
        expected.append((reply.node_ids, reply.widened))

    per_shards: Dict[str, Dict[str, object]] = {}
    for shards in args.shards:
        router, machines = build_shards(statuses, shards, policy)
        fetch_clock = [0.0]
        current: List[DiscoveryQuery] = [queries[0]]

        def fetch(shard: int, radius_km: float) -> PartialSelection:
            t0 = time.perf_counter()
            (reply,) = machines[shard].handle(
                PartialDiscoveryRequested(
                    now=0.0, stamp=0.0, query=current[0], radius_km=radius_km
                )
            )
            fetch_clock[0] += time.perf_counter() - t0
            assert isinstance(reply, ReplyPartialCandidates)
            return PartialSelection(
                shard=shard, count=reply.count, statuses=reply.statuses
            )

        # Parity first: bit-identical to the single manager, per query.
        mismatches = 0
        cross_shard = 0
        for query, (want_ids, want_widened) in zip(queries, expected):
            current[0] = query
            routed = router.select(query, fetch)
            if routed.node_ids != want_ids or routed.widened != want_widened:
                mismatches += 1
                print(
                    f"PARITY MISMATCH shards={shards} {query.user_id}: "
                    f"{routed.node_ids} != {want_ids}"
                )
            if routed.cross_shard:
                cross_shard += 1
        if mismatches:
            print(f"FAILED: {mismatches}/{len(queries)} queries disagree")
            return 1

        best_s = float("inf")
        best_fetch_s = 0.0
        for _ in range(args.repeat):
            fetch_clock[0] = 0.0
            t0 = time.perf_counter()
            for query in queries:
                current[0] = query
                router.select(query, fetch)
            elapsed = time.perf_counter() - t0
            if elapsed < best_s:
                best_s = elapsed
                best_fetch_s = fetch_clock[0]

        qps = len(queries) / best_s
        overhead = max(0.0, (best_s - best_fetch_s) / best_s)
        per_shards[str(shards)] = {
            "queries_per_s": round(qps, 1),
            "cross_shard_fraction": round(cross_shard / len(queries), 4),
            "merge_overhead_fraction": round(overhead, 4),
        }
        print(
            f"shards={shards:3d}: {qps:10.1f} queries/s  "
            f"cross-shard {cross_shard / len(queries):6.1%}  "
            f"merge overhead {overhead:6.1%}"
        )

    result = {
        "nodes": args.nodes,
        "queries": len(queries),
        "region_km": args.region_km,
        "discovery_radius_km": args.radius_km,
        "top_n": args.top_n,
        "seed": args.seed,
        "shard_precision": DEFAULT_SHARD_PRECISION,
        "parity": "identical",
        "per_shards": per_shards,
    }
    record_bench_section(args.output, "controlplane", result)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
