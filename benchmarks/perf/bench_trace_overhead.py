"""Cost of the observability layer on the steady-state hot path.

Runs the :mod:`bench_steady_state` scenario three ways:

- ``disabled``   — the default every system gets: a capture-disabled
  tracer (metrics still flow through it as a subscriber);
- ``noop_sink``  — a tracer with a :class:`~repro.obs.tracer.NullSink`
  attached but capture still off, i.e. observability fully wired into a
  production run that is not being watched;
- ``enabled``    — full event capture into the ring + NullSink, what a
  traced debugging run pays.

The headline claim (DESIGN.md "Observability") is that the first two
are indistinguishable: wiring a sink costs nothing until capture is
turned on, because emission sites guard detail-event construction on
``tracer.enabled``. This benchmark asserts that claim (< ``--tolerance``
percent, min-of-``--repeats`` wall time) and records all three
configurations under the ``trace_overhead`` section of BENCH_perf.json.

Run:  PYTHONPATH=src python benchmarks/perf/bench_trace_overhead.py
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.api import EndpointSpec, ScenarioBuilder
from repro.core.config import SystemConfig
from repro.geo.point import GeoPoint
from repro.geo.region import MSP_CENTER
from repro.metrics.bench import record_bench_section
from repro.nodes.hardware import VOLUNTEER_PROFILES
from repro.obs.tracer import NullSink


def random_point(rng: random.Random, center: GeoPoint, radius_km: float) -> GeoPoint:
    distance = radius_km * math.sqrt(rng.random())
    bearing = rng.uniform(0.0, 2.0 * math.pi)
    return center.offset_km(
        distance * math.cos(bearing), distance * math.sin(bearing)
    )


def build_system(args: argparse.Namespace, *, trace: bool, sink: Optional[NullSink]):
    rng = random.Random(args.seed)
    builder = ScenarioBuilder(SystemConfig(seed=args.seed)).default_node_spec(
        EndpointSpec(MSP_CENTER, uplink_mbps=40.0, downlink_mbps=300.0)
    )
    if trace or sink is not None:
        builder.observe(trace=trace, sink=sink)
    for i in range(args.nodes):
        profile = VOLUNTEER_PROFILES[i % len(VOLUNTEER_PROFILES)]
        builder.node(
            f"n{i:05d}", profile, point=random_point(rng, MSP_CENTER, args.region_km)
        )
    for i in range(args.users):
        builder.client(
            f"u{i:04d}", point=random_point(rng, MSP_CENTER, args.region_km)
        )
    return builder.build()


def measure(args: argparse.Namespace, *, trace: bool, sink_factory) -> Tuple[float, int]:
    """Min wall seconds (and events) over ``--repeats`` fresh runs."""
    best_wall = math.inf
    events = 0
    for _ in range(args.repeats):
        system = build_system(args, trace=trace, sink=sink_factory())
        system.run_for(1_000.0)  # warm-up: joins, first discoveries
        before = system.sim.events_processed
        t0 = time.perf_counter()
        system.run_for(args.sim_seconds * 1000.0)
        wall = time.perf_counter() - t0
        events = system.sim.events_processed - before
        best_wall = min(best_wall, wall)
    return best_wall, events


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=120)
    parser.add_argument("--users", type=int, default=12)
    parser.add_argument("--sim-seconds", type=float, default=6.0)
    parser.add_argument("--region-km", type=float, default=40.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--tolerance", type=float, default=3.0,
        help="max %% slowdown of the wired-but-idle (noop_sink) config",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parents[2] / "BENCH_perf.json",
    )
    args = parser.parse_args(argv)

    configs = {
        "disabled": dict(trace=False, sink_factory=lambda: None),
        "noop_sink": dict(trace=False, sink_factory=NullSink),
        "enabled": dict(trace=True, sink_factory=NullSink),
    }
    walls = {}
    events = 0
    for name, config in configs.items():
        walls[name], events = measure(
            args, trace=config["trace"], sink_factory=config["sink_factory"]
        )

    def overhead_pct(name: str) -> float:
        return (walls[name] - walls["disabled"]) / walls["disabled"] * 100.0

    result = {
        "nodes": args.nodes,
        "users": args.users,
        "sim_seconds": args.sim_seconds,
        "seed": args.seed,
        "repeats": args.repeats,
        "events_per_run": events,
        "wall_s": {name: round(wall, 4) for name, wall in walls.items()},
        "noop_sink_overhead_pct": round(overhead_pct("noop_sink"), 2),
        "enabled_overhead_pct": round(overhead_pct("enabled"), 2),
        "tolerance_pct": args.tolerance,
    }
    record_bench_section(args.output, "trace_overhead", result)

    print(f"nodes={args.nodes}  users={args.users}  "
          f"{args.sim_seconds:.0f} simulated seconds x{args.repeats} (min wall)")
    for name, wall in walls.items():
        extra = "" if name == "disabled" else f"  ({overhead_pct(name):+.2f}%)"
        print(f"  {name:10s}: {wall:8.4f} s{extra}")
    print(f"wrote {args.output}")

    if overhead_pct("noop_sink") > args.tolerance:
        print(
            f"FAIL: wired-but-idle tracer costs "
            f"{overhead_pct('noop_sink'):.2f}% > {args.tolerance:.1f}% budget",
            file=sys.stderr,
        )
        return 1
    print(f"OK: idle observability within the {args.tolerance:.1f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
