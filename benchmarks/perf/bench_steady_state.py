"""Steady-state simulation throughput: wall-clock cost per simulated second.

Builds a full metro :class:`EdgeSystem` — volunteer fleet + AR clients,
heartbeats, probing loops, frame streams — with the fluent
:class:`~repro.api.ScenarioBuilder`, runs it for a stretch of simulated
time, and reports how many events/second the kernel sustains and how
much wall-clock one simulated second costs. This is the end-to-end
number the event-queue and timer tuning moves.

Run:  PYTHONPATH=src python benchmarks/perf/bench_steady_state.py --nodes 300
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time
from pathlib import Path
from typing import List

from repro.api import EndpointSpec, ScenarioBuilder
from repro.core.config import SystemConfig
from repro.geo.point import GeoPoint
from repro.geo.region import MSP_CENTER
from repro.metrics.bench import record_bench_section
from repro.nodes.hardware import VOLUNTEER_PROFILES


def random_point(rng: random.Random, center: GeoPoint, radius_km: float) -> GeoPoint:
    distance = radius_km * math.sqrt(rng.random())
    bearing = rng.uniform(0.0, 2.0 * math.pi)
    return center.offset_km(
        distance * math.cos(bearing), distance * math.sin(bearing)
    )


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=300)
    parser.add_argument("--users", type=int, default=30)
    parser.add_argument("--sim-seconds", type=float, default=20.0)
    parser.add_argument("--region-km", type=float, default=40.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output", type=Path, default=Path(__file__).resolve().parents[2] / "BENCH_perf.json"
    )
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    builder = ScenarioBuilder(SystemConfig(seed=args.seed)).default_node_spec(
        EndpointSpec(MSP_CENTER, uplink_mbps=40.0, downlink_mbps=300.0)
    )
    for i in range(args.nodes):
        profile = VOLUNTEER_PROFILES[i % len(VOLUNTEER_PROFILES)]
        builder.node(
            f"n{i:05d}", profile, point=random_point(rng, MSP_CENTER, args.region_km)
        )
    for i in range(args.users):
        builder.client(
            f"u{i:04d}", point=random_point(rng, MSP_CENTER, args.region_km)
        )
    system = builder.build()

    system.run_for(2_000.0)  # warm-up: joins, first discoveries, attach
    events_before = system.sim.events_processed
    t0 = time.perf_counter()
    system.run_for(args.sim_seconds * 1000.0)
    wall_s = time.perf_counter() - t0
    events = system.sim.events_processed - events_before

    events_per_s = events / wall_s
    wall_per_sim_s = wall_s / args.sim_seconds
    result = {
        "nodes": args.nodes,
        "users": args.users,
        "sim_seconds": args.sim_seconds,
        "region_km": args.region_km,
        "seed": args.seed,
        "events_processed": events,
        "events_per_wall_s": round(events_per_s, 1),
        "wall_s_per_sim_s": round(wall_per_sim_s, 4),
    }
    record_bench_section(args.output, "steady_state", result)

    print(f"nodes={args.nodes}  users={args.users}  "
          f"{args.sim_seconds:.0f} simulated seconds")
    print(f"  events      : {events}")
    print(f"  throughput  : {events_per_s:10.1f} events/wall-s")
    print(f"  cost        : {wall_per_sim_s:10.4f} wall-s per simulated second")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
