"""Sweep-engine throughput: per-platform wall-clock and bit-identity.

Runs the ``fig9_topn`` sweep (TopN 1-5 x 5 seeds = 25 independent
simulation runs by default) once per execution platform through
``repro.sweep.run_sweep``:

- **inline**     — the serial in-process reference loop.
- **pool**       — a ``ProcessPoolExecutor`` with ``--workers`` processes.
- **subprocess** — ``--workers`` long-lived worker subprocesses speaking
  the JSON-lines protocol of ``repro.sweep.worker``.

Determinism first, speed second: before timing is reported, every
platform's cross-seed aggregates must be **bit-identical** to the
inline reference (``aggregates_digest`` over every cell and metric),
and a resume pass over the pool store must re-execute **zero** runs.
The checks, per-platform wall-clock, and per-platform throughput
(runs/s) all go into the ``sweep`` section of ``BENCH_perf.json``.

The >=3x acceptance target assumes >=4 usable cores (the CI runners
have 4). On smaller machines the speedup is recorded honestly along
with ``cpu_count`` and the assertion is skipped — parallel overhead on
a 1-core box is a fact, not a regression. Pass ``--require-speedup`` to
force the assertion regardless.

Run:  PYTHONPATH=src python benchmarks/perf/bench_sweep.py --workers 4
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from repro.metrics.bench import record_bench_section
from repro.sweep import RunStore, SweepSpec, aggregates_digest, run_sweep

#: Platforms measured, inline (the bit-identity reference) first.
BENCH_PLATFORMS = ["inline", "pool", "subprocess"]


def usable_cpus() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="fig9_topn")
    parser.add_argument("--top-n-max", type=int, default=5,
                        help="grid is top_n=1..top_n_max")
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--base-seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--require-speedup", action="store_true",
                        help="assert the 3x target even on <4 cores")
    parser.add_argument("--speedup-target", type=float, default=3.0)
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parents[2] / "BENCH_perf.json",
    )
    args = parser.parse_args(argv)

    top_ns = list(range(1, args.top_n_max + 1))
    spec = SweepSpec.build(
        args.experiment, {"top_n": top_ns},
        n_seeds=args.seeds, base_seed=args.base_seed,
    )
    total_runs = spec.total_runs()
    cpus = usable_cpus()
    print(f"sweep: {total_runs} runs "
          f"({len(top_ns)} cells x {args.seeds} seeds), "
          f"{args.workers} workers on {cpus} usable cpus")

    wall: Dict[str, float] = {}
    digests: Dict[str, str] = {}
    with tempfile.TemporaryDirectory(prefix="bench_sweep.") as tmp:
        tmp_path = Path(tmp)
        stores = {name: RunStore(tmp_path / name) for name in BENCH_PLATFORMS}

        for name in BENCH_PLATFORMS:
            t0 = time.perf_counter()
            result = run_sweep(
                spec, stores[name], platform=name, workers=args.workers
            )
            wall[name] = time.perf_counter() - t0
            digests[name] = aggregates_digest(result.aggregates())
            if result.failed:
                print(f"FAILED: {result.failed} {name} runs did not complete")
                return 1

        # Determinism: every platform bit-identical to the inline
        # reference, cell by cell, metric by metric.
        reference = digests["inline"]
        for name, digest in digests.items():
            if digest != reference:
                print(f"FAILED: {name} aggregates differ from inline")
                return 1

        # Resume: a second pass over the pool store executes nothing.
        resumed = run_sweep(
            spec, stores["pool"], platform="pool", workers=args.workers
        )
        if resumed.executed != 0:
            print(f"FAILED: resume re-executed {resumed.executed} runs")
            return 1

    serial_s = wall["inline"]
    parallel_s = wall["pool"]
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    target_met = speedup >= args.speedup_target

    result = {
        "experiment": args.experiment,
        "runs": total_runs,
        "seeds": args.seeds,
        "top_ns": top_ns,
        "workers": args.workers,
        "cpu_count": cpus,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "speedup_target": args.speedup_target,
        "speedup_target_met": target_met,
        "platforms": {
            name: {
                "wall_s": round(wall[name], 3),
                "runs_per_s": round(total_runs / wall[name], 2)
                if wall[name] > 0 else 0.0,
            }
            for name in BENCH_PLATFORMS
        },
        "aggregates": "identical",
        "resume_reexecuted": 0,
    }
    record_bench_section(args.output, "sweep", result)

    for name in BENCH_PLATFORMS:
        rate = total_runs / wall[name] if wall[name] > 0 else 0.0
        suffix = "" if name == "inline" else f"   ({args.workers} workers)"
        print(f"  {name:<10} : {wall[name]:8.2f} s  "
              f"{rate:8.2f} runs/s{suffix}")
    print(f"  speedup    : {speedup:8.2f}x pool vs inline  "
          f"(aggregates: identical, resume re-executed: 0)")
    print(f"wrote {args.output}")

    if args.require_speedup or cpus >= 4:
        if not target_met:
            print(f"FAILED: speedup {speedup:.2f}x < "
                  f"{args.speedup_target:.1f}x target with {cpus} cpus")
            return 1
    elif not target_met:
        print(f"note: {args.speedup_target:.1f}x target not asserted "
              f"(only {cpus} usable cpu(s); CI asserts on 4)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
