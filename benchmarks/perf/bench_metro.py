"""Metro-scale kernel throughput: cohort batching + geohash sharding.

Three measurements, recorded as the ``metro`` section of BENCH_perf.json:

1. **Scale run** — the headline number: a population-scale metro
   (default 100k volunteer nodes, 1M AR users at 4 fps) stepped through
   the cohort-batched shard kernel, reporting ``wall_s_per_sim_s`` and
   sustained events/second. Probing is disabled by default at this
   scale (``--probing-period-ms``), matching how such a deployment
   would amortize re-selection.
2. **Cohort speedup** — batched vs. per-client-event stepping at a
   matched (smaller) scale where the per-client mode is still
   affordable; the ISSUE's acceptance bar is >= 5x.
3. **Parity** — at a reduced scale: the ``shards=1`` run is checked
   bit-identical (ordered trace-event equality) against stepping an
   unsharded :class:`MetroKernel` directly, and the requested shard
   count is checked deterministic across a repeat run.

Run:  PYTHONPATH=src python benchmarks/perf/bench_metro.py \
          --nodes 100000 --users 1000000 --fps 4 --sim-seconds 2
CI:   ... --nodes 5000 --users 10000 --shards 2 --check-parity \
          --assert-speedup 5.0
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.metrics.bench import record_bench_section
from repro.metro import (
    MetroKernel,
    MetroReport,
    MetroSimulation,
    MetroSpec,
    ShardSpec,
    build_population,
)
from repro.obs.tracer import Tracer


def _run(
    spec: MetroSpec, config: SystemConfig, sim_seconds: float, *,
    capture_trace: bool = False,
) -> MetroReport:
    sim = MetroSimulation(spec, config, capture_trace=capture_trace)
    return sim.run(sim_seconds)


def measure_scale(args: argparse.Namespace) -> Tuple[MetroReport, dict]:
    spec = MetroSpec(
        nodes=args.nodes,
        users=args.users,
        region_km=args.region_km,
        fps=args.fps,
        shard=ShardSpec(count=args.shards, workers=args.workers),
    )
    config = SystemConfig(
        seed=args.seed, probing_period_ms=args.probing_period_ms
    )
    report = _run(spec, config, args.sim_seconds)
    payload = {
        "nodes": args.nodes,
        "users": args.users,
        "fps": args.fps,
        "shards": args.shards,
        "workers": args.workers,
        "region_km": args.region_km,
        "sim_seconds": args.sim_seconds,
        "seed": args.seed,
        "probing_period_ms": args.probing_period_ms,
        "frames_done": report.frames_done,
        "frames_lost": report.frames_lost,
        "events_processed": report.events_processed,
        "events_per_wall_s": round(report.events_per_wall_s, 1),
        "wall_s": round(report.wall_s, 3),
        "wall_s_per_sim_s": round(report.wall_s_per_sim_s, 4),
        "mean_latency_ms": round(report.mean_latency_ms, 3),
    }
    return report, payload


def measure_cohort_speedup(args: argparse.Namespace) -> dict:
    """Batched vs. per-client stepping at a matched, affordable scale."""
    spec = MetroSpec(
        nodes=args.compare_nodes,
        users=args.compare_users,
        region_km=args.region_km,
        fps=10.0,
    )
    base = SystemConfig(seed=args.seed, probing_period_ms=args.probing_period_ms)
    batched = _run(spec, replace(base, cohort_batching=True),
                   args.compare_sim_seconds)
    per_client = _run(spec, replace(base, cohort_batching=False),
                      args.compare_sim_seconds)
    if batched.frames_done != per_client.frames_done or (
        batched.frames_lost != per_client.frames_lost
    ):
        raise AssertionError(
            "cohort-batched and per-client runs diverged: "
            f"frames {batched.frames_done}/{batched.frames_lost} vs "
            f"{per_client.frames_done}/{per_client.frames_lost}"
        )
    speedup = per_client.wall_s / batched.wall_s
    return {
        "nodes": args.compare_nodes,
        "users": args.compare_users,
        "sim_seconds": args.compare_sim_seconds,
        "batched_wall_s": round(batched.wall_s, 3),
        "per_client_wall_s": round(per_client.wall_s, 3),
        "speedup": round(speedup, 1),
    }


def check_parity(args: argparse.Namespace) -> dict:
    """shards=1 bit-identity vs. the raw kernel + shard determinism."""
    nodes = min(args.nodes, 2_000)
    users = min(args.users, 5_000)
    sim_seconds = 5.0
    spec = MetroSpec(nodes=nodes, users=users, region_km=args.region_km,
                     fps=10.0)
    config = SystemConfig(seed=args.seed)

    # (a) shards=1 through MetroSimulation == unsharded MetroKernel.
    sharded = _run(spec, config, sim_seconds, capture_trace=True)
    population = build_population(spec, config.seed)
    kernel = MetroKernel(
        config, spec, population, shard_id="shard0",
        tracer=Tracer(enabled=True, capacity=1 << 20),
    )
    direct = kernel.run(sim_seconds)
    a = [e.to_dict() for e in sharded.trace_events]
    b = [e.to_dict() for e in direct.trace_events]
    if a != b:
        raise AssertionError(
            f"shards=1 is not bit-identical to the unsharded kernel "
            f"({len(a)} vs {len(b)} events)"
        )

    # (b) the requested shard count is deterministic for a fixed seed.
    sharded_spec = spec.with_shard(
        ShardSpec(count=args.shards, workers=args.workers)
    )
    first = _run(sharded_spec, config, sim_seconds, capture_trace=True)
    second = _run(sharded_spec, config, sim_seconds, capture_trace=True)
    first_events = sorted(
        tuple(sorted(e.to_dict().items())) for e in first.trace_events
    )
    second_events = sorted(
        tuple(sorted(e.to_dict().items())) for e in second.trace_events
    )
    if first_events != second_events:
        raise AssertionError(
            f"shards={args.shards} is not deterministic across repeats"
        )
    return {
        "nodes": nodes,
        "users": users,
        "sim_seconds": sim_seconds,
        "events_compared": len(a),
        "single_shard_bit_identical": True,
        "sharded_deterministic": True,
        "shards_checked": args.shards,
        "handoffs": first.handoffs,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=100_000)
    parser.add_argument("--users", type=int, default=1_000_000)
    parser.add_argument("--fps", type=float, default=4.0)
    parser.add_argument("--sim-seconds", type=float, default=2.0)
    parser.add_argument("--region-km", type=float, default=40.0)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--probing-period-ms", type=float, default=3_600_000.0,
        help="re-selection probing period; the default effectively "
             "disables per-user probing, which python cannot sustain "
             "at 10^6 users",
    )
    parser.add_argument("--compare-nodes", type=int, default=1_000)
    parser.add_argument("--compare-users", type=int, default=20_000)
    parser.add_argument("--compare-sim-seconds", type=float, default=10.0)
    parser.add_argument("--skip-compare", action="store_true",
                        help="skip the batched-vs-per-client comparison")
    parser.add_argument("--check-parity", action="store_true",
                        help="verify shards=1 bit-identity and shard "
                             "determinism at a reduced scale")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="MIN", help="fail unless the cohort "
                        "speedup is at least MIN (CI gate)")
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parents[2] / "BENCH_perf.json",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report, payload = measure_scale(args)
    print(f"scale: nodes={args.nodes}  users={args.users}  fps={args.fps}  "
          f"shards={args.shards}  workers={args.workers}")
    print(f"  frames done : {report.frames_done}")
    print(f"  events      : {report.events_processed}")
    print(f"  throughput  : {report.events_per_wall_s:12.1f} events/wall-s")
    print(f"  cost        : {report.wall_s_per_sim_s:12.4f} wall-s per "
          f"simulated second")

    if not args.skip_compare:
        compare = measure_cohort_speedup(args)
        payload["cohort_speedup"] = compare
        print(f"cohort speedup ({compare['nodes']} nodes, "
              f"{compare['users']} users, {compare['sim_seconds']:.0f} sim-s):")
        print(f"  batched     : {compare['batched_wall_s']:10.3f} wall-s")
        print(f"  per-client  : {compare['per_client_wall_s']:10.3f} wall-s")
        print(f"  speedup     : {compare['speedup']:10.1f}x")
        if args.assert_speedup is not None and (
            compare["speedup"] < args.assert_speedup
        ):
            print(f"FAIL: speedup {compare['speedup']}x < "
                  f"{args.assert_speedup}x")
            return 1
    elif args.assert_speedup is not None:
        print("FAIL: --assert-speedup requires the comparison "
              "(drop --skip-compare)")
        return 1

    if args.check_parity:
        parity = check_parity(args)
        payload["parity"] = parity
        print(f"parity: shards=1 bit-identical over "
              f"{parity['events_compared']} events; shards="
              f"{parity['shards_checked']} deterministic "
              f"({parity['handoffs']} handoffs)")

    payload["bench_wall_s"] = round(time.perf_counter() - started, 1)
    record_bench_section(args.output, "metro", payload)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
