"""Ablation — LO (selfish) vs GO (global-average) local selection.

§IV-D argues GO optimizes the global average by charging each join the
degradation it inflicts on the candidate's existing users. This ablation
runs the crowded real-world scenario under both policies. LO and GO are
"positively correlated" in common scenarios (the paper's own caveat), so
we assert GO is never meaningfully worse and report the margin.
"""

from conftest import run_once

from repro.core.config import SystemConfig
from repro.experiments.realworld import run_elasticity_sweep
from repro.metrics.report import format_table


def sweep(config):
    return run_elasticity_sweep(
        config, user_counts=[10, 15], strategies=("client_centric",)
    ).series("client_centric")


def run_both(seed):
    go = sweep(SystemConfig(seed=seed, use_global_overhead=True))
    lo = sweep(SystemConfig(seed=seed, use_global_overhead=False))
    return go, lo


def test_ablation_lo_vs_go(benchmark, bench_config):
    go, lo = run_once(benchmark, run_both, bench_config.seed)

    print()
    print(
        format_table(
            ["policy", "10 users", "15 users"],
            [["GO (paper)", *go], ["LO (selfish)", *lo]],
            title="Ablation — average e2e latency (ms): GO vs LO ranking",
        )
    )
    for i, n in enumerate((10, 15)):
        print(f"  GO vs LO at {n} users: {(1 - go[i] / lo[i]) * 100:+.1f}%")

    # GO must not be meaningfully worse than LO anywhere.
    for go_value, lo_value in zip(go, lo):
        assert go_value <= lo_value * 1.10
