"""Table III — pairwise e2e latency between users and all nodes, plus
which node the client-centric selection picks (TopN large enough to
probe everyone).

Paper: "Best-performing nodes are accurately selected for 3 users,
addressing the networking and processing heterogeneity."
"""

from conftest import run_once

from repro.experiments.realworld import run_pairwise_selection
from repro.metrics.report import format_table


def test_table3_pairwise_selection(benchmark, bench_config):
    result = run_once(benchmark, run_pairwise_selection, bench_config)

    rows = []
    for user in result.user_ids:
        cells = []
        for node in result.node_ids:
            value = result.pairwise_ms[(user, node)]
            marker = "*" if result.selected[user] == node else " "
            cells.append(f"{value:5.0f}{marker}")
        rows.append([user] + cells)
    print()
    print(
        format_table(
            ["user"] + list(result.node_ids),
            rows,
            title="Table III — pairwise e2e latency (ms); * = selected (TopN=6)",
        )
    )

    for user in result.user_ids:
        row = {node: result.pairwise_ms[(user, node)] for node in result.node_ids}
        chosen = result.selected[user]
        best = min(row.values())
        # The selection must land on a near-best node (within 25% —
        # probing measurements carry jitter, exactly as in the paper).
        assert row[chosen] <= best * 1.25, (
            f"{user} picked {chosen} at {row[chosen]:.0f} ms, best was {best:.0f}"
        )
        # The cloud is never the right answer for a metro user.
        assert chosen != "Cloud"
