"""Fig. 5 — average end-to-end latency with increasing users (real world).

Paper: the client-centric approach balances load best as users pile in,
"achiev[ing] 18%-46% latency reduction compared to resource-aware,
locality-based and dedicated-edge-only approaches under high user
demand"; dedicated-only degrades to worse-than-cloud at 15 users.
"""

from conftest import run_once

from repro.experiments.realworld import STRATEGIES, run_elasticity_sweep
from repro.metrics.report import format_table

USER_COUNTS = [1, 3, 5, 7, 9, 11, 13, 15]


def test_fig5_elasticity(benchmark, bench_config):
    result = run_once(
        benchmark, run_elasticity_sweep, bench_config, user_counts=USER_COUNTS
    )

    rows = [
        [strategy] + [f"{v:.0f}" for v in result.series(strategy)]
        for strategy in STRATEGIES
    ]
    print()
    print(
        format_table(
            ["strategy"] + [str(n) for n in USER_COUNTS],
            rows,
            title="Fig. 5 — average e2e latency (ms) by user count",
        )
    )
    ours_at_15 = result.series("client_centric")[-1]
    for strategy in STRATEGIES:
        if strategy != "client_centric":
            other = result.series(strategy)[-1]
            print(
                f"  reduction vs {strategy} at 15 users: "
                f"{(1 - ours_at_15 / other) * 100:+.0f}%"
            )

    geo = result.series("geo_proximity")[-1]
    dedicated = result.series("dedicated_only")[-1]
    cloud = result.series("closest_cloud")[-1]
    wrr = result.series("resource_aware")[-1]

    # Shape at high demand (the paper's headline claims):
    assert ours_at_15 < geo, "ours must beat locality-based selection"
    assert ours_at_15 < dedicated, "ours must beat dedicated-only"
    assert ours_at_15 < cloud, "ours must beat the cloud baseline"
    assert ours_at_15 < wrr * 1.1, "ours must at least match resource-aware WRR"
    # Dedicated-only collapses under 15 users: worse than the cloud.
    assert dedicated > cloud
    # The cloud line is flat (elastic but far): <10% drift across counts.
    cloud_series = result.series("closest_cloud")
    assert max(cloud_series) < min(cloud_series) * 1.15
    # At a single user every edge strategy beats the WAN round trip.
    for strategy in ("client_centric", "geo_proximity", "resource_aware"):
        assert result.series(strategy)[0] < result.series("closest_cloud")[0]
