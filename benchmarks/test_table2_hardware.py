"""Table II — hardware and per-frame processing performance.

The catalog itself encodes Table II; this benchmark *measures* each
profile's single-frame processing time on an idle simulated node and
checks it reproduces the table exactly.
"""

from conftest import run_once

from repro.metrics.report import format_table
from repro.nodes.hardware import CLOUD_NODE, DEDICATED_PROFILES, VOLUNTEER_PROFILES
from repro.nodes.processing import FrameProcessor

PAPER_TABLE2 = {
    "V1": 24.0,
    "V2": 32.0,
    "V3": 31.0,
    "V4": 45.0,
    "V5": 49.0,
    "D6": 30.0,
    "D7": 30.0,
    "D8": 30.0,
    "D9": 30.0,
    "Cloud": 30.0,
}


def measure_all():
    measured = {}
    for profile in [*VOLUNTEER_PROFILES, *DEDICATED_PROFILES, CLOUD_NODE]:
        processor = FrameProcessor(profile)
        frame = processor.submit(0.0)
        measured[profile.name] = (profile, frame.sojourn_ms)
    return measured


def test_table2_hardware(benchmark):
    measured = run_once(benchmark, measure_all)

    rows = [
        [name, profile.processor, profile.cores, sojourn, PAPER_TABLE2[name]]
        for name, (profile, sojourn) in measured.items()
    ]
    print()
    print(
        format_table(
            ["node", "processor", "cores", "measured ms", "paper ms"],
            rows,
            title="Table II — idle per-frame processing time",
        )
    )

    for name, (_, sojourn) in measured.items():
        assert sojourn == PAPER_TABLE2[name], f"{name} deviates from Table II"
