"""Fig. 7 — settled average latency vs the offline optimal assignment.

Paper: "our approach has about 12% higher latency than the optimal, as
compared to 102% and 51% higher respectively for the locality-based and
resource-aware selection approaches."
"""

from conftest import run_once

from repro.experiments.emulation import run_vs_optimal
from repro.metrics.report import format_table

PAPER_OVERHEADS = {
    "client_centric": 12.0,
    "resource_aware": 51.0,
    "geo_proximity": 102.0,
}


def test_fig7_vs_optimal(benchmark, bench_config):
    result = run_once(benchmark, run_vs_optimal, bench_config)

    rows = [["optimal (offline solver)", result.optimal_ms, "0%", "0%"]]
    for method in ("client_centric", "resource_aware", "geo_proximity"):
        rows.append(
            [
                method,
                result.averages_ms[method],
                f"{result.overhead_pct(method):+.0f}%",
                f"+{PAPER_OVERHEADS[method]:.0f}%",
            ]
        )
    print()
    print(
        format_table(
            ["method", "avg latency ms", "vs optimal", "paper"],
            rows,
            title="Fig. 7 — average latency after all 15 users joined",
        )
    )

    ours = result.overhead_pct("client_centric")
    wrr = result.overhead_pct("resource_aware")
    geo = result.overhead_pct("geo_proximity")

    # Shape: ours closest to optimal, then resource-aware, then geo far off.
    assert ours <= wrr + 2.0
    assert wrr < geo
    # Ours is near-optimal (paper: +12%; we accept anything under +30%).
    assert ours < 30.0
    # Geo pays roughly double the optimal (paper: +102%).
    assert geo > 40.0
