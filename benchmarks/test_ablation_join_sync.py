"""Ablation — seqNum join synchronization on vs off.

Algorithm 1 rejects joins whose probed ``seqNum`` went stale, which
serializes simultaneous selections of one node. With synchronization
disabled, concurrent joiners all land on the same momentarily-cheap node
(the thundering herd the paper designs against). The effect shows up in
simultaneous-arrival bursts: we start all 15 users at once.
"""

from conftest import run_once

from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.experiments.scenario import build_real_world_system
from repro.metrics.report import format_table
from repro.metrics.stats import mean, stddev


def run_burst(config):
    scenario = build_real_world_system(config, n_users=15, include_cloud=False)
    system = scenario.system
    for user_id in scenario.user_ids:
        client = EdgeClient(system, user_id)
        system.clients[user_id] = client
        client.start()  # everyone joins at t=0: maximal collision
    system.run_for(40_000.0)
    per_user = system.metrics.per_user_mean_latency(25_000.0, 40_000.0)
    rejects = sum(c.stats.joins_rejected for c in system.clients.values())
    peak_node_users = max(
        len(node.attached) for node in system.nodes.values()
    )
    return {
        "avg": mean(list(per_user.values())),
        "std": stddev(list(per_user.values())),
        "rejects": rejects,
        "peak_node_users": peak_node_users,
    }


def run_both(seed):
    synced = run_burst(SystemConfig(seed=seed, join_synchronization=True))
    unsynced = run_burst(SystemConfig(seed=seed, join_synchronization=False))
    return synced, unsynced


def test_ablation_join_sync(benchmark, bench_config):
    synced, unsynced = run_once(benchmark, run_both, bench_config.seed)

    print()
    print(
        format_table(
            ["variant", "avg ms", "fairness std", "join rejects", "peak users/node"],
            [
                ["seqNum sync (paper)", synced["avg"], synced["std"],
                 synced["rejects"], synced["peak_node_users"]],
                ["sync disabled", unsynced["avg"], unsynced["std"],
                 unsynced["rejects"], unsynced["peak_node_users"]],
            ],
            title="Ablation — join synchronization under simultaneous arrivals",
        )
    )

    # The mechanism must actually engage under a burst...
    assert synced["rejects"] > 0
    assert unsynced["rejects"] == 0
    # ...and synchronized admission must not hurt the outcome.
    assert synced["avg"] <= unsynced["avg"] * 1.10
