"""Fig. 10 — fault tolerance under churn.

Paper: (a) reactive re-connection leaves "an unacceptable delay gap for
latency-critical applications" versus the proactive switch; (b) "TopN=2
can dramatically reduce the number of failures ... Starting at TopN=3,
the number of failures can be reduced to 0."
"""

from conftest import run_once

from repro.experiments.churn_experiment import run_fault_tolerance
from repro.metrics.report import format_table


def test_fig10_fault_tolerance(benchmark, bench_config):
    result = run_once(benchmark, run_fault_tolerance, bench_config)

    print()
    print(
        format_table(
            ["approach", "mean recovery downtime ms", "events"],
            [
                ["proactive switch (ours)", result.proactive_recovery_ms,
                 result.proactive_events],
                ["reactive re-connect", result.reactive_recovery_ms,
                 result.reactive_events],
            ],
            title="Fig. 10(a) — service downtime per failover",
        )
    )
    print(
        format_table(
            ["TopN", "uncovered failures"],
            [[n, result.failures_by_topn[n]] for n in sorted(result.failures_by_topn)],
            title="Fig. 10(b) — failures experienced by all users",
        )
    )
    print(f"  reactive/proactive downtime ratio: {result.downtime_ratio:.1f}x")

    # (a) reactive recovery costs a multiple of the proactive switch.
    assert result.proactive_events > 0 and result.reactive_events > 0
    assert result.downtime_ratio > 2.0

    # (b) failures drop dramatically at TopN=2 and (near-)vanish by 3+.
    failures = result.failures_by_topn
    assert failures[1] > 0
    assert failures[2] <= failures[1] / 2
    assert failures[3] <= 1
    assert failures[4] <= 1 and failures[5] <= 1
