"""Fig. 9 — influence of TopN (1..5) over the node-churn experiment.

Paper:
  (a) probing requests increase linearly with TopN;
  (b) test-workload invocations grow much more slowly (cache effect);
  (c) latency is fairly close across TopN with diminishing returns
      beyond TopN=3;
  (d) larger TopN improves fairness (lower std-dev across users).
"""

from conftest import run_once

from repro.experiments.churn_experiment import run_topn_sweep
from repro.metrics.report import format_table


def test_fig9_topn_sweep(benchmark, bench_config):
    result = run_once(benchmark, run_topn_sweep, bench_config)

    rows = [
        [
            top_n,
            result.probes[top_n],
            result.test_invocations[top_n],
            result.avg_latency_ms[top_n],
            result.fairness_std_ms[top_n],
            result.uncovered_failures[top_n],
        ]
        for top_n in result.top_ns
    ]
    print()
    print(
        format_table(
            ["TopN", "(a) probes", "(b) test invocations", "(c) avg ms 60-120s",
             "(d) fairness std", "failures"],
            rows,
            title="Fig. 9 — TopN sweep over the same churn trace",
        )
    )

    probes = [result.probes[n] for n in result.top_ns]
    invocations = [result.test_invocations[n] for n in result.top_ns]

    # (a) probing grows monotonically and substantially with TopN.
    assert probes == sorted(probes)
    assert probes[-1] > 2.0 * probes[0]

    # (b) the cache keeps invocation growth far below probing growth:
    # the invocation spread across TopN is a fraction of the probe spread.
    probe_spread = probes[-1] - probes[0]
    invocation_spread = abs(invocations[-1] - invocations[0])
    assert invocation_spread < 0.5 * probe_spread
    # and probing never drives invocations: far fewer invocations than probes
    assert all(
        result.test_invocations[n] < result.probes[n] for n in result.top_ns
    )

    # (c) latency: TopN>=2 values are fairly close (within 40% band).
    latencies = [result.avg_latency_ms[n] for n in result.top_ns if n >= 2]
    assert max(latencies) < min(latencies) * 1.4

    # (d) fairness improves from TopN=1 to TopN>=3.
    assert result.fairness_std_ms[1] > result.fairness_std_ms[3]
