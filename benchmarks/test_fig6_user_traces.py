"""Fig. 6 — per-user latency traces under three selection methods
(emulation; 15 users join every 10 s over 9 static EC2 nodes).

Paper: locality-based selection overloads local nodes (a few users
exceed 150 ms); resource-aware balances compute but misses network
heterogeneity; client-centric assigns every user a low-latency node and
rebalances dynamically via the proactive multi-node connections.
"""

from conftest import run_once

from repro.experiments.emulation import run_user_traces
from repro.metrics.report import format_table
from repro.metrics.stats import mean


def test_fig6_user_traces(benchmark, bench_config):
    result = run_once(benchmark, run_user_traces, bench_config)

    rows = []
    for method in result.methods:
        traces = result.traces[method]
        all_values = [v for trace in traces.values() for _, v in trace]
        tail = [
            v for trace in traces.values() for t, v in trace if t >= 150_000.0
        ]
        rows.append(
            [
                method,
                mean(all_values),
                mean(tail),
                result.over_150_users[method],
            ]
        )
    print()
    print(
        format_table(
            ["method", "trace mean ms", "steady mean ms", "users ever >150ms"],
            rows,
            title="Fig. 6 — per-user traces, 15 users joining every 10 s",
        )
    )
    # Show one example user trace per method (the figure's content).
    for method in result.methods:
        trace = result.traces[method]["u01"]
        sampled = trace[:: max(1, len(trace) // 10)]
        print(f"  {method} / u01:", [f"{t/1000:.0f}s:{v:.0f}" for t, v in sampled])

    by_method = {row[0]: row for row in rows}
    # Shape: geo overloads users past 150 ms; ours keeps everyone under.
    assert by_method["geo_proximity"][3] > 0
    assert by_method["client_centric"][3] == 0
    # Steady-state ordering: ours <= resource-aware < geo.
    assert by_method["client_centric"][2] <= by_method["resource_aware"][2] * 1.05
    assert by_method["resource_aware"][2] < by_method["geo_proximity"][2]
    # Every user produced a trace under every method.
    for method in result.methods:
        assert len(result.traces[method]) == 15
