"""Ablation — the T_probing robustness/overhead trade-off (§IV-E).

"The smaller T_probing, the more frequent the backup edge list gets
updated, during which failed edge nodes get replaced with alive ones.
Therefore, smaller T_probing brings higher robustness. As a tradeoff,
higher TopN and smaller T_probing also bring higher overhead."
"""

from conftest import run_once

from repro.core.config import SystemConfig
from repro.experiments.churn_experiment import make_churn_trace, run_churn_once
from repro.metrics.report import format_table

PERIODS_MS = (1_000.0, 2_000.0, 4_000.0, 8_000.0)


def run_sweep(seed):
    base = SystemConfig(seed=seed, top_n=2)
    trace = make_churn_trace(base)
    rows = {}
    for period in PERIODS_MS:
        config = base.with_(probing_period_ms=period)
        result = run_churn_once(config, trace=trace)
        rows[period] = {
            "probes": result.metrics.total_probes(),
            "failures": result.metrics.total_failures(),
            "avg": result.average_latency_ms(60_000.0, 120_000.0),
        }
    return rows


def test_ablation_probing_period(benchmark, bench_config):
    rows = run_once(benchmark, run_sweep, bench_config.seed)

    print()
    print(
        format_table(
            ["T_probing (ms)", "probes (overhead)", "uncovered failures", "avg ms"],
            [
                [int(period), rows[period]["probes"], rows[period]["failures"],
                 rows[period]["avg"]]
                for period in PERIODS_MS
            ],
            title="Ablation — probing period: overhead vs robustness (TopN=2)",
        )
    )

    probes = [rows[p]["probes"] for p in PERIODS_MS]
    failures = [rows[p]["failures"] for p in PERIODS_MS]
    # Overhead shrinks monotonically as the period grows...
    assert probes == sorted(probes, reverse=True)
    assert probes[0] > 2.5 * probes[-1]
    # ...while stale backup lists at the slowest cadence cost robustness.
    assert failures[-1] >= failures[0]
