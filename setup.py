"""Legacy shim so editable installs work without network access.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs (which build a wheel) fail; this setup.py enables the legacy
``pip install -e . --no-use-pep517`` path. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
