"""Surviving volunteer churn: proactive backups in action.

Reproduces the flavour of §V-D2: 10 static users while volunteer nodes
come and go (Poisson arrivals, Weibull lifetimes). Shows how the
failure monitor absorbs node departures through the pre-connected
backup list, and what happens when ``TopN = 1`` strips users of
backups.

Run:  python examples/churn_resilience.py
"""

from repro import SystemConfig
from repro.experiments.churn_experiment import make_churn_trace, run_churn_once


def run(top_n: int) -> None:
    config = SystemConfig(seed=11).with_(top_n=top_n)
    trace = make_churn_trace(SystemConfig(seed=11))
    result = run_churn_once(config, trace=trace)
    metrics = result.metrics

    covered = sum(metrics.covered_failovers.values())
    uncovered = metrics.total_failures()
    avg = result.average_latency_ms(60_000, 120_000)
    print(
        f"TopN={top_n}: {len(trace)} volunteer episodes over 3 min | "
        f"failovers absorbed by backups: {covered:3d} | "
        f"uncovered failures (re-discovery): {uncovered:3d} | "
        f"avg latency (60-120 s): {avg:6.1f} ms"
    )


def main() -> None:
    print("Node churn: Poisson(k=4)/30 s arrivals, Weibull(mean 50 s) lifetimes\n")
    for top_n in (1, 2, 3):
        run(top_n)
    print(
        "\nTopN=1 leaves no backups: every departure of the attached node"
        "\nforces a full re-discovery; TopN>=2 absorbs nearly all of them."
    )


if __name__ == "__main__":
    main()
