"""Multiple application service types sharing one volunteer fleet.

§III-B: "our model can be extended to support any number of application
server types. An application manager manages each application service
type." This example deploys two services — the paper's AR cognitive
assistance and a heavier OCR document scanner — on the Table II
volunteers, with per-application managers and shared node compute, and
shows cross-application contention steering selection.

Run:  python examples/multi_application.py
"""

from repro import EdgeSystem, SystemConfig
from repro.api import EndpointSpec
from repro.core.multiapp import ApplicationSpec, MultiAppDeployment
from repro.geo import GeoPoint
from repro.nodes import profile_by_name
from repro.workload.ar import ARApplication


def main() -> None:
    system = EdgeSystem(SystemConfig(seed=11, top_n=2))
    ar = ApplicationSpec(
        ARApplication(name="ar-assistance"), service_scale=1.0
    )
    ocr = ApplicationSpec(
        ARApplication(name="ocr-scanner", max_fps=5.0, target_latency_ms=400.0),
        service_scale=2.5,  # document OCR costs 2.5x an AR frame
    )
    deployment = MultiAppDeployment(system, [ar, ocr])

    for name, point in [
        ("V1", GeoPoint(44.980, -93.260)),
        ("V2", GeoPoint(44.950, -93.200)),
        ("V3", GeoPoint(44.960, -93.220)),
    ]:
        deployment.spawn_node(name, profile_by_name(name), point)

    clients = []
    for i in range(3):
        user = f"ar-user-{i + 1}"
        system.add_client_endpoint(user, EndpointSpec(GeoPoint(44.97 - i * 0.01, -93.25)))
        client = deployment.make_client(user, "ar-assistance")
        client.start()
        clients.append(client)
    for i in range(2):
        user = f"ocr-user-{i + 1}"
        system.add_client_endpoint(user, EndpointSpec(GeoPoint(44.94 + i * 0.01, -93.21)))
        client = deployment.make_client(user, "ocr-scanner")
        client.start()
        clients.append(client)

    system.run_for(40_000)

    print("Two applications, one fleet, 40 simulated seconds:\n")
    for client in clients:
        print(
            f"  {client.user_id:10s} [{client.app.name:13s}] -> {client.current_edge}"
            f"  mean {client.stats.mean_latency_ms:6.1f} ms over "
            f"{client.stats.frames_completed} frames"
        )

    print("\nPer-node, per-application attachment:")
    for node_id, node in deployment.nodes.items():
        hosted = {
            app: sorted(service.attached)
            for app, service in node.services.items()
            if service.attached
        }
        shared = node.shared_processor.frames_processed
        print(f"  {node_id}: {hosted or 'idle'}  ({shared} frames through the shared queue)")


if __name__ == "__main__":
    main()
