"""The paper's real-world deployment, end to end.

Recreates §V-C: 15 home-WiFi users in the Minneapolis-Saint Paul metro,
5 volunteer laptops (Table II V1-V5), 4 AWS Local Zone instances
(D6-D9) and the regional cloud, all serving the AR cognitive-assistance
workload (0.02 MB frames at up to 20 FPS). Users join one by one; the
script reports the assignment the client-centric selection converged to
and each user's latency.

Run:  python examples/ar_cognitive_assistance.py
"""

from collections import Counter

from repro import EdgeClient, SystemConfig
from repro.experiments.scenario import build_real_world_system
from repro.metrics.stats import summarize


def main() -> None:
    config = SystemConfig(top_n=3, seed=42)
    scenario = build_real_world_system(config, n_users=15)
    system = scenario.system

    print(f"Edge fleet: {', '.join(scenario.all_node_ids)}")
    for i, user_id in enumerate(scenario.user_ids):
        client = EdgeClient(system, user_id)
        system.clients[user_id] = client
        system.sim.schedule(i * 2_000.0, client.start)  # staggered joins

    system.run_for(70_000)

    print("\nSteady state after 70 s:")
    assignment = Counter()
    for user_id, client in system.clients.items():
        assignment[client.current_edge] += 1
        mean = client.stats.mean_latency_ms
        print(
            f"  {user_id} -> {str(client.current_edge):6s}"
            f"  mean {mean:6.1f} ms, {client.stats.frames_completed} frames"
        )

    print("\nUsers per node:", dict(assignment))
    window = system.metrics.completed_latencies(start_ms=40_000)
    print("Last-30s latency distribution:", summarize(window))


if __name__ == "__main__":
    main()
