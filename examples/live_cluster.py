"""The protocol over real sockets: a live localhost cluster.

Starts an actual Central Manager and five edge servers (Table II
volunteer hardware, time-scaled) as asyncio TCP services, connects two
clients, runs discovery -> probing -> join -> offloading, then kills the
busiest edge to demonstrate the instant backup switch.

Run:  python examples/live_cluster.py
"""

import asyncio

from repro.nodes.hardware import VOLUNTEER_PROFILES
from repro.runtime import LocalCluster


async def main() -> None:
    cluster = LocalCluster(VOLUNTEER_PROFILES, n_clients=2, time_scale=0.05, seed=3)
    await cluster.start()
    print(f"Manager listening on {cluster.manager_address()}")
    print(f"Edges: {[e.node_id for e in cluster.edges]}\n")
    try:
        for client in cluster.clients:
            chosen = await client.select_and_join()
            latencies = []
            for _ in range(10):
                latency = await client.offload_frame()
                if latency is not None:
                    latencies.append(latency)
            print(
                f"{client.user_id}: joined {chosen}, backups {client.backups}, "
                f"mean frame latency {sum(latencies) / len(latencies):.1f} ms "
                f"(wall-clock, time-scaled)"
            )

        victim = cluster.clients[0].current_edge
        assert victim is not None
        print(f"\nKilling {victim} (volunteer leaves without notification)...")
        await cluster.kill_edge(victim)
        lost = await cluster.clients[0].offload_frame()  # detects the break
        recovered = await cluster.clients[0].offload_frame()
        print(
            f"{cluster.clients[0].user_id}: frame during failure lost={lost is None}, "
            f"now attached to {cluster.clients[0].current_edge}, "
            f"next frame {recovered:.1f} ms"
        )
    finally:
        await cluster.stop()


if __name__ == "__main__":
    asyncio.run(main())
