"""Quickstart: a tiny edge-dense environment in 30 simulated seconds.

Builds three volunteer edge nodes with Table II hardware, attaches two
users running the AR cognitive-assistance workload, and prints what the
client-centric selection decided, what latency each user saw, and —
via the trace captured by ``.observe()`` — where that latency went
(network RTT vs. queueing vs. processing).

Run:  python examples/quickstart.py
"""

from repro.api import ScenarioBuilder
from repro.core.config import SystemConfig
from repro.geo import GeoPoint
from repro.metrics.report import format_table
from repro.nodes import profile_by_name
from repro.obs import TraceAnalyzer


def main() -> None:
    # Three volunteers in a metro area — a fast desktop, an old 6-core
    # laptop, and a slow ultrabook (Table II's V1, V2, V5) — plus two
    # users running the AR workload.
    scenario = (
        ScenarioBuilder(SystemConfig(top_n=2, seed=7))
        .observe(trace=True)
        .node("V1", profile_by_name("V1"), point=GeoPoint(44.980, -93.260))
        .node("V2", profile_by_name("V2"), point=GeoPoint(44.950, -93.200))
        .node("V5", profile_by_name("V5"), point=GeoPoint(44.900, -93.100))
        .client("alice", point=GeoPoint(44.970, -93.250))
        .client("bob", point=GeoPoint(44.930, -93.180))
        .build_scenario()
    )
    system = scenario.system

    system.run_for(30_000)  # 30 simulated seconds

    print("After 30 s of simulated AR offloading:")
    for user_id, client in system.clients.items():
        stats = client.stats
        print(
            f"  {user_id:6s} -> {client.current_edge}"
            f"  (backups: {client.failure_monitor.backups})"
            f"  mean latency {stats.mean_latency_ms:5.1f} ms"
            f"  over {stats.frames_completed} frames,"
            f"  {stats.probes_sent} probes, {stats.switches} switches"
        )
    print(f"  test-workload invocations: {system.metrics.total_test_invocations()}")

    # Where did the latency go? The trace decomposes every completed
    # frame into rtt / queue / process phase spans that sum exactly to
    # the recorded end-to-end latency.
    analyzer = TraceAnalyzer(scenario.tracer.events())
    rows = [entry.row(user) for user, entry in analyzer.phase_breakdown().items()]
    rows.append(analyzer.total_breakdown().row("(all)"))
    print()
    print(
        format_table(
            ["user", "frames", "lost", "rtt ms", "queue ms", "process ms",
             "e2e ms"],
            rows,
            title="Latency-phase breakdown (means over completed frames)",
        )
    )


if __name__ == "__main__":
    main()
