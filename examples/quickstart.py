"""Quickstart: a tiny edge-dense environment in 30 simulated seconds.

Builds three volunteer edge nodes with Table II hardware, attaches two
users running the AR cognitive-assistance workload, and prints what the
client-centric selection decided and what latency each user saw.

Run:  python examples/quickstart.py
"""

from repro import EdgeClient, EdgeSystem, SystemConfig
from repro.geo import GeoPoint
from repro.nodes import profile_by_name


def main() -> None:
    config = SystemConfig(top_n=2, seed=7)
    system = EdgeSystem(config)

    # Three volunteers in a metro area: a fast desktop, an old 6-core
    # laptop, and a slow ultrabook (Table II's V1, V2, V5).
    system.spawn_node("V1", profile_by_name("V1"), GeoPoint(44.980, -93.260))
    system.spawn_node("V2", profile_by_name("V2"), GeoPoint(44.950, -93.200))
    system.spawn_node("V5", profile_by_name("V5"), GeoPoint(44.900, -93.100))

    for user_id, point in [
        ("alice", GeoPoint(44.970, -93.250)),
        ("bob", GeoPoint(44.930, -93.180)),
    ]:
        system.register_client_endpoint(user_id, point)
        system.add_client(EdgeClient(system, user_id))

    system.run_for(30_000)  # 30 simulated seconds

    print("After 30 s of simulated AR offloading:")
    for user_id, client in system.clients.items():
        stats = client.stats
        print(
            f"  {user_id:6s} -> {client.current_edge}"
            f"  (backups: {client.failure_monitor.backups})"
            f"  mean latency {stats.mean_latency_ms:5.1f} ms"
            f"  over {stats.frames_completed} frames,"
            f"  {stats.probes_sent} probes, {stats.switches} switches"
        )
    print(f"  test-workload invocations: {system.metrics.total_test_invocations()}")


if __name__ == "__main__":
    main()
