"""Comparing edge selection strategies under rising demand (mini Fig. 5).

Runs the real-world deployment at three user counts under all five
policies of the paper's evaluation and prints the average end-to-end
latency table — the qualitative content of Fig. 5.

Run:  python examples/selection_strategies.py   (takes ~10 s)
"""

from repro import SystemConfig
from repro.experiments.realworld import STRATEGIES, run_elasticity_sweep
from repro.metrics.report import format_table


def main() -> None:
    counts = [5, 10, 15]
    result = run_elasticity_sweep(SystemConfig(seed=42), user_counts=counts)

    rows = []
    for strategy in STRATEGIES:
        rows.append([strategy] + [f"{v:.1f}" for v in result.series(strategy)])
    print(
        format_table(
            ["strategy"] + [f"{n} users" for n in counts],
            rows,
            title="Average end-to-end latency (ms) with increasing demand",
        )
    )

    ours = result.series("client_centric")[-1]
    print("\nAt 15 users, client-centric selection vs the baselines:")
    for strategy in STRATEGIES:
        if strategy == "client_centric":
            continue
        other = result.series(strategy)[-1]
        print(f"  vs {strategy:15s}: {(1 - ours / other) * 100:+5.1f}% latency reduction")


if __name__ == "__main__":
    main()
