"""Metro scale: 5 000 volunteer nodes, 20 000 AR users, two shards.

The per-endpoint kernel in :mod:`repro.core` models every probe, frame
and heartbeat — perfect fidelity, but a python event loop tops out far
below metro scale. The :mod:`repro.metro` kernel trades per-message
fidelity for a tick-quantized control plane and cohort-batched frame
advancement, which is how the same selection/failover story runs at
10^5 nodes and 10^6 users (see DESIGN.md §11 for the contract and
BENCH_perf.json's ``metro`` section for the measured cost).

This example builds a two-shard metro through the same fluent
:class:`~repro.api.ScenarioBuilder` used everywhere else, kills a node
mid-run, and prints the aggregate outcome.

Run:  PYTHONPATH=src python examples/metro_scale.py
"""

from repro.api import ScenarioBuilder
from repro.core.config import SystemConfig


def main() -> None:
    sim = (
        ScenarioBuilder(SystemConfig(seed=11))
        .metro(nodes=5_000, users=20_000, region_km=40.0, fps=10.0)
        .shard(by="geohash", count=2, workers=1)
        .build_metro()
    )

    # Kill node n17 three seconds in: its users detect the silence and
    # fail over, covered by their cached backup candidates.
    sim.schedule_node_fail(17, at_ms=3_000.0)

    report = sim.run(sim_seconds=10.0)

    print(f"metro run: {report.spec_nodes} nodes, {report.spec_users} users, "
          f"{report.shards} shards, {report.sim_seconds:.0f} simulated s")
    print(f"  frames done        : {report.frames_done}")
    print(f"  frames lost        : {report.frames_lost}")
    print(f"  mean latency       : {report.mean_latency_ms:.1f} ms")
    print(f"  switches           : {report.switches}")
    print(f"  covered failovers  : {report.covered_failovers}")
    print(f"  uncovered failures : {report.uncovered_failures}")
    print(f"  shard handoffs     : {report.handoffs}")
    print(f"  events/wall-s      : {report.events_per_wall_s:,.0f}")
    print(f"  wall-s per sim-s   : {report.wall_s_per_sim_s:.3f}")


if __name__ == "__main__":
    main()
