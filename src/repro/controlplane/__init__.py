"""Sharded, replicated Central Manager control plane.

The paper runs one Central Manager; at metro scale that is both the
discovery-throughput bottleneck and a single point of failure. This
package partitions the node registry by geohash prefix ranges
(:mod:`~repro.controlplane.sharding`), routes heartbeats to owning
shards and fans discovery out with a deterministic cross-shard TopN
merge (:mod:`~repro.controlplane.router`), and keeps each shard alive
through primary/standby replication with promotion on primary loss
(:mod:`~repro.controlplane.replication`). Drivers exist for both
backends: :mod:`~repro.controlplane.sim_driver` steps N manager
machines inside the simulation kernel, and
:mod:`~repro.controlplane.live_driver` generalizes the loopback
``ManagerServer`` into a shard fleet behind a routing proxy.

The determinism contract: with ``shards=1, replicas=1`` the system is
bit-identical to the single-manager seed, and for any shard count the
merged discovery answer is bit-identical to a single manager holding
the union registry (a parity property test holds this).
"""

from repro.controlplane.errors import ControlPlaneUnavailable
from repro.controlplane.router import PartialSelection, RoutedSelection, ShardRouter
from repro.controlplane.sharding import DEFAULT_SHARD_PRECISION, ShardMap

__all__ = [
    "ControlPlaneUnavailable",
    "DEFAULT_SHARD_PRECISION",
    "PartialSelection",
    "RoutedSelection",
    "ShardMap",
    "ShardRouter",
]
