"""Control-plane exceptions.

Kept import-free so any layer (including ``repro.core.client``, which
must translate this into the ``DiscoveryFailed`` → degraded-fallback
path) can import it without cycles.
"""

__all__ = ["ControlPlaneUnavailable"]


class ControlPlaneUnavailable(RuntimeError):
    """A discovery touched a shard with no serving replica.

    Semantically the sharded analogue of "the Central Manager is
    unreachable": callers must treat it exactly like a discovery
    timeout (clients fall back to cached candidates and backups), never
    like an empty candidate list.
    """

    def __init__(self, shard: int, reason: str = "shard_unavailable") -> None:
        super().__init__(
            f"control-plane shard {shard} has no serving replica ({reason})"
        )
        self.shard = shard
        self.reason = reason
