"""Sharded Central Manager — live (asyncio) driver over the control plane.

Two pieces:

- :class:`RouterServer` — a TCP front speaking the *manager* wire
  protocol (``heartbeat`` / ``discover`` / ``status``), so an unmodified
  :class:`~repro.runtime.client_runtime.LiveClient` or
  :class:`~repro.runtime.edge_server.LiveEdgeServer` pointed at it
  cannot tell it from a single :class:`ManagerServer`. Behind the front
  it runs the same sans-IO :class:`~repro.controlplane.router.ShardRouter`
  as the sim driver: heartbeats forward to every alive replica of the
  owning shard, discovery fans ``discover_partial`` phases out to the
  covering shards' primaries and merges the global TopN.

- :class:`ControlPlaneCluster` — a loopback harness that boots
  ``shards x replicas`` real :class:`ManagerServer` processes plus one
  RouterServer, with kill/restart primitives for the chaos tests.

Failure model: the router has no heartbeat channel to the managers —
failure detection *is* the failed RPC. A ``discover_partial`` (or
forwarded heartbeat) that errors marks the replica down; if it was the
shard's primary the lowest alive standby is promoted immediately
(``manager_promote``, reason ``unreachable``) and the fetch retries on
the new primary within the same client request. A shard with no alive
replica makes the router *close the connection without replying* — the
client's discovery errors, feeding ``DiscoveryFailed`` into its
machine, which rides the existing degraded-fallback path exactly as a
whole-manager outage would.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.controlplane.errors import ControlPlaneUnavailable
from repro.controlplane.router import PartialSelection, ShardRouter
from repro.controlplane.sharding import DEFAULT_SHARD_PRECISION, ShardMap
from repro.core.messages import CandidateList, DiscoveryQuery, NodeStatus, from_wire, to_wire
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.obs.events import ManagerPromote, RegistryHandoff, ShardMerge, ShardRoute
from repro.obs.tracer import Tracer
from repro.runtime import protocol
from repro.runtime.manager_server import ManagerServer

__all__ = ["RouterServer", "ControlPlaneCluster"]

#: An ``(host, port)`` pair of one manager replica.
Address = Tuple[str, int]


class RouterServer:
    """The control plane's client-facing front: route, fan out, merge."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        shard_map: ShardMap,
        replica_addresses: Sequence[Sequence[Address]],
        policy: Optional[GlobalSelectionPolicy] = None,
        tracer: Optional[Tracer] = None,
        request_timeout_s: float = 1.0,
    ) -> None:
        if len(replica_addresses) != shard_map.count:
            raise ValueError(
                f"need one replica list per shard: got {len(replica_addresses)} "
                f"for {shard_map.count} shards"
            )
        self.host = host
        self.port = port
        self.shard_map = shard_map
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self.request_timeout_s = request_timeout_s
        self.router = ShardRouter(shard_map, policy or GlobalSelectionPolicy())
        self._replicas: List[List[Address]] = [
            list(addresses) for addresses in replica_addresses
        ]
        self._primary: List[int] = [0] * shard_map.count
        self._down: List[Set[int]] = [set() for _ in range(shard_map.count)]
        #: node id -> serving address, refreshed from heartbeats.
        self._addresses: Dict[str, Address] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.queries_served = 0
        self.heartbeats_received = 0
        self.promotions = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Replica bookkeeping
    # ------------------------------------------------------------------
    def serving_primary(self, shard: int) -> Optional[int]:
        """The replica currently serving ``shard`` (None = unavailable)."""
        primary = self._primary[shard]
        return None if primary in self._down[shard] else primary

    def mark_down(self, shard: int, replica: int) -> None:
        self._down[shard].add(replica)

    def mark_up(self, shard: int, replica: int) -> None:
        self._down[shard].discard(replica)

    def _promote(self, shard: int, reason: str) -> Optional[int]:
        """Promote the lowest alive standby; None when all are down."""
        alive = [
            index
            for index in range(len(self._replicas[shard]))
            if index not in self._down[shard]
        ]
        if not alive:
            return None
        self._primary[shard] = alive[0]
        self.promotions += 1
        self.tracer.emit(
            ManagerPromote(
                self.tracer.now(), shard=shard, replica=alive[0], reason=reason
            )
        )
        return alive[0]

    async def _fetch_partial(
        self, query: DiscoveryQuery, shard: int, radius_km: float
    ) -> PartialSelection:
        """One ``discover_partial`` phase against ``shard``'s primary.

        A dead primary is detected by the failed RPC itself: the replica
        is marked down, a standby promoted, and the fetch retried on the
        new primary — all within the caller's request.

        Raises:
            ControlPlaneUnavailable: every replica of the shard is down.
        """
        while True:
            replica = self.serving_primary(shard)
            if replica is None:
                replica_or_none = self._promote(shard, reason="unreachable")
                if replica_or_none is None:
                    raise ControlPlaneUnavailable(shard)
                replica = replica_or_none
            host, port = self._replicas[shard][replica]
            try:
                reply = await protocol.request(
                    host,
                    port,
                    "discover_partial",
                    {"query": to_wire(query), "radius_km": radius_km},
                    timeout=self.request_timeout_s,
                )
            except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
                self.mark_down(shard, replica)
                continue
            statuses = tuple(from_wire(s) for s in reply["statuses"])
            for node_id, address in reply.get("addresses", {}).items():
                self._addresses[node_id] = (address[0], address[1])
            return PartialSelection(
                shard=shard, count=int(reply["count"]), statuses=statuses
            )

    # ------------------------------------------------------------------
    # Wire surface (manager-compatible)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                frame = await protocol.read_frame(reader)
                if frame is None:
                    break
                reply = await self._dispatch(frame)
                if reply is None:
                    # Unavailable shard: hang up instead of answering —
                    # the client's request errors and its machine takes
                    # the DiscoveryFailed / degraded-fallback path.
                    break
                writer.write(protocol.encode_frame("reply", reply))
                await writer.drain()
        except (protocol.ProtocolError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # CancelledError: server teardown raced the hang-up —
                # the socket is gone either way, so end the task clean.
                pass

    async def _dispatch(self, frame: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        op = frame["op"]
        payload = frame["payload"]
        if op == "heartbeat":
            return await self._on_heartbeat(payload)
        if op == "discover":
            return await self._on_discover(payload)
        if op == "status":
            return {
                "ok": True,
                "nodes": sorted(self._addresses),
                "queries_served": self.queries_served,
                "heartbeats_received": self.heartbeats_received,
                "promotions": self.promotions,
                "primaries": list(self._primary),
                "down": [sorted(d) for d in self._down],
            }
        return {"ok": False, "error": f"unknown op: {op!r}"}

    async def _on_heartbeat(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        status = from_wire(payload["status"])
        assert isinstance(status, NodeStatus)
        self.heartbeats_received += 1
        self._addresses[status.node_id] = (payload["host"], payload["port"])
        shard = self.router.owner_of(status)
        delivered = 0
        for replica, (host, port) in enumerate(self._replicas[shard]):
            if replica in self._down[shard]:
                continue
            try:
                await protocol.request(
                    host, port, "heartbeat", payload, timeout=self.request_timeout_s
                )
                delivered += 1
            except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
                self.mark_down(shard, replica)
        if self.serving_primary(shard) is None:
            self._promote(shard, reason="unreachable")
        return {"ok": True, "delivered": delivered}

    async def _on_discover(self, payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        query = from_wire(payload["query"])
        assert isinstance(query, DiscoveryQuery)
        self.queries_served += 1
        geo = self.router.policy.geo_filter
        local_shards, wide_shards = self.router.plan(query)
        try:
            local = [
                await self._fetch_partial(query, shard, geo.radius_km)
                for shard in local_shards
            ]
            wide: Optional[List[PartialSelection]] = None
            if self.router.needs_widening(query, local):
                wide = [
                    await self._fetch_partial(query, shard, geo.wide_radius_km)
                    for shard in wide_shards
                ]
        except ControlPlaneUnavailable:
            return None
        routed = self.router.merge(query, local, wide)
        if self.tracer.enabled:
            now = self.tracer.now()
            self.tracer.emit(
                ShardRoute(
                    now,
                    user_id=query.user_id,
                    shards=routed.shards_queried,
                    epoch=self.shard_map.epoch,
                    cross_shard=routed.cross_shard,
                )
            )
            if routed.cross_shard:
                self.tracer.emit(
                    ShardMerge(
                        now,
                        user_id=query.user_id,
                        shards=len(routed.shards_queried),
                        pool=routed.pool,
                        widened=routed.widened,
                    )
                )
        candidates = CandidateList(
            user_id=query.user_id,
            node_ids=routed.node_ids,
            widened=routed.widened,
        )
        return {
            "ok": True,
            "candidates": to_wire(candidates),
            "addresses": {
                node_id: list(self._addresses[node_id])
                for node_id in routed.node_ids
                if node_id in self._addresses
            },
        }


class ControlPlaneCluster:
    """``shards x replicas`` real managers behind one router, loopback.

    The chaos harness for the live control plane: :meth:`kill_primary`
    stops a shard's serving :class:`ManagerServer` outright (the router
    discovers this the hard way, via a failed RPC) and
    :meth:`restart_replica` brings the process back on its old port,
    re-seeded from the current primary's deduplicated snapshot (a
    ``registry_handoff``).
    """

    def __init__(
        self,
        *,
        shards: int = 2,
        replicas: int = 2,
        policy: Optional[GlobalSelectionPolicy] = None,
        tracer: Optional[Tracer] = None,
        heartbeat_timeout_s: float = 3.0,
        request_timeout_s: float = 1.0,
        shard_precision: int = DEFAULT_SHARD_PRECISION,
    ) -> None:
        if shards < 1 or replicas < 1:
            raise ValueError("shards and replicas must both be >= 1")
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self.policy = policy
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.request_timeout_s = request_timeout_s
        self.shard_map = ShardMap(count=shards, precision=shard_precision)
        self.managers: List[List[Optional[ManagerServer]]] = [
            [None] * replicas for _ in range(shards)
        ]
        self._ports: List[List[int]] = [[0] * replicas for _ in range(shards)]
        self.router: Optional[RouterServer] = None

    @property
    def address(self) -> Address:
        """Where clients and edges should point their "manager"."""
        assert self.router is not None
        return (self.router.host, self.router.port)

    async def start(self) -> None:
        for shard in range(self.shard_map.count):
            for replica in range(len(self.managers[shard])):
                server = ManagerServer(
                    policy=self.policy,
                    heartbeat_timeout_s=self.heartbeat_timeout_s,
                    tracer=Tracer.disabled(),
                )
                await server.start()
                self.managers[shard][replica] = server
                self._ports[shard][replica] = server.port
        self.router = RouterServer(
            shard_map=self.shard_map,
            replica_addresses=[
                [("127.0.0.1", port) for port in ports] for ports in self._ports
            ],
            policy=self.policy,
            tracer=self.tracer,
            request_timeout_s=self.request_timeout_s,
        )
        await self.router.start()

    async def stop(self) -> None:
        if self.router is not None:
            await self.router.stop()
            self.router = None
        for shard_servers in self.managers:
            for replica, server in enumerate(shard_servers):
                if server is not None:
                    await server.stop()
                    shard_servers[replica] = None

    # ------------------------------------------------------------------
    # Chaos primitives
    # ------------------------------------------------------------------
    async def kill_primary(self, shard: int) -> int:
        """Stop the shard's serving manager; returns the replica index."""
        assert self.router is not None
        replica = self.router.serving_primary(shard)
        if replica is None:
            raise RuntimeError(f"shard {shard} has no serving primary to kill")
        server = self.managers[shard][replica]
        assert server is not None
        await server.stop()
        self.managers[shard][replica] = None
        return replica

    async def restart_replica(self, shard: int, replica: int) -> None:
        """Restart a killed replica on its old port and re-seed it.

        The returning process is empty; it rejoins as a standby, its
        registry restored from the current primary's snapshot so no
        tombstone or stale incarnation can travel (the snapshot is
        deduplicated at the source).
        """
        assert self.router is not None
        if self.managers[shard][replica] is not None:
            raise RuntimeError(f"shard {shard} replica {replica} is running")
        server = ManagerServer(
            port=self._ports[shard][replica],
            policy=self.policy,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            tracer=Tracer.disabled(),
        )
        await server.start()
        self.managers[shard][replica] = server
        entries = 0
        serving = self.router.serving_primary(shard)
        if serving is not None and serving != replica:
            host, port = ("127.0.0.1", self._ports[shard][serving])
            snapshot = await protocol.request(
                host, port, "snapshot", {}, timeout=self.request_timeout_s
            )
            restored = await protocol.request(
                "127.0.0.1",
                server.port,
                "restore",
                {
                    "statuses": snapshot["statuses"],
                    "stamps": snapshot["stamps"],
                    "wrr": snapshot["wrr"],
                    "addresses": snapshot["addresses"],
                },
                timeout=self.request_timeout_s,
            )
            entries = int(restored["entries"])
            self.tracer.emit(
                RegistryHandoff(
                    self.tracer.now(),
                    source=f"shard{shard}/r{serving}",
                    target=f"shard{shard}/r{replica}",
                    entries=entries,
                    epoch=self.shard_map.epoch,
                    reason="rejoin",
                )
            )
        self.router.mark_up(shard, replica)
