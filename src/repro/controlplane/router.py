"""Sans-IO request router: shard fan-out and cross-shard TopN merge.

The router owns exactly the logic a single manager's
``GlobalSelectionPolicy.select`` runs in one process, decomposed into
fixed-radius phases the shards can answer independently:

1. fan out at ``radius_km`` to the shards covering the query disc;
2. if the summed exact in-radius counts reach ``top_n``, merge; else
3. fan out at ``wide_radius_km`` and keep the wide result only when it
   is strictly larger (the single-manager widening rule, verbatim);
4. cut the global TopN from the concatenated per-shard TopNs with the
   same ``heapq.nsmallest`` + total-order key.

Bit-identity argument: the shards partition the registry, a node within
radius lies in a covering cell so its owner shard is queried, any
member of the global TopN is beaten by fewer than ``top_n`` candidates
globally — hence within its own shard — so it survives into its
shard's local TopN; and the summed counts equal the single manager's
``len(local)``/``len(wide)`` exactly, replaying the widening decision.
Unique node ids plus the node-id tie-breaker in the sort key make the
merged order a total order independent of shard interleaving. A
hypothesis property test holds this bit-for-bit.

Transport-free by design: drivers supply ``fetch(shard, radius_km)``.
The sim driver calls machines synchronously; the live driver resolves
the same two phases with awaited socket requests via
:meth:`ShardRouter.plan`/:meth:`ShardRouter.merge`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence, Tuple, cast

from repro.controlplane.sharding import ShardMap
from repro.geo import geohash as gh

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.messages import DiscoveryQuery, NodeStatus
    from repro.core.policies.global_policies import GlobalSelectionPolicy

__all__ = ["PartialSelection", "RoutedSelection", "ShardRouter"]


@dataclass(frozen=True)
class PartialSelection:
    """One shard's answer to one fixed-radius phase: its exact in-radius
    count plus its local TopN statuses."""

    shard: int
    count: int
    statuses: Tuple["NodeStatus", ...]


@dataclass(frozen=True)
class RoutedSelection:
    """The merged discovery answer plus routing metadata for obs/bench."""

    node_ids: Tuple[str, ...]
    widened: bool
    epoch: int
    local_shards: Tuple[int, ...]
    wide_shards: Tuple[int, ...]
    pool: int

    @property
    def shards_queried(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.local_shards) | set(self.wide_shards)))

    @property
    def cross_shard(self) -> bool:
        return len(self.shards_queried) > 1


#: Driver-supplied transport: answer one (shard, radius) phase. Raises
#: (typically ``ControlPlaneUnavailable``) when the shard cannot serve.
Fetch = Callable[[int, float], PartialSelection]


class ShardRouter:
    """Routes heartbeats to owners and discovery to covering shards."""

    def __init__(self, shard_map: ShardMap, policy: "GlobalSelectionPolicy") -> None:
        self.shard_map = shard_map
        self.policy = policy

    # ------------------------------------------------------------------
    # Heartbeat / registration routing
    # ------------------------------------------------------------------
    def owner_of(self, status: "NodeStatus") -> int:
        """The shard owning a node's registry entry (by its geohash)."""
        return self.shard_map.owner_of_geohash(status.geohash)

    # ------------------------------------------------------------------
    # Discovery fan-out
    # ------------------------------------------------------------------
    def shards_for(self, query: "DiscoveryQuery", radius_km: float) -> Tuple[int, ...]:
        """Shards whose ranges the query's covering cells intersect."""
        cells = gh.covering_cells(query.point, radius_km)
        return self.shard_map.owners_for_cells(cells)

    def plan(self, query: "DiscoveryQuery") -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(local-phase shards, wide-phase shards) for ``query``."""
        geo = self.policy.geo_filter
        return (
            self.shards_for(query, geo.radius_km),
            self.shards_for(query, geo.wide_radius_km),
        )

    def needs_widening(self, query: "DiscoveryQuery", local: Sequence[PartialSelection]) -> bool:
        """Whether the single-manager rule would try the wide radius."""
        return sum(p.count for p in local) < query.top_n

    def merge(
        self,
        query: "DiscoveryQuery",
        local: Sequence[PartialSelection],
        wide: Optional[Sequence[PartialSelection]] = None,
    ) -> RoutedSelection:
        """Replay the widening decision and cut the global TopN.

        ``wide`` is None when the local phase already satisfied
        ``top_n`` (the driver never fetched phase 2).
        """
        local_total = sum(p.count for p in local)
        widened = False
        chosen: Sequence[PartialSelection] = local
        if wide is not None:
            wide_total = sum(p.count for p in wide)
            if wide_total > local_total:
                widened = True
                chosen = wide
        pool: List["NodeStatus"] = [s for p in chosen for s in p.statuses]
        # The factory is declared as returning an opaque ``object`` key
        # (policies compose tuples of mixed comparables); cast for the
        # nsmallest stub, which wants SupportsRichComparison.
        sort_key = cast(
            "Callable[[NodeStatus], Any]", self.policy.sort_key_factory(query)
        )
        best = heapq.nsmallest(query.top_n, pool, key=sort_key)
        return RoutedSelection(
            node_ids=tuple(n.node_id for n in best),
            widened=widened,
            epoch=self.shard_map.epoch,
            local_shards=tuple(p.shard for p in local),
            wide_shards=tuple(p.shard for p in wide) if wide is not None else (),
            pool=len(pool),
        )

    def select(self, query: "DiscoveryQuery", fetch: Fetch) -> RoutedSelection:
        """Full two-phase routed selection over a synchronous transport."""
        geo = self.policy.geo_filter
        local_shards, wide_shards = self.plan(query)
        local = [fetch(shard, geo.radius_km) for shard in local_shards]
        if not self.needs_widening(query, local):
            return self.merge(query, local)
        wide = [fetch(shard, geo.wide_radius_km) for shard in wide_shards]
        return self.merge(query, local, wide)
