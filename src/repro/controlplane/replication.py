"""Per-shard primary/standby registry replication.

Pure replica-set state over :class:`GlobalSelectionMachine` instances —
no clocks, no transports. Replication is two-tier, mirroring the wire
design of the live driver:

- **heartbeat-piggybacked deltas**: every node heartbeat routed to a
  shard is applied to *all* alive replicas, so standbys track the
  primary entry-by-entry at no extra message cost (the heartbeat was
  already in flight);
- **periodic snapshots**: :meth:`ReplicatedShard.sync_standby` re-seeds
  a standby from the primary's deduplicated
  :class:`~repro.protocol.global_select.RegistrySnapshot`, bounding
  divergence after a replica was down (a rejoin handoff) and repairing
  any deltas it missed.

Only the primary *serves* (discovery phases, WRR): a standby answers
nothing until promoted, so a shard whose primary is down is simply
unavailable for the detection window — clients ride the existing
``DiscoveryFailed`` → degraded-fallback path, which is the failover
story the chaos scenarios assert.

Drivers own failure detection and timing: they call
:meth:`mark_down`/:meth:`promote`/:meth:`mark_up` when their clocks or
transports say so.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Set

from repro.protocol.events import HeartbeatReceived, PruneTick

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.messages import NodeStatus
    from repro.protocol.effects import Effect
    from repro.protocol.global_select import GlobalSelectionMachine

__all__ = ["ReplicatedShard"]


class ReplicatedShard:
    """One shard's replica set: a primary plus warm standbys."""

    def __init__(
        self, shard_index: int, machines: Sequence["GlobalSelectionMachine"]
    ) -> None:
        if not machines:
            raise ValueError("a shard needs at least one replica")
        self.shard_index = shard_index
        self.machines: List["GlobalSelectionMachine"] = list(machines)
        self.primary = 0
        self._down: Set[int] = set()

    # ------------------------------------------------------------------
    # Liveness bookkeeping (driven by the owning driver)
    # ------------------------------------------------------------------
    @property
    def replicas(self) -> int:
        return len(self.machines)

    def is_down(self, replica: int) -> bool:
        return replica in self._down

    def alive_replicas(self) -> List[int]:
        return [i for i in range(len(self.machines)) if i not in self._down]

    def serving_index(self) -> Optional[int]:
        """The replica currently allowed to answer queries, or None.

        Only the primary serves; between a primary loss and the
        promotion the shard is deliberately unavailable (split-brain
        avoidance beats availability here).
        """
        return None if self.primary in self._down else self.primary

    def serving_machine(self) -> Optional["GlobalSelectionMachine"]:
        index = self.serving_index()
        return None if index is None else self.machines[index]

    def mark_down(self, replica: int) -> None:
        if not 0 <= replica < len(self.machines):
            raise ValueError(f"replica {replica} out of range")
        self._down.add(replica)

    def mark_up(self, replica: int) -> None:
        self._down.discard(replica)

    def promote(self) -> Optional[int]:
        """Promote the lowest-indexed alive replica to primary.

        Returns the new primary index, or None when every replica is
        down (the shard stays unavailable). Idempotent: promoting while
        the primary is alive re-selects it.
        """
        alive = self.alive_replicas()
        if not alive:
            return None
        self.primary = alive[0]
        return self.primary

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def apply_heartbeat(self, stamp: float, status: "NodeStatus") -> List["Effect"]:
        """Apply one heartbeat to every alive replica (delta replication).

        Returns the serving replica's effects (for reputation/obs
        wiring); standby effects are identical by construction and
        dropped. With the primary down the deltas still warm the
        standbys, but nothing is reported — the shard is not serving.
        """
        serving = self.serving_index()
        out: List["Effect"] = []
        for index in self.alive_replicas():
            effects = self.machines[index].handle(
                HeartbeatReceived(stamp=stamp, status=status)
            )
            if index == serving:
                out = effects
        return out

    def prune(self, stamp: float) -> List["Effect"]:
        """Expire stale entries on every alive replica (same contract as
        :meth:`apply_heartbeat`: the serving replica's effects)."""
        serving = self.serving_index()
        out: List["Effect"] = []
        for index in self.alive_replicas():
            effects = self.machines[index].handle(PruneTick(stamp=stamp))
            if index == serving:
                out = effects
        return out

    def sync_standby(self, replica: int) -> int:
        """Re-seed one standby from the primary's deduped snapshot.

        Returns the number of registry entries copied. Raises when the
        shard has no serving primary or ``replica`` *is* the primary.
        """
        serving = self.serving_machine()
        if serving is None:
            raise RuntimeError(
                f"shard {self.shard_index} has no serving primary to sync from"
            )
        if replica == self.primary:
            raise ValueError("cannot sync the primary from itself")
        snapshot = serving.snapshot_state()
        self.machines[replica].restore_state(snapshot)
        return len(snapshot.statuses)

    def sync_all_standbys(self) -> int:
        """Periodic snapshot pass over every alive standby."""
        copied = 0
        for index in self.alive_replicas():
            if index != self.primary:
                copied += self.sync_standby(index)
        return copied

    def __repr__(self) -> str:
        return (
            f"ReplicatedShard(shard={self.shard_index}, primary={self.primary}, "
            f"alive={self.alive_replicas()})"
        )
