"""Geohash-range shard map: registry ownership by cell prefix.

A :class:`ShardMap` partitions the ``5 * precision``-bit integer cell
space of :mod:`repro.geo.geohash` into ``count`` contiguous ranges.
Every node's geohash (precision 9 on both backends) truncates to a
``precision``-character prefix whose uint64 cell id picks exactly one
owning shard; discovery covering cells map to the (usually one, near a
boundary several) shards whose ranges they intersect.

Range partitioning over the interleaved cell id is deliberately simple:
ownership is a pure function of the map (no directory service), a map
is fully described by ``(count, precision, epoch)``, and geohash
prefix adjacency means a metro's nodes concentrate in few ranges — the
cross-shard fraction of discovery queries stays small (measured by
``bench_discovery_sharded.py``). The ``epoch`` versions the map:
routers and managers only cooperate on equal epochs, and bumping it
(via :meth:`ShardMap.derive`) forces an explicit registry handoff.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Tuple

from repro.geo import geohash as gh

__all__ = ["DEFAULT_SHARD_PRECISION", "ShardMap"]

#: Prefix length (geohash characters) at which ownership is decided.
#: Precision 4 cells are ~39x20 km: a metro region spans several, so
#: sharding actually spreads load, while covering cells for typical
#: discovery radii (a few km) are finer and map to single owners.
DEFAULT_SHARD_PRECISION = 4


@dataclass(frozen=True)
class ShardMap:
    """Versioned partition of the geohash cell space into shard ranges.

    Shard ``i`` owns cells ``[starts[i], starts[i+1])`` where the
    starts split ``[0, 32**precision)`` as evenly as integer division
    allows. Frozen: any change is a new map with a higher ``epoch``.
    """

    count: int
    precision: int = DEFAULT_SHARD_PRECISION
    epoch: int = 0
    _starts: Tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.precision <= 12:
            raise ValueError(f"precision must be in 1..12, got {self.precision}")
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")
        space = self.cell_space
        if self.count > space:
            raise ValueError(
                f"cannot split {space} cells into {self.count} shards"
            )
        starts = tuple((i * space) // self.count for i in range(self.count))
        object.__setattr__(self, "_starts", starts)

    @property
    def cell_space(self) -> int:
        """Number of distinct cells at this precision (``32**precision``)."""
        return 1 << (5 * self.precision)

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def owner_of_cell(self, cell: int) -> int:
        """Shard index owning an integer cell id at this precision."""
        if not 0 <= cell < self.cell_space:
            raise ValueError(f"cell {cell} out of range for precision {self.precision}")
        return bisect_right(self._starts, cell) - 1

    def owner_of_geohash(self, geohash: str) -> int:
        """Shard index owning a geohash at least ``precision`` chars long.

        This is heartbeat routing: node geohashes (precision 9) always
        satisfy the length requirement; a coarser hash spans several
        shards and has no single owner.
        """
        if len(geohash) < self.precision:
            raise ValueError(
                f"geohash {geohash!r} is coarser than shard precision "
                f"{self.precision}; it has no single owner"
            )
        return self.owner_of_cell(gh.geohash_to_cell(geohash[: self.precision]))

    def owners_of_cell_str(self, cell: str) -> Tuple[int, ...]:
        """All shards intersecting one covering cell (a geohash string).

        A cell finer than (or equal to) the shard precision has exactly
        one owner; a coarser cell spans the contiguous range of its
        descendants and may touch several shards.
        """
        length = len(cell)
        if length >= self.precision:
            return (self.owner_of_cell(gh.geohash_to_cell(cell[: self.precision])),)
        value = gh.geohash_to_cell(cell)
        shift = 5 * (self.precision - length)
        lo = value << shift
        hi = ((value + 1) << shift) - 1
        first = self.owner_of_cell(lo)
        last = self.owner_of_cell(hi)
        return tuple(range(first, last + 1))

    def owners_for_cells(self, cells: Iterable[str]) -> Tuple[int, ...]:
        """Sorted, deduplicated shard fan-out for a set of covering cells."""
        owners = set()
        for cell in cells:
            owners.update(self.owners_of_cell_str(cell))
        return tuple(sorted(owners))

    def shard_range(self, shard: int) -> Tuple[int, int]:
        """Half-open ``[lo, hi)`` cell range owned by ``shard``."""
        if not 0 <= shard < self.count:
            raise ValueError(f"shard {shard} out of range 0..{self.count - 1}")
        lo = self._starts[shard]
        hi = self._starts[shard + 1] if shard + 1 < self.count else self.cell_space
        return lo, hi

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    def derive(self, *, count: int | None = None, precision: int | None = None) -> "ShardMap":
        """A successor map (epoch + 1) with changed geometry.

        Installing a derived map requires a registry handoff — the
        drivers refuse to mix epochs.
        """
        return ShardMap(
            count=self.count if count is None else count,
            precision=self.precision if precision is None else precision,
            epoch=self.epoch + 1,
        )

    def describe(self) -> str:
        ranges = ", ".join(
            f"s{i}=[{self.shard_range(i)[0]:#x},{self.shard_range(i)[1]:#x})"
            for i in range(self.count)
        )
        return (
            f"ShardMap(epoch={self.epoch}, precision={self.precision}, "
            f"count={self.count}: {ranges})"
        )
