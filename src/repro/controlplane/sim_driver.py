"""Sharded Central Manager — simulation driver over the control plane.

A drop-in replacement for :class:`repro.core.manager.CentralManager`
that steps ``shards x replicas`` :class:`GlobalSelectionMachine`
instances inside the kernel. Heartbeats route to the owning shard and
are applied to every alive replica (delta replication); discovery runs
the :class:`~repro.controlplane.router.ShardRouter` two-phase fan-out
with each shard answering from its serving primary.

Failure model (driven by shard-targeted ``ManagerOutage`` rules via
``EdgeSystem._apply_fault_action``):

- ``on_shard_outage_start`` takes the shard's current primary down.
  Until promotion the shard serves nothing: a discovery touching it
  raises :class:`ControlPlaneUnavailable` and the client rides the
  existing ``DiscoveryFailed`` -> degraded-fallback path.
- After ``promotion_delay_ms`` (the failure-detection window) a kernel
  timer promotes the lowest alive standby and emits ``manager_promote``.
- ``on_shard_outage_end`` revives the downed replica; if a standby was
  promoted meanwhile, the returnee is re-seeded from the new primary's
  deduplicated snapshot and rejoins as standby (``registry_handoff``).

With ``shards=1, replicas=1`` every code path collapses to a single
machine answering plain ``DiscoveryRequested``-equivalent phases, and
the answers are bit-identical to the seed manager (held by the golden
parity test).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.controlplane.errors import ControlPlaneUnavailable
from repro.controlplane.replication import ReplicatedShard
from repro.controlplane.router import PartialSelection, ShardRouter
from repro.controlplane.sharding import DEFAULT_SHARD_PRECISION, ShardMap
from repro.core.messages import CandidateList, DiscoveryQuery, NodeStatus
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.obs.events import ManagerPromote, RegistryHandoff, ShardMerge, ShardRoute
from repro.protocol.effects import (
    Effect,
    NodeExpired,
    NodeOnline,
    ReplyPartialCandidates,
)
from repro.protocol.events import HeartbeatReceived, NodeForgotten, PartialDiscoveryRequested
from repro.protocol.global_select import GlobalSelectionMachine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.policies.reputation import ReputationTracker
    from repro.core.system import EdgeSystem

__all__ = ["ShardedCentralManager"]

#: Period of the standby snapshot-sync timer (bounds divergence when a
#: standby missed deltas; a no-op while deltas keep replicas identical).
SNAPSHOT_SYNC_PERIOD_MS = 5_000.0


class ShardedCentralManager:
    """N replicated manager shards behind a deterministic router."""

    def __init__(
        self,
        system: "EdgeSystem",
        policy: Optional[GlobalSelectionPolicy] = None,
        reputation: Optional["ReputationTracker"] = None,
        *,
        shards: int = 1,
        replicas: int = 1,
        shard_precision: int = DEFAULT_SHARD_PRECISION,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.system = system
        self._policy = policy or GlobalSelectionPolicy()
        self.shard_map = ShardMap(count=shards, precision=shard_precision)
        self.router = ShardRouter(self.shard_map, self._policy)
        timeout = system.config.heartbeat_timeout_ms
        self.shards: List[ReplicatedShard] = [
            ReplicatedShard(
                index,
                [
                    GlobalSelectionMachine(self._policy, heartbeat_timeout=timeout)
                    for _ in range(replicas)
                ],
            )
            for index in range(shards)
        ]
        self.reputation = reputation
        self.queries_served = 0
        self.heartbeats_received = 0
        #: Heartbeats dropped because the owning shard had no alive replica.
        self.heartbeats_dropped = 0
        self.promotions = 0
        #: Primary-loss detection window before a standby is promoted.
        #: Reuses the system's failure-detection budget: the control
        #: plane notices a dead primary as fast as clients notice a dead
        #: edge node.
        self.promotion_delay_ms = system.config.failure_detection_ms
        #: shard -> replica taken down by the active outage rule.
        self._outage_victim: Dict[int, int] = {}
        # Smooth-WRR state lives in the driver: the baseline's round
        # robin is global across shards, so no single machine can own it.
        self._wrr_current: Dict[str, float] = {}
        self._last_snapshot_sync = 0.0

    # ------------------------------------------------------------------
    # CentralManager-compatible surface
    # ------------------------------------------------------------------
    @property
    def policy(self) -> GlobalSelectionPolicy:
        return self._policy

    @policy.setter
    def policy(self, policy: GlobalSelectionPolicy) -> None:
        self._policy = policy
        self.router.policy = policy
        for shard in self.shards:
            for machine in shard.machines:
                machine.policy = policy

    @property
    def _registry(self) -> Dict[str, NodeStatus]:
        """Merged registry view (serving replicas), for experiments."""
        merged: Dict[str, NodeStatus] = {}
        for shard in self.shards:
            machine = shard.serving_machine() or shard.machines[shard.primary]
            merged.update(machine.registry)
        return merged

    def _run_effects(self, effects: List[Effect]) -> Optional[Effect]:
        reply: Optional[Effect] = None
        for effect in effects:
            if isinstance(effect, NodeOnline):
                if self.reputation is not None:
                    self.reputation.record_online(effect.node_id, self.system.sim.now)
            elif isinstance(effect, NodeExpired):
                self._wrr_current.pop(effect.node_id, None)
                if self.reputation is not None:
                    self.reputation.record_departure(
                        effect.node_id, self.system.sim.now
                    )
            elif isinstance(effect, ReplyPartialCandidates):
                reply = effect
            else:  # pragma: no cover - forward-compatibility guard
                raise TypeError(f"unhandled effect {type(effect).__name__}")
        return reply

    # ------------------------------------------------------------------
    # Registry maintenance
    # ------------------------------------------------------------------
    def receive_heartbeat(self, status: NodeStatus) -> None:
        """Route a status report to its owning shard's replica set."""
        self.heartbeats_received += 1
        shard = self.shards[self.router.owner_of(status)]
        if not shard.alive_replicas():
            self.heartbeats_dropped += 1
            return
        self._run_effects(shard.apply_heartbeat(status.reported_at_ms, status))
        self._maybe_snapshot_sync()

    def forget_node(self, node_id: str) -> None:
        """Administrative deregistration (ownership unknown without the
        status, so every replica is told; extra calls are no-ops)."""
        self._wrr_current.pop(node_id, None)
        for shard in self.shards:
            for machine in shard.machines:
                machine.handle(NodeForgotten(node_id))

    def prune_stale(self) -> None:
        now = self.system.sim.now
        for shard in self.shards:
            self._run_effects(shard.prune(now))

    def alive_statuses(self) -> List[NodeStatus]:
        """Statuses from every serving replica, pruned on read.

        Order is per-shard insertion order, concatenated shard-by-shard
        (deterministic, but not the single-manager global insertion
        order — callers ranking statuses must sort, as the policies do).
        """
        self.prune_stale()
        out: List[NodeStatus] = []
        for shard in self.shards:
            machine = shard.serving_machine()
            if machine is not None:
                out.extend(machine.registry.values())
        return out

    def known_node_ids(self) -> List[str]:
        out: List[str] = []
        for shard in self.shards:
            machine = shard.serving_machine() or shard.machines[shard.primary]
            out.extend(machine.registry)
        return out

    # ------------------------------------------------------------------
    # Edge discovery (routed)
    # ------------------------------------------------------------------
    def discover(self, query: DiscoveryQuery) -> CandidateList:
        """Answer discovery via shard fan-out + cross-shard TopN merge.

        Raises:
            ControlPlaneUnavailable: a covering shard has no serving
                primary — the caller must treat this as "manager
                unreachable" (degraded fallback), never as an empty
                candidate list.
        """
        self.queries_served += 1
        now = self.system.sim.now

        def fetch(shard_index: int, radius_km: float) -> PartialSelection:
            machine = self.shards[shard_index].serving_machine()
            if machine is None:
                raise ControlPlaneUnavailable(shard_index)
            reply = self._run_effects(
                machine.handle(
                    PartialDiscoveryRequested(
                        now=now, stamp=now, query=query, radius_km=radius_km
                    )
                )
            )
            assert isinstance(reply, ReplyPartialCandidates)
            return PartialSelection(
                shard=shard_index, count=reply.count, statuses=reply.statuses
            )

        routed = self.router.select(query, fetch)
        trace = self.system.trace
        if trace.enabled:
            trace.emit(
                ShardRoute(
                    now,
                    user_id=query.user_id,
                    shards=routed.shards_queried,
                    epoch=self.shard_map.epoch,
                    cross_shard=routed.cross_shard,
                )
            )
            if routed.cross_shard:
                trace.emit(
                    ShardMerge(
                        now,
                        user_id=query.user_id,
                        shards=len(routed.shards_queried),
                        pool=routed.pool,
                        widened=routed.widened,
                    )
                )
        return CandidateList(
            user_id=query.user_id,
            node_ids=routed.node_ids,
            generated_at_ms=now,
            widened=routed.widened,
        )

    # ------------------------------------------------------------------
    # Resource-aware weighted round robin (baseline support)
    # ------------------------------------------------------------------
    def wrr_assign(self, query: DiscoveryQuery) -> Optional[str]:
        """Smooth WRR over the merged alive population.

        Same algorithm as the single manager's machine, hosted in the
        driver because the round-robin ledger is global across shards.
        """
        statuses = [
            s for s in self.alive_statuses() if s.node_id not in query.exclude
        ]
        if self._policy.node_predicate is not None:
            predicate = self._policy.node_predicate
            statuses = [s for s in statuses if predicate(s)]
        if not statuses:
            return None
        total = 0.0
        weights: Dict[str, float] = {}
        for status in statuses:
            weight = max(status.availability_score, 0.01)
            weights[status.node_id] = weight
            total += weight
        best_id: Optional[str] = None
        best_value = float("-inf")
        for node_id, weight in weights.items():
            current = self._wrr_current.get(node_id, 0.0) + weight
            self._wrr_current[node_id] = current
            if current > best_value:
                best_value = current
                best_id = node_id
        assert best_id is not None
        self._wrr_current[best_id] -= total
        return best_id

    # ------------------------------------------------------------------
    # Failover (wired from shard-targeted fault actions)
    # ------------------------------------------------------------------
    def on_shard_outage_start(self, shard_index: int, rule_id: str = "") -> None:
        """A shard-targeted outage began: its primary goes dark.

        Promotion is scheduled after the detection window; until then
        the shard is unavailable and clients degrade gracefully.
        """
        shard = self.shards[shard_index]
        if shard_index in self._outage_victim:
            return  # overlapping outage rules: first victim stands
        victim = shard.primary
        shard.mark_down(victim)
        self._outage_victim[shard_index] = victim
        if len(shard.alive_replicas()) > 0:
            self.system.sim.schedule(
                self.promotion_delay_ms,
                lambda: self._promote(shard_index),
                label=f"controlplane.promote.s{shard_index}",
            )

    def _promote(self, shard_index: int) -> None:
        shard = self.shards[shard_index]
        if shard.serving_index() is not None:
            return  # primary came back inside the detection window
        new_primary = shard.promote()
        if new_primary is None:
            return  # every replica down; stay unavailable
        self.promotions += 1
        self.system.trace.emit(
            ManagerPromote(
                self.system.sim.now,
                shard=shard_index,
                replica=new_primary,
                reason="outage",
            )
        )

    def on_shard_outage_end(self, shard_index: int, rule_id: str = "") -> None:
        """The outage lifted: the victim replica comes back.

        If a standby was promoted meanwhile the returnee rejoins as a
        standby, re-seeded from the new primary's deduped snapshot (a
        ``registry_handoff``); with no promotion (replicas=1) the old
        primary simply resumes with its registry intact.
        """
        victim = self._outage_victim.pop(shard_index, None)
        if victim is None:
            return
        shard = self.shards[shard_index]
        shard.mark_up(victim)
        if shard.primary == victim:
            return  # no promotion happened; the old primary resumes
        entries = shard.sync_standby(victim)
        self.system.trace.emit(
            RegistryHandoff(
                self.system.sim.now,
                source=f"shard{shard_index}/r{shard.primary}",
                target=f"shard{shard_index}/r{victim}",
                entries=entries,
                epoch=self.shard_map.epoch,
                reason="rejoin",
            )
        )

    # ------------------------------------------------------------------
    # Shard-map epoch change (registry handoff)
    # ------------------------------------------------------------------
    def apply_shard_map(self, new_map: ShardMap) -> None:
        """Install a successor shard map, redistributing the registry.

        Every entry travels via a deduplicated snapshot and is re-applied
        as a heartbeat at its original stamp, so expiry semantics carry
        over and no tombstone can resurrect an expired node.
        """
        if new_map.epoch <= self.shard_map.epoch:
            raise ValueError(
                f"new map epoch {new_map.epoch} must exceed "
                f"current {self.shard_map.epoch}"
            )
        timeout = self.system.config.heartbeat_timeout_ms
        replicas = self.shards[0].replicas
        new_shards = [
            ReplicatedShard(
                index,
                [
                    GlobalSelectionMachine(self._policy, heartbeat_timeout=timeout)
                    for _ in range(replicas)
                ],
            )
            for index in range(new_map.count)
        ]
        now = self.system.sim.now
        moved: Dict[Tuple[int, int], int] = {}
        for old_shard in self.shards:
            machine = old_shard.serving_machine() or old_shard.machines[old_shard.primary]
            snapshot = machine.snapshot_state()
            for status in snapshot.statuses:
                target = new_map.owner_of_geohash(status.geohash)
                stamp = snapshot.stamps[status.node_id]
                for replica_machine in new_shards[target].machines:
                    replica_machine.handle(HeartbeatReceived(stamp=stamp, status=status))
                key = (old_shard.shard_index, target)
                moved[key] = moved.get(key, 0) + 1
        for (source, target), entries in sorted(moved.items()):
            self.system.trace.emit(
                RegistryHandoff(
                    now,
                    source=f"shard{source}",
                    target=f"shard{target}",
                    entries=entries,
                    epoch=new_map.epoch,
                    reason="epoch",
                )
            )
        self.shards = new_shards
        self.shard_map = new_map
        self.router = ShardRouter(new_map, self._policy)
        self._outage_victim.clear()

    # ------------------------------------------------------------------
    def _maybe_snapshot_sync(self) -> None:
        """Periodic standby snapshot sync, amortized against heartbeat
        traffic (no standing kernel timer: a self-rescheduling event
        would keep drain-style ``sim.run()`` calls from terminating)."""
        now = self.system.sim.now
        if now - self._last_snapshot_sync < SNAPSHOT_SYNC_PERIOD_MS:
            return
        self._last_snapshot_sync = now
        for shard in self.shards:
            if shard.replicas > 1 and shard.serving_index() is not None:
                shard.sync_all_standbys()

    def __repr__(self) -> str:
        return (
            f"ShardedCentralManager(shards={len(self.shards)}, "
            f"replicas={self.shards[0].replicas}, "
            f"nodes={len(self._registry)}, queries={self.queries_served})"
        )
