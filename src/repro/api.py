"""The typed scenario-building API.

This module is the recommended front door for constructing simulated
deployments. It replaces the seven-keyword ``spawn_node(...)`` /
``register_client_endpoint(...)`` calls of the seed API with two ideas:

- :class:`EndpointSpec` — one frozen value object carrying a
  participant's entire network identity (position, tier, ISP, bandwidth
  caps, last-mile overhead). Defined next to the topology it feeds
  (:mod:`repro.net.topology`) and re-exported here.
- :class:`ScenarioBuilder` — a fluent, declarative builder: declare
  nodes, user endpoints and clients (with per-kind spec defaults so
  shared network facts are stated once), then ``build()`` a fully wired
  :class:`~repro.core.system.EdgeSystem`.

Quickstart::

    from repro.api import EndpointSpec, ScenarioBuilder
    from repro.core.client import EdgeClient
    from repro.core.config import SystemConfig
    from repro.geo.point import GeoPoint
    from repro.nodes.hardware import profile_by_name

    scenario = (
        ScenarioBuilder(SystemConfig(top_n=3, seed=7))
        .default_node_spec(EndpointSpec(GeoPoint(44.97, -93.26), uplink_mbps=40.0))
        .node("V1", profile_by_name("V1"), point=GeoPoint(44.98, -93.26))
        .node("V2", profile_by_name("V2"), point=GeoPoint(44.95, -93.20))
        .client("u1", EdgeClient, spec=EndpointSpec(GeoPoint(44.97, -93.25)))
        .build()
    )
    scenario.run_for(30_000)

The old keyword-heavy methods survive as deprecated thin wrappers on
:class:`~repro.core.system.EdgeSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.core.client import ClientLike, EdgeClient
from repro.core.config import SystemConfig
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.metro.spec import MetroSpec, ShardSpec
from repro.net.topology import EndpointSpec, NetworkTopology
from repro.nodes.hardware import HardwareProfile
from repro.nodes.host_workload import HostWorkloadSchedule
from repro.obs.profile import KernelProfiler
from repro.obs.tracer import Tracer, as_sink
from repro.workload.ar import ARApplication, DEFAULT_AR_APP

if TYPE_CHECKING:  # pragma: no cover - import cycle-free typing only
    from repro.metro.runner import MetroSimulation

__all__ = [
    "ClientFactory",
    "ClientLike",
    "EndpointSpec",
    "MetroSpec",
    "ScenarioBuilder",
    "ShardSpec",
]

#: Builds a client for a system — ``EdgeClient`` itself and every
#: baseline subclass already match this shape.
ClientFactory = Callable[[EdgeSystem, str], ClientLike]


@dataclass
class _NodeDecl:
    node_id: str
    profile: HardwareProfile
    spec: EndpointSpec
    dedicated: bool
    host_schedule: Optional[HostWorkloadSchedule]
    start: bool


@dataclass
class _ClientDecl:
    user_id: str
    spec: EndpointSpec
    factory: Optional[ClientFactory]
    start: bool


@dataclass
class BuiltScenario:
    """What :meth:`ScenarioBuilder.build_scenario` hands back: the wired
    system plus the ids it created, so experiments can iterate entities
    without re-deriving them."""

    system: EdgeSystem
    node_ids: List[str] = field(default_factory=list)
    user_ids: List[str] = field(default_factory=list)
    #: The tracer wired into the system (disabled unless the builder's
    #: :meth:`ScenarioBuilder.observe` asked for capture).
    tracer: Optional[Tracer] = None


class ScenarioBuilder:
    """Fluent, declarative construction of an :class:`EdgeSystem`.

    Every mutator returns ``self``; nothing touches a simulator until
    :meth:`build` (declarations are replayed in order, so node startup
    and client arrival ordering is exactly the declaration ordering).
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        *,
        topology: Optional[NetworkTopology] = None,
        app: ARApplication = DEFAULT_AR_APP,
        manager_point: Optional[GeoPoint] = None,
        global_policy: Optional[GlobalSelectionPolicy] = None,
    ) -> None:
        self._config = config
        self._topology = topology
        self._app = app
        self._manager_point = manager_point
        self._global_policy = global_policy
        self._policy_spec: Optional[object] = None
        self._policy_params: dict = {}
        self._node_default: Optional[EndpointSpec] = None
        self._client_default: Optional[EndpointSpec] = None
        self._decls: List[Tuple[str, object]] = []
        self._observe_trace = False
        self._observe_sink: object = None
        self._observe_capacity = 65536
        self._observe_profile_kernel = False
        self._metro_spec: Optional[MetroSpec] = None
        self._shard_overrides: dict = {}
        self._control_plane: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # Defaults
    # ------------------------------------------------------------------
    def default_node_spec(self, spec: EndpointSpec) -> "ScenarioBuilder":
        """Network spec template for nodes declared with only a point."""
        self._node_default = spec
        return self

    def default_client_spec(self, spec: EndpointSpec) -> "ScenarioBuilder":
        """Network spec template for clients declared with only a point."""
        self._client_default = spec
        return self

    def policy(self, spec: object, **params: object) -> "ScenarioBuilder":
        """Select the client ranking policy for every built client.

        ``spec`` is a :mod:`repro.policy` registry name (``"ewma"``,
        ``"reliability"``, ...), a :class:`~repro.policy.SelectionPolicy`
        prototype (deep-copied per client, so per-node state is never
        shared), or a legacy ranking callable; keyword ``params`` are
        constructor arguments when ``spec`` is a name::

            ScenarioBuilder(config).policy("ewma", alpha=0.5)

        Overrides ``SystemConfig.policy_spec``. QoS admission from
        ``qos_latency_ms`` still wraps the chosen policy.
        """
        self._policy_spec = spec
        self._policy_params = dict(params)
        return self

    def observe(
        self,
        trace: bool = True,
        *,
        sink: object = None,
        capacity: int = 65536,
        profile_kernel: bool = False,
    ) -> "ScenarioBuilder":
        """Turn on structured trace capture for the built system.

        Args:
            trace: capture trace events into the tracer's ring buffer.
                When False the system still gets a tracer (metrics flow
                through it either way) but event capture is disabled.
            sink: optional streaming destination — a path/str (JSONL
                file), an open file-like object, or any
                :class:`~repro.obs.tracer.TraceSink`.
            capacity: ring-buffer size (events) when tracing.
            profile_kernel: additionally install a
                :class:`~repro.obs.profile.KernelProfiler` on the
                simulator, recording per-handler wall time + queue depth.
        """
        self._observe_trace = trace
        self._observe_sink = sink
        self._observe_capacity = capacity
        self._observe_profile_kernel = profile_kernel
        return self

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def control_plane(
        self, *, shards: int = 1, replicas: int = 1
    ) -> "ScenarioBuilder":
        """Run the Central Manager as a sharded, replicated control plane.

        ``shards`` partitions the registry by geohash range behind a
        deterministic router (cross-shard discovery merges to the exact
        single-manager TopN — bit-identical, held by a property test);
        ``replicas`` adds per-shard standbys that a shard-targeted
        outage promotes after the failure-detection window. The default
        ``shards=1, replicas=1`` builds the plain single manager, and a
        ``control_plane(shards=1, replicas=1)`` system behaves
        bit-identically to one that never called this method::

            ScenarioBuilder(config).control_plane(shards=4, replicas=2)

        Overlays ``SystemConfig.control_plane_shards`` /
        ``control_plane_replicas`` at build time.
        """
        if shards < 1 or replicas < 1:
            raise ValueError("control_plane needs shards >= 1 and replicas >= 1")
        self._control_plane = (shards, replicas)
        return self

    # ------------------------------------------------------------------
    # Metro scale
    # ------------------------------------------------------------------
    def metro(
        self,
        nodes: Optional[int] = None,
        users: Optional[int] = None,
        *,
        region_km: float = 40.0,
        shards: int = 1,
        center: Optional[GeoPoint] = None,
        fps: float = 10.0,
        spec: Optional[MetroSpec] = None,
    ) -> "ScenarioBuilder":
        """Declare a metro-scale synthetic deployment.

        Either give a full :class:`MetroSpec` via ``spec=``, or the
        common knobs directly::

            ScenarioBuilder(config).metro(nodes=100_000, users=1_000_000,
                                          region_km=40, shards=4)

        ``build_metro()`` then returns a runnable
        :class:`~repro.metro.runner.MetroSimulation` instead of an
        :class:`EdgeSystem`. Compose with :meth:`shard` for worker
        processes and boundary-epoch tuning.
        """
        if spec is not None:
            if nodes is not None or users is not None:
                raise ValueError("give spec= or nodes=/users=, not both")
            self._metro_spec = spec
        else:
            if nodes is None or users is None:
                raise ValueError("metro() needs nodes= and users= (or spec=)")
            self._metro_spec = MetroSpec(
                nodes=nodes,
                users=users,
                region_km=region_km,
                fps=fps,
                **({"center": center} if center is not None else {}),
                shard=ShardSpec(count=shards),
            )
        return self

    def shard(
        self,
        *,
        by: str = "geohash",
        count: Optional[int] = None,
        workers: int = 1,
        precision: Optional[int] = None,
        boundary_epoch_ms: Optional[float] = None,
    ) -> "ScenarioBuilder":
        """Tune the metro partition declared by :meth:`metro`.

        ``count`` overrides the shard count; ``workers`` steps shards in
        forked worker processes; ``precision``/``boundary_epoch_ms``
        control the shard prefix size and the boundary-channel period.
        """
        self._shard_overrides = {
            "by": by,
            **({"count": count} if count is not None else {}),
            "workers": workers,
            **({"precision": precision} if precision is not None else {}),
            **(
                {"boundary_epoch_ms": boundary_epoch_ms}
                if boundary_epoch_ms is not None
                else {}
            ),
        }
        return self

    def build_metro(self) -> "MetroSimulation":
        """Wire the declared metro into a runnable simulation.

        Requires a prior :meth:`metro` call; :meth:`observe` composes
        (``trace=True`` captures the typed event stream per shard).
        """
        if self._metro_spec is None:
            raise ValueError("call .metro(...) before build_metro()")
        from repro.metro.runner import MetroSimulation

        spec = self._metro_spec
        if self._shard_overrides:
            spec = spec.with_shard(replace(spec.shard, **self._shard_overrides))
        return MetroSimulation(
            spec,
            self._config,
            capture_trace=self._observe_trace,
        )

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def node(
        self,
        node_id: str,
        profile: HardwareProfile,
        spec: Optional[EndpointSpec] = None,
        *,
        point: Optional[GeoPoint] = None,
        dedicated: bool = False,
        host_schedule: Optional[HostWorkloadSchedule] = None,
        start: bool = True,
    ) -> "ScenarioBuilder":
        """Declare an edge node.

        Give either a full ``spec``, or just a ``point`` to inherit the
        :meth:`default_node_spec` template at that position.
        """
        self._decls.append(
            (
                "node",
                _NodeDecl(
                    node_id,
                    profile,
                    self._resolve(spec, point, self._node_default, node_id),
                    dedicated,
                    host_schedule,
                    start,
                ),
            )
        )
        return self

    def client_endpoint(
        self,
        user_id: str,
        spec: Optional[EndpointSpec] = None,
        *,
        point: Optional[GeoPoint] = None,
    ) -> "ScenarioBuilder":
        """Declare a user endpoint without a client object (experiments
        that attach strategy-specific clients later)."""
        self._decls.append(
            (
                "client",
                _ClientDecl(
                    user_id,
                    self._resolve(spec, point, self._client_default, user_id),
                    None,
                    False,
                ),
            )
        )
        return self

    def client(
        self,
        user_id: str,
        factory: ClientFactory = EdgeClient,
        spec: Optional[EndpointSpec] = None,
        *,
        point: Optional[GeoPoint] = None,
        start: bool = True,
    ) -> "ScenarioBuilder":
        """Declare a user endpoint plus a client built by ``factory``
        (``EdgeClient`` and every baseline class qualify as factories)."""
        self._decls.append(
            (
                "client",
                _ClientDecl(
                    user_id,
                    self._resolve(spec, point, self._client_default, user_id),
                    factory,
                    start,
                ),
            )
        )
        return self

    @staticmethod
    def _resolve(
        spec: Optional[EndpointSpec],
        point: Optional[GeoPoint],
        default: Optional[EndpointSpec],
        entity_id: str,
    ) -> EndpointSpec:
        if spec is not None:
            if point is not None:
                raise ValueError(
                    f"{entity_id!r}: give either spec= or point=, not both"
                )
            return spec
        if point is None:
            raise ValueError(f"{entity_id!r}: needs a spec= or a point=")
        if default is not None:
            return default.moved_to(point)
        return EndpointSpec(point)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build_scenario(self) -> BuiltScenario:
        """Wire everything and return the system plus created ids."""
        tracer: Optional[Tracer] = None
        if self._observe_trace or self._observe_sink is not None:
            tracer = Tracer(
                enabled=self._observe_trace,
                capacity=self._observe_capacity,
                sink=as_sink(self._observe_sink),
            )
        config = self._config
        if self._control_plane is not None:
            shards, replicas = self._control_plane
            config = replace(
                config if config is not None else SystemConfig(),
                control_plane_shards=shards,
                control_plane_replicas=replicas,
            )
        system = EdgeSystem(
            config,
            topology=self._topology,
            app=self._app,
            manager_point=self._manager_point,
            global_policy=self._global_policy,
            selection_policy=self._policy_spec,
            selection_policy_params=self._policy_params or None,
            trace=tracer,
        )
        if self._observe_profile_kernel:
            system.sim.profiler = KernelProfiler()
        built = BuiltScenario(system=system, tracer=system.trace)
        for kind, decl in self._decls:
            if kind == "node":
                assert isinstance(decl, _NodeDecl)
                system.add_node(
                    decl.node_id,
                    decl.profile,
                    decl.spec,
                    dedicated=decl.dedicated,
                    host_schedule=decl.host_schedule,
                    start=decl.start,
                )
                built.node_ids.append(decl.node_id)
            else:
                assert isinstance(decl, _ClientDecl)
                system.add_client_endpoint(decl.user_id, decl.spec)
                if decl.factory is not None:
                    system.add_client(
                        decl.factory(system, decl.user_id), start=decl.start
                    )
                built.user_ids.append(decl.user_id)
        return built

    def build(self) -> EdgeSystem:
        """Wire everything and return just the system."""
        return self.build_scenario().system
