"""The client-side failure monitor (§IV-E) — protocol-core state.

Maintains the **backup edge list** — the unselected candidates from the
last probing round, pre-sorted by the local selection policy so "the
first backup node used is always the second best option" — and tracks
failover coverage. It is owned by the
:class:`~repro.protocol.selection.SelectionMachine`, which decides when
to walk it; drivers own all message sending, so the monitor stays
trivially unit-testable.

Whether a failover switch is instant depends on connection strategy:

- **proactive** (the paper's approach): connections to all backups are
  already established, so the switch costs one one-way notification —
  "service downtime during connection switch [is] negligible";
- **reactive** (the "re-connect" baseline of Fig. 4 / Fig. 10a): no
  standing connections; a failover pays edge re-discovery plus fresh
  connection establishment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["FailureMonitor"]


class FailureMonitor:
    """Backup-list bookkeeping for one client.

    Attributes:
        backups: node ids, best-first (second-best overall candidate
            first, per the pre-sorted candidate list).
    """

    def __init__(self) -> None:
        self.backups: List[str] = []
        self.failovers_attempted = 0
        self.failovers_covered = 0
        self.failovers_uncovered = 0

    def update_backups(self, node_ids: Sequence[str]) -> None:
        """Replace the backup list with fresh probing results.

        This is the periodic refresh of Algorithm 2 line 20
        (``Backups <- C[1:]``): failed nodes age out of the list every
        probing period, which is why smaller ``T_probing`` raises
        robustness.
        """
        self.backups = list(node_ids)

    def remove(self, node_id: str) -> None:
        """Drop a node observed dead (broken proactive connection)."""
        self.backups = [b for b in self.backups if b != node_id]

    def next_backup(self) -> Optional[str]:
        """Pop the best remaining backup, or None if the list is empty."""
        if not self.backups:
            return None
        return self.backups.pop(0)

    def note_covered(self) -> None:
        self.failovers_attempted += 1
        self.failovers_covered += 1

    def note_uncovered(self) -> None:
        """All backups were dead simultaneously — the Fig. 10b "failure"."""
        self.failovers_attempted += 1
        self.failovers_uncovered += 1

    def __len__(self) -> int:
        return len(self.backups)

    def __repr__(self) -> str:
        return f"FailureMonitor(backups={self.backups})"
