"""The client selection round as a sans-IO state machine (Algorithm 2).

One :class:`SelectionMachine` holds every *decision* the paper puts on
the client: when to discover, which candidates to probe, the candidate
ranking and backup ordering (via an injected
:class:`~repro.policy.base.SelectionPolicy`), dwell and hysteresis
gating on voluntary switches, the seqNum-echoing join with
repeat-from-discovery on rejection, backup adoption (Algorithm 2 line
20), and the failover walk over ``Unexpected_join`` with the
covered/uncovered distinction of Fig. 10b.

The machine is also the policy's *sensor*: every protocol transition
that carries information about a node — an answered or timed-out
probe, a broken connection, a failover verdict, a changed candidate
list, a degraded discovery — is forwarded to the policy as a typed
observation (:mod:`repro.policy.base`), which is how history-aware
policies accumulate per-node state without ever touching I/O. Dwell
and hysteresis compare **policy scores** (not raw probe RTTs), so the
switch margin is always expressed in the same currency the ranking
used and the two can never disagree about which node is better.

The machine is pure protocol: it consumes
:mod:`~repro.protocol.events` (each carrying an explicit ``now``) and
returns :mod:`~repro.protocol.effects` — it never reads a clock, sends
a message, or touches the simulator kernel. The sim backend
(:class:`repro.core.client.EdgeClient`) and the live asyncio backend
(:class:`repro.runtime.client_runtime.LiveClient`) are thin drivers
over the *same* instance of this logic, which is what makes their
decision traces comparable event-for-event.

A subtle consequence that used to be backend-dependent: commit of the
chosen edge and adoption of the backup list happen **atomically inside
one** :meth:`SelectionMachine.handle` **call** (the join-accept
transition). An edge that dies immediately after its join-accept is
therefore always covered by the just-adopted backups — on both
backends — instead of racing a driver that had attached but not yet
adopted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.events import (
    CoveredFailover,
    DegradedFallback,
    DiscoveryIssued,
    DiscoveryReturned,
    JoinAccept,
    JoinAttempt,
    JoinReject,
    PolicyDecision,
    Switch,
    UncoveredFailure,
)
from repro.policy.base import (
    AttachmentObserved,
    CandidateChurn,
    DegradedDiscovery,
    FailoverObserved,
    NodeFailureObserved,
    ProbeObserved,
    ProbeTimeout,
    Ranking,
    RankingContext,
    SelectionPolicy,
)
from repro.policy.baselines import as_policy
from repro.protocol.effects import (
    Attached,
    Effect,
    EmitTrace,
    FlushBacklog,
    ProbeCandidates,
    SendDiscovery,
    SendFailoverJoin,
    SendJoin,
    SendLeave,
    StartTimer,
    UpdateBackups,
)
from repro.protocol.events import (
    CandidatesReceived,
    DiscoveryFailed,
    EdgeFailed,
    FailoverResult,
    JoinResult,
    ProbesCompleted,
    ProtocolEvent,
    RoundStarted,
)
from repro.protocol.failure_monitor import FailureMonitor

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.probing import ProbeOutcome

__all__ = ["SelectionConfig", "SelectionMachine", "LocalRanking"]

#: A local selection policy: rank probe outcomes best-first (possibly
#: filtering, e.g. a QoS cut). Structurally identical to
#: ``repro.core.policies.local_policies.LocalSelectionPolicy``.
LocalRanking = Callable[[Sequence["ProbeOutcome"]], List["ProbeOutcome"]]


def _never() -> bool:
    return False


@dataclass(frozen=True)
class SelectionConfig:
    """The protocol constants one selection machine runs with.

    A plain value object (not ``SystemConfig``) so the machine stays
    importable without the simulation stack; drivers build it from
    their own configuration.
    """

    top_n: int = 3
    min_dwell_ms: float = 5_000.0
    switch_penalty_ms: float = 5.0
    switch_penalty_fraction: float = 0.15
    max_discovery_retries: int = 3
    retry_delay_ms: float = 500.0


class SelectionMachine:
    """Sans-IO client selection: events in, effects out.

    Args:
        user_id: the client's id (stamped into trace events).
        policy: a :class:`~repro.policy.base.SelectionPolicy`, or a
            legacy ranking callable (wrapped in the adapter that
            preserves its exact historical behaviour).
        config: protocol constants (dwell, hysteresis, retries).
        detail_guard: zero-arg callable gating *detail* trace events
            (``JoinAttempt``, ``DiscoveryReturned``,
            ``PolicyDecision``) — drivers pass
            ``lambda: tracer.enabled`` so disabled capture never even
            constructs them. Decision verdicts are always emitted.
    """

    def __init__(
        self,
        user_id: str,
        policy: "SelectionPolicy | LocalRanking",
        config: SelectionConfig,
        *,
        detail_guard: Callable[[], bool] = _never,
    ) -> None:
        self.user_id = user_id
        self._policy = as_policy(policy)
        self.config = config
        #: Live robustness knob (§IV-E): adaptive controllers may move it.
        self.top_n = config.top_n
        self.current_edge: Optional[str] = None
        self.monitor = FailureMonitor()
        #: Last successfully received candidate list — the degraded
        #: fallback pool when the Central Manager becomes unreachable.
        self.last_candidates: Tuple[str, ...] = ()
        self.round_in_progress = False
        self.last_join_ms = float("-inf")
        self._retries = 0
        self._ranked: List["ProbeOutcome"] = []
        #: Nodes the current round asked to probe — whoever does not
        #: answer is reported to the policy as a probe timeout.
        self._probe_targets: Tuple[str, ...] = ()
        self._detail_guard = detail_guard

    @property
    def attached(self) -> bool:
        return self.current_edge is not None

    # ------------------------------------------------------------------
    # Policy access (drivers accept legacy callables through here too)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> SelectionPolicy:
        return self._policy

    @policy.setter
    def policy(self, policy: "SelectionPolicy | LocalRanking") -> None:
        self._policy = as_policy(policy)

    # ------------------------------------------------------------------
    # Pickling: per-node policy state is part of the machine's state;
    # the detail guard is a driver-owned closure and is dropped (a
    # restored machine emits no detail events until a driver rewires it).
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_detail_guard"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        if state.get("_detail_guard") is None:
            self._detail_guard = _never

    # ------------------------------------------------------------------
    def handle(self, event: ProtocolEvent) -> List[Effect]:
        """Advance the machine by one input event; return the effects."""
        if isinstance(event, RoundStarted):
            return self._on_round_started(event)
        if isinstance(event, CandidatesReceived):
            return self._on_candidates(event)
        if isinstance(event, DiscoveryFailed):
            return self._on_discovery_failed(event)
        if isinstance(event, ProbesCompleted):
            return self._on_probes_completed(event)
        if isinstance(event, JoinResult):
            return self._on_join_result(event)
        if isinstance(event, EdgeFailed):
            return self._on_edge_failed(event)
        if isinstance(event, FailoverResult):
            return self._on_failover_result(event)
        raise TypeError(f"SelectionMachine cannot handle {type(event).__name__}")

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def _on_round_started(self, event: RoundStarted) -> List[Effect]:
        if self.round_in_progress:
            return []
        self.round_in_progress = True
        self._retries = 0
        return self._discover(event.now)

    def _discover(self, now: float, exclude: Tuple[str, ...] = ()) -> List[Effect]:
        """One discovery round trip (always traced: it is a decision)."""
        return [
            EmitTrace(DiscoveryIssued(now, self.user_id)),
            SendDiscovery(top_n=self.top_n, exclude=exclude),
        ]

    def _conclude_round(self, failed: bool) -> List[Effect]:
        """Close the round; while detached, arm a short retry timer."""
        self.round_in_progress = False
        if failed and not self.attached:
            return [StartTimer("retry_round", self.config.retry_delay_ms)]
        return []

    def _on_candidates(self, event: CandidatesReceived) -> List[Effect]:
        effects: List[Effect] = []
        if self._detail_guard():
            effects.append(
                EmitTrace(
                    DiscoveryReturned(
                        event.now,
                        self.user_id,
                        event.node_ids,
                        widened=event.widened,
                    )
                )
            )
        if not event.node_ids:
            # Nothing available: end the round; the periodic timer (or a
            # short retry while detached) tries again.
            return effects + self._conclude_round(failed=True)
        previous = self.last_candidates
        incoming = tuple(event.node_ids)
        if previous:
            appeared = tuple(n for n in incoming if n not in previous)
            vanished = tuple(n for n in previous if n not in incoming)
            if appeared or vanished:
                self._policy.observe(
                    CandidateChurn(event.now, appeared, vanished)
                )
        self.last_candidates = incoming
        node_ids = list(event.node_ids)
        # Algorithm 2 line 12 compares C[0] against Current, so Current is
        # always probed — even when the manager's availability sort
        # dropped it from the list (a node loaded by *this* user scores
        # low on availability, which must not force a blind switch).
        if self.current_edge is not None and self.current_edge not in node_ids:
            node_ids.append(self.current_edge)
        self._probe_targets = tuple(node_ids)
        effects.append(ProbeCandidates(tuple(node_ids)))
        return effects

    def _on_discovery_failed(self, event: DiscoveryFailed) -> List[Effect]:
        """Graceful degradation: the manager is unreachable.

        Instead of stalling the round until the manager returns, probe
        the last known candidate list plus the adopted backups (and the
        current edge) — every one of them was reachable recently, which
        is the best information a cut-off client has. The round then
        proceeds normally over whichever of them still answer.
        """
        if not self.round_in_progress:
            return []
        fallback: List[str] = []
        for node_id in (
            *self.last_candidates,
            *self.monitor.backups,
            *((self.current_edge,) if self.current_edge is not None else ()),
        ):
            if node_id not in fallback:
                fallback.append(node_id)
        if not fallback:
            # Nothing cached either (first round of a fresh client):
            # behave like an empty discovery — retry shortly.
            return self._conclude_round(failed=True)
        self._policy.observe(DegradedDiscovery(event.now, event.reason))
        self._probe_targets = tuple(fallback)
        return [
            EmitTrace(
                DegradedFallback(
                    event.now, self.user_id, event.reason, tuple(fallback)
                )
            ),
            ProbeCandidates(tuple(fallback)),
        ]

    # ------------------------------------------------------------------
    # Ranking, dwell, hysteresis, join
    # ------------------------------------------------------------------
    def _on_probes_completed(self, event: ProbesCompleted) -> List[Effect]:
        outcomes: List["ProbeOutcome"] = list(event.outcomes)
        # Feed the policy the raw measurements (pre stay-substitution)
        # plus the silence of whoever was probed and never answered.
        answered = set()
        for outcome in outcomes:
            answered.add(outcome.node_id)
            self._policy.observe(ProbeObserved(event.now, outcome))
        for node_id in self._probe_targets:
            if node_id not in answered:
                self._policy.observe(ProbeTimeout(event.now, node_id))
        self._probe_targets = ()
        # For the node we are already attached to, the question is not
        # "what if one more user joins" (we are one of its n users) but
        # "what do I get by staying at my full rate" — the stay
        # projection the probe reply carries. Substituting it before
        # ranking removes a systematic bias against staying put without
        # letting adaptive throttling mask overload.
        if self.attached:
            outcomes = [
                replace(o, d_proc_ms=o.stay_ms)
                if o.node_id == self.current_edge
                else o
                for o in outcomes
            ]
        ctx = RankingContext(now=event.now, current_edge=self.current_edge)
        ranking: Ranking = self._policy.rank(outcomes, ctx)
        ranked = list(ranking.ranked)
        effects: List[Effect] = []
        if ranked and self._detail_guard():
            effects.append(
                EmitTrace(
                    PolicyDecision(
                        event.now,
                        self.user_id,
                        self._policy.name,
                        tuple(o.node_id for o in ranked),
                        tuple(
                            ranking.scores.get(o.node_id, 0.0) for o in ranked
                        ),
                    )
                )
            )
        if not ranked:
            # No candidate satisfies QoS / all candidates dead.
            return self._conclude_round(failed=True)
        best = ranked[0]
        if self.attached and best.node_id == self.current_edge:
            return (
                effects
                + self._adopt_backups(ranked[1:], ctx)
                + self._conclude_round(failed=False)
            )
        if self.attached:
            # Dwell: a voluntary switch is only considered once the
            # previous join has had time to settle.
            if event.now - self.last_join_ms < self.config.min_dwell_ms:
                return (
                    effects
                    + self._adopt_non_current(ranked, ctx)
                    + self._conclude_round(failed=False)
                )
            # Hysteresis compares *policy scores* — the same currency
            # the ranking sorted by — so a policy whose score is not
            # raw LO (GO, a predictive forecast, ...) cannot disagree
            # with its own switch gate.
            current_score = ranking.score_of(self.current_edge)
            if current_score is not None:
                threshold = (
                    current_score
                    * (1.0 - self.config.switch_penalty_fraction)
                    - self.config.switch_penalty_ms
                )
                best_score = ranking.scores.get(
                    best.node_id, best.local_overhead_ms
                )
                if best_score >= threshold:
                    # Hysteresis: not enough improvement to justify a
                    # switch.
                    return (
                        effects
                        + self._adopt_non_current(ranked, ctx)
                        + self._conclude_round(failed=False)
                    )
        self._ranked = ranked
        return effects + [SendJoin(best)]

    def _on_join_result(self, event: JoinResult) -> List[Effect]:
        ranked = self._ranked
        self._ranked = []
        effects: List[Effect] = []
        if self._detail_guard():
            effects.append(
                EmitTrace(JoinAttempt(event.attempted_at, self.user_id, event.node_id))
            )
        if not event.accepted:
            effects.append(
                EmitTrace(JoinReject(event.now, self.user_id, event.node_id))
            )
            # Rejected (state changed): repeat from the discovery step.
            self._retries += 1
            if self._retries <= self.config.max_discovery_retries:
                return effects + self._discover(event.now)
            return effects + self._conclude_round(failed=True)
        effects.append(EmitTrace(JoinAccept(event.now, self.user_id, event.node_id)))
        self._policy.observe(
            AttachmentObserved(event.now, event.node_id, via="join")
        )
        previous = self.current_edge
        if previous is not None and previous != event.node_id:
            effects.append(SendLeave(previous, "switch"))
            effects.append(
                EmitTrace(
                    Switch(
                        event.now,
                        self.user_id,
                        from_node=previous,
                        to_node=event.node_id,
                    )
                )
            )
        self.current_edge = event.node_id
        self.last_join_ms = event.now
        chosen = next((o for o in ranked if o.node_id == event.node_id), None)
        effects.append(
            Attached(
                event.node_id,
                chosen.d_prop_ms if chosen is not None else 0.0,
                previous,
                via="join",
            )
        )
        # Committing the edge and adopting its backups in the same
        # transition closes the join-accept/backup-adoption race (see
        # module docstring).
        effects.extend(
            self._adopt_backups(
                [o for o in ranked if o.node_id != event.node_id],
                RankingContext(now=event.now, current_edge=self.current_edge),
            )
        )
        effects.extend(self._conclude_round(failed=False))
        if previous is None:
            effects.append(FlushBacklog())
        return effects

    # ------------------------------------------------------------------
    # Backups (Algorithm 2 line 20)
    # ------------------------------------------------------------------
    def _adopt_backups(
        self, ranked_rest: Sequence["ProbeOutcome"], ctx: RankingContext
    ) -> List[Effect]:
        backup_count = max(0, self.top_n - 1)
        ordered = self._policy.order_backups(tuple(ranked_rest), ctx)
        adopted = list(ordered[:backup_count])
        self.monitor.update_backups([o.node_id for o in adopted])
        return [UpdateBackups(tuple(adopted))]

    def _adopt_non_current(
        self, ranked: Sequence["ProbeOutcome"], ctx: RankingContext
    ) -> List[Effect]:
        return self._adopt_backups(
            [o for o in ranked if o.node_id != self.current_edge], ctx
        )

    # ------------------------------------------------------------------
    # Failure handling (§IV-E)
    # ------------------------------------------------------------------
    def _on_edge_failed(self, event: EdgeFailed) -> List[Effect]:
        self._policy.observe(
            NodeFailureObserved(
                event.now,
                event.node_id,
                serving=event.node_id == self.current_edge,
            )
        )
        if event.node_id != self.current_edge:
            self.monitor.remove(event.node_id)
            return []
        self.current_edge = None
        return self._next_failover(event.now)

    def _next_failover(self, now: float) -> List[Effect]:
        """Walk the backup list; uncovered falls back to re-discovery."""
        backup_id = self.monitor.next_backup()
        if backup_id is not None:
            return [SendFailoverJoin(backup_id)]
        self.monitor.note_uncovered()
        effects: List[Effect] = [EmitTrace(UncoveredFailure(now, self.user_id))]
        if not self.round_in_progress:
            # Reactive reconnect: pay full re-discovery.
            self.round_in_progress = True
            self._retries = 0
            effects.extend(self._discover(now))
        return effects

    def _on_failover_result(self, event: FailoverResult) -> List[Effect]:
        self._policy.observe(
            FailoverObserved(event.now, event.node_id, event.accepted)
        )
        if not event.accepted:
            # This backup is dead too: try the next one.
            return self._next_failover(event.now)
        self._policy.observe(
            AttachmentObserved(event.now, event.node_id, via="failover")
        )
        self.monitor.note_covered()
        self.current_edge = event.node_id
        self.last_join_ms = event.now
        return [
            EmitTrace(CoveredFailover(event.now, self.user_id, event.node_id)),
            Attached(event.node_id, event.rtt_ms, None, via="failover"),
            FlushBacklog(),
        ]

    def __repr__(self) -> str:
        return (
            f"SelectionMachine({self.user_id}, edge={self.current_edge}, "
            f"backups={self.monitor.backups})"
        )
