"""The client selection round as a sans-IO state machine (Algorithm 2).

One :class:`SelectionMachine` holds every *decision* the paper puts on
the client: when to discover, which candidates to probe, the LO/GO/QoS
ranking (via an injected policy), dwell and hysteresis gating on
voluntary switches, the seqNum-echoing join with repeat-from-discovery
on rejection, backup adoption (Algorithm 2 line 20), and the failover
walk over ``Unexpected_join`` with the covered/uncovered distinction of
Fig. 10b.

The machine is pure protocol: it consumes
:mod:`~repro.protocol.events` (each carrying an explicit ``now``) and
returns :mod:`~repro.protocol.effects` — it never reads a clock, sends
a message, or touches the simulator kernel. The sim backend
(:class:`repro.core.client.EdgeClient`) and the live asyncio backend
(:class:`repro.runtime.client_runtime.LiveClient`) are thin drivers
over the *same* instance of this logic, which is what makes their
decision traces comparable event-for-event.

A subtle consequence that used to be backend-dependent: commit of the
chosen edge and adoption of the backup list happen **atomically inside
one** :meth:`SelectionMachine.handle` **call** (the join-accept
transition). An edge that dies immediately after its join-accept is
therefore always covered by the just-adopted backups — on both
backends — instead of racing a driver that had attached but not yet
adopted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.obs.events import (
    CoveredFailover,
    DegradedFallback,
    DiscoveryIssued,
    DiscoveryReturned,
    JoinAccept,
    JoinAttempt,
    JoinReject,
    Switch,
    UncoveredFailure,
)
from repro.protocol.effects import (
    Attached,
    Effect,
    EmitTrace,
    FlushBacklog,
    ProbeCandidates,
    SendDiscovery,
    SendFailoverJoin,
    SendJoin,
    SendLeave,
    StartTimer,
    UpdateBackups,
)
from repro.protocol.events import (
    CandidatesReceived,
    DiscoveryFailed,
    EdgeFailed,
    FailoverResult,
    JoinResult,
    ProbesCompleted,
    ProtocolEvent,
    RoundStarted,
)
from repro.protocol.failure_monitor import FailureMonitor

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.probing import ProbeOutcome

__all__ = ["SelectionConfig", "SelectionMachine", "LocalRanking"]

#: A local selection policy: rank probe outcomes best-first (possibly
#: filtering, e.g. a QoS cut). Structurally identical to
#: ``repro.core.policies.local_policies.LocalSelectionPolicy``.
LocalRanking = Callable[[Sequence["ProbeOutcome"]], List["ProbeOutcome"]]


def _never() -> bool:
    return False


@dataclass(frozen=True)
class SelectionConfig:
    """The protocol constants one selection machine runs with.

    A plain value object (not ``SystemConfig``) so the machine stays
    importable without the simulation stack; drivers build it from
    their own configuration.
    """

    top_n: int = 3
    min_dwell_ms: float = 5_000.0
    switch_penalty_ms: float = 5.0
    switch_penalty_fraction: float = 0.15
    max_discovery_retries: int = 3
    retry_delay_ms: float = 500.0


class SelectionMachine:
    """Sans-IO client selection: events in, effects out.

    Args:
        user_id: the client's id (stamped into trace events).
        policy: the LO/GO(/QoS) ranking over probe outcomes.
        config: protocol constants (dwell, hysteresis, retries).
        detail_guard: zero-arg callable gating *detail* trace events
            (``JoinAttempt``, ``DiscoveryReturned``) — drivers pass
            ``lambda: tracer.enabled`` so disabled capture never even
            constructs them. Decision verdicts are always emitted.
    """

    def __init__(
        self,
        user_id: str,
        policy: LocalRanking,
        config: SelectionConfig,
        *,
        detail_guard: Callable[[], bool] = _never,
    ) -> None:
        self.user_id = user_id
        self.policy = policy
        self.config = config
        #: Live robustness knob (§IV-E): adaptive controllers may move it.
        self.top_n = config.top_n
        self.current_edge: Optional[str] = None
        self.monitor = FailureMonitor()
        #: Last successfully received candidate list — the degraded
        #: fallback pool when the Central Manager becomes unreachable.
        self.last_candidates: Tuple[str, ...] = ()
        self.round_in_progress = False
        self.last_join_ms = float("-inf")
        self._retries = 0
        self._ranked: List["ProbeOutcome"] = []
        self._detail_guard = detail_guard

    @property
    def attached(self) -> bool:
        return self.current_edge is not None

    # ------------------------------------------------------------------
    def handle(self, event: ProtocolEvent) -> List[Effect]:
        """Advance the machine by one input event; return the effects."""
        if isinstance(event, RoundStarted):
            return self._on_round_started(event)
        if isinstance(event, CandidatesReceived):
            return self._on_candidates(event)
        if isinstance(event, DiscoveryFailed):
            return self._on_discovery_failed(event)
        if isinstance(event, ProbesCompleted):
            return self._on_probes_completed(event)
        if isinstance(event, JoinResult):
            return self._on_join_result(event)
        if isinstance(event, EdgeFailed):
            return self._on_edge_failed(event)
        if isinstance(event, FailoverResult):
            return self._on_failover_result(event)
        raise TypeError(f"SelectionMachine cannot handle {type(event).__name__}")

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def _on_round_started(self, event: RoundStarted) -> List[Effect]:
        if self.round_in_progress:
            return []
        self.round_in_progress = True
        self._retries = 0
        return self._discover(event.now)

    def _discover(self, now: float, exclude: Tuple[str, ...] = ()) -> List[Effect]:
        """One discovery round trip (always traced: it is a decision)."""
        return [
            EmitTrace(DiscoveryIssued(now, self.user_id)),
            SendDiscovery(top_n=self.top_n, exclude=exclude),
        ]

    def _conclude_round(self, failed: bool) -> List[Effect]:
        """Close the round; while detached, arm a short retry timer."""
        self.round_in_progress = False
        if failed and not self.attached:
            return [StartTimer("retry_round", self.config.retry_delay_ms)]
        return []

    def _on_candidates(self, event: CandidatesReceived) -> List[Effect]:
        effects: List[Effect] = []
        if self._detail_guard():
            effects.append(
                EmitTrace(
                    DiscoveryReturned(
                        event.now,
                        self.user_id,
                        event.node_ids,
                        widened=event.widened,
                    )
                )
            )
        if not event.node_ids:
            # Nothing available: end the round; the periodic timer (or a
            # short retry while detached) tries again.
            return effects + self._conclude_round(failed=True)
        self.last_candidates = tuple(event.node_ids)
        node_ids = list(event.node_ids)
        # Algorithm 2 line 12 compares C[0] against Current, so Current is
        # always probed — even when the manager's availability sort
        # dropped it from the list (a node loaded by *this* user scores
        # low on availability, which must not force a blind switch).
        if self.current_edge is not None and self.current_edge not in node_ids:
            node_ids.append(self.current_edge)
        effects.append(ProbeCandidates(tuple(node_ids)))
        return effects

    def _on_discovery_failed(self, event: DiscoveryFailed) -> List[Effect]:
        """Graceful degradation: the manager is unreachable.

        Instead of stalling the round until the manager returns, probe
        the last known candidate list plus the adopted backups (and the
        current edge) — every one of them was reachable recently, which
        is the best information a cut-off client has. The round then
        proceeds normally over whichever of them still answer.
        """
        if not self.round_in_progress:
            return []
        fallback: List[str] = []
        for node_id in (
            *self.last_candidates,
            *self.monitor.backups,
            *((self.current_edge,) if self.current_edge is not None else ()),
        ):
            if node_id not in fallback:
                fallback.append(node_id)
        if not fallback:
            # Nothing cached either (first round of a fresh client):
            # behave like an empty discovery — retry shortly.
            return self._conclude_round(failed=True)
        return [
            EmitTrace(
                DegradedFallback(
                    event.now, self.user_id, event.reason, tuple(fallback)
                )
            ),
            ProbeCandidates(tuple(fallback)),
        ]

    # ------------------------------------------------------------------
    # Ranking, dwell, hysteresis, join
    # ------------------------------------------------------------------
    def _on_probes_completed(self, event: ProbesCompleted) -> List[Effect]:
        outcomes: List["ProbeOutcome"] = list(event.outcomes)
        # For the node we are already attached to, the question is not
        # "what if one more user joins" (we are one of its n users) but
        # "what do I get by staying at my full rate" — the stay
        # projection the probe reply carries. Substituting it before
        # ranking removes a systematic bias against staying put without
        # letting adaptive throttling mask overload.
        if self.attached:
            outcomes = [
                replace(o, d_proc_ms=o.stay_ms)
                if o.node_id == self.current_edge
                else o
                for o in outcomes
            ]
        ranked = self.policy(outcomes)
        if not ranked:
            # No candidate satisfies QoS / all candidates dead.
            return self._conclude_round(failed=True)
        best = ranked[0]
        if self.attached and best.node_id == self.current_edge:
            return self._adopt_backups(ranked[1:]) + self._conclude_round(
                failed=False
            )
        if self.attached:
            # Dwell: a voluntary switch is only considered once the
            # previous join has had time to settle.
            if event.now - self.last_join_ms < self.config.min_dwell_ms:
                return self._adopt_non_current(ranked) + self._conclude_round(
                    failed=False
                )
            current_outcome = next(
                (o for o in ranked if o.node_id == self.current_edge), None
            )
            threshold = (
                current_outcome.local_overhead_ms
                * (1.0 - self.config.switch_penalty_fraction)
                - self.config.switch_penalty_ms
                if current_outcome is not None
                else float("inf")
            )
            if current_outcome is not None and best.local_overhead_ms >= threshold:
                # Hysteresis: not enough improvement to justify a switch.
                return self._adopt_non_current(ranked) + self._conclude_round(
                    failed=False
                )
        self._ranked = ranked
        return [SendJoin(best)]

    def _on_join_result(self, event: JoinResult) -> List[Effect]:
        ranked = self._ranked
        self._ranked = []
        effects: List[Effect] = []
        if self._detail_guard():
            effects.append(
                EmitTrace(JoinAttempt(event.attempted_at, self.user_id, event.node_id))
            )
        if not event.accepted:
            effects.append(
                EmitTrace(JoinReject(event.now, self.user_id, event.node_id))
            )
            # Rejected (state changed): repeat from the discovery step.
            self._retries += 1
            if self._retries <= self.config.max_discovery_retries:
                return effects + self._discover(event.now)
            return effects + self._conclude_round(failed=True)
        effects.append(EmitTrace(JoinAccept(event.now, self.user_id, event.node_id)))
        previous = self.current_edge
        if previous is not None and previous != event.node_id:
            effects.append(SendLeave(previous, "switch"))
            effects.append(
                EmitTrace(
                    Switch(
                        event.now,
                        self.user_id,
                        from_node=previous,
                        to_node=event.node_id,
                    )
                )
            )
        self.current_edge = event.node_id
        self.last_join_ms = event.now
        chosen = next((o for o in ranked if o.node_id == event.node_id), None)
        effects.append(
            Attached(
                event.node_id,
                chosen.d_prop_ms if chosen is not None else 0.0,
                previous,
                via="join",
            )
        )
        # Committing the edge and adopting its backups in the same
        # transition closes the join-accept/backup-adoption race (see
        # module docstring).
        effects.extend(
            self._adopt_backups([o for o in ranked if o.node_id != event.node_id])
        )
        effects.extend(self._conclude_round(failed=False))
        if previous is None:
            effects.append(FlushBacklog())
        return effects

    # ------------------------------------------------------------------
    # Backups (Algorithm 2 line 20)
    # ------------------------------------------------------------------
    def _adopt_backups(self, ranked_rest: Sequence["ProbeOutcome"]) -> List[Effect]:
        backup_count = max(0, self.top_n - 1)
        adopted = list(ranked_rest[:backup_count])
        self.monitor.update_backups([o.node_id for o in adopted])
        return [UpdateBackups(tuple(adopted))]

    def _adopt_non_current(
        self, ranked: Sequence["ProbeOutcome"]
    ) -> List[Effect]:
        return self._adopt_backups(
            [o for o in ranked if o.node_id != self.current_edge]
        )

    # ------------------------------------------------------------------
    # Failure handling (§IV-E)
    # ------------------------------------------------------------------
    def _on_edge_failed(self, event: EdgeFailed) -> List[Effect]:
        if event.node_id != self.current_edge:
            self.monitor.remove(event.node_id)
            return []
        self.current_edge = None
        return self._next_failover(event.now)

    def _next_failover(self, now: float) -> List[Effect]:
        """Walk the backup list; uncovered falls back to re-discovery."""
        backup_id = self.monitor.next_backup()
        if backup_id is not None:
            return [SendFailoverJoin(backup_id)]
        self.monitor.note_uncovered()
        effects: List[Effect] = [EmitTrace(UncoveredFailure(now, self.user_id))]
        if not self.round_in_progress:
            # Reactive reconnect: pay full re-discovery.
            self.round_in_progress = True
            self._retries = 0
            effects.extend(self._discover(now))
        return effects

    def _on_failover_result(self, event: FailoverResult) -> List[Effect]:
        if not event.accepted:
            # This backup is dead too: try the next one.
            return self._next_failover(event.now)
        self.monitor.note_covered()
        self.current_edge = event.node_id
        self.last_join_ms = event.now
        return [
            EmitTrace(CoveredFailover(event.now, self.user_id, event.node_id)),
            Attached(event.node_id, event.rtt_ms, None, via="failover"),
            FlushBacklog(),
        ]

    def __repr__(self) -> str:
        return (
            f"SelectionMachine({self.user_id}, edge={self.current_edge}, "
            f"backups={self.monitor.backups})"
        )
