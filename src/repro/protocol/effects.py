"""Typed effects returned by the sans-IO protocol machines.

An effect is an *instruction to the driver*: perform this I/O, start
this timer, emit this trace event. Machines return ``List[Effect]``
from ``handle()`` and never touch a clock, a socket, or the simulator
kernel themselves. Drivers execute effects **in order** — the order
encodes the protocol's own sequencing (e.g. leave-before-attach on a
switch, backup adoption before backlog flush).

Wire-message construction stays in the drivers: effects carry plain
fields and the transport builds its ``ProbeReply``/``JoinReply``/
``CandidateList`` (or JSON payload) from them. That keeps this module
free of ``repro.core`` runtime imports (annotations only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.obs.events import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.messages import NodeStatus
    from repro.core.probing import ProbeOutcome

__all__ = [
    "Effect",
    "EmitTrace",
    # selection (client role)
    "SendDiscovery",
    "ProbeCandidates",
    "SendJoin",
    "SendLeave",
    "SendFailoverJoin",
    "Attached",
    "UpdateBackups",
    "FlushBacklog",
    "StartTimer",
    # admission (edge-server role)
    "ReplyProbe",
    "ReplyJoin",
    "ScheduleTestWorkload",
    # global selection (Central Manager role)
    "ReplyCandidates",
    "ReplyPartialCandidates",
    "ReplyAssignment",
    "NodeOnline",
    "NodeExpired",
]


class Effect:
    """Marker base class of every protocol effect."""

    __slots__ = ()


@dataclass(slots=True)
class EmitTrace(Effect):
    """Emit one observability event on the backend's tracer.

    Decision events (discovery, join verdicts, switches, failovers) are
    produced here by the machines; transport measurements (probe RTTs,
    frame phases) stay with the drivers that measure them.
    """

    event: TraceEvent


# ----------------------------------------------------------------------
# Selection effects (client role)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class SendDiscovery(Effect):
    """Send an edge-discovery query to the Central Manager and feed the
    reply back as :class:`~repro.protocol.events.CandidatesReceived`."""

    top_n: int
    exclude: Tuple[str, ...] = ()


@dataclass(slots=True)
class ProbeCandidates(Effect):
    """Probe all candidates in parallel (``RTT_probe`` +
    ``Process_probe``); feed the collected outcomes back as
    :class:`~repro.protocol.events.ProbesCompleted` when the slowest
    answers."""

    node_ids: Tuple[str, ...]


@dataclass(slots=True)
class SendJoin(Effect):
    """``Join()`` the chosen candidate, echoing its probed ``seq_num``;
    feed the verdict back as :class:`~repro.protocol.events.JoinResult`."""

    outcome: "ProbeOutcome"


@dataclass(slots=True)
class SendLeave(Effect):
    """``Leave()`` a node (fire-and-forget)."""

    node_id: str
    reason: str


@dataclass(slots=True)
class SendFailoverJoin(Effect):
    """``Unexpected_join()`` a backup; feed the verdict back as
    :class:`~repro.protocol.events.FailoverResult`."""

    node_id: str


@dataclass(slots=True)
class Attached(Effect):
    """The machine committed to ``node_id`` as the serving edge.

    The driver warms/keeps the connection (``rtt_ms``) and updates any
    transport-level attachment state. ``via`` is ``"join"`` for a
    selection-round attach and ``"failover"`` for a backup adoption.
    """

    node_id: str
    rtt_ms: float
    previous: Optional[str]
    via: str


@dataclass(slots=True)
class UpdateBackups(Effect):
    """The backup list changed: exactly the ranked non-chosen
    candidates, truncated to TopN−1. The driver warms proactive
    connections and closes connections to dropped nodes."""

    outcomes: Tuple["ProbeOutcome", ...]


@dataclass(slots=True)
class FlushBacklog(Effect):
    """(Re)attached after downtime: release any buffered frames."""


@dataclass(slots=True)
class StartTimer(Effect):
    """Arm a one-shot timer; on expiry feed the event named by ``kind``
    (currently only ``"retry_round"`` →
    :class:`~repro.protocol.events.RoundStarted`)."""

    kind: str
    delay_ms: float


# ----------------------------------------------------------------------
# Admission effects (edge-server role)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ReplyProbe(Effect):
    """Answer a ``Process_probe`` from the what-if cache. The driver
    adds its transport framing (and the node id) to these fields."""

    what_if_ms: float
    seq_num: int
    attached_users: int
    current_proc_ms: float
    stay_ms: float


@dataclass(slots=True)
class ReplyJoin(Effect):
    """Answer a ``Join``/``Unexpected_join`` with the verdict and the
    node's (possibly just-incremented) ``seq_num``."""

    accepted: bool
    seq_num: int


@dataclass(slots=True)
class ScheduleTestWorkload(Effect):
    """Run the synthetic what-if test workload. ``delayed`` asks the
    driver to wait ~2× the common RTT first (the join trigger: measure
    once the new user's frames are flowing); feed the result back as
    :class:`~repro.protocol.events.TestWorkloadCompleted`."""

    reason: str
    delayed: bool = False


# ----------------------------------------------------------------------
# Global-selection effects (Central Manager role)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ReplyCandidates(Effect):
    """Answer a discovery query with the ranked TopN candidate ids."""

    node_ids: Tuple[str, ...]
    widened: bool
    generated_at_ms: float


@dataclass(slots=True)
class ReplyPartialCandidates(Effect):
    """Answer a shard-scoped fixed-radius discovery phase.

    ``count`` is the shard's *exact* in-radius candidate count (the
    router sums counts across shards to replay the single-manager
    widening decision bit-identically); ``statuses`` is the shard's
    local TopN under the policy's total-order sort key — a superset of
    this shard's contribution to the global TopN.
    """

    count: int
    statuses: Tuple["NodeStatus", ...]
    radius_km: float
    generated_at_ms: float


@dataclass(slots=True)
class ReplyAssignment(Effect):
    """Answer a WRR assignment request (None: no eligible node)."""

    node_id: Optional[str]


@dataclass(slots=True)
class NodeOnline(Effect):
    """A heartbeat refreshed ``node_id``; ``new`` marks a first sighting
    (drivers use it for population traces / reputation tracking)."""

    node_id: str
    new: bool


@dataclass(slots=True)
class NodeExpired(Effect):
    """``node_id`` silently aged out of the registry (or was forgotten)."""

    node_id: str
