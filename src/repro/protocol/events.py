"""Typed input events consumed by the sans-IO protocol machines.

Every event is a plain record: a timestamp (``now`` — sim-time or
wall-clock milliseconds, the machine never cares which) plus the data
the I/O layer observed. Drivers construct these from kernel callbacks
(sim) or awaited socket replies (live) and feed them to a machine's
``handle()``; the machine returns :mod:`~repro.protocol.effects`.

The classes are deliberately mutable ``slots=True`` dataclasses: they
are allocated on hot paths (one per probe round / heartbeat), matching
the :mod:`repro.obs.events` precedent.

Nothing here imports ``repro.core`` at runtime — type names from it
appear only in annotations (``TYPE_CHECKING``), which keeps the
protocol package import-cycle-free while both backends import it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.messages import DiscoveryQuery, NodeStatus
    from repro.core.probing import ProbeOutcome

__all__ = [
    "ProtocolEvent",
    # selection (client role)
    "RoundStarted",
    "CandidatesReceived",
    "DiscoveryFailed",
    "ProbesCompleted",
    "JoinResult",
    "EdgeFailed",
    "FailoverResult",
    # admission (edge-server role)
    "ProbeRequested",
    "JoinRequested",
    "UnexpectedJoinRequested",
    "LeaveRequested",
    "TestWorkloadCompleted",
    "MonitorSample",
    "NodeFailed",
    # global selection (Central Manager role)
    "HeartbeatReceived",
    "DiscoveryRequested",
    "PartialDiscoveryRequested",
    "WrrAssignRequested",
    "PruneTick",
    "NodeForgotten",
]


class ProtocolEvent:
    """Marker base class of every protocol input event."""

    __slots__ = ()


# ----------------------------------------------------------------------
# Selection-machine inputs (client role)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RoundStarted(ProtocolEvent):
    """A selection round should begin (periodic timer or retry timer)."""

    now: float


@dataclass(slots=True)
class CandidatesReceived(ProtocolEvent):
    """The Central Manager answered discovery with the TopN candidates."""

    now: float
    node_ids: Tuple[str, ...]
    widened: bool = False


@dataclass(slots=True)
class DiscoveryFailed(ProtocolEvent):
    """The discovery request never got an answer (Central Manager
    unreachable, timed out, or partitioned away).

    Distinct from :class:`CandidatesReceived` with an empty list — that
    is the manager *answering* "nothing available", which ends the
    round; an unreachable manager instead triggers the degraded
    fallback onto cached candidates and backups.
    """

    now: float
    reason: str = "unreachable"


@dataclass(slots=True)
class ProbesCompleted(ProtocolEvent):
    """The probe fan-out closed: every answering candidate's outcome.

    Dead candidates never answer and are simply absent.
    """

    now: float
    outcomes: Tuple["ProbeOutcome", ...]


@dataclass(slots=True)
class JoinResult(ProtocolEvent):
    """The ``Join()`` attempt came back (or the node was unreachable).

    ``attempted_at`` is when the join reached the node (= when the
    transport learned the result on both backends); ``node_alive`` is
    False when the node could not be reached at all — that case does
    not count as a node-side rejection.
    """

    now: float
    node_id: str
    accepted: bool
    attempted_at: float
    node_alive: bool = True


@dataclass(slots=True)
class EdgeFailed(ProtocolEvent):
    """A connection to ``node_id`` broke (failure detector / send error)."""

    now: float
    node_id: str


@dataclass(slots=True)
class FailoverResult(ProtocolEvent):
    """An ``Unexpected_join()`` to a backup returned.

    ``rtt_ms`` is the (driver-measured) round-trip the attachment will
    reuse for the standing connection.
    """

    now: float
    node_id: str
    accepted: bool
    rtt_ms: float = 0.0


# ----------------------------------------------------------------------
# Admission-machine inputs (edge-server role)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ProbeRequested(ProtocolEvent):
    """A ``Process_probe()`` arrived. ``recent_mean_ms`` is the node's
    measured recent mean sojourn (None when no recent traffic)."""

    now: float
    recent_mean_ms: Optional[float] = None


@dataclass(slots=True)
class JoinRequested(ProtocolEvent):
    """A ``Join()`` arrived echoing the caller's probed ``seq_num``."""

    now: float
    user_id: str
    seq_num: int
    fps: float


@dataclass(slots=True)
class UnexpectedJoinRequested(ProtocolEvent):
    """An ``Unexpected_join()`` (failover attach; cannot be rejected)."""

    now: float
    user_id: str
    fps: float


@dataclass(slots=True)
class LeaveRequested(ProtocolEvent):
    """A ``Leave()`` arrived."""

    now: float
    user_id: str


@dataclass(slots=True)
class TestWorkloadCompleted(ProtocolEvent):
    """The synthetic what-if frame finished with ``measured_ms`` sojourn."""

    now: float
    measured_ms: float
    slowdown_factor: float = 1.0


@dataclass(slots=True)
class MonitorSample(ProtocolEvent):
    """One performance-monitor tick: the recent measured sojourn (None
    when idle) and the node's idle-floor service time."""

    now: float
    measured_ms: Optional[float]
    idle_floor_ms: float


@dataclass(slots=True)
class NodeFailed(ProtocolEvent):
    """The node itself crashed / left without notification."""

    now: float


# ----------------------------------------------------------------------
# Global-selection-machine inputs (Central Manager role)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class HeartbeatReceived(ProtocolEvent):
    """A node status report arrived. ``stamp`` is the backend's expiry
    clock reading (sim: ``reported_at_ms``; live: ``time.monotonic()``)
    — the machine only ever compares stamps against each other."""

    stamp: float
    status: "NodeStatus"


@dataclass(slots=True)
class DiscoveryRequested(ProtocolEvent):
    """An edge-discovery query arrived. ``now`` stamps the reply
    (``generated_at_ms``); ``stamp`` drives expiry."""

    now: float
    stamp: float
    query: "DiscoveryQuery"


@dataclass(slots=True)
class PartialDiscoveryRequested(ProtocolEvent):
    """A shard-scoped discovery sub-query from the control-plane router.

    Unlike :class:`DiscoveryRequested`, the radius is pinned by the
    caller: the router owns the two-phase widening decision *globally*
    (it needs exact in-radius counts summed across shards before it can
    decide), so each shard machine answers one fixed-radius phase with
    its local count plus its local TopN.
    """

    now: float
    stamp: float
    query: "DiscoveryQuery"
    radius_km: float


@dataclass(slots=True)
class WrrAssignRequested(ProtocolEvent):
    """The resource-aware baseline asks for a smooth-WRR assignment."""

    stamp: float
    exclude: Tuple[str, ...] = ()


@dataclass(slots=True)
class PruneTick(ProtocolEvent):
    """Expire registry entries older than the heartbeat timeout."""

    stamp: float


@dataclass(slots=True)
class NodeForgotten(ProtocolEvent):
    """Administrative deregistration of one node."""

    node_id: str
