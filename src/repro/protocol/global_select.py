"""The Central Manager role as a sans-IO state machine.

Step 1 of the paper's 2-step approach: maintain the registry of alive
edge nodes from heartbeats, age out silent ones, and answer discovery
queries with the geo-filtered, availability-ranked TopN candidate list.
Also hosts the smooth-WRR assignment state the resource-aware baseline
needs (a manager-side policy by construction).

The machine owns the registry, the geohash spatial index, and the
expiry heap; drivers own transports (sim method calls vs. JSON-framed
TCP), address books, clocks and reputation wiring. Time enters only as
opaque ``stamp`` values that the machine compares against each other —
the sim backend passes simulated milliseconds, the live backend passes
``time.monotonic()`` seconds, and the machine cannot tell the
difference.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.geo.spatial_index import GeohashSpatialIndex
from repro.protocol.effects import (
    Effect,
    NodeExpired,
    NodeOnline,
    ReplyAssignment,
    ReplyCandidates,
    ReplyPartialCandidates,
)
from repro.protocol.events import (
    DiscoveryRequested,
    HeartbeatReceived,
    NodeForgotten,
    PartialDiscoveryRequested,
    ProtocolEvent,
    PruneTick,
    WrrAssignRequested,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.messages import NodeStatus
    from repro.core.policies.global_policies import GlobalSelectionPolicy

__all__ = ["GlobalSelectionMachine", "RegistrySnapshot"]


@dataclass(frozen=True)
class RegistrySnapshot:
    """A deduplicated serialization of one machine's registry state.

    Exactly one ``(status, stamp)`` pair per live node — never the raw
    expiry heap. The heap retains lazily-deleted tombstones for node
    ids that re-registered (every heartbeat pushes a new entry and the
    superseded ones are only discarded when popped), so serializing it
    verbatim would let a registry handoff carry stale ``(stamp, id)``
    entries to a machine whose ``_stamps`` dict was rebuilt from the
    same dump — the tombstone would then match the live stamp and a
    later heartbeat's reuse of the node id could expire (or worse,
    resurrect) the wrong incarnation. Restores rebuild a minimal heap
    from ``stamps`` instead.
    """

    statuses: Tuple["NodeStatus", ...]
    stamps: Dict[str, float]
    wrr_current: Dict[str, float]

    def __post_init__(self) -> None:
        ids = {s.node_id for s in self.statuses}
        if len(ids) != len(self.statuses) or ids != set(self.stamps):
            raise ValueError(
                "snapshot must carry exactly one status+stamp per node id"
            )


class GlobalSelectionMachine:
    """Sans-IO Central Manager: events in, effects out.

    Args:
        policy: the composed global selection policy (geo filter + sort
            key + optional node predicate); replaceable to restrict
            pools (e.g. dedicated-only scenarios).
        heartbeat_timeout: registry entries whose newest stamp is older
            than this (in the driver's stamp units) age out.
    """

    def __init__(
        self, policy: "GlobalSelectionPolicy", heartbeat_timeout: float
    ) -> None:
        self.policy = policy
        self.heartbeat_timeout = heartbeat_timeout
        self.registry: Dict[str, "NodeStatus"] = {}
        #: Geohash-bucketed spatial index over the registry, maintained
        #: incrementally on heartbeat/expiry so discovery never scans the
        #: full registry (the metro-scale fast path).
        self.spatial_index: GeohashSpatialIndex["NodeStatus"] = GeohashSpatialIndex()
        #: Min-heap of (stamp, node_id): the oldest heartbeat is always
        #: on top, so expiring stale nodes pops only actually-stale
        #: entries (amortized O(1) per query) instead of scanning all N.
        #: Entries superseded by fresher heartbeats are lazily discarded.
        self._expiry_heap: List[Tuple[float, str]] = []
        #: node_id -> newest heartbeat stamp (the lazy-deletion check).
        self._stamps: Dict[str, float] = {}
        # Smooth-WRR state for the resource-aware baseline.
        self._wrr_current: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def handle(self, event: ProtocolEvent) -> List[Effect]:
        """Advance the machine by one input event; return the effects."""
        if isinstance(event, HeartbeatReceived):
            return self._on_heartbeat(event)
        if isinstance(event, DiscoveryRequested):
            return self._on_discovery(event)
        if isinstance(event, PartialDiscoveryRequested):
            return self._on_partial_discovery(event)
        if isinstance(event, PruneTick):
            return self._prune(event.stamp)
        if isinstance(event, WrrAssignRequested):
            return self._on_wrr_assign(event)
        if isinstance(event, NodeForgotten):
            return self._on_forgotten(event)
        raise TypeError(
            f"GlobalSelectionMachine cannot handle {type(event).__name__}"
        )

    # ------------------------------------------------------------------
    # Registry maintenance
    # ------------------------------------------------------------------
    def _on_heartbeat(self, event: HeartbeatReceived) -> List[Effect]:
        node_id = event.status.node_id
        new = node_id not in self.registry
        self.registry[node_id] = event.status
        self.spatial_index.insert(event.status)
        self._stamps[node_id] = event.stamp
        heapq.heappush(self._expiry_heap, (event.stamp, node_id))
        return [NodeOnline(node_id, new=new)]

    def _prune(self, stamp: float) -> List[Effect]:
        """Expire registry entries older than the heartbeat timeout.

        A dead node silently ages out after the timeout, which is
        exactly the window in which discovery can still hand out a dead
        candidate (the client tolerates this: probes to it fail and it
        is skipped).
        """
        effects: List[Effect] = []
        heap = self._expiry_heap
        while heap and stamp - heap[0][0] > self.heartbeat_timeout:
            entry_stamp, node_id = heapq.heappop(heap)
            if (
                node_id not in self.registry
                or self._stamps.get(node_id) != entry_stamp
            ):
                continue  # superseded by a fresher heartbeat (or forgotten)
            self._drop(node_id)
            effects.append(NodeExpired(node_id))
        return effects

    def _drop(self, node_id: str) -> None:
        self.registry.pop(node_id, None)
        self.spatial_index.remove(node_id)
        self._stamps.pop(node_id, None)
        self._wrr_current.pop(node_id, None)

    def _on_forgotten(self, event: NodeForgotten) -> List[Effect]:
        """Administrative deregistration (no NodeExpired: it was asked
        for, not observed)."""
        self._drop(event.node_id)
        return []

    # ------------------------------------------------------------------
    # Edge discovery (global edge selection)
    # ------------------------------------------------------------------
    def _on_discovery(self, event: DiscoveryRequested) -> List[Effect]:
        """Answer a discovery query with the TopN candidate list.

        Stale entries are expired first (amortized O(1)), then
        selection runs against the spatial index — per-cell candidate
        lookups instead of a full-registry scan, so query cost scales
        with local density rather than metro population.
        """
        effects = self._prune(event.stamp)
        node_ids, widened = self.policy.select(event.query, index=self.spatial_index)
        effects.append(
            ReplyCandidates(
                node_ids=tuple(node_ids),
                widened=widened,
                generated_at_ms=event.now,
            )
        )
        return effects

    def _on_partial_discovery(
        self, event: PartialDiscoveryRequested
    ) -> List[Effect]:
        """Answer one fixed-radius phase of a cross-shard discovery.

        The control-plane router pins the radius and merges the per-shard
        counts/TopNs; this machine only ever sees its own shard's slice
        of the registry.
        """
        effects = self._prune(event.stamp)
        count, best = self.policy.select_partial(
            event.query, index=self.spatial_index, radius_km=event.radius_km
        )
        effects.append(
            ReplyPartialCandidates(
                count=count,
                statuses=tuple(best),
                radius_km=event.radius_km,
                generated_at_ms=event.now,
            )
        )
        return effects

    # ------------------------------------------------------------------
    # Replication / handoff support (control plane)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> RegistrySnapshot:
        """Serialize the registry for replication or shard handoff.

        Deduplicated by construction: one status and one newest stamp
        per node id (see :class:`RegistrySnapshot` for why the raw
        expiry heap — tombstones and all — must never travel).
        """
        return RegistrySnapshot(
            statuses=tuple(self.registry.values()),
            stamps=dict(self._stamps),
            wrr_current=dict(self._wrr_current),
        )

    def restore_state(self, snapshot: RegistrySnapshot) -> None:
        """Replace this machine's registry with a snapshot's contents.

        The expiry heap is rebuilt with exactly one entry per node, so a
        restored standby (or handoff target) can never expire a node off
        a tombstone left by an earlier incarnation of the same id.
        """
        self.registry.clear()
        self.spatial_index.clear()
        self._stamps.clear()
        self._wrr_current.clear()
        self._expiry_heap.clear()
        for status in snapshot.statuses:
            self.registry[status.node_id] = status
            self.spatial_index.insert(status)
        self._stamps.update(snapshot.stamps)
        self._wrr_current.update(snapshot.wrr_current)
        self._expiry_heap.extend(
            (stamp, node_id) for node_id, stamp in snapshot.stamps.items()
        )
        heapq.heapify(self._expiry_heap)

    # ------------------------------------------------------------------
    # Resource-aware weighted round robin (baseline support)
    # ------------------------------------------------------------------
    def _on_wrr_assign(self, event: WrrAssignRequested) -> List[Effect]:
        """Assign a user to a node by smooth weighted round robin.

        Weights are the availability scores from the latest heartbeats —
        "the weight applied for each edge node is determined by the
        resource availability and utilization" (§V-B). Smooth WRR
        (nginx-style) spreads assignments proportionally without bursts:
        each round every node gains its weight, the richest is picked
        and pays back the total weight.
        """
        effects = self._prune(event.stamp)
        statuses = [
            s
            for s in self.registry.values()
            if s.node_id not in event.exclude
        ]
        if self.policy.node_predicate is not None:
            statuses = [s for s in statuses if self.policy.node_predicate(s)]
        if not statuses:
            effects.append(ReplyAssignment(None))
            return effects
        total = 0.0
        weights: Dict[str, float] = {}
        for status in statuses:
            weight = max(status.availability_score, 0.01)
            weights[status.node_id] = weight
            total += weight
        best_id: Optional[str] = None
        best_value = float("-inf")
        for node_id, weight in weights.items():
            current = self._wrr_current.get(node_id, 0.0) + weight
            self._wrr_current[node_id] = current
            if current > best_value:
                best_value = current
                best_id = node_id
        assert best_id is not None
        self._wrr_current[best_id] -= total
        effects.append(ReplyAssignment(best_id))
        return effects

    def __repr__(self) -> str:
        return f"GlobalSelectionMachine(nodes={len(self.registry)})"
