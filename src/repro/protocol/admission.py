"""The edge-server admission role as a sans-IO state machine.

Everything Table I puts on the node side that is *decision*, not
measurement: seqNum join synchronization (Algorithm 1), the
unrejectable ``Unexpected_join`` failover attach, leave handling, and
the what-if cache rules — which triggers invalidate it (join / leave /
drift / idle win-back) and how a completed test workload updates it
(EWMA blend of the measured sojourn with an analytic projection of one
additional standard-rate user).

Drivers own the physics: running the synthetic frame through the real
queue, measuring sojourns, heartbeating, and the transport framing of
replies. Both backends — :class:`repro.core.edge_server.EdgeServer`
(simulated queue) and :class:`repro.runtime.edge_server.LiveEdgeServer`
(scaled real sleeps) — drive the same machine, so the cache semantics
are identical by construction (the live runtime previously skipped the
EWMA smoothing; it no longer can).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.obs.events import CacheHit, CacheMiss
from repro.protocol.effects import (
    Effect,
    EmitTrace,
    ReplyJoin,
    ReplyProbe,
    ScheduleTestWorkload,
)
from repro.protocol.events import (
    JoinRequested,
    LeaveRequested,
    MonitorSample,
    NodeFailed,
    ProbeRequested,
    ProtocolEvent,
    TestWorkloadCompleted,
    UnexpectedJoinRequested,
)

__all__ = ["AdmissionConfig", "AdmissionMachine"]

#: Analytic sojourn projection: ``(offered_fps, slowdown_factor) -> ms``.
#: Injected by the driver (it closes over the hardware profile) so the
#: machine stays free of queueing-model imports.
SojournProjection = Callable[[float, float], float]


def _never() -> bool:
    return False


@dataclass(frozen=True)
class AdmissionConfig:
    """Protocol constants for one admission machine."""

    join_synchronization: bool = True
    perf_monitor_threshold: float = 0.4
    #: EWMA blend factor for successive what-if cache values: a single
    #: synthetic frame that landed behind a transient burst would
    #: otherwise make the node look terrible for a whole refresh cycle,
    #: stampeding its users away and oscillating the population.
    ewma_alpha: float = 0.6
    #: Idle win-back trigger: refresh when the cached what-if still
    #: reads more than this multiple of the idle-floor service time on
    #: a node with no attached users.
    idle_refresh_factor: float = 1.5
    #: The application's standard per-user rate, used to project the
    #: "one more user joins" scenario from demand.
    standard_fps: float = 20.0


class AdmissionMachine:
    """Sans-IO edge-server admission: events in, effects out.

    Args:
        node_id: this node's id (stamped into trace events).
        config: protocol constants.
        initial_ms: cache prime value (the profile's base frame time).
        project: analytic sojourn projection (see
            :data:`SojournProjection`).
        detail_guard: gates detail trace events (``CacheHit``/
            ``CacheMiss``), mirroring the drivers' ``tracer.enabled``.
    """

    def __init__(
        self,
        node_id: str,
        config: AdmissionConfig,
        *,
        initial_ms: float,
        project: SojournProjection,
        detail_guard: Callable[[], bool] = _never,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.project = project
        self.alive = True
        self.seq_num = 0
        #: user_id -> declared offloading fps (informational)
        self.attached: Dict[str, float] = {}
        #: cached "what-if" processing delay served to probes
        self.what_if_ms = initial_ms
        #: cached stay-projection for already-attached users
        self.stay_ms = initial_ms
        #: measured processing level at the last test-workload run —
        #: the performance monitor's drift baseline
        self.monitor_baseline_ms = initial_ms
        self._detail_guard = detail_guard

    # ------------------------------------------------------------------
    def handle(self, event: ProtocolEvent) -> List[Effect]:
        """Advance the machine by one input event; return the effects."""
        if isinstance(event, ProbeRequested):
            return self._on_probe(event)
        if isinstance(event, JoinRequested):
            return self._on_join(event)
        if isinstance(event, UnexpectedJoinRequested):
            return self._on_unexpected_join(event)
        if isinstance(event, LeaveRequested):
            return self._on_leave(event)
        if isinstance(event, TestWorkloadCompleted):
            return self._on_test_completed(event)
        if isinstance(event, MonitorSample):
            return self._on_monitor_sample(event)
        if isinstance(event, NodeFailed):
            return self._on_node_failed(event)
        raise TypeError(f"AdmissionMachine cannot handle {type(event).__name__}")

    # ------------------------------------------------------------------
    # Table I APIs
    # ------------------------------------------------------------------
    def _on_probe(self, event: ProbeRequested) -> List[Effect]:
        """``Process_probe()``: a cache read only — "a large number of
        probing requests do not necessarily lead to more test workload
        invocations". No reply effect when dead: the probe times out."""
        if not self.alive:
            return []
        effects: List[Effect] = []
        if self._detail_guard():
            effects.append(
                EmitTrace(CacheHit(event.now, self.node_id, self.what_if_ms))
            )
        effects.append(
            ReplyProbe(
                what_if_ms=self.what_if_ms,
                seq_num=self.seq_num,
                attached_users=len(self.attached),
                current_proc_ms=(
                    event.recent_mean_ms
                    if event.recent_mean_ms is not None
                    else self.what_if_ms
                ),
                stay_ms=self.stay_ms,
            )
        )
        return effects

    def _on_join(self, event: JoinRequested) -> List[Effect]:
        """``Join()`` with seqNum synchronization (Algorithm 1).

        Accepted only if the node state has not changed since the
        caller's probe. Acceptance is itself a state change: the seqNum
        increments and a *delayed* test-workload run is requested so the
        measurement sees the new user's frames already flowing.
        """
        if not self.alive or (
            self.config.join_synchronization and event.seq_num != self.seq_num
        ):
            return [ReplyJoin(accepted=False, seq_num=self.seq_num)]
        self.seq_num += 1
        self.attached[event.user_id] = event.fps
        effects = self._stale(event.now, "join")
        effects.append(ScheduleTestWorkload("join", delayed=True))
        effects.append(ReplyJoin(accepted=True, seq_num=self.seq_num))
        return effects

    def _on_unexpected_join(self, event: UnexpectedJoinRequested) -> List[Effect]:
        """``Unexpected_join()``: failover attach that cannot be
        rejected — refused only when this node is itself dead."""
        if not self.alive:
            return [ReplyJoin(accepted=False, seq_num=self.seq_num)]
        self.seq_num += 1
        self.attached[event.user_id] = event.fps
        effects = self._stale(event.now, "join")
        effects.append(ScheduleTestWorkload("join", delayed=False))
        effects.append(ReplyJoin(accepted=True, seq_num=self.seq_num))
        return effects

    def _on_leave(self, event: LeaveRequested) -> List[Effect]:
        """``Leave()``: workload decrease — trigger type 2."""
        if not self.alive or event.user_id not in self.attached:
            return []
        del self.attached[event.user_id]
        self.seq_num += 1
        effects = self._stale(event.now, "leave")
        effects.append(ScheduleTestWorkload("leave", delayed=False))
        return effects

    # ------------------------------------------------------------------
    # What-if cache
    # ------------------------------------------------------------------
    def _stale(self, now: float, reason: str) -> List[Effect]:
        if self._detail_guard():
            return [EmitTrace(CacheMiss(now, self.node_id, reason))]
        return []

    def _on_test_completed(self, event: TestWorkloadCompleted) -> List[Effect]:
        """Fold a finished test workload into the cache.

        The cached what-if is the **max** of the measured synthetic
        sojourn and an analytic steady-state projection fed with the
        node's *demand* — every attached user plus one newcomer at the
        application's standard rate. The instantaneous arrival rate is
        useless here: adaptive clients throttle exactly when the node
        is overloaded, so a rate-based estimate reads low at the worst
        moment (and a lull makes the measured sojourn read near-idle on
        a saturated node). Successive values are EWMA-blended. See
        DESIGN.md §5.
        """
        if not self.alive:
            return []
        measured = event.measured_ms
        n_attached = len(self.attached)
        fps = self.config.standard_fps
        alpha = self.config.ewma_alpha
        projected = self.project((n_attached + 1) * fps, event.slowdown_factor)
        self.what_if_ms = (
            alpha * max(measured, projected) + (1.0 - alpha) * self.what_if_ms
        )
        stay_projected = self.project(
            max(n_attached, 1) * fps, event.slowdown_factor
        )
        self.stay_ms = (
            alpha * max(measured, stay_projected) + (1.0 - alpha) * self.stay_ms
        )
        self.monitor_baseline_ms = measured
        return []

    def _on_monitor_sample(self, event: MonitorSample) -> List[Effect]:
        """Trigger type 3: noticeable processing-time drift at constant
        users — plus the idle win-back refresh."""
        if not self.alive:
            return []
        if event.measured_ms is None:
            # No recent user traffic. If the cached what-if still says
            # "loaded" (left over from departed users), refresh it so an
            # idle node can win users back.
            if (
                self.what_if_ms
                > self.config.idle_refresh_factor * event.idle_floor_ms
                and not self.attached
            ):
                self.seq_num += 1
                effects = self._stale(event.now, "idle")
                effects.append(ScheduleTestWorkload("idle", delayed=False))
                return effects
            return []
        baseline = self.monitor_baseline_ms
        if baseline <= 0:
            return []
        drift = abs(event.measured_ms - baseline) / baseline
        if drift > self.config.perf_monitor_threshold:
            self.seq_num += 1
            effects = self._stale(event.now, "drift")
            effects.append(ScheduleTestWorkload("drift", delayed=False))
            return effects
        return []

    def _on_node_failed(self, event: NodeFailed) -> List[Effect]:
        """The node crashed: all attached users lose their frames;
        clients find out through their own failure detection, not us."""
        self.alive = False
        self.attached.clear()
        return []

    def __repr__(self) -> str:
        return (
            f"AdmissionMachine({self.node_id}, alive={self.alive}, "
            f"users={len(self.attached)}, seq={self.seq_num})"
        )
