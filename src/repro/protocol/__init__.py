"""The sans-IO protocol core: the paper's algorithms, backend-free.

The 2-step distributed edge selection protocol (global candidate list →
local probe/rank/join with backups and instant failover) is implemented
**once**, as three pure state machines — one per protocol role:

- :class:`~repro.protocol.selection.SelectionMachine` — the client
  selection round (Algorithm 2) and the failover walk (§IV-E);
- :class:`~repro.protocol.admission.AdmissionMachine` — the edge
  server's seqNum join synchronization (Algorithm 1) and the what-if
  cache invalidation/update rules (§IV-C2);
- :class:`~repro.protocol.global_select.GlobalSelectionMachine` — the
  Central Manager's registry, expiry and TopN candidate ranking
  (§IV-B).

Each machine consumes typed :mod:`~repro.protocol.events` (every event
carries an explicit ``now``) and returns typed
:mod:`~repro.protocol.effects`; it has zero knowledge of clocks,
sockets, or the simulator kernel. The discrete-event backend
(``repro.core``) and the live asyncio backend (``repro.runtime``) are
thin drivers: they translate kernel callbacks / awaited messages into
input events and execute the returned effects in order.

This package is fully typed (checked with ``mypy --strict`` in CI) and
imports nothing from ``repro.core`` at runtime, so either backend can
import it freely. See DESIGN.md §8 for the event/effect tables and a
sequence diagram of one selection round.
"""

from repro.protocol.effects import (
    Attached,
    Effect,
    EmitTrace,
    FlushBacklog,
    NodeExpired,
    NodeOnline,
    ProbeCandidates,
    ReplyAssignment,
    ReplyCandidates,
    ReplyJoin,
    ReplyProbe,
    ScheduleTestWorkload,
    SendDiscovery,
    SendFailoverJoin,
    SendJoin,
    SendLeave,
    StartTimer,
    UpdateBackups,
)
from repro.protocol.events import (
    CandidatesReceived,
    DiscoveryRequested,
    EdgeFailed,
    FailoverResult,
    HeartbeatReceived,
    JoinRequested,
    JoinResult,
    LeaveRequested,
    MonitorSample,
    NodeFailed,
    NodeForgotten,
    ProbeRequested,
    ProbesCompleted,
    ProtocolEvent,
    PruneTick,
    RoundStarted,
    TestWorkloadCompleted,
    UnexpectedJoinRequested,
    WrrAssignRequested,
)
from repro.protocol.failure_monitor import FailureMonitor
from repro.protocol.selection import (
    LocalRanking,
    SelectionConfig,
    SelectionMachine,
)
from repro.protocol.admission import AdmissionConfig, AdmissionMachine
from repro.protocol.global_select import GlobalSelectionMachine

__all__ = [
    # machines
    "SelectionMachine",
    "SelectionConfig",
    "LocalRanking",
    "AdmissionMachine",
    "AdmissionConfig",
    "GlobalSelectionMachine",
    "FailureMonitor",
    # events
    "ProtocolEvent",
    "RoundStarted",
    "CandidatesReceived",
    "ProbesCompleted",
    "JoinResult",
    "EdgeFailed",
    "FailoverResult",
    "ProbeRequested",
    "JoinRequested",
    "UnexpectedJoinRequested",
    "LeaveRequested",
    "TestWorkloadCompleted",
    "MonitorSample",
    "NodeFailed",
    "HeartbeatReceived",
    "DiscoveryRequested",
    "WrrAssignRequested",
    "PruneTick",
    "NodeForgotten",
    # effects
    "Effect",
    "EmitTrace",
    "SendDiscovery",
    "ProbeCandidates",
    "SendJoin",
    "SendLeave",
    "SendFailoverJoin",
    "Attached",
    "UpdateBackups",
    "FlushBacklog",
    "StartTimer",
    "ReplyProbe",
    "ReplyJoin",
    "ScheduleTestWorkload",
    "ReplyCandidates",
    "ReplyAssignment",
    "NodeOnline",
    "NodeExpired",
]
