"""The tracer: subscriber fan-out + bounded ring buffer + optional sink.

A :class:`Tracer` has two layers with different cost models:

- **Reduction (always on).** Subscribers — notably
  :meth:`repro.metrics.collector.MetricsCollector.on_event` — receive
  every emitted event. This is the redesigned metrics-reporting path:
  components emit events; reducers fold them into whatever aggregate
  they maintain. It runs even when capture is disabled, so metrics work
  identically whether or not anyone is tracing.
- **Capture (gated by ``enabled``).** The bounded ring buffer and the
  optional sink record the events themselves. Emission sites guard
  *detail* events (phase spans, probe answers, cache hits...) with
  ``if tracer.enabled:`` so a disabled tracer costs one truthiness
  check and constructs nothing — the near-zero-when-disabled argument
  quantified by ``benchmarks/perf/bench_trace_overhead.py``.

Timestamps: simulated components stamp events with ``sim.now``; live
components call :meth:`Tracer.now`, wall-clock milliseconds since the
tracer's epoch, so both backends produce small monotonically increasing
``t_ms`` values with one schema.
"""

from __future__ import annotations

import json
import time
from collections import deque
from io import TextIOWrapper
from pathlib import Path
from typing import Callable, Deque, List, Optional, Union

from repro.obs.events import TraceEvent

__all__ = ["Tracer", "JsonlSink", "ListSink", "NullSink", "as_sink"]


class JsonlSink:
    """Append events to a JSONL file, one wire object per line.

    The file is opened lazily on the first write and buffered; call
    :meth:`close` (or use the tracer's :meth:`Tracer.close`) to flush.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[TextIOWrapper] = None
        self.events_written = 0

    def write(self, event: TraceEvent) -> None:
        if self._fh is None:
            self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps(event.to_dict()) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        return f"JsonlSink({self.path}, written={self.events_written})"


class ListSink:
    """Collect events into a plain list (tests, programmatic analysis)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def write(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class NullSink:
    """Swallow events; exists to measure pure sink-dispatch overhead."""

    events_written = 0

    def write(self, event: TraceEvent) -> None:
        self.events_written += 1

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


def as_sink(sink: Union[None, str, Path, JsonlSink, ListSink, NullSink]):
    """Coerce a path-like into a :class:`JsonlSink`; pass sinks through."""
    if sink is None or hasattr(sink, "write"):
        return sink
    return JsonlSink(sink)  # type: ignore[arg-type]


class Tracer:
    """Typed trace-event bus shared by one running system.

    Args:
        enabled: capture events into the ring buffer / sink. Subscribers
            are notified regardless (see module docstring).
        capacity: ring-buffer bound; the oldest events fall off first,
            so a long-running system never grows without bound while the
            sink (if any) still sees everything.
        sink: optional sink object (``write(event)``/``close()``) or a
            path, coerced to a :class:`JsonlSink`.
    """

    __slots__ = ("enabled", "_ring", "_sink", "_subscribers", "_epoch", "profiler")

    def __init__(
        self,
        *,
        enabled: bool = True,
        capacity: int = 65536,
        sink: Union[None, str, Path, JsonlSink, ListSink, NullSink] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.enabled = enabled
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self._sink = as_sink(sink)
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self._epoch = time.monotonic()
        #: Optional :class:`~repro.obs.profile.KernelProfiler` installed
        #: on the simulator by ``ScenarioBuilder.observe(profile_kernel=
        #: True)``; carried here so analyzers find it next to the trace.
        self.profiler = None

    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        """Truthiness == capture enabled, so emission sites can guard
        detail events with a bare ``if tracer:``."""
        return self.enabled

    def now(self) -> float:
        """Wall-clock ms since this tracer's creation (live runtime)."""
        return (time.monotonic() - self._epoch) * 1000.0

    # ------------------------------------------------------------------
    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        """Register an always-on reducer; called once per emitted event."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        self._subscribers.remove(fn)

    def emit(self, event: TraceEvent) -> None:
        """Publish one event: reducers always, capture when enabled."""
        for fn in self._subscribers:
            fn(event)
        if not self.enabled:
            return
        self._ring.append(event)
        if self._sink is not None:
            self._sink.write(event)

    # ------------------------------------------------------------------
    def events(self, *types: str) -> List[TraceEvent]:
        """Captured events, optionally filtered to the given type tags."""
        if not types:
            return list(self._ring)
        wanted = set(types)
        return [e for e in self._ring if e.type in wanted]

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    @property
    def sink(self):
        return self._sink

    def attach_sink(
        self, sink: Union[str, Path, JsonlSink, ListSink, NullSink]
    ) -> None:
        """Install (or replace) the sink; an existing one is closed."""
        if self._sink is not None:
            self._sink.close()
        self._sink = as_sink(sink)

    def close(self) -> None:
        """Flush and close the sink (the tracer itself stays usable)."""
        if self._sink is not None:
            self._sink.close()

    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Tracer":
        """A capture-disabled tracer (reduction still runs) — the
        default every :class:`~repro.core.system.EdgeSystem` gets."""
        return cls(enabled=False, capacity=1)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"Tracer({state}, captured={len(self._ring)}, "
            f"subscribers={len(self._subscribers)}, sink={self._sink!r})"
        )
