"""Event-loop profiling for the simulator kernel.

A :class:`KernelProfiler` installed on
:attr:`repro.sim.kernel.Simulator.profiler` measures every dispatched
event: wall-clock handler time and the queue depth left behind. Samples
aggregate per handler *kind* — the suffix of the event label after the
last dot (``"u0042.probe"`` → ``"probe"``) — so the table stays bounded
regardless of population size. When no profiler is installed the kernel
pays a single ``is None`` check per event.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["KernelProfiler"]


class _Agg:
    __slots__ = ("count", "total_ms", "max_ms")

    def __init__(self) -> None:
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0


class KernelProfiler:
    """Per-handler-kind aggregation of simulator dispatch costs."""

    __slots__ = ("_by_kind", "samples", "queue_depth_sum", "queue_depth_max")

    def __init__(self) -> None:
        self._by_kind: Dict[str, _Agg] = {}
        self.samples = 0
        self.queue_depth_sum = 0
        self.queue_depth_max = 0

    def record(self, label: str, duration_ms: float, queue_depth: int) -> None:
        """Called by the kernel after each dispatched event."""
        kind = label.rpartition(".")[2] if label else "(unlabeled)"
        agg = self._by_kind.get(kind)
        if agg is None:
            agg = self._by_kind[kind] = _Agg()
        agg.count += 1
        agg.total_ms += duration_ms
        if duration_ms > agg.max_ms:
            agg.max_ms = duration_ms
        self.samples += 1
        self.queue_depth_sum += queue_depth
        if queue_depth > self.queue_depth_max:
            self.queue_depth_max = queue_depth

    # ------------------------------------------------------------------
    @property
    def mean_queue_depth(self) -> float:
        return self.queue_depth_sum / self.samples if self.samples else 0.0

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Aggregates per handler kind, heaviest total first."""
        return {
            kind: {
                "count": agg.count,
                "total_ms": agg.total_ms,
                "mean_us": agg.total_ms / agg.count * 1000.0,
                "max_ms": agg.max_ms,
            }
            for kind, agg in sorted(
                self._by_kind.items(), key=lambda kv: -kv[1].total_ms
            )
        }

    def rows(self) -> List[List[object]]:
        """Table rows for :func:`repro.metrics.report.format_table`."""
        return [
            [kind, s["count"], round(s["total_ms"], 3), round(s["mean_us"], 2),
             round(s["max_ms"], 3)]
            for kind, s in self.snapshot().items()
        ]

    def __repr__(self) -> str:
        return (
            f"KernelProfiler(samples={self.samples}, "
            f"kinds={len(self._by_kind)}, "
            f"mean_queue_depth={self.mean_queue_depth:.1f})"
        )
