"""Trace reductions: timelines, phase breakdowns, failover gaps.

:class:`TraceAnalyzer` consumes a sequence of trace events — live
:class:`~repro.obs.events.TraceEvent` objects from a tracer's ring
buffer or plain dicts loaded from a JSONL sink — and produces the
latency-accounting views the paper's evaluation is built on:

- **per-user timelines** — the ordered discovery → probe → join →
  serve → failover story of a single user;
- **latency-phase breakdowns** — how much of each user's end-to-end
  latency was network RTT vs. queueing vs. processing, with a
  reconciliation check that the three phases sum to the recorded
  frame latency (float tolerance);
- **failover-gap histograms** — the time between a node failure and
  the affected user serving frames again.

:func:`validate_event_order` is the schema sanity-checker shared by the
golden tests: joins before serving, failovers only after failures,
answers only after questions.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.events import PHASES, TraceEvent

__all__ = [
    "TraceAnalyzer",
    "PhaseBreakdown",
    "load_trace",
    "validate_event_order",
]

EventLike = Union[TraceEvent, Dict[str, Any]]


def _as_dict(event: EventLike) -> Dict[str, Any]:
    return event.to_dict() if isinstance(event, TraceEvent) else dict(event)


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSONL trace file into wire-format dicts (skipping blanks)."""
    events: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class PhaseBreakdown:
    """Latency accounting for one user (or an aggregate)."""

    frames: int = 0
    lost: int = 0
    rtt_ms: float = 0.0
    queue_ms: float = 0.0
    process_ms: float = 0.0
    latency_ms: float = 0.0

    @property
    def phase_sum_ms(self) -> float:
        return self.rtt_ms + self.queue_ms + self.process_ms

    def mean(self, total: float) -> float:
        return total / self.frames if self.frames else 0.0

    def row(self, label: str) -> List[object]:
        """One table row: label, frames, lost, mean phase times, share."""
        mean_latency = self.mean(self.latency_ms)
        return [
            label,
            self.frames,
            self.lost,
            f"{self.mean(self.rtt_ms):.1f}",
            f"{self.mean(self.queue_ms):.1f}",
            f"{self.mean(self.process_ms):.1f}",
            f"{mean_latency:.1f}",
        ]


class TraceAnalyzer:
    """Reduce a trace (events or JSONL dicts) into evaluation views."""

    def __init__(self, events: Iterable[EventLike]) -> None:
        self.events: List[Dict[str, Any]] = [_as_dict(e) for e in events]

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def event_type_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = defaultdict(int)
        for event in self.events:
            counts[event["type"]] += 1
        return dict(sorted(counts.items()))

    def users(self) -> List[str]:
        seen = {e["user_id"] for e in self.events if "user_id" in e}
        return sorted(seen)

    # ------------------------------------------------------------------
    # Per-user timeline
    # ------------------------------------------------------------------
    def per_user_timeline(
        self, user_id: str, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """All events mentioning ``user_id``, in emission order.

        Node-scoped events (``node_fail``) are included when the node is
        one the user interacted with, so a timeline shows the failure
        that explains the failover right after it.
        """
        interacted = {
            e.get("node_id")
            for e in self.events
            if e.get("user_id") == user_id and e.get("node_id")
        }
        timeline = [
            e
            for e in self.events
            if e.get("user_id") == user_id
            or (e["type"] == "node_fail" and e.get("node_id") in interacted)
        ]
        return timeline[:limit] if limit is not None else timeline

    # ------------------------------------------------------------------
    # Latency-phase breakdown
    # ------------------------------------------------------------------
    def phase_breakdown(self) -> Dict[str, PhaseBreakdown]:
        """Per-user phase totals over completed frames."""
        result: Dict[str, PhaseBreakdown] = defaultdict(PhaseBreakdown)
        for event in self.events:
            kind = event["type"]
            if kind == "phase_span":
                entry = result[event["user_id"]]
                phase = event["phase"]
                if phase == "rtt":
                    entry.rtt_ms += event["duration_ms"]
                elif phase == "queue":
                    entry.queue_ms += event["duration_ms"]
                elif phase == "process":
                    entry.process_ms += event["duration_ms"]
            elif kind == "frame_done":
                entry = result[event["user_id"]]
                if event.get("latency_ms") is None:
                    entry.lost += 1
                else:
                    entry.frames += 1
                    entry.latency_ms += event["latency_ms"]
        return dict(sorted(result.items()))

    def total_breakdown(self) -> PhaseBreakdown:
        total = PhaseBreakdown()
        for entry in self.phase_breakdown().values():
            total.frames += entry.frames
            total.lost += entry.lost
            total.rtt_ms += entry.rtt_ms
            total.queue_ms += entry.queue_ms
            total.process_ms += entry.process_ms
            total.latency_ms += entry.latency_ms
        return total

    def reconciliation_errors(self, tolerance_ms: float = 1e-6) -> List[str]:
        """Frames whose phase spans do not sum to the recorded latency.

        The emission sites construct phases so the identity is exact up
        to float association; anything beyond ``tolerance_ms`` means an
        instrumentation bug, and the returned strings say which frame.
        """
        spans: Dict[Any, float] = defaultdict(float)
        span_phases: Dict[Any, set] = defaultdict(set)
        for event in self.events:
            if event["type"] == "phase_span":
                key = (event["user_id"], event["frame_id"])
                spans[key] += event["duration_ms"]
                span_phases[key].add(event["phase"])
        errors: List[str] = []
        for event in self.events:
            if event["type"] != "frame_done" or event.get("latency_ms") is None:
                continue
            key = (event["user_id"], event["frame_id"])
            if key not in spans:
                continue  # detail capture may have started mid-run
            if span_phases[key] != set(PHASES):
                errors.append(f"frame {key}: phases {sorted(span_phases[key])}")
                continue
            delta = abs(spans[key] - event["latency_ms"])
            if delta > tolerance_ms:
                errors.append(
                    f"frame {key}: phases sum {spans[key]:.6f} != "
                    f"latency {event['latency_ms']:.6f} (delta {delta:.6f})"
                )
        return errors

    # ------------------------------------------------------------------
    # Failover gaps
    # ------------------------------------------------------------------
    def failover_gaps(self) -> List[Tuple[str, float]]:
        """``(user_id, gap_ms)`` per recovery: node failure → re-serve.

        For a covered failover the gap ends at the backup attach; for an
        uncovered failure it ends at the next join accept (full
        re-discovery). Failures with no preceding ``node_fail`` (e.g. a
        trace that started mid-run) are skipped.
        """
        gaps: List[Tuple[str, float]] = []
        last_fail_ms: Optional[float] = None
        pending_uncovered: Dict[str, float] = {}
        for event in self.events:
            kind = event["type"]
            if kind == "node_fail":
                last_fail_ms = event["t_ms"]
            elif kind == "covered_failover" and last_fail_ms is not None:
                gaps.append((event["user_id"], event["t_ms"] - last_fail_ms))
            elif kind == "uncovered_failure" and last_fail_ms is not None:
                pending_uncovered[event["user_id"]] = last_fail_ms
            elif kind == "join_accept":
                start = pending_uncovered.pop(event["user_id"], None)
                if start is not None:
                    gaps.append((event["user_id"], event["t_ms"] - start))
        return gaps

    def policy_decisions(self) -> List[Dict[str, Any]]:
        """All ``policy_decision`` events (per-candidate scored rankings)."""
        return [e for e in self.events if e["type"] == "policy_decision"]

    def policy_decision_summary(self) -> Dict[str, Dict[str, float]]:
        """Per winning node: how often the policy ranked it first, and by
        how much.

        Returns ``{node_id: {"wins", "mean_margin_ms"}}`` where the
        margin is the runner-up's score minus the winner's — small
        margins mean contested decisions, large ones a clear favourite.
        Decisions with a single candidate count as wins with margin 0.
        """
        margins: Dict[str, List[float]] = defaultdict(list)
        for event in self.policy_decisions():
            ranked = event.get("ranked") or ()
            if not ranked:
                continue
            scores = event.get("scores") or ()
            margin = scores[1] - scores[0] if len(scores) >= 2 else 0.0
            margins[ranked[0]].append(margin)
        return {
            node: {
                "wins": float(len(values)),
                "mean_margin_ms": sum(values) / len(values),
            }
            for node, values in sorted(margins.items())
        }

    def failover_gap_histogram(
        self, bin_ms: float = 100.0
    ) -> List[Tuple[float, int]]:
        """Histogram of recovery gaps: ``(bin_start_ms, count)`` rows."""
        if bin_ms <= 0:
            raise ValueError(f"bin_ms must be positive: {bin_ms}")
        counts: Dict[float, int] = defaultdict(int)
        for _, gap in self.failover_gaps():
            counts[(gap // bin_ms) * bin_ms] += 1
        return sorted(counts.items())


# ----------------------------------------------------------------------
# Order validation (golden-schema tests)
# ----------------------------------------------------------------------
def validate_event_order(events: Iterable[EventLike]) -> List[str]:
    """Check lifecycle causality over a trace; return violations.

    Rules (each per user unless noted):

    - a completed ``frame_done`` only after a ``join_accept`` or
      ``covered_failover`` (you cannot be served before attaching);
    - ``covered_failover``/``uncovered_failure`` only after some
      ``node_fail`` (global);
    - ``discovery_returned`` never outnumbers ``discovery_issued``;
    - ``probe_answered`` never outnumbers ``probe_sent`` per (user,
      node) pair;
    - ``join_accept``/``join_reject`` never outnumber ``join_attempt``;
    - ``phase_span``/``frame_done`` only after that frame's
      ``frame_start`` (when frame starts are present at all).
    """
    violations: List[str] = []
    attached: set = set()
    any_node_fail = False
    discoveries: Dict[str, int] = defaultdict(int)
    probes: Dict[Tuple[str, str], int] = defaultdict(int)
    join_attempts: Dict[str, int] = defaultdict(int)
    frames_started: set = set()
    saw_frame_start = False

    for index, raw in enumerate(events):
        event = _as_dict(raw)
        kind = event["type"]
        user = event.get("user_id")
        if kind == "discovery_issued":
            discoveries[user] += 1
        elif kind == "discovery_returned":
            discoveries[user] -= 1
            if discoveries[user] < 0:
                violations.append(
                    f"[{index}] discovery_returned without issue for {user}"
                )
        elif kind == "probe_sent":
            probes[(user, event["node_id"])] += 1
        elif kind == "probe_answered":
            key = (user, event["node_id"])
            probes[key] -= 1
            if probes[key] < 0:
                violations.append(f"[{index}] probe_answered without send {key}")
        elif kind == "join_attempt":
            join_attempts[user] += 1
        elif kind in ("join_accept", "join_reject"):
            join_attempts[user] -= 1
            if join_attempts[user] < 0:
                violations.append(f"[{index}] {kind} without join_attempt ({user})")
            if kind == "join_accept":
                attached.add(user)
        elif kind == "node_fail":
            any_node_fail = True
        elif kind == "covered_failover":
            if not any_node_fail:
                violations.append(f"[{index}] covered_failover before any node_fail")
            attached.add(user)
        elif kind == "uncovered_failure":
            if not any_node_fail:
                violations.append(f"[{index}] uncovered_failure before any node_fail")
        elif kind == "frame_start":
            saw_frame_start = True
            frames_started.add((user, event["frame_id"]))
        elif kind == "phase_span":
            if saw_frame_start and (user, event["frame_id"]) not in frames_started:
                violations.append(
                    f"[{index}] phase_span before frame_start "
                    f"({user}, {event['frame_id']})"
                )
        elif kind == "frame_done":
            if event.get("latency_ms") is not None and user not in attached:
                violations.append(
                    f"[{index}] completed frame_done before any attach ({user})"
                )
            if saw_frame_start and (user, event["frame_id"]) not in frames_started:
                # lost frames may legitimately never have started (e.g.
                # dropped from a stale backlog while unattached)
                if event.get("latency_ms") is not None:
                    violations.append(
                        f"[{index}] frame_done before frame_start "
                        f"({user}, {event['frame_id']})"
                    )
    return violations
