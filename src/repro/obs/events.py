"""The typed trace-event catalog.

One event class per observable step of the paper's lifecycle. Both
execution backends emit the same types with the same fields; only the
meaning of ``t_ms`` differs (simulation time vs. wall-clock milliseconds
since the tracer's epoch). Events are deliberately plain mutable
dataclasses — they are constructed on hot paths (every offloaded frame
emits one ``FrameDone``), and a frozen dataclass pays an
``object.__setattr__`` per field.

Wire schema: :meth:`TraceEvent.to_dict` flattens an event to a JSON
object ``{"type": <type tag>, "t_ms": ..., <fields>}``;
:func:`event_from_dict` is the inverse. The JSONL sink writes one such
object per line, which is what ``repro trace --summary`` and the
golden-schema tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple, Type

__all__ = [
    "TraceEvent",
    "DiscoveryIssued",
    "DiscoveryReturned",
    "ProbeSent",
    "ProbeAnswered",
    "JoinAttempt",
    "JoinAccept",
    "JoinReject",
    "PolicyDecision",
    "Switch",
    "FrameStart",
    "PhaseSpan",
    "FrameDone",
    "NodeFail",
    "CoveredFailover",
    "UncoveredFailure",
    "TestWorkloadInvoked",
    "CacheHit",
    "CacheMiss",
    "HeartbeatMissed",
    "PopulationChanged",
    "FaultInjected",
    "NodeRestart",
    "BreakerTransition",
    "RetryScheduled",
    "DegradedFallback",
    "AttachmentExpired",
    "SweepRunStarted",
    "SweepRunFinished",
    "SweepRunRetried",
    "SweepRunSkipped",
    "WorkerSpawn",
    "WorkerDead",
    "RunRequeued",
    "ShardHandoff",
    "ShardRoute",
    "ShardMerge",
    "ManagerPromote",
    "RegistryHandoff",
    "HuntAttempt",
    "ShrinkStep",
    "EVENT_TYPES",
    "GOLDEN_LIFECYCLE_TYPES",
    "PHASES",
    "event_from_dict",
]

#: The three latency phases a completed frame decomposes into. Their
#: spans sum exactly to the frame's end-to-end latency (the
#: reconciliation invariant the analyzer and the tests check).
PHASES = ("rtt", "queue", "process")


@dataclass
class TraceEvent:
    """Base of every trace event: a type tag plus a timestamp.

    ``t_ms`` is simulation time for the sim backend and wall-clock
    milliseconds since the tracer's epoch for the live runtime — the
    schema is identical either way.
    """

    type: ClassVar[str] = "trace"
    t_ms: float

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to the JSONL wire object (tuples become lists)."""
        out: Dict[str, Any] = {"type": self.type}
        for key, value in self.__dict__.items():
            out[key] = list(value) if isinstance(value, tuple) else value
        return out


# ----------------------------------------------------------------------
# Discovery (client <-> Central Manager)
# ----------------------------------------------------------------------
@dataclass
class DiscoveryIssued(TraceEvent):
    """A user sent an edge-discovery query to the Central Manager."""

    type: ClassVar[str] = "discovery_issued"
    user_id: str


@dataclass
class DiscoveryReturned(TraceEvent):
    """The candidate list came back (with the TopN ids and whether the
    search radius was widened)."""

    type: ClassVar[str] = "discovery_returned"
    user_id: str
    candidates: Tuple[str, ...]
    widened: bool = False


# ----------------------------------------------------------------------
# Probing (client <-> candidate node)
# ----------------------------------------------------------------------
@dataclass
class ProbeSent(TraceEvent):
    """``RTT_probe`` + ``Process_probe`` dispatched to one candidate."""

    type: ClassVar[str] = "probe_sent"
    user_id: str
    node_id: str


@dataclass
class ProbeAnswered(TraceEvent):
    """A candidate answered its probe (dead candidates never do)."""

    type: ClassVar[str] = "probe_answered"
    user_id: str
    node_id: str
    rtt_ms: float
    what_if_ms: float


# ----------------------------------------------------------------------
# Join protocol
# ----------------------------------------------------------------------
@dataclass
class JoinAttempt(TraceEvent):
    """``Join()`` delivered to the chosen node (seqNum echo in flight)."""

    type: ClassVar[str] = "join_attempt"
    user_id: str
    node_id: str


@dataclass
class JoinAccept(TraceEvent):
    """The node accepted the join; the user is now served by it."""

    type: ClassVar[str] = "join_accept"
    user_id: str
    node_id: str


@dataclass
class JoinReject(TraceEvent):
    """seqNum mismatch (state changed since the probe): join refused."""

    type: ClassVar[str] = "join_reject"
    user_id: str
    node_id: str


@dataclass
class Switch(TraceEvent):
    """A voluntary better-node switch (hysteresis passed)."""

    type: ClassVar[str] = "switch"
    user_id: str
    from_node: Optional[str] = None
    to_node: Optional[str] = None


@dataclass
class PolicyDecision(TraceEvent):
    """One ranking verdict of the client's selection policy.

    ``ranked`` lists the surviving candidates best-first and ``scores``
    carries each one's policy score in the same order (predicted ms,
    lower is better) — enough for the analyzer to explain *why* a node
    won and by what margin. A detail event: only emitted when trace
    capture is enabled, like ``JoinAttempt``/``DiscoveryReturned``.
    """

    type: ClassVar[str] = "policy_decision"
    user_id: str
    policy: str
    ranked: Tuple[str, ...]
    scores: Tuple[float, ...]


# ----------------------------------------------------------------------
# Frame lifecycle
# ----------------------------------------------------------------------
@dataclass
class FrameStart(TraceEvent):
    """An offloaded frame left the client toward its edge node."""

    type: ClassVar[str] = "frame_start"
    user_id: str
    node_id: str
    frame_id: int


@dataclass
class PhaseSpan(TraceEvent):
    """One latency phase of a completed frame.

    ``phase`` is one of :data:`PHASES`:

    - ``rtt`` — network propagation + transfer (uplink and downlink);
    - ``queue`` — waiting: client-side backlog while unattached plus
      the node's frame-queue wait;
    - ``process`` — the node's actual service time.

    The three spans of a frame sum to its ``FrameDone.latency_ms``.
    """

    type: ClassVar[str] = "phase_span"
    user_id: str
    frame_id: int
    phase: str
    duration_ms: float


@dataclass
class FrameDone(TraceEvent):
    """A frame completed (or was lost: ``latency_ms is None``)."""

    type: ClassVar[str] = "frame_done"
    user_id: str
    node_id: str
    frame_id: int
    created_ms: float
    latency_ms: Optional[float] = None


# ----------------------------------------------------------------------
# Failures and failover
# ----------------------------------------------------------------------
@dataclass
class NodeFail(TraceEvent):
    """A node crashed / left without notification."""

    type: ClassVar[str] = "node_fail"
    node_id: str


@dataclass
class CoveredFailover(TraceEvent):
    """A failure absorbed by a proactive backup (no re-discovery)."""

    type: ClassVar[str] = "covered_failover"
    user_id: str
    node_id: str


@dataclass
class UncoveredFailure(TraceEvent):
    """Every backup was dead too: the user fell back to re-discovery
    (the paper's Fig. 10b counts exactly these)."""

    type: ClassVar[str] = "uncovered_failure"
    user_id: str


# ----------------------------------------------------------------------
# Node-side triggers
# ----------------------------------------------------------------------
@dataclass
class TestWorkloadInvoked(TraceEvent):
    """A synthetic what-if frame went through the node's real queue."""

    type: ClassVar[str] = "test_workload_invoked"
    node_id: str


@dataclass
class CacheHit(TraceEvent):
    """A ``Process_probe`` was served from the what-if cache (a read,
    never a test-workload run — the paper's decoupling argument)."""

    type: ClassVar[str] = "cache_hit"
    node_id: str
    what_if_ms: float


@dataclass
class CacheMiss(TraceEvent):
    """A trigger declared the cache stale and scheduled a refresh.

    ``reason`` is one of ``prime`` (node start), ``join``, ``leave``,
    ``drift`` (performance monitor), ``idle`` (idle-node win-back).
    """

    type: ClassVar[str] = "cache_miss"
    node_id: str
    reason: str


@dataclass
class HeartbeatMissed(TraceEvent):
    """A live node failed to reach the manager; it will retry after a
    jittered exponential backoff of ``retry_in_ms``."""

    type: ClassVar[str] = "heartbeat_missed"
    node_id: str
    attempt: int
    retry_in_ms: float


@dataclass
class PopulationChanged(TraceEvent):
    """The alive-node population changed (Fig. 8's grey stair line)."""

    type: ClassVar[str] = "population"
    count: int


# ----------------------------------------------------------------------
# Fault injection and recovery (the repro.faults subsystem)
# ----------------------------------------------------------------------
@dataclass
class FaultInjected(TraceEvent):
    """One fault fired (a rule of an active :class:`repro.faults.FaultPlan`).

    ``kind`` is one of ``drop``/``delay``/``duplicate``/``partition``/
    ``outage``/``gray_start``/``gray_end``/``crash``; ``src``/``dst``
    name the affected link for message faults and are empty for
    node-level faults (which carry the node in ``dst``).
    """

    type: ClassVar[str] = "fault_injected"
    rule_id: str
    kind: str
    src: str = ""
    dst: str = ""


@dataclass
class NodeRestart(TraceEvent):
    """A previously crashed node came back under the *same* id (fresh
    admission state: seqNum 0, empty attachment table, re-primed cache)."""

    type: ClassVar[str] = "node_restart"
    node_id: str


@dataclass
class BreakerTransition(TraceEvent):
    """A per-endpoint circuit breaker changed state
    (``closed``/``open``/``half_open``)."""

    type: ClassVar[str] = "breaker_transition"
    endpoint: str
    from_state: str
    to_state: str


@dataclass
class RetryScheduled(TraceEvent):
    """A failed request will be retried after ``delay_ms`` of
    decorrelated-jitter backoff (within the total latency budget)."""

    type: ClassVar[str] = "retry_scheduled"
    user_id: str
    op: str
    attempt: int
    delay_ms: float


@dataclass
class DegradedFallback(TraceEvent):
    """The Central Manager was unreachable: the selection round fell
    back to the last known candidate list plus the adopted backups
    instead of stalling (graceful degradation)."""

    type: ClassVar[str] = "degraded_fallback"
    user_id: str
    reason: str
    candidates: Tuple[str, ...] = ()


@dataclass
class AttachmentExpired(TraceEvent):
    """A node's admission lease evicted a silent user.

    The server-side cleanup path for a ``Leave()`` that never arrived
    (lost to a partition, or skipped because the client believed the
    node dead): after ``idle_ms`` without frames the node presumes the
    user gone and processes an implicit leave."""

    type: ClassVar[str] = "attachment_expired"
    node_id: str
    user_id: str
    idle_ms: float


# ----------------------------------------------------------------------
# Sweep lifecycle (the repro.sweep execution engine)
# ----------------------------------------------------------------------
@dataclass
class SweepRunStarted(TraceEvent):
    """One sweep run was handed to an executor (serial or a worker)."""

    type: ClassVar[str] = "sweep_run_started"
    run_key: str
    experiment: str
    attempt: int = 1


@dataclass
class SweepRunFinished(TraceEvent):
    """One sweep run finished. ``status`` is ``ok``/``failed``/``timeout``."""

    type: ClassVar[str] = "sweep_run_finished"
    run_key: str
    experiment: str
    status: str
    duration_s: float = 0.0


@dataclass
class SweepRunRetried(TraceEvent):
    """A run is being re-submitted after an infrastructure failure
    (worker-pool crash or per-run timeout), not an experiment error."""

    type: ClassVar[str] = "sweep_run_retried"
    run_key: str
    experiment: str
    attempt: int
    reason: str


@dataclass
class SweepRunSkipped(TraceEvent):
    """A run was satisfied from the run store (resume skipped it)."""

    type: ClassVar[str] = "sweep_run_skipped"
    run_key: str
    experiment: str


@dataclass
class WorkerSpawn(TraceEvent):
    """An execution platform started a worker (process or subprocess).

    ``worker`` is the platform-local slot label (stable across
    respawns); ``pid`` the OS process id of this incarnation."""

    type: ClassVar[str] = "worker_spawn"
    worker: str
    pid: int
    platform: str


@dataclass
class WorkerDead(TraceEvent):
    """A platform worker was declared dead (exit, EOF, stale heartbeat,
    or per-run timeout). ``run_key`` names the in-flight run it took
    down, if any — that run is handed back to the scheduler."""

    type: ClassVar[str] = "worker_dead"
    worker: str
    pid: int
    reason: str
    run_key: Optional[str] = None


@dataclass
class RunRequeued(TraceEvent):
    """A dead/hung worker's in-flight run was handed back for requeue.

    Emitted by the platform at handback time; whether the run actually
    re-executes is the scheduler's retry-budget decision (a re-submit
    shows up as ``sweep_run_retried``)."""

    type: ClassVar[str] = "run_requeued"
    run_key: str
    experiment: str
    reason: str


# ----------------------------------------------------------------------
# Metro kernel / sharding
# ----------------------------------------------------------------------
@dataclass
class ShardHandoff(TraceEvent):
    """A user migrated across the shard boundary channel.

    Emitted by the owning shard when a re-selection round picked a
    ghost-advertised node owned by another shard; the migration itself
    completes at the next boundary epoch.
    """

    type: ClassVar[str] = "shard_handoff"
    user_id: str
    from_shard: str
    to_shard: str
    node_id: str


# ----------------------------------------------------------------------
# Control plane (sharded, replicated Central Manager)
# ----------------------------------------------------------------------
@dataclass
class ShardRoute(TraceEvent):
    """The control-plane router resolved a discovery query's fan-out.

    ``shards`` are the control-plane shard indices queried (after the
    widening decision); ``cross_shard`` marks queries whose covering
    cells straddled a shard boundary. Distinct from the metro kernel's
    ``shard_handoff`` (user migration between sim shards) — these shards
    partition the *node registry*, not the client population.
    """

    type: ClassVar[str] = "shard_route"
    user_id: str
    shards: Tuple[int, ...]
    epoch: int
    cross_shard: bool


@dataclass
class ShardMerge(TraceEvent):
    """A cross-shard discovery merged per-shard TopN partials.

    ``pool`` is the merged candidate-pool size (sum of per-shard TopN
    lengths) the global TopN was cut from.
    """

    type: ClassVar[str] = "shard_merge"
    user_id: str
    shards: int
    pool: int
    widened: bool


@dataclass
class ManagerPromote(TraceEvent):
    """A standby replica became primary for a control-plane shard."""

    type: ClassVar[str] = "manager_promote"
    shard: int
    replica: int
    reason: str


@dataclass
class RegistryHandoff(TraceEvent):
    """Registry entries moved between control-plane machines (a standby
    rejoin/warm-up, or redistribution on a shard-map epoch change).
    Always from a deduplicated snapshot — never the raw expiry heap."""

    type: ClassVar[str] = "registry_handoff"
    source: str
    target: str
    entries: int
    epoch: int
    reason: str


# ----------------------------------------------------------------------
# Chaos hunt (the repro.faults.search schedule-search engine)
# ----------------------------------------------------------------------
@dataclass
class HuntAttempt(TraceEvent):
    """One sampled fault schedule was replayed and checked.

    ``violations`` counts the streaming-invariant violations the trace
    produced (0 = the schedule survived); ``rules`` the schedule size.
    """

    type: ClassVar[str] = "hunt_attempt"
    attempt: int
    plan_seed: int
    rules: int
    violations: int
    invariant: str = ""


@dataclass
class ShrinkStep(TraceEvent):
    """One delta-debugging reduction step on a violating schedule.

    ``action`` names the reduction tried (``drop_rules`` /
    ``narrow_window`` / ``reduce_targets``); ``kept`` is whether the
    reduced plan still reproduced the violation and was adopted.
    """

    type: ClassVar[str] = "shrink_step"
    action: str
    rules_before: int
    rules_after: int
    kept: bool
    detail: str = ""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.type: cls
    for cls in (
        DiscoveryIssued,
        DiscoveryReturned,
        ProbeSent,
        ProbeAnswered,
        JoinAttempt,
        JoinAccept,
        JoinReject,
        PolicyDecision,
        Switch,
        FrameStart,
        PhaseSpan,
        FrameDone,
        NodeFail,
        CoveredFailover,
        UncoveredFailure,
        TestWorkloadInvoked,
        CacheHit,
        CacheMiss,
        HeartbeatMissed,
        PopulationChanged,
        FaultInjected,
        NodeRestart,
        BreakerTransition,
        RetryScheduled,
        DegradedFallback,
        AttachmentExpired,
        SweepRunStarted,
        SweepRunFinished,
        SweepRunRetried,
        SweepRunSkipped,
        WorkerSpawn,
        WorkerDead,
        RunRequeued,
        ShardHandoff,
        ShardRoute,
        ShardMerge,
        ManagerPromote,
        RegistryHandoff,
        HuntAttempt,
        ShrinkStep,
    )
}

#: The event types every traced end-to-end scenario — simulated or live
#: loopback — must produce when it exercises the full lifecycle
#: (discovery, probing, join, serving, a node failure, a covered
#: failover). The golden-schema test asserts both backends emit exactly
#: this surface. ``join_reject``/``uncovered_failure``/``switch``/
#: ``heartbeat_missed`` are deliberately absent: they depend on race
#: timing and scenario shape, not on the backend.
GOLDEN_LIFECYCLE_TYPES = frozenset(
    {
        "discovery_issued",
        "discovery_returned",
        "probe_sent",
        "probe_answered",
        "join_attempt",
        "join_accept",
        "frame_start",
        "phase_span",
        "frame_done",
        "node_fail",
        "covered_failover",
        "test_workload_invoked",
        "cache_hit",
        "cache_miss",
        "population",
    }
)


def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    """Rehydrate a wire object (one parsed JSONL line) into its event.

    Raises:
        KeyError: unknown ``type`` tag.
        TypeError: fields don't match the event class.
    """
    payload = dict(data)
    cls = EVENT_TYPES[payload.pop("type")]
    if cls in (DiscoveryReturned, DegradedFallback) and isinstance(
        payload.get("candidates"), list
    ):
        payload["candidates"] = tuple(payload["candidates"])
    if cls is PolicyDecision:
        for key in ("ranked", "scores"):
            if isinstance(payload.get(key), list):
                payload[key] = tuple(payload[key])
    if cls is ShardRoute and isinstance(payload.get("shards"), list):
        payload["shards"] = tuple(payload["shards"])
    return cls(**payload)
