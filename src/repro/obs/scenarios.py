"""Canonical traced scenarios, shared by the ``repro trace`` CLI and the
golden-schema tests.

Both runners stage the same story — a small volunteer fleet, attached
users offloading AR frames, one node failure mid-run, a covered
failover — once on the discrete-event simulator and once on the live
asyncio TCP runtime. Because every component reports through the same
:class:`~repro.obs.tracer.Tracer` event schema, the two traces are
directly comparable: same event types, same ordering rules, same
phase-breakdown arithmetic.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import List, Optional, Union

from repro.obs.events import TraceEvent
from repro.obs.tracer import Tracer


def run_sim_trace_scenario(
    seed: int = 7,
    sink_path: Union[None, str, Path] = None,
    duration_ms: float = 20_000.0,
) -> List[TraceEvent]:
    """The quickstart deployment, traced, with a mid-run node failure.

    Three Table II volunteers (V1, V2, V5), two AR users; halfway
    through, the node serving ``u1`` is killed so the trace contains a
    failover. Returns the captured events (also streamed to
    ``sink_path`` as JSONL when given).
    """
    from repro.api import ScenarioBuilder
    from repro.core.config import SystemConfig
    from repro.geo.point import GeoPoint
    from repro.nodes.hardware import profile_by_name

    scenario = (
        ScenarioBuilder(SystemConfig(top_n=2, seed=seed))
        .observe(trace=True, sink=sink_path)
        .node("V1", profile_by_name("V1"), point=GeoPoint(44.980, -93.260))
        .node("V2", profile_by_name("V2"), point=GeoPoint(44.950, -93.200))
        .node("V5", profile_by_name("V5"), point=GeoPoint(44.900, -93.100))
        .client("u1", point=GeoPoint(44.970, -93.250))
        .client("u2", point=GeoPoint(44.930, -93.180))
        .build_scenario()
    )
    system, tracer = scenario.system, scenario.tracer
    assert tracer is not None
    system.run_for(duration_ms / 2)
    victim = system.clients["u1"].current_edge
    if victim is not None:
        system.fail_node(victim)
    system.run_for(duration_ms / 2)
    tracer.close()
    return tracer.events()


async def run_live_trace_scenario(
    sink_path: Union[None, str, Path] = None,
    frames: int = 6,
) -> List[TraceEvent]:
    """The same story on the live runtime: a three-edge loopback cluster,
    one client offloading real frames, the serving edge hard-killed
    mid-stream to force a covered failover."""
    from repro.nodes.hardware import VOLUNTEER_PROFILES
    from repro.runtime.launcher import LocalCluster

    tracer = Tracer(enabled=True, sink=sink_path)
    cluster = LocalCluster(
        VOLUNTEER_PROFILES[:3],
        n_clients=1,
        time_scale=0.01,
        heartbeat_period_s=0.05,
        tracer=tracer,
    )
    await cluster.start()
    try:
        client = cluster.clients[0]
        chosen = await client.select_and_join()
        for _ in range(max(1, frames // 2)):
            await client.offload_frame()
        await cluster.kill_edge(chosen)
        await client.offload_frame()  # lost frame -> covered failover
        for _ in range(max(1, frames - frames // 2)):
            await client.offload_frame()
    finally:
        await cluster.stop()
    tracer.close()
    return tracer.events()


def run_live_trace_scenario_sync(
    sink_path: Union[None, str, Path] = None,
    frames: int = 6,
) -> List[TraceEvent]:
    """Blocking wrapper for non-async callers (the CLI)."""
    return asyncio.run(run_live_trace_scenario(sink_path, frames))
