"""Unified observability: trace events, phase spans, kernel profiling.

``repro.obs`` is the structured trace-event subsystem shared by both
execution backends — the discrete-event simulator (``repro.core`` /
``repro.sim``) and the live asyncio runtime (``repro.runtime``). Every
lifecycle step of a user (discovery → probe → join → serve → failover)
and every node-side trigger (test workload, cache refresh, heartbeat
trouble) is emitted as a typed :class:`~repro.obs.events.TraceEvent`
with one schema, so a simulated run and a loopback live run produce
byte-compatible JSONL traces analyzable by the same tools.

Layers:

- :mod:`repro.obs.events` — the typed event catalog and wire schema.
- :mod:`repro.obs.tracer` — :class:`Tracer` (ring buffer + optional
  JSONL sink + always-on subscriber fan-out, near-zero cost when
  capture is disabled) and the sink implementations.
- :mod:`repro.obs.analyze` — :class:`TraceAnalyzer`: per-user
  timelines, latency-phase breakdowns, failover-gap histograms, and
  the event-order validator used by the golden-schema tests.
- :mod:`repro.obs.profile` — :class:`KernelProfiler`, the simulator
  event-loop profiling hook (per-handler time, queue depth).
- :mod:`repro.obs.scenarios` — seeded demo scenarios (sim and live
  loopback) behind the ``repro trace`` CLI subcommand.

The metrics-reporting API is built on top: components *emit* trace
events and :class:`~repro.metrics.collector.MetricsCollector`
subscribes and reduces them — nothing mutates the collector directly
anymore (the old ``record_*`` entry points survive one release as
``DeprecationWarning`` shims).
"""

from repro.obs.events import (
    EVENT_TYPES,
    GOLDEN_LIFECYCLE_TYPES,
    BreakerTransition,
    CacheHit,
    CacheMiss,
    CoveredFailover,
    AttachmentExpired,
    DegradedFallback,
    DiscoveryIssued,
    DiscoveryReturned,
    FaultInjected,
    FrameDone,
    FrameStart,
    HeartbeatMissed,
    HuntAttempt,
    ShrinkStep,
    JoinAccept,
    JoinAttempt,
    JoinReject,
    NodeFail,
    NodeRestart,
    PhaseSpan,
    PopulationChanged,
    ProbeAnswered,
    ProbeSent,
    RetryScheduled,
    RunRequeued,
    SweepRunFinished,
    SweepRunRetried,
    SweepRunSkipped,
    SweepRunStarted,
    Switch,
    WorkerDead,
    WorkerSpawn,
    TestWorkloadInvoked,
    TraceEvent,
    UncoveredFailure,
    event_from_dict,
)
from repro.obs.tracer import JsonlSink, ListSink, NullSink, Tracer
from repro.obs.analyze import TraceAnalyzer, load_trace, validate_event_order
from repro.obs.profile import KernelProfiler

__all__ = [
    "Tracer",
    "JsonlSink",
    "ListSink",
    "NullSink",
    "TraceAnalyzer",
    "KernelProfiler",
    "load_trace",
    "validate_event_order",
    "event_from_dict",
    "EVENT_TYPES",
    "GOLDEN_LIFECYCLE_TYPES",
    "TraceEvent",
    "DiscoveryIssued",
    "DiscoveryReturned",
    "ProbeSent",
    "ProbeAnswered",
    "JoinAttempt",
    "JoinAccept",
    "JoinReject",
    "Switch",
    "FrameStart",
    "PhaseSpan",
    "FrameDone",
    "NodeFail",
    "CoveredFailover",
    "UncoveredFailure",
    "TestWorkloadInvoked",
    "CacheHit",
    "CacheMiss",
    "HeartbeatMissed",
    "PopulationChanged",
    "FaultInjected",
    "NodeRestart",
    "BreakerTransition",
    "RetryScheduled",
    "DegradedFallback",
    "AttachmentExpired",
    "SweepRunStarted",
    "SweepRunFinished",
    "SweepRunRetried",
    "SweepRunSkipped",
    "WorkerSpawn",
    "WorkerDead",
    "RunRequeued",
    "HuntAttempt",
    "ShrinkStep",
]
