"""The sans-execution sweep scheduler.

:func:`run_sweep` drives a :class:`~repro.sweep.spec.SweepSpec` to
completion over an optional :class:`~repro.sweep.store.RunStore` — but
it never touches a pool, a pipe, or a process itself. Execution is
delegated to a pluggable :class:`~repro.sweep.platform.ExecutionPlatform`
(inline / process pool / worker subprocesses; see
:mod:`repro.sweep.platform`), and the scheduler owns everything that is
*policy*, identically on every platform:

- **Resume.** Runs whose ``run_key`` already has a successful record in
  the store are skipped (a ``sweep_run_skipped`` trace event each); an
  interrupted sweep re-executes exactly the missing runs.
- **Ordering.** Results are reported in the spec's expansion order
  regardless of completion order, and every run's randomness is rooted
  in its content-derived ``root_seed`` — so any platform produces
  bit-identical per-run metrics, hence bit-identical aggregates.
- **Failure containment & retry.** An exception raised *by the
  experiment* is recorded as a failed run (status ``failed``) and the
  sweep continues — deterministic failures would fail again, so they
  are not retried within a sweep, but a later sweep over the same store
  retries them. Infrastructure losses surfaced by the platform (a
  crashed worker, a per-run timeout) are re-submitted up to ``retries``
  times, then recorded (``failed``/``timeout``); losses the platform
  marks *collateral* (bystanders of someone else's failure) are
  re-submitted without charging their budget.
- **Crash safety.** Every record is persisted the moment its outcome
  arrives; ``KeyboardInterrupt``/``SystemExit`` propagate only after
  completed runs are on disk — which is what makes Ctrl-C + re-run a
  correct resume, not a corruption.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.obs.events import (
    SweepRunFinished,
    SweepRunRetried,
    SweepRunSkipped,
    SweepRunStarted,
)
from repro.obs.tracer import Tracer
from repro.sweep.aggregate import CellAggregate, aggregate_records
from repro.sweep.platform import (
    ExecutionPlatform,
    RunOutcome,
    make_platform,
)
from repro.sweep.spec import RunSpec, SweepSpec
from repro.sweep.store import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
    RunStore,
)

__all__ = ["SweepResult", "run_sweep", "SweepInterrupted"]


class SweepInterrupted(RuntimeError):
    """Raised when ``limit`` stopped a sweep before all runs executed.

    Deliberate interruption (CI smoke jobs, token-budget runs) — the
    store holds everything completed so far; re-running resumes.
    """

    def __init__(self, executed: int, remaining: int) -> None:
        super().__init__(
            f"sweep interrupted after {executed} runs ({remaining} remaining)"
        )
        self.executed = executed
        self.remaining = remaining


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` call.

    ``records`` follows the spec's expansion order. Counters partition
    the spec's runs: ``executed + skipped == total`` when the sweep ran
    to completion (``interrupted`` False). ``platform`` names the
    execution platform that ran the pending runs.
    """

    spec: SweepSpec
    records: List[RunRecord] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    retried: int = 0
    interrupted: bool = False
    wall_s: float = 0.0
    platform: str = "inline"

    def ok_records(self) -> List[RunRecord]:
        return [r for r in self.records if r.ok]

    def aggregates(self) -> Dict[str, CellAggregate]:
        """Cross-seed aggregates over the successful records."""
        return aggregate_records(self.ok_records())


def _record_from_outcome(
    run: RunSpec, outcome: RunOutcome, *, attempts: int
) -> RunRecord:
    """A persistable record for a terminal outcome (ok/failed/timeout)."""
    status = outcome.status
    if status not in (STATUS_OK, STATUS_FAILED, STATUS_TIMEOUT):
        status = STATUS_FAILED  # a "lost" run out of retry budget
    return RunRecord(
        run_key=run.run_key,
        experiment=run.experiment,
        params=run.params_dict(),
        seed_index=run.seed_index,
        root_seed=run.root_seed,
        status=status,
        metrics=dict(outcome.metrics) if status == STATUS_OK else {},
        error=outcome.error,
        attempts=attempts,
        duration_s=outcome.duration_s,
    )


def _resolve_platform(
    platform: Optional[Union[str, ExecutionPlatform]],
    *,
    workers: int,
    serial: bool,
    timeout_s: Optional[float],
    tracer: Tracer,
) -> ExecutionPlatform:
    """Pick the platform: explicit object > name > legacy serial/workers."""
    if platform is None:
        platform = "inline" if serial or workers == 1 else "pool"
    if isinstance(platform, str):
        return make_platform(
            platform, workers=workers, timeout_s=timeout_s, tracer=tracer
        )
    return platform


# ----------------------------------------------------------------------
def run_sweep(
    spec: SweepSpec,
    store: Optional[RunStore] = None,
    *,
    platform: Optional[Union[str, ExecutionPlatform]] = None,
    workers: int = 1,
    serial: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    limit: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    progress: Optional[Callable[[RunRecord], None]] = None,
) -> SweepResult:
    """Execute (or resume) a sweep; returns records in expansion order.

    Args:
        spec: the sweep to run.
        store: persistent run store; None = in-memory only (no resume).
        platform: where runs execute — a registered platform name
            (``inline``/``local``, ``pool``, ``subprocess``) or a
            ready-made :class:`~repro.sweep.platform.ExecutionPlatform`
            instance (the scheduler shuts it down either way). Default:
            ``inline`` when ``serial`` or ``workers == 1``, else
            ``pool`` — the pre-platform behaviour, unchanged.
        workers: worker count handed to the platform factory (pool size
            / subprocess count); ignored by the inline platform.
        serial: legacy alias for ``platform="inline"``.
        timeout_s: coarse per-run wall bound, enforced by platforms that
            support one (pool: the ``Future.result`` wait; subprocess:
            in-flight age). A run that exceeds it is recorded with
            status ``timeout`` after its retry budget; the inline
            platform ignores it. The bound is measured from when the
            platform starts waiting on that run, so it is an upper
            bound, not a precise stopwatch.
        retries: how many times an infrastructure loss (worker crash,
            timeout) re-submits a run before recording it as lost.
        limit: execute at most this many runs, then raise
            :class:`SweepInterrupted` (completed work is persisted) —
            the deterministic "interrupt" used by resume tests and CI.
        tracer: optional :class:`~repro.obs.tracer.Tracer` receiving
            sweep lifecycle events (started/finished/retried/skipped
            plus the platform's worker_spawn/worker_dead/run_requeued).
        progress: optional callback invoked with each fresh record.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0: {retries}")
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be >= 0: {limit}")
    tracer = tracer or Tracer.disabled()
    if store is not None:
        store.save_manifest(spec)

    runs = spec.expand()
    result = SweepResult(spec=spec)
    started = time.perf_counter()

    # Partition: cached vs pending (preserving expansion order).
    completed = store.completed_keys() if store is not None else set()
    by_key: Dict[str, RunRecord] = {}
    pending: List[RunSpec] = []
    for run in runs:
        if run.run_key in completed and store is not None:
            cached = store.get(run.run_key)
            assert cached is not None
            by_key[run.run_key] = cached
            result.skipped += 1
            if tracer.enabled:
                tracer.emit(
                    SweepRunSkipped(tracer.now(), run.run_key, run.experiment)
                )
        else:
            pending.append(run)

    def commit(record: RunRecord) -> None:
        by_key[record.run_key] = record
        if store is not None:
            store.put(record)
        if record.status != STATUS_OK:
            result.failed += 1
        result.executed += 1
        if progress is not None:
            progress(record)

    budget = len(pending) if limit is None else min(limit, len(pending))
    engine = _resolve_platform(
        platform, workers=workers, serial=serial, timeout_s=timeout_s,
        tracer=tracer,
    )
    result.platform = engine.name
    try:
        _schedule(
            pending[:budget], engine, commit, tracer,
            retries=retries, result=result,
        )
    finally:
        engine.shutdown()
        result.records = [by_key[r.run_key] for r in runs if r.run_key in by_key]
        result.wall_s = time.perf_counter() - started

    if budget < len(pending):
        result.interrupted = True
        raise SweepInterrupted(result.executed, len(pending) - budget)
    return result


# ----------------------------------------------------------------------
def _schedule(
    pending: List[RunSpec],
    engine: ExecutionPlatform,
    commit: Callable[[RunRecord], None],
    tracer: Tracer,
    *,
    retries: int,
    result: SweepResult,
) -> None:
    """Submit/drain waves until every pending run has a terminal record.

    Each wave submits the queue (emitting ``sweep_run_started`` with the
    attempt number), drains the platform, records terminal outcomes, and
    collects infrastructure losses into the next wave — bounded by the
    per-run ``retries`` budget (collateral losses ride free).
    """
    by_key: Dict[str, RunSpec] = {run.run_key: run for run in pending}
    attempts: Dict[str, int] = {run.run_key: 0 for run in pending}
    queue = list(pending)
    while queue:
        wave, queue = queue, []
        for run in wave:
            attempts[run.run_key] += 1
            if tracer.enabled:
                tracer.emit(
                    SweepRunStarted(
                        tracer.now(),
                        run.run_key,
                        run.experiment,
                        attempts[run.run_key],
                    )
                )
            engine.submit(run)
        for outcome in engine.drain():
            run = by_key[outcome.run_key]
            key = run.run_key
            if outcome.is_terminal:
                record = _record_from_outcome(
                    run, outcome, attempts=attempts[key]
                )
                commit(record)
                _emit_finished(tracer, run, record)
                continue
            # Infrastructure loss: requeue within budget, else record.
            if outcome.collateral:
                attempts[key] -= 1  # not its fault; re-run rides free
                queue.append(run)
            elif attempts[key] <= retries:
                result.retried += 1
                if tracer.enabled:
                    tracer.emit(
                        SweepRunRetried(
                            tracer.now(),
                            key,
                            run.experiment,
                            attempts[key] + 1,
                            outcome.error or outcome.status,
                        )
                    )
                queue.append(run)
            else:
                record = _record_from_outcome(
                    run, outcome, attempts=attempts[key]
                )
                commit(record)
                _emit_finished(tracer, run, record)


def _emit_finished(tracer: Tracer, run: RunSpec, record: RunRecord) -> None:
    if tracer.enabled:
        tracer.emit(
            SweepRunFinished(
                tracer.now(),
                run.run_key,
                run.experiment,
                record.status,
                record.duration_s,
            )
        )
