"""Parallel, resumable sweep execution.

:func:`run_sweep` drives a :class:`~repro.sweep.spec.SweepSpec` to
completion over an optional :class:`~repro.sweep.store.RunStore`:

- **Resume.** Runs whose ``run_key`` already has a successful record in
  the store are skipped (a ``sweep_run_skipped`` trace event each); an
  interrupted sweep re-executes exactly the missing runs.
- **Parallelism.** A ``ProcessPoolExecutor`` with a configurable worker
  count. Workers resolve experiments *by name* from
  :mod:`repro.sweep.registry`, so only scalars cross the pickle
  boundary. The pool uses the ``fork`` start method where available
  (runtime-registered experiments keep working); built-ins re-register
  at import so ``spawn`` platforms work too.
- **Failure containment.** An exception raised *by the experiment* is
  recorded as a failed run (status ``failed``) and the sweep continues —
  deterministic failures would fail again, so they are not retried
  within a sweep, but a later sweep over the same store retries them.
  Infrastructure failures — a crashed worker (``BrokenProcessPool``) or
  a per-run timeout — are retried up to ``retries`` times in a fresh
  pool, then recorded (``failed``/``timeout``).
- **Determinism.** Results are reported in the spec's expansion order
  regardless of completion order, and every run's randomness is rooted
  in its content-derived ``root_seed`` — so the serial executor
  (``serial=True``) and any parallel execution produce bit-identical
  per-run metrics, hence bit-identical aggregates.

``KeyboardInterrupt``/``SystemExit`` propagate after already-completed
runs have been persisted — which is what makes Ctrl-C + re-run a
correct resume, not a corruption.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.events import (
    SweepRunFinished,
    SweepRunRetried,
    SweepRunSkipped,
    SweepRunStarted,
)
from repro.obs.tracer import Tracer
from repro.sweep.aggregate import CellAggregate, aggregate_records
from repro.sweep.registry import get_experiment
from repro.sweep.spec import RunSpec, SweepSpec
from repro.sweep.store import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
    RunStore,
)

__all__ = ["SweepResult", "run_sweep", "SweepInterrupted"]


class SweepInterrupted(RuntimeError):
    """Raised when ``limit`` stopped a sweep before all runs executed.

    Deliberate interruption (CI smoke jobs, token-budget runs) — the
    store holds everything completed so far; re-running resumes.
    """

    def __init__(self, executed: int, remaining: int) -> None:
        super().__init__(
            f"sweep interrupted after {executed} runs ({remaining} remaining)"
        )
        self.executed = executed
        self.remaining = remaining


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` call.

    ``records`` follows the spec's expansion order. Counters partition
    the spec's runs: ``executed + skipped == total`` when the sweep ran
    to completion (``interrupted`` False).
    """

    spec: SweepSpec
    records: List[RunRecord] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    retried: int = 0
    interrupted: bool = False
    wall_s: float = 0.0

    def ok_records(self) -> List[RunRecord]:
        return [r for r in self.records if r.ok]

    def aggregates(self) -> Dict[str, CellAggregate]:
        """Cross-seed aggregates over the successful records."""
        return aggregate_records(self.ok_records())


def _invoke(experiment: str, params: Dict[str, Any], root_seed: int):
    """Worker entry point: resolve by name, run, return (metrics, secs)."""
    fn = get_experiment(experiment).fn
    start = time.perf_counter()
    metrics = fn(dict(params), root_seed)
    return metrics, time.perf_counter() - start


def _record_for(
    run: RunSpec,
    status: str,
    *,
    metrics: Optional[Dict[str, float]] = None,
    error: Optional[str] = None,
    attempts: int = 1,
    duration_s: float = 0.0,
) -> RunRecord:
    return RunRecord(
        run_key=run.run_key,
        experiment=run.experiment,
        params=run.params_dict(),
        seed_index=run.seed_index,
        root_seed=run.root_seed,
        status=status,
        metrics=metrics or {},
        error=error,
        attempts=attempts,
        duration_s=duration_s,
    )


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when a worker is wedged mid-task.

    ``shutdown`` alone would leave the hung worker alive (and the
    interpreter's atexit hook would later join it forever); there is no
    public kill API, so reach for the worker processes directly.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, AttributeError):  # pragma: no cover - racing exit
            pass


# ----------------------------------------------------------------------
def run_sweep(
    spec: SweepSpec,
    store: Optional[RunStore] = None,
    *,
    workers: int = 1,
    serial: bool = False,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    limit: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    progress: Optional[Callable[[RunRecord], None]] = None,
) -> SweepResult:
    """Execute (or resume) a sweep; returns records in expansion order.

    Args:
        spec: the sweep to run.
        store: persistent run store; None = in-memory only (no resume).
        workers: process-pool size; ignored when ``serial`` is True.
        serial: run everything in-process, in order — the bit-identical
            reference executor (also the only mode where a debugger or
            an ad-hoc closure experiment always works).
        timeout_s: coarse per-run wall bound (parallel mode only). A run
            that exceeds it is recorded with status ``timeout`` and its
            pool is recycled; the bound is measured from when the
            executor starts waiting on that run, so it is an upper
            bound, not a precise stopwatch.
        retries: how many times an infrastructure failure (worker crash,
            timeout) re-submits a run before recording it as lost.
        limit: execute at most this many runs, then raise
            :class:`SweepInterrupted` (completed work is persisted) —
            the deterministic "interrupt" used by resume tests and CI.
        tracer: optional :class:`~repro.obs.tracer.Tracer` receiving
            sweep lifecycle events (started/finished/retried/skipped).
        progress: optional callback invoked with each fresh record.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0: {retries}")
    if limit is not None and limit < 0:
        raise ValueError(f"limit must be >= 0: {limit}")
    tracer = tracer or Tracer.disabled()
    if store is not None:
        store.save_manifest(spec)

    runs = spec.expand()
    result = SweepResult(spec=spec)
    started = time.perf_counter()

    # Partition: cached vs pending (preserving expansion order).
    completed = store.completed_keys() if store is not None else set()
    by_key: Dict[str, RunRecord] = {}
    pending: List[RunSpec] = []
    for run in runs:
        if run.run_key in completed and store is not None:
            cached = store.get(run.run_key)
            assert cached is not None
            by_key[run.run_key] = cached
            result.skipped += 1
            if tracer.enabled:
                tracer.emit(
                    SweepRunSkipped(tracer.now(), run.run_key, run.experiment)
                )
        else:
            pending.append(run)

    def commit(record: RunRecord) -> None:
        by_key[record.run_key] = record
        if store is not None:
            store.put(record)
        if record.status != STATUS_OK:
            result.failed += 1
        result.executed += 1
        if progress is not None:
            progress(record)

    budget = len(pending) if limit is None else min(limit, len(pending))
    try:
        if serial or workers == 1:
            _run_serial(pending[:budget], commit, tracer)
        else:
            _run_parallel(
                pending[:budget],
                commit,
                tracer,
                workers=workers,
                timeout_s=timeout_s,
                retries=retries,
                result=result,
            )
    finally:
        result.records = [by_key[r.run_key] for r in runs if r.run_key in by_key]
        result.wall_s = time.perf_counter() - started

    if budget < len(pending):
        result.interrupted = True
        raise SweepInterrupted(result.executed, len(pending) - budget)
    return result


# ----------------------------------------------------------------------
def _run_serial(
    pending: List[RunSpec],
    commit: Callable[[RunRecord], None],
    tracer: Tracer,
) -> None:
    for run in pending:
        if tracer.enabled:
            tracer.emit(
                SweepRunStarted(tracer.now(), run.run_key, run.experiment)
            )
        start = time.perf_counter()
        try:
            metrics, duration = _invoke(
                run.experiment, run.params_dict(), run.root_seed
            )
        except Exception as exc:  # noqa: BLE001 - contained per-run
            record = _record_for(
                run,
                STATUS_FAILED,
                error=f"{type(exc).__name__}: {exc}",
                duration_s=time.perf_counter() - start,
            )
        else:
            record = _record_for(
                run, STATUS_OK, metrics=metrics, duration_s=duration
            )
        commit(record)
        if tracer.enabled:
            tracer.emit(
                SweepRunFinished(
                    tracer.now(),
                    run.run_key,
                    run.experiment,
                    record.status,
                    record.duration_s,
                )
            )


# ----------------------------------------------------------------------
def _run_parallel(
    pending: List[RunSpec],
    commit: Callable[[RunRecord], None],
    tracer: Tracer,
    *,
    workers: int,
    timeout_s: Optional[float],
    retries: int,
    result: SweepResult,
) -> None:
    attempts: Dict[str, int] = {run.run_key: 0 for run in pending}
    context = _mp_context()
    wave = list(pending)
    while wave:
        next_wave: List[RunSpec] = []
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        try:
            futures = {}
            for run in wave:
                attempts[run.run_key] += 1
                if tracer.enabled:
                    tracer.emit(
                        SweepRunStarted(
                            tracer.now(),
                            run.run_key,
                            run.experiment,
                            attempts[run.run_key],
                        )
                    )
                futures[run.run_key] = pool.submit(
                    _invoke, run.experiment, run.params_dict(), run.root_seed
                )
            pool_broken = False
            for index, run in enumerate(wave):
                key = run.run_key
                if pool_broken:
                    # The pool died; results that completed before the
                    # crash are still held by their futures — keep them,
                    # retry the rest without waiting.
                    done = futures[key]
                    if done.done() and done.exception() is None:
                        metrics, duration = done.result()
                        record = _record_for(
                            run, STATUS_OK, metrics=metrics,
                            attempts=attempts[key], duration_s=duration,
                        )
                        commit(record)
                        _emit_finished(tracer, run, record)
                    else:
                        _retry_or_fail(
                            run, "worker pool crashed", STATUS_FAILED,
                            attempts, retries, next_wave, commit, tracer,
                            result,
                        )
                    continue
                try:
                    metrics, duration = futures[key].result(timeout=timeout_s)
                except BrokenProcessPool:
                    pool_broken = True
                    _retry_or_fail(
                        run, "worker pool crashed", STATUS_FAILED,
                        attempts, retries, next_wave, commit, tracer, result,
                    )
                    continue
                except FuturesTimeout:
                    # The slot is wedged; recycle the pool and resubmit
                    # everything not yet collected.
                    _retry_or_fail(
                        run, f"run exceeded {timeout_s}s", STATUS_TIMEOUT,
                        attempts, retries, next_wave, commit, tracer, result,
                    )
                    for late in wave[index + 1 :]:
                        done = futures[late.run_key]
                        if done.done() and not done.exception():
                            metrics, duration = done.result()
                            record = _record_for(
                                late, STATUS_OK, metrics=metrics,
                                attempts=attempts[late.run_key],
                                duration_s=duration,
                            )
                            commit(record)
                            _emit_finished(tracer, late, record)
                        else:
                            attempts[late.run_key] -= 1  # not its fault
                            next_wave.append(late)
                    _kill_pool(pool)
                    break
                except Exception as exc:  # noqa: BLE001 - experiment error
                    record = _record_for(
                        run, STATUS_FAILED,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempts[key],
                    )
                    commit(record)
                    _emit_finished(tracer, run, record)
                else:
                    record = _record_for(
                        run, STATUS_OK, metrics=metrics,
                        attempts=attempts[key], duration_s=duration,
                    )
                    commit(record)
                    _emit_finished(tracer, run, record)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        wave = next_wave


def _retry_or_fail(
    run: RunSpec,
    reason: str,
    terminal_status: str,
    attempts: Dict[str, int],
    retries: int,
    next_wave: List[RunSpec],
    commit: Callable[[RunRecord], None],
    tracer: Tracer,
    result: SweepResult,
) -> None:
    if attempts[run.run_key] <= retries:
        result.retried += 1
        if tracer.enabled:
            tracer.emit(
                SweepRunRetried(
                    tracer.now(),
                    run.run_key,
                    run.experiment,
                    attempts[run.run_key] + 1,
                    reason,
                )
            )
        next_wave.append(run)
        return
    record = _record_for(
        run, terminal_status, error=reason, attempts=attempts[run.run_key]
    )
    commit(record)
    _emit_finished(tracer, run, record)


def _emit_finished(tracer: Tracer, run: RunSpec, record: RunRecord) -> None:
    if tracer.enabled:
        tracer.emit(
            SweepRunFinished(
                tracer.now(),
                run.run_key,
                run.experiment,
                record.status,
                record.duration_s,
            )
        )
