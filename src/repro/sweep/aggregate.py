"""Cross-seed reduction of sweep run records.

A sweep produces one flat metrics dict per (parameter cell, seed);
this module reduces each cell's replicates to summary statistics —
mean, median, p95, and a 95% confidence-interval half-width (Student's
t on the sample standard deviation) — and renders strategy-comparison
tables compatible with :func:`repro.metrics.report.format_table`.

Determinism matters here as much as in the executor: cells and metric
names are processed in sorted order and nothing is rounded during
reduction, so two executions that produced identical per-run metrics
produce byte-identical aggregate serializations — the property
``benchmarks/perf/bench_sweep.py`` asserts between the serial and the
parallel executor.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.metrics.stats import mean, percentile
from repro.sweep.spec import params_token
from repro.sweep.store import RunRecord

__all__ = [
    "MetricAggregate",
    "CellAggregate",
    "aggregate_records",
    "aggregates_digest",
    "comparison_table",
    "metric_names",
    "reduce_metric",
    "t_critical",
]

#: Two-sided 95% Student's t critical values by degrees of freedom; the
#: asymptote (z = 1.96) serves df > 30. Values from standard tables.
_T_TABLE = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical(df: int) -> float:
    """Two-sided 95% t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1: {df}")
    return _T_TABLE.get(df, 1.96)


def _sample_std(values: Sequence[float], m: float) -> float:
    """Sample standard deviation (ddof=1); 0.0 for a single sample."""
    n = len(values)
    if n < 2:
        return 0.0
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


@dataclass(frozen=True)
class MetricAggregate:
    """One metric reduced across a cell's seeds."""

    n: int
    mean: float
    p50: float
    p95: float
    std: float
    ci_half_width: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "std": self.std,
            "ci_half_width": self.ci_half_width,
        }


def reduce_metric(values: Sequence[float]) -> MetricAggregate:
    """Reduce one metric's replicate values to a :class:`MetricAggregate`.

    The CI half-width is ``t_{0.975, n-1} * s / sqrt(n)`` (0.0 for a
    single replicate — no variance information, not infinite confidence,
    so single-seed sweeps still render).
    """
    if not values:
        raise ValueError("cannot reduce an empty metric sample")
    m = mean(values)
    s = _sample_std(values, m)
    n = len(values)
    half = t_critical(n - 1) * s / math.sqrt(n) if n > 1 else 0.0
    return MetricAggregate(
        n=n,
        mean=m,
        p50=percentile(values, 50.0),
        p95=percentile(values, 95.0),
        std=s,
        ci_half_width=half,
    )


@dataclass
class CellAggregate:
    """All metrics of one (experiment, parameter cell), across seeds."""

    experiment: str
    params: Dict[str, Any]
    n_seeds: int
    metrics: Dict[str, MetricAggregate] = field(default_factory=dict)

    @property
    def cell_key(self) -> str:
        return f"{self.experiment}|{params_token(self.params)}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "params": self.params,
            "n_seeds": self.n_seeds,
            "metrics": {
                name: agg.to_dict() for name, agg in sorted(self.metrics.items())
            },
        }


def aggregate_records(records: Iterable[RunRecord]) -> Dict[str, CellAggregate]:
    """Group successful records by parameter cell and reduce each metric.

    Returns an insertion-ordered dict keyed by ``cell_key``, cells in
    sorted-key order; failed/timeout records are excluded (their metrics
    are empty by construction).
    """
    samples: Dict[str, Tuple[str, Dict[str, Any], Dict[str, List[float]]]] = {}
    counts: Dict[str, int] = {}
    for record in records:
        if not record.ok:
            continue
        key = f"{record.experiment}|{params_token(record.params)}"
        if key not in samples:
            samples[key] = (record.experiment, dict(record.params), {})
        counts[key] = counts.get(key, 0) + 1
        _, _, by_metric = samples[key]
        for name, value in record.metrics.items():
            by_metric.setdefault(name, []).append(float(value))

    out: Dict[str, CellAggregate] = {}
    for key in sorted(samples):
        experiment, params, by_metric = samples[key]
        cell = CellAggregate(
            experiment=experiment, params=params, n_seeds=counts[key]
        )
        for name in sorted(by_metric):
            cell.metrics[name] = reduce_metric(by_metric[name])
        out[key] = cell
    return out


def aggregates_digest(aggregates: Dict[str, CellAggregate]) -> str:
    """Canonical JSON of a full aggregate set — the bit-identity token.

    Two executions whose per-run metrics match exactly produce equal
    digests; any numeric drift (ordering, rounding, seed assignment)
    shows up as inequality.
    """
    return json.dumps(
        {key: cell.to_dict() for key, cell in sorted(aggregates.items())},
        sort_keys=True,
        separators=(",", ":"),
    )


def comparison_table(
    aggregates: Dict[str, CellAggregate], metric: str
) -> Tuple[List[str], List[List[Any]]]:
    """A (headers, rows) pair for one metric across all cells.

    Rows are sorted by cell key; cells missing the metric are skipped.
    Feed the result to :func:`repro.metrics.report.format_table`.
    """
    headers = ["cell", "seeds", "mean", "p50", "p95", "ci95 ±"]
    rows: List[List[Any]] = []
    for key in sorted(aggregates):
        cell = aggregates[key]
        agg = cell.metrics.get(metric)
        if agg is None:
            continue
        label = ", ".join(f"{k}={v}" for k, v in sorted(cell.params.items()))
        rows.append(
            [
                label or "(default)",
                cell.n_seeds,
                f"{agg.mean:.2f}",
                f"{agg.p50:.2f}",
                f"{agg.p95:.2f}",
                f"{agg.ci_half_width:.2f}",
            ]
        )
    return headers, rows


def metric_names(aggregates: Dict[str, CellAggregate]) -> List[str]:
    """Every metric name present in any cell, sorted."""
    names = set()
    for cell in aggregates.values():
        names.update(cell.metrics)
    return sorted(names)
