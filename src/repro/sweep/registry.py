"""Named sweepable experiments.

A sweepable experiment is a function ``fn(params, root_seed) -> metrics``
where ``params`` is one expanded parameter cell (plain scalars),
``root_seed`` is the run's independent random-universe root (see
:class:`repro.sweep.spec.RunSpec`), and ``metrics`` is a flat
``{name: scalar}`` dict — the unit the aggregator reduces across seeds.

Experiments are resolved *by name*: worker processes receive only the
name and look the callable up in their own registry, so built-ins must
be registered at import time (spawn-safe); ad-hoc experiments registered
at runtime work with the serial executor and with fork-started pools.

Built-ins wrap the repo's paper experiments:

- ``fig9_topn``   — one churn run at a given ``top_n`` (Fig. 9 cell).
- ``churn_trace`` — the Fig. 8 trace reduced to scalars.
- ``network_study`` — Fig. 1 RTT study per target class.
- ``qos_admission`` — one (population, QoS bound) admission cell.
- ``chaos_matrix`` — one fault family of the canonical chaos plan run
  through the simulator (recovery metrics per seed x family cell).
- ``policy_matrix`` — one selection policy under the trap scenario of
  :mod:`repro.experiments.policy_matrix` (steady-state latency and
  failover-gap metrics per policy x churn x fault-family cell).
- ``controlplane_chaos`` — the sharded/replicated control plane run
  through its chaos scenario (shard x replica grid; frame loss and
  recovery counters per cell).
- ``chaos_hunt`` — the :mod:`repro.faults.search` schedule search: one
  seeded hunt (sample schedules, check the streaming invariant suite,
  shrink the first violation) per cell, fanned out across the sweep
  engine's execution platforms.
- ``selftest``    — a microsecond-scale deterministic pseudo-experiment
  for exercising the engine itself (tests, smoke jobs); supports
  ``fail=1`` (raises), ``sleep_s`` (stalls), ``crash=1`` (kills the
  process), and ``crash_marker=<path>`` (kills the process once, then
  succeeds on retry — the deterministic dead-worker drill).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping

__all__ = [
    "SweepableExperiment",
    "register",
    "get_experiment",
    "experiment_names",
]

MetricsDict = Dict[str, float]
ExperimentFn = Callable[[Dict[str, Any], int], MetricsDict]


@dataclass(frozen=True)
class SweepableExperiment:
    """A named experiment the sweep engine can execute.

    Attributes:
        name: registry key (what ``RunSpec.experiment`` stores).
        fn: the callable ``(params, root_seed) -> metrics``.
        description: one-line help shown by ``repro sweep run --list``.
        default_grid: the grid ``repro sweep run`` uses when the user
            passes no ``--param`` (typically the paper's own axis).
        param_help: parameter schema — name -> one-line description of
            each knob the experiment reads (shown by ``repro sweep
            list``; purely documentation, never validated against).
    """

    name: str
    fn: ExperimentFn
    description: str = ""
    default_grid: Mapping[str, List[Any]] = field(default_factory=dict)
    param_help: Mapping[str, str] = field(default_factory=dict)


_REGISTRY: Dict[str, SweepableExperiment] = {}


def register(experiment: SweepableExperiment, *, replace: bool = False) -> None:
    """Add an experiment to the registry.

    Re-registering an existing name is refused unless ``replace=True``:
    silently shadowing a built-in would change what cached run keys mean.
    """
    if experiment.name in _REGISTRY and not replace:
        raise ValueError(f"experiment already registered: {experiment.name!r}")
    _REGISTRY[experiment.name] = experiment


def get_experiment(name: str) -> SweepableExperiment:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(
            f"unknown sweepable experiment {name!r}; registered: {known}"
        ) from None


def experiment_names() -> List[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Built-in entry points (lazy experiment imports keep `import repro.sweep`
# cheap; the registry itself must import at worker start)
# ----------------------------------------------------------------------
def _fig9_topn(params: Dict[str, Any], root_seed: int) -> MetricsDict:
    from repro.core.config import SystemConfig
    from repro.experiments.churn_experiment import (
        HORIZON_MS,
        make_churn_trace,
        run_churn_once,
    )

    top_n = int(params.get("top_n", 3))
    n_users = int(params.get("n_users", 10))
    duration_ms = float(params.get("duration_ms", HORIZON_MS))
    config = SystemConfig(seed=root_seed, top_n=top_n)
    trace = make_churn_trace(config, horizon_ms=duration_ms)
    run = run_churn_once(
        config, n_users=n_users, trace=trace, duration_ms=duration_ms
    )
    # The paper's Fig. 9(c) window is the middle third of the timeline
    # (60-120 s of the 3-minute horizon).
    window = (duration_ms / 3.0, 2.0 * duration_ms / 3.0)
    return {
        "probes": float(run.metrics.total_probes()),
        "test_invocations": float(run.metrics.total_test_invocations()),
        "avg_latency_ms": run.average_latency_ms(*window),
        "fairness_std_ms": run.fairness_std_ms(*window),
        "uncovered_failures": float(run.metrics.total_failures()),
    }


def _churn_trace(params: Dict[str, Any], root_seed: int) -> MetricsDict:
    from repro.core.config import SystemConfig
    from repro.experiments.churn_experiment import run_churn_trace
    from repro.metrics.stats import mean

    config = SystemConfig(seed=root_seed, top_n=int(params.get("top_n", 3)))
    result = run_churn_trace(config, bin_ms=float(params.get("bin_ms", 5_000.0)))
    values = [v for _, v in result.latency_trace]
    return {
        "trace_mean_ms": mean(values),
        "trace_peak_ms": max(values),
        "total_nodes": float(result.total_nodes),
        "windows": float(len(result.latency_trace)),
    }


def _network_study(params: Dict[str, Any], root_seed: int) -> MetricsDict:
    from repro.core.config import SystemConfig
    from repro.experiments.network_study import run_network_study

    config = SystemConfig(seed=root_seed)
    result = run_network_study(
        config,
        n_users=int(params.get("n_users", 15)),
        probes_per_pair=int(params.get("probes_per_pair", 20)),
    )
    metrics: MetricsDict = {}
    for group, summary in result.summaries().items():
        metrics[f"{group}_mean_ms"] = summary.mean_ms
        metrics[f"{group}_p50_ms"] = summary.p50_ms
        metrics[f"{group}_p90_ms"] = summary.p90_ms
    return metrics


def _qos_admission(params: Dict[str, Any], root_seed: int) -> MetricsDict:
    from repro.core.config import SystemConfig
    from repro.experiments.qos_admission import run_qos_admission

    n_users = int(params.get("n_users", 15))
    qos_ms = float(params.get("qos_ms", 90.0))
    config = SystemConfig(seed=root_seed)
    result = run_qos_admission(
        config, qos_latency_ms=qos_ms, user_counts=[n_users]
    )
    with_qos = result.with_qos[n_users]
    without = result.without_qos[n_users]
    return {
        "admitted": float(with_qos.admitted),
        "rejected": float(with_qos.rejected),
        "violation_rate_on": with_qos.violation_rate,
        "violation_rate_off": without.violation_rate,
    }


def _chaos_matrix(params: Dict[str, Any], root_seed: int) -> MetricsDict:
    from repro.faults import FaultPlan
    from repro.faults.scenarios import chaos_plan, run_sim_chaos

    family = str(params.get("fault_family", "all"))
    horizon_ms = float(params.get("horizon_ms", 20_000.0))
    full = chaos_plan(["edge-a", "edge-b", "edge-c"], horizon_ms=horizon_ms)
    families = {
        "none": FaultPlan(),
        "messages": FaultPlan(message_faults=full.message_faults),
        "partition": FaultPlan(partitions=full.partitions),
        "crash": FaultPlan(crashes=full.crashes),
        "outage": FaultPlan(outages=full.outages),
        "gray": FaultPlan(gray_nodes=full.gray_nodes),
        "all": full,
    }
    if family not in families:
        raise ValueError(
            f"unknown fault_family {family!r}; known: {sorted(families)}"
        )
    report, _ = run_sim_chaos(
        root_seed,
        horizon_ms=horizon_ms,
        plan=families[family],
        top_n=int(params.get("top_n", 3)),
    )
    total = report.frames_completed + report.frames_lost
    return {
        "frames_completed": float(report.frames_completed),
        "frames_lost": float(report.frames_lost),
        "loss_rate": report.frames_lost / total if total else 0.0,
        "faults_injected": float(sum(report.injected.values())),
        "covered_failovers": float(
            report.event_counts.get("covered_failover", 0)
        ),
        "uncovered_failures": float(
            report.event_counts.get("uncovered_failure", 0)
        ),
        "degraded_fallbacks": float(
            report.event_counts.get("degraded_fallback", 0)
        ),
        "invariant_violations": float(len(report.problems)),
    }


def _policy_matrix(params: Dict[str, Any], root_seed: int) -> MetricsDict:
    from repro.experiments.policy_matrix import run_policy_matrix

    result = run_policy_matrix(
        str(params.get("policy", "go")),
        fault_family=str(params.get("fault_family", "node_crash")),
        churn_rate=float(params.get("churn_rate", 1.0)),
        horizon_ms=float(params.get("horizon_ms", 60_000.0)),
        n_users=int(params.get("n_users", 3)),
        warmup_ms=float(params.get("warmup_ms", 10_000.0)),
        seed=root_seed,
    )
    return dict(result.metrics)


def _controlplane_chaos(params: Dict[str, Any], root_seed: int) -> MetricsDict:
    from repro.faults.scenarios import run_sim_controlplane_chaos

    report, _ = run_sim_controlplane_chaos(
        root_seed,
        shards=int(params.get("shards", 2)),
        replicas=int(params.get("replicas", 2)),
        horizon_ms=float(params.get("horizon_ms", 20_000.0)),
        n_clients=int(params.get("n_clients", 3)),
        top_n=int(params.get("top_n", 3)),
    )
    total = report.frames_completed + report.frames_lost
    return {
        "frames_completed": float(report.frames_completed),
        "frames_lost": float(report.frames_lost),
        "loss_rate": report.frames_lost / total if total else 0.0,
        "faults_injected": float(sum(report.injected.values())),
        "covered_failovers": float(
            report.event_counts.get("covered_failover", 0)
        ),
        "uncovered_failures": float(
            report.event_counts.get("uncovered_failure", 0)
        ),
        "invariant_violations": float(len(report.problems)),
        "task_errors": float(len(report.task_errors)),
    }


def _chaos_hunt(params: Dict[str, Any], root_seed: int) -> MetricsDict:
    from repro.faults.search import HuntConfig, hunt

    overrides: Dict[str, Any] = {}
    detection_ms = params.get("failure_detection_ms")
    if detection_ms is not None:
        overrides["failure_detection_ms"] = float(detection_ms)
    config = HuntConfig(
        scenario=str(params.get("scenario", "canonical")),
        attempts=int(params.get("attempts", 10)),
        horizon_ms=float(params.get("horizon_ms", 20_000.0)),
        shards=int(params.get("shards", 2)),
        replicas=int(params.get("replicas", 2)),
        max_rules=int(params.get("max_rules", 5)),
        config_overrides=tuple(sorted(overrides.items())),
    )
    result = hunt(config, hunt_seed=root_seed)
    return {
        "found": 1.0 if result.found else 0.0,
        "attempts": float(result.attempts),
        "violations": float(len(result.violations)),
        "original_rules": float(result.original_rules),
        "shrunk_rules": float(result.shrunk_rules),
        "shrink_runs": float(result.shrink_runs),
    }


def _selftest(params: Dict[str, Any], root_seed: int) -> MetricsDict:
    """Deterministic pseudo-metrics in microseconds — engine self-checks."""
    if int(params.get("fail", 0)):
        raise RuntimeError("selftest experiment asked to fail")
    if int(params.get("crash", 0)):  # pragma: no cover - kills the worker
        import os

        os._exit(13)
    marker = str(params.get("crash_marker", "") or "")
    if marker:
        # Die hard exactly once: first visit leaves the marker and kills
        # the process (no exception containment possible); the retry sees
        # the marker and succeeds. Deterministic dead-worker drill for
        # platform tests and the CI smoke job.
        import os

        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as fh:
                fh.write("crashed once\n")
            os._exit(13)
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s > 0.0:
        import time

        time.sleep(sleep_s)
    from repro.sim.random import RandomStreams

    stream = RandomStreams(root_seed).get("selftest")
    scale = float(params.get("scale", 1.0))
    return {
        "value": scale * stream.random(),
        "draws": 1.0,
    }


register(
    SweepableExperiment(
        name="fig9_topn",
        fn=_fig9_topn,
        description="Fig. 9 churn cell: probes/invocations/latency/fairness at one TopN",
        default_grid={"top_n": [1, 2, 3, 4, 5]},
        param_help={
            "top_n": "size of the maintained candidate set (paper's TopN axis)",
            "n_users": "concurrent users in the churn run (default 10)",
            "duration_ms": "run horizon in ms (default: the Fig. 9 3-minute horizon)",
        },
    )
)
register(
    SweepableExperiment(
        name="churn_trace",
        fn=_churn_trace,
        description="Fig. 8 churn trace reduced to scalar latency statistics",
        default_grid={"top_n": [3]},
        param_help={
            "top_n": "size of the maintained candidate set (default 3)",
            "bin_ms": "latency-trace window width in ms (default 5000)",
        },
    )
)
register(
    SweepableExperiment(
        name="network_study",
        fn=_network_study,
        description="Fig. 1 RTT study: volunteer vs Local Zone vs cloud",
        default_grid={"probes_per_pair": [20]},
        param_help={
            "n_users": "probing vantage points (default 15)",
            "probes_per_pair": "RTT samples per (user, target) pair (default 20)",
        },
    )
)
register(
    SweepableExperiment(
        name="qos_admission",
        fn=_qos_admission,
        description="QoS admission cell: admitted/violations at one population",
        default_grid={"n_users": [5, 10, 15, 20]},
        param_help={
            "n_users": "user population size for the admission cell",
            "qos_ms": "QoS latency bound in ms (default 90)",
        },
    )
)
register(
    SweepableExperiment(
        name="chaos_matrix",
        fn=_chaos_matrix,
        description="policy (TopN) x fault-family grid through the chaos scenario",
        default_grid={
            "fault_family": [
                "none",
                "messages",
                "partition",
                "crash",
                "outage",
                "gray",
                "all",
            ],
            "top_n": [1, 3],
        },
        param_help={
            "fault_family": "which slice of the canonical chaos plan to inject"
            " (none|messages|partition|crash|outage|gray|all)",
            "top_n": "size of the maintained candidate set",
            "horizon_ms": "simulated horizon in ms (default 20000)",
        },
    )
)
register(
    SweepableExperiment(
        name="policy_matrix",
        fn=_policy_matrix,
        description="selection-policy x churn-rate x fault-family trap scenario",
        default_grid={
            "policy": ["lo", "go", "ewma", "reliability", "churn"],
            "churn_rate": [0.5, 2.0],
            "fault_family": ["node_crash", "gray"],
        },
        param_help={
            "policy": "selection policy under test (lo|go|ewma|reliability|churn)",
            "churn_rate": "churn intensity multiplier (default 1.0)",
            "fault_family": "trap fault family (node_crash|gray)",
            "horizon_ms": "simulated horizon in ms (default 60000)",
            "n_users": "concurrent users (default 3)",
            "warmup_ms": "measurement warm-up to exclude, in ms (default 10000)",
        },
    )
)
register(
    SweepableExperiment(
        name="controlplane_chaos",
        fn=_controlplane_chaos,
        description="sharded/replicated control plane through its chaos scenario",
        default_grid={"shards": [1, 2], "replicas": [1, 2]},
        param_help={
            "shards": "geohash shards in the control plane (default 2)",
            "replicas": "replicas per shard (default 2)",
            "horizon_ms": "simulated horizon in ms (default 20000)",
            "n_clients": "clients issuing discovery traffic (default 3)",
            "top_n": "size of the maintained candidate set (default 3)",
        },
    )
)
register(
    SweepableExperiment(
        name="chaos_hunt",
        fn=_chaos_hunt,
        description="schedule search: seeded hunts for invariant violations,"
        " with shrinking (find rate / shrink stats per cell)",
        default_grid={
            "scenario": ["canonical", "controlplane"],
            "failure_detection_ms": [None, 4000.0],
        },
        param_help={
            "scenario": "scenario family plans replay on (canonical|controlplane)",
            "attempts": "schedules sampled per hunt (default 10)",
            "failure_detection_ms": "weakened detection budget override"
            " (None = the scenario default)",
            "horizon_ms": "simulated horizon in ms (default 20000)",
            "shards": "control-plane shards (controlplane scenario)",
            "replicas": "replicas per shard (controlplane scenario)",
            "max_rules": "max rules per sampled schedule (default 5)",
        },
    )
)
register(
    SweepableExperiment(
        name="selftest",
        fn=_selftest,
        description="microsecond engine self-check (deterministic pseudo-metrics)",
        default_grid={"scale": [1.0, 2.0]},
        param_help={
            "scale": "multiplier on the deterministic pseudo-metric",
            "fail": "1 = raise (exercise failure containment)",
            "crash": "1 = kill the executing process (exercise crash salvage)",
            "crash_marker": "path: kill the process once, succeed on retry"
            " (deterministic dead-worker drill)",
            "sleep_s": "stall this long before returning (exercise timeouts)",
        },
    )
)
