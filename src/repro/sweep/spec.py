"""Declarative sweep specifications and content-addressed run identity.

A :class:`SweepSpec` names one registered experiment, a parameter grid,
and a replicate count; :meth:`SweepSpec.expand` materializes the full
cartesian product into :class:`RunSpec` objects — one per (parameter
cell, seed index). Two identities matter, and they are deliberately
different functions:

- ``run_key`` — *what the run computes*: a stable content hash of
  ``(experiment, params, seed_index, salt)``. The run store files
  results under it, so a resumed sweep recognizes completed runs no
  matter which process produced them or in what order. ``salt`` is the
  code-version discriminator: bump it when an experiment's semantics
  change and every cached result is invalidated at once.
- ``root_seed`` — *which random universe the run consumes*: derived via
  :func:`repro.sim.random.derive_seed` /
  :meth:`repro.sim.random.RandomStreams.for_run` from the same content,
  never from execution order or worker assignment, so a run's result is
  a pure function of its ``RunSpec`` — the property that makes serial
  and parallel execution bit-identical.

Parameter values must be JSON scalars (bool/int/float/str/None): the
hash is computed over canonical JSON (sorted keys, no whitespace
variance), and anything fancier would make equality ambiguous.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.sim.random import RandomStreams, derive_seed

__all__ = ["RunSpec", "SweepSpec", "canonical_params", "params_token"]

_SCALAR_TYPES = (bool, int, float, str, type(None))


def _check_scalar(name: str, value: Any) -> None:
    if not isinstance(value, _SCALAR_TYPES):
        raise TypeError(
            f"sweep parameter {name!r} must be a JSON scalar "
            f"(bool/int/float/str/None), got {type(value).__name__}"
        )


def canonical_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Normalize a parameter mapping to a sorted, hashable tuple of pairs."""
    for name, value in params.items():
        _check_scalar(name, value)
    return tuple(sorted(params.items()))


def params_token(params: Mapping[str, Any]) -> str:
    """Canonical JSON of a parameter cell — the hash/grouping token."""
    return json.dumps(dict(params), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined run: experiment x parameter cell x replicate.

    Attributes:
        experiment: registered experiment name (:mod:`repro.sweep.registry`).
        params: canonical ``((name, value), ...)`` parameter cell.
        seed_index: replicate index within the sweep (0-based).
        base_seed: the sweep-level seed replicates are derived from.
        salt: code-version discriminator mixed into ``run_key``.
    """

    experiment: str
    params: Tuple[Tuple[str, Any], ...]
    seed_index: int
    base_seed: int = 42
    salt: str = ""

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def run_key(self) -> str:
        """Stable 16-hex-char content hash identifying this run."""
        token = "|".join(
            (
                self.experiment,
                self.salt,
                params_token(self.params_dict()),
                str(self.seed_index),
                str(self.base_seed),
            )
        )
        return hashlib.sha256(token.encode("utf-8")).hexdigest()[:16]

    @property
    def root_seed(self) -> int:
        """The run's independent random-universe root.

        ``RandomStreams(base_seed).for_run(seed_index)`` gives each
        replicate a disjoint stream family; forking that by the
        (experiment, params) token decorrelates parameter cells, so
        every run draws from its own universe regardless of execution
        order or worker assignment.
        """
        replicate = RandomStreams(self.base_seed).for_run(self.seed_index)
        return derive_seed(
            replicate.root_seed,
            f"{self.experiment}:{params_token(self.params_dict())}",
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "params": self.params_dict(),
            "seed_index": self.seed_index,
            "base_seed": self.base_seed,
            "salt": self.salt,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        return cls(
            experiment=data["experiment"],
            params=canonical_params(data["params"]),
            seed_index=int(data["seed_index"]),
            base_seed=int(data["base_seed"]),
            salt=str(data.get("salt", "")),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: experiment x parameter grid x replicates.

    ``grid`` maps parameter name -> sequence of values; expansion takes
    the cartesian product over parameter names in sorted order (so two
    grids that differ only in dict insertion order expand identically),
    with each parameter's values kept in their given order.
    """

    experiment: str
    grid: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    n_seeds: int = 1
    base_seed: int = 42
    salt: str = ""

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ValueError("experiment name must be non-empty")
        if self.n_seeds < 1:
            raise ValueError(f"n_seeds must be >= 1: {self.n_seeds}")
        for name, values in self.grid:
            if not values:
                raise ValueError(f"grid axis {name!r} has no values")
            for value in values:
                _check_scalar(name, value)

    @classmethod
    def build(
        cls,
        experiment: str,
        grid: Mapping[str, Sequence[Any]],
        *,
        n_seeds: int = 1,
        base_seed: int = 42,
        salt: str = "",
    ) -> "SweepSpec":
        """The mapping-friendly constructor (grid axes canonicalized)."""
        axes = tuple(
            (name, tuple(grid[name])) for name in sorted(grid)
        )
        return cls(
            experiment=experiment,
            grid=axes,
            n_seeds=n_seeds,
            base_seed=base_seed,
            salt=salt,
        )

    # ------------------------------------------------------------------
    def cells(self) -> List[Dict[str, Any]]:
        """All parameter cells, in deterministic expansion order."""
        out: List[Dict[str, Any]] = [{}]
        for name, values in self.grid:
            out = [dict(cell, **{name: v}) for cell in out for v in values]
        return out

    def expand(self) -> List[RunSpec]:
        """Materialize every run, cell-major then seed-index order.

        The order is itself deterministic — executors report results in
        this order no matter when each run completes.
        """
        runs: List[RunSpec] = []
        for cell in self.cells():
            for seed_index in range(self.n_seeds):
                runs.append(
                    RunSpec(
                        experiment=self.experiment,
                        params=canonical_params(cell),
                        seed_index=seed_index,
                        base_seed=self.base_seed,
                        salt=self.salt,
                    )
                )
        return runs

    def total_runs(self) -> int:
        count = self.n_seeds
        for _, values in self.grid:
            count *= len(values)
        return count

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "grid": {name: list(values) for name, values in self.grid},
            "n_seeds": self.n_seeds,
            "base_seed": self.base_seed,
            "salt": self.salt,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        return cls.build(
            data["experiment"],
            data["grid"],
            n_seeds=int(data["n_seeds"]),
            base_seed=int(data["base_seed"]),
            salt=str(data.get("salt", "")),
        )

