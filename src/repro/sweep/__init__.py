"""``repro.sweep`` — parallel, resumable experiment execution.

The paper's evaluation is a grid: parameter axes x seeds x strategies.
This subsystem turns any registered experiment into a sweepable unit
and executes the grid with the job-runner shape production stacks use —
sharding across workers, content-addressed result caching, bounded
retry, deterministic aggregation:

- :mod:`repro.sweep.spec` — :class:`SweepSpec` (declarative grid) and
  :class:`RunSpec` (one run, with a content-hashed ``run_key`` and an
  order-independent ``root_seed``).
- :mod:`repro.sweep.registry` — named sweepable experiments
  (``fig9_topn``, ``churn_trace``, ``network_study``, ``qos_admission``).
- :mod:`repro.sweep.store` — crash-safe on-disk run store (atomic
  JSONL records keyed by ``run_key``); interrupted sweeps resume by
  skipping completed runs.
- :mod:`repro.sweep.executor` — :func:`run_sweep`: process-pool
  execution with per-run timeout and crash retry, plus a bit-identical
  serial reference mode.
- :mod:`repro.sweep.aggregate` — cross-seed mean/p50/p95/CI reduction
  and comparison tables.

CLI: ``repro sweep run|status|report``. Lifecycle trace events
(``sweep_run_started``/``finished``/``retried``/``skipped``) flow
through :mod:`repro.obs` like every other subsystem's.
"""

from repro.sweep.aggregate import (
    CellAggregate,
    MetricAggregate,
    aggregate_records,
    aggregates_digest,
    comparison_table,
    metric_names,
)
from repro.sweep.executor import SweepInterrupted, SweepResult, run_sweep
from repro.sweep.registry import (
    SweepableExperiment,
    experiment_names,
    get_experiment,
    register,
)
from repro.sweep.spec import RunSpec, SweepSpec
from repro.sweep.store import RunRecord, RunStore

__all__ = [
    "SweepSpec",
    "RunSpec",
    "RunStore",
    "RunRecord",
    "run_sweep",
    "SweepResult",
    "SweepInterrupted",
    "SweepableExperiment",
    "register",
    "get_experiment",
    "experiment_names",
    "aggregate_records",
    "aggregates_digest",
    "comparison_table",
    "metric_names",
    "CellAggregate",
    "MetricAggregate",
]
