"""``repro.sweep`` — a platform-pluggable, resumable experiment engine.

The paper's evaluation is a grid: parameter axes x seeds x strategies.
This subsystem turns any registered experiment into a sweepable unit
and executes the grid with the job-runner shape production stacks use —
pluggable execution platforms, content-addressed result caching,
bounded retry, deterministic aggregation, automated reporting:

- :mod:`repro.sweep.spec` — :class:`SweepSpec` (declarative grid) and
  :class:`RunSpec` (one run, with a content-hashed ``run_key`` and an
  order-independent ``root_seed``).
- :mod:`repro.sweep.registry` — named sweepable experiments
  (``fig9_topn``, ``chaos_matrix``, ``policy_matrix``,
  ``controlplane_chaos``, ...), each with a parameter schema shown by
  ``repro sweep list``.
- :mod:`repro.sweep.store` — crash-safe on-disk run store (atomic
  JSONL records keyed by ``run_key``); interrupted sweeps resume by
  skipping completed runs.
- :mod:`repro.sweep.executor` — :func:`run_sweep`, the sans-execution
  scheduler: ordering, resume-skip, retry budgets, Ctrl-C-safe
  persistence. Never touches a pool.
- :mod:`repro.sweep.platform` — the :class:`ExecutionPlatform` seam and
  its implementations: inline (serial reference), process pool, and
  long-lived worker subprocesses (:mod:`repro.sweep.worker`) speaking a
  host-agnostic JSON-lines protocol with heartbeats and dead-worker
  requeue.
- :mod:`repro.sweep.aggregate` — cross-seed mean/p50/p95/CI reduction
  and comparison tables.
- :mod:`repro.sweep.report` — store -> Markdown tables and tagged-
  section refresh of EXPERIMENTS.md (byte-reproducible; CI diffs it).

Results are bit-identical across platforms: a run's metrics are a pure
function of its content-derived ``root_seed``, so serial, pooled,
subprocess, interrupted-and-resumed executions all converge to the same
``aggregates_digest``.

CLI: ``repro sweep run|status|list|report``. Lifecycle trace events
(``sweep_run_started``/``finished``/``retried``/``skipped``,
``worker_spawn``/``worker_dead``/``run_requeued``) flow through
:mod:`repro.obs` like every other subsystem's.
"""

from repro.sweep.aggregate import (
    CellAggregate,
    MetricAggregate,
    aggregate_records,
    aggregates_digest,
    comparison_table,
    metric_names,
)
from repro.sweep.executor import SweepInterrupted, SweepResult, run_sweep
from repro.sweep.platform import (
    ExecutionPlatform,
    InlinePlatform,
    ProcessPoolPlatform,
    RunOutcome,
    SubprocessPlatform,
    make_platform,
    platform_names,
)
from repro.sweep.registry import (
    SweepableExperiment,
    experiment_names,
    get_experiment,
    register,
)
from repro.sweep.report import (
    SectionCheckFailed,
    render_markdown,
    render_store_markdown,
    store_digest,
    tagged_section,
    update_tagged_section,
)
from repro.sweep.spec import RunSpec, SweepSpec
from repro.sweep.store import RunRecord, RunStore

__all__ = [
    "SweepSpec",
    "RunSpec",
    "RunStore",
    "RunRecord",
    "run_sweep",
    "SweepResult",
    "SweepInterrupted",
    "ExecutionPlatform",
    "RunOutcome",
    "InlinePlatform",
    "ProcessPoolPlatform",
    "SubprocessPlatform",
    "make_platform",
    "platform_names",
    "SweepableExperiment",
    "register",
    "get_experiment",
    "experiment_names",
    "aggregate_records",
    "aggregates_digest",
    "comparison_table",
    "metric_names",
    "CellAggregate",
    "MetricAggregate",
    "render_markdown",
    "render_store_markdown",
    "store_digest",
    "tagged_section",
    "update_tagged_section",
    "SectionCheckFailed",
]
