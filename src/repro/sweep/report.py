"""The sweep report pipeline: run store -> Markdown -> EXPERIMENTS.md.

The third layer of the sweep engine. The store holds bit-reproducible
per-run records, the aggregator reduces them canonically, and this
module renders the result as Markdown tables (one table per experiment;
rows are parameter cells in sorted cell-key order; values are
``mean ± ci95``) and splices them into tagged sections of a document::

    <!-- sweep-report:fig9 -->
    ...generated — do not edit by hand...
    <!-- /sweep-report:fig9 -->

Everything here is deterministic on purpose: cells, metrics, and
experiments are sorted; floats render via ``format(value, ".6g")``
(shortest-round-trip within six significant digits, no locale, no
platform drift); and the section body contains nothing time- or
host-dependent. Two stores with equal :func:`aggregates_digest` render
byte-identical Markdown — which is what lets CI regenerate a committed
report section and ``diff`` it (:func:`update_tagged_section` with
``check=True``) as an end-to-end bit-reproducibility gate, the same
property ``bench_sweep`` asserts on the digest itself.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.fsutil import atomic_write_text
from repro.sweep.aggregate import (
    CellAggregate,
    aggregate_records,
    aggregates_digest,
)
from repro.sweep.store import RunRecord, RunStore

__all__ = [
    "render_markdown",
    "render_store_markdown",
    "tagged_section",
    "update_tagged_section",
    "SectionCheckFailed",
    "store_digest",
]


def _fmt(value: float) -> str:
    """Canonical float rendering: 6 significant digits, trailing-zero
    free — stable across platforms for bit-identical inputs."""
    return format(value, ".6g")


def _cell_label(cell: CellAggregate) -> str:
    pairs = [f"{k}={v}" for k, v in sorted(cell.params.items())]
    return ", ".join(pairs) or "(default)"


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def _experiment_table(cells: List[CellAggregate]) -> List[str]:
    """One GitHub-flavored Markdown table: cells x metrics, mean ± ci95."""
    metrics: List[str] = sorted({m for c in cells for m in c.metrics})
    header = ["cell", "seeds"] + metrics
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join(["---"] * len(header)) + "|",
    ]
    for cell in cells:
        row = [_escape(_cell_label(cell)), str(cell.n_seeds)]
        for name in metrics:
            agg = cell.metrics.get(name)
            if agg is None:
                row.append("—")
            elif agg.n > 1:
                row.append(f"{_fmt(agg.mean)} ± {_fmt(agg.ci_half_width)}")
            else:
                row.append(_fmt(agg.mean))
        lines.append("| " + " | ".join(row) + " |")
    return lines


def render_markdown(
    aggregates: Dict[str, CellAggregate], *, heading_level: int = 4
) -> str:
    """Render aggregates as Markdown: one table per experiment.

    Experiments and cells appear in sorted order; metric columns are the
    sorted union of the experiment's metric names; each value is
    ``mean ± ci95`` (bare mean for single-seed cells, where the CI
    half-width is zero by construction). Deterministic: equal aggregate
    digests render byte-identical text.
    """
    by_experiment: Dict[str, List[CellAggregate]] = {}
    for key in sorted(aggregates):
        cell = aggregates[key]
        by_experiment.setdefault(cell.experiment, []).append(cell)

    if not by_experiment:
        return "_no successful runs in the store_\n"

    mark = "#" * heading_level
    blocks: List[str] = []
    for experiment in sorted(by_experiment):
        cells = by_experiment[experiment]
        seeds = sorted({c.n_seeds for c in cells})
        seeds_note = (
            f"{seeds[0]}" if len(seeds) == 1 else f"{seeds[0]}–{seeds[-1]}"
        )
        blocks.append(
            f"{mark} `{experiment}` — {len(cells)} cell"
            f"{'s' if len(cells) != 1 else ''}, {seeds_note} seed"
            f"{'s' if seeds != [1] else ''} per cell\n\n"
            + "\n".join(_experiment_table(cells))
        )
    return "\n\n".join(blocks) + "\n"


def render_store_markdown(
    store: Union[RunStore, Iterable[RunRecord]],
    *,
    experiments: Optional[List[str]] = None,
    heading_level: int = 4,
) -> str:
    """Render a run store (or record iterable) as Markdown tables.

    ``experiments`` optionally restricts the report to those experiment
    names (unknown names simply match nothing — the store is the source
    of truth, not the registry).
    """
    records = store.records() if isinstance(store, RunStore) else list(store)
    if experiments is not None:
        wanted = set(experiments)
        records = [r for r in records if r.experiment in wanted]
    return render_markdown(
        aggregate_records(records), heading_level=heading_level
    )


# ----------------------------------------------------------------------
# Tagged-section splicing
# ----------------------------------------------------------------------
def _markers(tag: str) -> "tuple[str, str]":
    if not tag or "--" in tag or any(c in tag for c in "<> \n"):
        raise ValueError(f"invalid section tag: {tag!r}")
    return f"<!-- sweep-report:{tag} -->", f"<!-- /sweep-report:{tag} -->"


def tagged_section(tag: str, body: str) -> str:
    """The full replacement text between (and including) the markers."""
    begin, end = _markers(tag)
    note = "<!-- generated by `repro sweep report`; do not edit by hand -->"
    return f"{begin}\n{note}\n{body.rstrip()}\n{end}"


class SectionCheckFailed(RuntimeError):
    """``check=True`` found the on-disk section differs from the render."""


def update_tagged_section(
    path: Union[str, Path],
    tag: str,
    body: str,
    *,
    check: bool = False,
) -> bool:
    """Write (or verify) one tagged report section of a document.

    If the document contains the ``<!-- sweep-report:tag -->`` markers,
    the text between them is replaced; otherwise the whole section is
    appended at the end. The write is atomic (crash leaves the old
    document intact). With ``check=True`` nothing is written: returns
    normally if the on-disk section already equals the render
    byte-for-byte and raises :class:`SectionCheckFailed` otherwise —
    the CI reproducibility gate.

    Returns True if the document changed (or would change, under
    ``check``).
    """
    path = Path(path)
    begin, end = _markers(tag)
    section = tagged_section(tag, body)
    text = path.read_text(encoding="utf-8") if path.exists() else ""

    begin_at = text.find(begin)
    if begin_at != -1:
        end_at = text.find(end, begin_at)
        if end_at == -1:
            raise ValueError(
                f"{path}: opening marker for {tag!r} has no closing marker"
            )
        new_text = text[:begin_at] + section + text[end_at + len(end):]
    elif text:
        new_text = text.rstrip("\n") + "\n\n" + section + "\n"
    else:
        new_text = section + "\n"

    changed = new_text != text
    if check:
        if changed:
            raise SectionCheckFailed(
                f"{path}: section {tag!r} is stale — regenerate with "
                f"`repro sweep report --update {path} --tag {tag}`"
            )
        return False
    if changed:
        atomic_write_text(path, new_text)
    return changed


def store_digest(store: Union[RunStore, Iterable[RunRecord]]) -> str:
    """The canonical aggregates digest of a store's successful records."""
    records = store.records() if isinstance(store, RunStore) else list(store)
    return aggregates_digest(aggregate_records(records))
