"""The on-disk, content-addressed run store.

Layout (one directory per sweep)::

    <root>/
      manifest.json        # the SweepSpec that owns this store
      runs/<run_key>.json  # one RunRecord per completed/failed run

Every file — run records *and* the manifest — is written with
:func:`repro.fsutil.atomic_write_text` (tmp + fsync + ``os.replace``),
and each run record is a *single JSON line* — the store's wire format
is JSONL, with one line per file so writes are independent and a crash
at any instant can never tear the store (regression-tested for both
paths in ``tests/test_sweep_store.py``). An interrupted sweep resumes
by asking :meth:`RunStore.completed_keys` and skipping those runs;
:meth:`RunStore.export_jsonl` merges all records into one conventional
JSONL file for shipping/analysis.

Only records with ``status == "ok"`` count as completed: failed and
timed-out runs are kept (for ``repro sweep status`` forensics) but are
re-executed by the next sweep over the same store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.fsutil import atomic_write_text
from repro.sweep.spec import SweepSpec

__all__ = ["RunRecord", "RunStore", "STATUS_OK", "STATUS_FAILED", "STATUS_TIMEOUT"]

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
_STATUSES = (STATUS_OK, STATUS_FAILED, STATUS_TIMEOUT)


@dataclass
class RunRecord:
    """One run's persisted outcome."""

    run_key: str
    experiment: str
    params: Dict[str, Any]
    seed_index: int
    root_seed: int
    status: str
    metrics: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    attempts: int = 1
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ValueError(
                f"status must be one of {_STATUSES}: {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_key": self.run_key,
            "experiment": self.experiment,
            "params": self.params,
            "seed_index": self.seed_index,
            "root_seed": self.root_seed,
            "status": self.status,
            "metrics": self.metrics,
            "error": self.error,
            "attempts": self.attempts,
            "duration_s": self.duration_s,
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        return cls(
            run_key=data["run_key"],
            experiment=data["experiment"],
            params=dict(data["params"]),
            seed_index=int(data["seed_index"]),
            root_seed=int(data["root_seed"]),
            status=data["status"],
            metrics=dict(data.get("metrics") or {}),
            error=data.get("error"),
            attempts=int(data.get("attempts", 1)),
            duration_s=float(data.get("duration_s", 0.0)),
        )


class RunStore:
    """Directory-backed store of :class:`RunRecord`, keyed by ``run_key``."""

    MANIFEST = "manifest.json"
    RUNS_DIR = "runs"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / self.RUNS_DIR
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    # -- manifest -------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    def save_manifest(self, spec: SweepSpec) -> None:
        """Persist the owning spec (refused if a *different* one exists).

        Resuming with a changed spec would silently mix two sweeps'
        records in one store; the caller must use a fresh directory (or
        bump ``salt``, which changes every run key anyway).
        """
        existing = self.load_manifest()
        if existing is not None and existing != spec:
            raise ValueError(
                f"store {self.root} already holds a different sweep "
                f"({existing.experiment!r}); use a fresh --store directory"
            )
        atomic_write_text(
            self.manifest_path,
            json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n",
        )

    def load_manifest(self) -> Optional[SweepSpec]:
        if not self.manifest_path.exists():
            return None
        return SweepSpec.from_dict(json.loads(self.manifest_path.read_text()))

    # -- records --------------------------------------------------------
    def path_for(self, run_key: str) -> Path:
        return self.runs_dir / f"{run_key}.json"

    def put(self, record: RunRecord) -> None:
        """Persist one record atomically (last write per key wins)."""
        atomic_write_text(
            self.path_for(record.run_key), record.to_json_line() + "\n"
        )

    def get(self, run_key: str) -> Optional[RunRecord]:
        """The stored record, or None if missing/unreadable.

        A torn record is impossible by construction (atomic writes); an
        unparsable file — e.g. hand-edited — is treated as absent so the
        run simply re-executes.
        """
        path = self.path_for(run_key)
        if not path.exists():
            return None
        try:
            return RunRecord.from_dict(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            return None

    def records(self) -> List[RunRecord]:
        """Every readable record, sorted by run key (deterministic)."""
        out: List[RunRecord] = []
        for path in sorted(self.runs_dir.glob("*.json")):
            record = self.get(path.stem)
            if record is not None:
                out.append(record)
        return out

    def completed_keys(self) -> Set[str]:
        """Run keys with a successful record (what resume skips)."""
        return {r.run_key for r in self.records() if r.ok}

    def __len__(self) -> int:
        return sum(1 for _ in self.runs_dir.glob("*.json"))

    def __contains__(self, run_key: str) -> bool:
        return self.path_for(run_key).exists()

    # -- export ---------------------------------------------------------
    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Merge all records into one JSONL file (atomic); returns count."""
        records = self.records()
        atomic_write_text(
            path, "".join(r.to_json_line() + "\n" for r in records)
        )
        return len(records)

    def __repr__(self) -> str:
        return f"RunStore({self.root}, records={len(self)})"
