"""Pluggable execution platforms for the sweep scheduler.

The sweep engine is split along one seam: the **scheduler**
(:func:`repro.sweep.executor.run_sweep`) owns *what* runs — ordering,
resume-skip, retry budgets, terminal statuses, persistence — and an
:class:`ExecutionPlatform` owns *where* it runs. The contract is three
methods:

- ``submit(run)`` enqueues one :class:`~repro.sweep.spec.RunSpec`.
- ``drain()`` yields exactly one :class:`RunOutcome` per submitted,
  not-yet-drained run, in whatever order the platform completes them
  (the scheduler restores expansion order), then returns. ``submit`` /
  ``drain`` may alternate any number of times.
- ``shutdown()`` releases workers/pools; the platform is done after it.

A platform never decides policy. Experiment exceptions come back as
``failed`` outcomes; infrastructure losses (a crashed worker, a timeout)
come back as ``lost``/``timeout`` outcomes and the *scheduler* decides
whether to re-submit them. An outcome with ``collateral=True`` marks a
run that was a bystander of someone else's failure (e.g. a pool recycled
because another run timed out): the scheduler requeues it without
charging its retry budget.

Three implementations:

- :class:`InlinePlatform` — in-process, serial, expansion order. The
  bit-identity reference; the only platform where ad-hoc (runtime
  registered) experiments and debuggers always work. Ignores
  ``timeout_s``.
- :class:`ProcessPoolPlatform` — ``ProcessPoolExecutor`` fan-out
  (fork start method where available), including the
  ``BrokenProcessPool`` salvage of completed futures and the
  kill-the-wedged-pool timeout path.
- :class:`SubprocessPlatform` — long-lived worker subprocesses speaking
  the JSON-lines protocol of :mod:`repro.sweep.worker` over
  stdin/stdout, with per-worker heartbeats, dead-worker detection and
  in-flight run handback. The wire format is host-agnostic — the
  stepping stone to SSH/container fan-out.

Results are bit-identical across platforms by construction: a run's
metrics are a pure function of ``(experiment, params, root_seed)``
(see :mod:`repro.sweep.spec`), params/metrics are JSON scalars whose
JSON round-trip is exact, and aggregation sorts canonically.
"""

from __future__ import annotations

import json
import os
import selectors
import subprocess
import sys
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.obs.events import RunRequeued, WorkerDead, WorkerSpawn
from repro.obs.tracer import Tracer
from repro.sweep.spec import RunSpec
from repro.sweep.store import STATUS_FAILED, STATUS_OK, STATUS_TIMEOUT

__all__ = [
    "OUTCOME_LOST",
    "RunOutcome",
    "ExecutionPlatform",
    "InlinePlatform",
    "ProcessPoolPlatform",
    "SubprocessPlatform",
    "PLATFORMS",
    "make_platform",
    "platform_names",
]

#: Outcome status for an infrastructure loss (dead worker, broken pool):
#: never persisted — the scheduler either requeues the run or records it
#: as ``failed`` once its retry budget is spent.
OUTCOME_LOST = "lost"


@dataclass(frozen=True)
class RunOutcome:
    """One platform-level execution result for one submitted run.

    ``status`` is ``ok``/``failed`` (terminal, experiment-level) or
    ``timeout``/``lost`` (infrastructure — scheduler decides retry).
    ``collateral`` marks innocent-bystander losses that must not charge
    the run's retry budget. ``worker`` names the executing slot where a
    platform has one (diagnostics only — never part of run identity).
    """

    run_key: str
    status: str
    metrics: Mapping[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    duration_s: float = 0.0
    collateral: bool = False
    worker: Optional[str] = None

    @property
    def is_terminal(self) -> bool:
        """Experiment-level outcome — the scheduler records it as-is."""
        return self.status in (STATUS_OK, STATUS_FAILED)


@runtime_checkable
class ExecutionPlatform(Protocol):
    """Where sweep runs execute. See the module docstring for the
    submit/drain/shutdown contract."""

    name: str

    def submit(self, run: RunSpec) -> None: ...

    def drain(self) -> Iterator[RunOutcome]: ...

    def shutdown(self) -> None: ...


def _invoke(experiment: str, params: Dict[str, object], root_seed: int):
    """Execute one run in this process: resolve by name, run, time it."""
    from repro.sweep.registry import get_experiment

    fn = get_experiment(experiment).fn
    start = time.perf_counter()
    metrics = fn(dict(params), root_seed)
    return metrics, time.perf_counter() - start


def _execute_outcome(run: RunSpec) -> RunOutcome:
    """Run in-process with per-run failure containment.

    ``Exception`` is an experiment failure (contained); ``BaseException``
    (KeyboardInterrupt/SystemExit) propagates — the scheduler's finally
    blocks make that the Ctrl-C-safe resume path."""
    start = time.perf_counter()
    try:
        metrics, duration = _invoke(run.experiment, run.params_dict(), run.root_seed)
    except Exception as exc:  # noqa: BLE001 - contained per-run
        return RunOutcome(
            run_key=run.run_key,
            status=STATUS_FAILED,
            error=f"{type(exc).__name__}: {exc}",
            duration_s=time.perf_counter() - start,
        )
    return RunOutcome(
        run_key=run.run_key,
        status=STATUS_OK,
        metrics=metrics,
        duration_s=duration,
    )


# ----------------------------------------------------------------------
class InlinePlatform:
    """Serial in-process execution in submission order."""

    name = "inline"

    def __init__(self, **_ignored: object) -> None:
        self._queue: Deque[RunSpec] = deque()

    def submit(self, run: RunSpec) -> None:
        self._queue.append(run)

    def drain(self) -> Iterator[RunOutcome]:
        while self._queue:
            yield _execute_outcome(self._queue.popleft())

    def shutdown(self) -> None:
        self._queue.clear()


# ----------------------------------------------------------------------
def _mp_context():
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when a worker is wedged mid-task.

    ``shutdown`` alone would leave the hung worker alive (and the
    interpreter's atexit hook would later join it forever); there is no
    public kill API, so reach for the worker processes directly.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, AttributeError):  # pragma: no cover - racing exit
            pass


class ProcessPoolPlatform:
    """``ProcessPoolExecutor`` fan-out (fork-first start method).

    Timeout handling: ``timeout_s`` bounds each ``Future.result`` wait.
    On overrun the culprit comes back as a ``timeout`` outcome, the
    wedged pool is killed, completed futures are salvaged as ``ok``, and
    everything else is handed back as *collateral* ``lost`` outcomes
    (requeued free of retry-budget charge). A ``BrokenProcessPool``
    salvages completed futures the same way but its victims are
    non-collateral — a crashing run must eventually burn its budget.
    """

    name = "pool"

    def __init__(
        self,
        workers: int = 2,
        *,
        timeout_s: Optional[float] = None,
        **_ignored: object,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        self.workers = workers
        self.timeout_s = timeout_s
        self._context = _mp_context()
        self._queue: List[RunSpec] = []
        self._pool: Optional[ProcessPoolExecutor] = None

    def submit(self, run: RunSpec) -> None:
        self._queue.append(run)

    def _fresh_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._context
            )
        return self._pool

    def _discard_pool(self, *, kill: bool) -> None:
        if self._pool is None:
            return
        if kill:
            _kill_pool(self._pool)
        else:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    @staticmethod
    def _salvage(run: RunSpec, future: "Future") -> Optional[RunOutcome]:
        """An ``ok`` outcome if the future completed cleanly, else None."""
        if future.done() and not future.cancelled() and not future.exception():
            metrics, duration = future.result()
            return RunOutcome(
                run_key=run.run_key,
                status=STATUS_OK,
                metrics=metrics,
                duration_s=duration,
            )
        return None

    def drain(self) -> Iterator[RunOutcome]:
        wave, self._queue = self._queue, []
        if not wave:
            return
        pool = self._fresh_pool()
        futures = {
            run.run_key: pool.submit(
                _invoke, run.experiment, run.params_dict(), run.root_seed
            )
            for run in wave
        }
        pool_broken = False
        for index, run in enumerate(wave):
            key = run.run_key
            if pool_broken:
                # The pool died; results that completed before the crash
                # are still held by their futures — keep them, hand the
                # rest back without waiting.
                salvaged = self._salvage(run, futures[key])
                yield salvaged or RunOutcome(
                    run_key=key, status=OUTCOME_LOST, error="worker pool crashed"
                )
                continue
            try:
                metrics, duration = futures[key].result(timeout=self.timeout_s)
            except BrokenProcessPool:
                pool_broken = True
                self._discard_pool(kill=False)
                yield RunOutcome(
                    run_key=key, status=OUTCOME_LOST, error="worker pool crashed"
                )
            except FuturesTimeout:
                # The slot is wedged: report the culprit, salvage what
                # finished, hand back the rest collaterally, kill the pool.
                yield RunOutcome(
                    run_key=key,
                    status=STATUS_TIMEOUT,
                    error=f"run exceeded {self.timeout_s}s",
                )
                for late in wave[index + 1 :]:
                    salvaged = self._salvage(late, futures[late.run_key])
                    yield salvaged or RunOutcome(
                        run_key=late.run_key,
                        status=OUTCOME_LOST,
                        error="pool recycled after a timeout",
                        collateral=True,
                    )
                self._discard_pool(kill=True)
                return
            except Exception as exc:  # noqa: BLE001 - experiment error
                yield RunOutcome(
                    run_key=key,
                    status=STATUS_FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                )
            else:
                yield RunOutcome(
                    run_key=key,
                    status=STATUS_OK,
                    metrics=metrics,
                    duration_s=duration,
                )

    def shutdown(self) -> None:
        self._queue.clear()
        self._discard_pool(kill=False)


# ----------------------------------------------------------------------
# Subprocess fan-out over the repro.sweep.worker JSON-lines protocol
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    """Parent-side bookkeeping for one long-lived worker subprocess."""

    slot: int
    process: subprocess.Popen
    spawned_at: float
    last_beat: float
    current: Optional[RunSpec] = None
    started_at: float = 0.0
    buffer: str = ""

    @property
    def label(self) -> str:
        return f"w{self.slot}"

    @property
    def busy(self) -> bool:
        return self.current is not None


class SubprocessPlatform:
    """Fan runs out to long-lived worker subprocesses.

    Each worker is ``python -m repro.sweep.worker``: jobs go down stdin
    as JSON lines, results and heartbeats come back up stdout (see
    :mod:`repro.sweep.worker` for the wire format). One run is in flight
    per worker; a worker whose process exits, whose stdout reaches EOF,
    or whose heartbeat goes stale is declared dead — its in-flight run
    is handed back to the scheduler as a ``lost`` outcome
    (``run_requeued`` trace event) and the slot respawns on demand
    (``worker_spawn``/``worker_dead`` events), bounded by
    ``max_respawns`` per slot so a poisoned host cannot respawn forever.

    Workers resolve experiments by name from a fresh interpreter, so —
    like spawn-started pools — only import-time-registered experiments
    are reachable; runtime registrations need :class:`InlinePlatform`
    or a forked :class:`ProcessPoolPlatform`.
    """

    name = "subprocess"

    #: Heartbeats a worker may miss before it is declared dead.
    MISSED_BEATS = 6

    def __init__(
        self,
        workers: int = 2,
        *,
        timeout_s: Optional[float] = None,
        heartbeat_s: float = 0.25,
        tracer: Optional[Tracer] = None,
        python: Optional[str] = None,
        max_respawns: int = 3,
        **_ignored: object,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0: {heartbeat_s}")
        self.workers = workers
        self.timeout_s = timeout_s
        self.heartbeat_s = heartbeat_s
        self.tracer = tracer or Tracer.disabled()
        self.python = python or sys.executable
        self.max_respawns = max_respawns
        self._queue: Deque[RunSpec] = deque()
        self._alive: Dict[int, _Worker] = {}
        self._spawns: Dict[int, int] = {}
        self._selector = selectors.DefaultSelector()
        self._shutdown = False

    # -- worker lifecycle ----------------------------------------------
    def _spawn(self, slot: int) -> Optional[_Worker]:
        if self._spawns.get(slot, 0) >= self.max_respawns:
            return None
        self._spawns[slot] = self._spawns.get(slot, 0) + 1
        env = dict(os.environ)
        # The worker must import the same repro the parent runs, even
        # when the parent was launched via PYTHONPATH=src from a checkout.
        import repro

        pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH", "")
        if pkg_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + (os.pathsep + existing if existing else "")
            )
        process = subprocess.Popen(
            [
                self.python,
                "-u",
                "-m",
                "repro.sweep.worker",
                "--heartbeat-s",
                str(self.heartbeat_s),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        now = time.monotonic()
        worker = _Worker(
            slot=slot, process=process, spawned_at=now, last_beat=now
        )
        self._alive[slot] = worker
        self._selector.register(process.stdout, selectors.EVENT_READ, worker)
        if self.tracer.enabled:
            self.tracer.emit(
                WorkerSpawn(
                    self.tracer.now(), worker.label, process.pid, self.name
                )
            )
        return worker

    def _ensure_workers(self) -> None:
        for slot in range(self.workers):
            if slot not in self._alive:
                self._spawn(slot)

    def _reap(
        self, worker: _Worker, reason: str, *, quiet: bool = False
    ) -> Optional[RunOutcome]:
        """Kill a dead/hung worker; hand back its in-flight run if any.

        ``quiet`` suppresses the ``worker_dead`` event — used for the
        orderly end-of-sweep shutdown, which is not a failure.
        """
        try:
            self._selector.unregister(worker.process.stdout)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        self._alive.pop(worker.slot, None)
        try:
            worker.process.kill()
        except OSError:  # pragma: no cover - racing exit
            pass
        worker.process.stdout.close()
        if worker.process.stdin and not worker.process.stdin.closed:
            try:
                worker.process.stdin.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        worker.process.wait()
        run = worker.current
        worker.current = None
        if self.tracer.enabled and not quiet:
            self.tracer.emit(
                WorkerDead(
                    self.tracer.now(),
                    worker.label,
                    worker.process.pid,
                    reason,
                    run_key=run.run_key if run is not None else None,
                )
            )
        if run is None:
            return None
        if self.tracer.enabled:
            self.tracer.emit(
                RunRequeued(
                    self.tracer.now(), run.run_key, run.experiment, reason
                )
            )
        status = STATUS_TIMEOUT if reason.startswith("timeout") else OUTCOME_LOST
        return RunOutcome(
            run_key=run.run_key,
            status=status,
            error=f"worker {worker.label} {reason}",
            worker=worker.label,
        )

    def _send(self, worker: _Worker, message: Dict[str, object]) -> bool:
        try:
            worker.process.stdin.write(json.dumps(message) + "\n")
            worker.process.stdin.flush()
            return True
        except (BrokenPipeError, OSError):
            return False

    def _dispatch(self) -> None:
        """Hand queued runs to idle workers (one in flight per worker)."""
        for worker in list(self._alive.values()):
            if not self._queue:
                return
            if worker.busy:
                continue
            run = self._queue[0]
            message = {
                "op": "run",
                "run_key": run.run_key,
                "experiment": run.experiment,
                "params": run.params_dict(),
                "root_seed": run.root_seed,
            }
            if self._send(worker, message):
                self._queue.popleft()
                worker.current = run
                worker.started_at = time.monotonic()
            # On send failure the read loop will reap the worker; the
            # run stays queued.

    # -- message handling ----------------------------------------------
    def _handle_line(self, worker: _Worker, line: str) -> Optional[RunOutcome]:
        worker.last_beat = time.monotonic()
        try:
            message = json.loads(line)
        except json.JSONDecodeError:
            return None  # garbage on stdout is not a protocol event
        op = message.get("op")
        if op in ("ready", "heartbeat"):
            return None
        if op == "result":
            run = worker.current
            if run is None or message.get("run_key") != run.run_key:
                return None  # stale result from a pre-reap run
            worker.current = None
            status = str(message.get("status", STATUS_FAILED))
            if status not in (STATUS_OK, STATUS_FAILED):
                status = STATUS_FAILED
            metrics = message.get("metrics") or {}
            return RunOutcome(
                run_key=run.run_key,
                status=status,
                metrics={str(k): float(v) for k, v in metrics.items()},
                error=message.get("error"),
                duration_s=float(message.get("duration_s", 0.0)),
                worker=worker.label,
            )
        return None

    def _read_ready(self, timeout: float) -> List[RunOutcome]:
        outcomes: List[RunOutcome] = []
        for key, _ in self._selector.select(timeout=timeout):
            worker: _Worker = key.data
            line = worker.process.stdout.readline()
            if line == "":  # EOF — the worker process died
                outcome = self._reap(worker, "died (stdout closed)")
                if outcome is not None:
                    outcomes.append(outcome)
                continue
            outcome = self._handle_line(worker, line)
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    def _check_health(self) -> List[RunOutcome]:
        outcomes: List[RunOutcome] = []
        now = time.monotonic()
        stale_after = self.heartbeat_s * self.MISSED_BEATS
        for worker in list(self._alive.values()):
            reason = None
            if worker.process.poll() is not None:
                reason = f"died (exit {worker.process.returncode})"
            elif (
                self.timeout_s is not None
                and worker.busy
                and now - worker.started_at > self.timeout_s
            ):
                reason = f"timeout after {self.timeout_s}s"
            elif now - worker.last_beat > stale_after:
                reason = (
                    f"heartbeat lost ({self.MISSED_BEATS} beats of "
                    f"{self.heartbeat_s}s missed)"
                )
            if reason is not None:
                outcome = self._reap(worker, reason)
                if outcome is not None:
                    outcomes.append(outcome)
        return outcomes

    # -- platform protocol ---------------------------------------------
    def submit(self, run: RunSpec) -> None:
        if self._shutdown:
            raise RuntimeError("platform already shut down")
        self._queue.append(run)

    def drain(self) -> Iterator[RunOutcome]:
        pending = len(self._queue) + sum(
            1 for w in self._alive.values() if w.busy
        )
        while pending > 0:
            self._ensure_workers()
            if not self._alive:
                # Every slot exhausted its respawn budget: hand the
                # whole queue back as lost so the scheduler can decide.
                while self._queue:
                    run = self._queue.popleft()
                    pending -= 1
                    yield RunOutcome(
                        run_key=run.run_key,
                        status=OUTCOME_LOST,
                        error="no workers left (respawn budget exhausted)",
                    )
                return
            self._dispatch()
            for outcome in self._read_ready(timeout=self.heartbeat_s / 2):
                pending -= 1
                yield outcome
            for outcome in self._check_health():
                pending -= 1
                yield outcome

    def shutdown(self) -> None:
        self._shutdown = True
        self._queue.clear()
        for worker in list(self._alive.values()):
            self._send(worker, {"op": "shutdown"})
        deadline = time.monotonic() + 2.0
        for worker in list(self._alive.values()):
            try:
                worker.process.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                pass
            self._reap(worker, "shutdown", quiet=True)
        self._selector.close()


# ----------------------------------------------------------------------
#: Platform registry: CLI/name -> factory. ``local`` is an alias kept in
#: step with the CLI flag; it is the inline platform.
PLATFORMS: Dict[str, Callable[..., ExecutionPlatform]] = {
    "inline": InlinePlatform,
    "local": InlinePlatform,
    "pool": ProcessPoolPlatform,
    "subprocess": SubprocessPlatform,
}


def platform_names() -> List[str]:
    return sorted(PLATFORMS)


def make_platform(
    name: str,
    *,
    workers: int = 2,
    timeout_s: Optional[float] = None,
    tracer: Optional[Tracer] = None,
) -> ExecutionPlatform:
    """Construct a registered platform by name.

    Every factory accepts (and may ignore) ``workers``/``timeout_s``/
    ``tracer``, so callers can switch platforms without switching
    argument lists.
    """
    try:
        factory = PLATFORMS[name]
    except KeyError:
        known = ", ".join(platform_names())
        raise KeyError(f"unknown platform {name!r}; known: {known}") from None
    return factory(workers=workers, timeout_s=timeout_s, tracer=tracer)
