"""Long-lived sweep worker: the JSON-lines side of SubprocessPlatform.

Run as ``python -m repro.sweep.worker``. The parent process writes one
JSON object per line to stdin and reads one JSON object per line from
stdout. The wire format is deliberately host-agnostic — nothing in it
assumes the worker shares a filesystem, a pid namespace, or even a
machine with the parent — so the same protocol can later ride an SSH
channel or a container attach stream unchanged.

Parent -> worker (stdin)::

    {"op": "run", "run_key": "...", "experiment": "<registry name>",
     "params": {...scalars...}, "root_seed": 123}
    {"op": "shutdown"}

Worker -> parent (stdout)::

    {"op": "ready", "pid": 4711}                      # once, at startup
    {"op": "heartbeat", "pid": 4711, "busy": true}    # every --heartbeat-s
    {"op": "result", "run_key": "...", "status": "ok"|"failed",
     "metrics": {...}, "error": null|"...", "duration_s": 0.123}

Heartbeats come from a daemon thread and keep flowing *while a run
executes*, which is what lets the parent distinguish a long run (beats
arrive, no result yet) from a dead or wedged worker (no beats). All
stdout writes go through one lock so a heartbeat can never tear a
result line. Experiment exceptions are contained into ``failed``
results; the worker only exits on ``shutdown``, stdin EOF, or a signal
— a kill mid-run is exactly the dead-worker case the parent's
requeue path exists for.

Experiments resolve by name from :mod:`repro.sweep.registry` in this
fresh interpreter, so only import-time registrations are reachable
(the same visibility rule as spawn-started pools).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["main", "run_job"]


def run_job(message: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one ``run`` request; always returns a ``result`` object."""
    from repro.sweep.registry import get_experiment

    run_key = message.get("run_key", "")
    start = time.perf_counter()
    try:
        fn = get_experiment(str(message["experiment"])).fn
        metrics = fn(dict(message.get("params") or {}), int(message["root_seed"]))
        return {
            "op": "result",
            "run_key": run_key,
            "status": "ok",
            "metrics": {str(k): float(v) for k, v in metrics.items()},
            "error": None,
            "duration_s": time.perf_counter() - start,
        }
    except Exception as exc:  # noqa: BLE001 - contained per-run
        return {
            "op": "result",
            "run_key": run_key,
            "status": "failed",
            "metrics": {},
            "error": f"{type(exc).__name__}: {exc}",
            "duration_s": time.perf_counter() - start,
        }


class _Emitter:
    """Locked JSONL writer: heartbeats and results never interleave."""

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def emit(self, message: Dict[str, Any]) -> None:
        line = json.dumps(message, sort_keys=True) + "\n"
        with self._lock:
            try:
                self._stream.write(line)
                self._stream.flush()
            except (BrokenPipeError, ValueError, OSError):
                # The parent is gone; nothing useful left to do but let
                # the main loop notice stdin EOF and exit.
                pass


def _heartbeat_loop(
    emitter: _Emitter, interval_s: float, busy: threading.Event,
    stop: threading.Event,
) -> None:
    while not stop.wait(interval_s):
        emitter.emit(
            {"op": "heartbeat", "pid": os.getpid(), "busy": busy.is_set()}
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--heartbeat-s", type=float, default=0.25,
        help="seconds between heartbeat lines (daemon thread)",
    )
    args = parser.parse_args(argv)

    emitter = _Emitter(sys.stdout)
    busy = threading.Event()
    stop = threading.Event()
    emitter.emit({"op": "ready", "pid": os.getpid()})
    threading.Thread(
        target=_heartbeat_loop,
        args=(emitter, args.heartbeat_s, busy, stop),
        daemon=True,
        name="sweep-worker-heartbeat",
    ).start()

    try:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn/garbage request line is dropped, not fatal
            op = message.get("op")
            if op == "shutdown":
                break
            if op != "run":
                continue
            busy.set()
            try:
                emitter.emit(run_job(message))
            finally:
                busy.clear()
    finally:
        stop.set()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
