"""Crash-safe filesystem primitives.

Shared by the perf-report writer (:mod:`repro.metrics.bench`) and the
sweep run store (:mod:`repro.sweep.store`): both persist results that
must survive an interrupt mid-write. A plain ``Path.write_text``
truncates the target before writing, so a crash between the truncate
and the flush leaves a corrupt (often empty) file — exactly the failure
the tmp-file + ``os.replace`` dance prevents: the new content is fully
written and fsynced under a temporary name in the same directory, then
atomically swapped into place. Readers observe either the old complete
file or the new complete file, never a torn one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_text(
    path: Union[str, Path], text: str, *, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path``'s content with ``text``.

    The temporary file is created in ``path``'s directory so the final
    ``os.replace`` is a same-filesystem rename (atomic on POSIX). On any
    failure the temporary file is removed and the original ``path`` is
    left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already gone / never created
            pass
        raise
