"""Host workload interference on volunteer nodes.

Volunteer machines "can run unexpected higher priority host workloads
competing with existing edge services that are out of our control"
(§III-A, §IV-C2 trigger 3). We model interference as a time-varying
*slowdown factor* applied to the node's per-frame service time: a host
job consuming fraction ``f`` of the machine leaves ``1-f`` for the edge
service, inflating frame times by ``1/(1-f)``.

:class:`HostWorkloadSchedule` generates random on/off interference
episodes; the simulated edge server samples the factor and lets its
performance monitor notice the drift (which re-triggers the test
workload and bumps ``seqNum``, exactly trigger type 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class HostWorkload:
    """One interference episode on a volunteer machine.

    Attributes:
        start_ms / end_ms: episode interval in simulation time.
        cpu_fraction: fraction of the machine the host job consumes,
            in [0, 0.95].
    """

    start_ms: float
    end_ms: float
    cpu_fraction: float

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise ValueError(
                f"episode must have positive duration: [{self.start_ms}, {self.end_ms}]"
            )
        if not 0.0 <= self.cpu_fraction <= 0.95:
            raise ValueError(f"cpu_fraction must be in [0, 0.95]: {self.cpu_fraction}")

    @property
    def slowdown_factor(self) -> float:
        """Service-time inflation while the episode is active."""
        return 1.0 / (1.0 - self.cpu_fraction)

    def active_at(self, now_ms: float) -> bool:
        return self.start_ms <= now_ms < self.end_ms


class HostWorkloadSchedule:
    """A node's full interference timeline.

    Episodes are generated with exponential inter-arrival gaps and
    exponential durations; intensities are uniform over a configured
    range. Episodes may not overlap (a machine runs one disruptive host
    job at a time, the heavier wins).
    """

    def __init__(self, episodes: List[HostWorkload]) -> None:
        self.episodes = sorted(episodes, key=lambda e: e.start_ms)
        for earlier, later in zip(self.episodes, self.episodes[1:]):
            if later.start_ms < earlier.end_ms:
                raise ValueError("host workload episodes must not overlap")

    @classmethod
    def none(cls) -> "HostWorkloadSchedule":
        """An empty schedule (dedicated nodes)."""
        return cls([])

    @classmethod
    def generate(
        cls,
        rng: random.Random,
        horizon_ms: float,
        mean_gap_ms: float = 60_000.0,
        mean_duration_ms: float = 15_000.0,
        cpu_fraction_range: Tuple[float, float] = (0.2, 0.7),
    ) -> "HostWorkloadSchedule":
        """Generate a random non-overlapping schedule over ``horizon_ms``."""
        if horizon_ms <= 0:
            raise ValueError("horizon must be positive")
        low, high = cpu_fraction_range
        if not 0.0 <= low <= high <= 0.95:
            raise ValueError(f"bad cpu_fraction_range: {cpu_fraction_range}")
        episodes: List[HostWorkload] = []
        t = rng.expovariate(1.0 / mean_gap_ms)
        while t < horizon_ms:
            duration = max(100.0, rng.expovariate(1.0 / mean_duration_ms))
            end = min(t + duration, horizon_ms)
            if end > t:
                episodes.append(HostWorkload(t, end, rng.uniform(low, high)))
            t = end + rng.expovariate(1.0 / mean_gap_ms)
        return cls(episodes)

    def slowdown_at(self, now_ms: float) -> float:
        """Slowdown factor in effect at ``now_ms`` (1.0 when idle)."""
        for episode in self.episodes:
            if episode.active_at(now_ms):
                return episode.slowdown_factor
            if episode.start_ms > now_ms:
                break
        return 1.0

    def change_points(self) -> List[float]:
        """All times at which the slowdown factor changes."""
        points: List[float] = []
        for episode in self.episodes:
            points.append(episode.start_ms)
            points.append(episode.end_ms)
        return points

    def __len__(self) -> int:
        return len(self.episodes)
