"""Edge node substrate: hardware, processing/contention, host interference.

The paper's edge nodes are "highly compute-constrained and sensitive to
performance degradation due to resource contention" (§III-A). This
package models the compute side of that statement:

- :mod:`~repro.nodes.hardware` — the hardware catalog, including the
  exact volunteer/dedicated profiles of Table II (V1...V5 laptops,
  AWS ``t3.xlarge`` Local Zone instances, the cloud instance) and the
  EC2 types used in the emulation experiments.
- :mod:`~repro.nodes.processing` — the frame-processing engine: a
  c-server FCFS queue per node (object detection runs one frame at a
  time, parallelized internally across cores — the per-frame times in
  Table II already reflect each machine's core count), plus analytic
  sojourn-time estimators used by the optimal-assignment solver.
- :mod:`~repro.nodes.host_workload` — "unexpected higher priority host
  workloads competing with existing edge services": background load that
  inflates service times and triggers the node's performance monitor.
"""

from repro.nodes.hardware import (
    CLOUD_NODE,
    DEDICATED_PROFILES,
    EMULATION_PROFILES,
    HardwareProfile,
    VOLUNTEER_PROFILES,
    profile_by_name,
)
from repro.nodes.host_workload import HostWorkload, HostWorkloadSchedule
from repro.nodes.processing import (
    FrameProcessor,
    analytic_sojourn_ms,
    offered_load,
)

__all__ = [
    "HardwareProfile",
    "VOLUNTEER_PROFILES",
    "DEDICATED_PROFILES",
    "EMULATION_PROFILES",
    "CLOUD_NODE",
    "profile_by_name",
    "FrameProcessor",
    "analytic_sojourn_ms",
    "offered_load",
    "HostWorkload",
    "HostWorkloadSchedule",
]
