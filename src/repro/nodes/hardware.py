"""Hardware profiles, including the paper's Table II catalog.

A :class:`HardwareProfile` carries the two compute facts the system needs:

- ``base_frame_ms`` — per-frame processing time of the standard AR video
  frame on an otherwise idle machine. Table II reports this directly
  (e.g. V1 = 24 ms on an i7-9700). Core count is *already reflected* in
  this measurement — detection parallelizes across the machine's cores
  for a single frame — so the queueing model treats a node as
  ``parallelism`` servers of rate ``1/base_frame_ms`` each (default 1).
- ``cores`` — kept as metadata; it drives the resource-availability
  score the Central Manager and the resource-aware baseline use.

The emulation experiments use EC2 ``t2.medium`` / ``t2.xlarge`` /
``t2.2xlarge`` instances whose per-frame times the paper does not list;
we assign times consistent with Table II's scaling (more/newer cores →
faster frames) and record the substitution in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List


@dataclass(frozen=True)
class HardwareProfile:
    """Static compute characteristics of an edge node.

    Attributes:
        name: catalog key, e.g. ``"V1"`` or ``"t2.xlarge"``.
        processor: human-readable CPU description.
        cores: physical/virtual core count (metadata for availability
            scoring).
        base_frame_ms: idle per-frame processing time of the standard AR
            frame (ms).
        parallelism: how many frames the node processes concurrently;
            1 means detection saturates the machine per frame.
        memory_gb: metadata for capacity filters.
    """

    name: str
    processor: str
    cores: int
    base_frame_ms: float
    parallelism: int = 1
    memory_gb: float = 8.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1: {self.cores}")
        if self.base_frame_ms <= 0:
            raise ValueError(f"base_frame_ms must be positive: {self.base_frame_ms}")
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1: {self.parallelism}")

    @property
    def capacity_fps(self) -> float:
        """Maximum sustainable frame rate (frames/second)."""
        return self.parallelism * 1000.0 / self.base_frame_ms

    def scaled(self, factor: float, name: str = "") -> "HardwareProfile":
        """A copy with ``base_frame_ms`` scaled by ``factor`` (>0)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        return replace(
            self,
            name=name or f"{self.name}x{factor:g}",
            base_frame_ms=self.base_frame_ms * factor,
        )


# ----------------------------------------------------------------------
# Table II — real-world experiment hardware
# ----------------------------------------------------------------------
# Parallelism is ~cores // 3 (min 1): object detection's decode +
# inference threads saturate ~3 cores per in-flight frame, so an 8-core
# V1 keeps 2 frames in service concurrently while a 4-core t3.xlarge
# serializes. This calibration puts the paper's workloads where its
# results live: 15 full-rate users (300 fps) push the hybrid
# volunteer+dedicated pool (~384 fps) to high utilization where
# selection quality matters, and saturate the dedicated-only pool
# (4x t3.xlarge ~ 133 fps) outright — reproducing Fig. 5's
# "worse-than-cloud performance at #user = 15".
VOLUNTEER_PROFILES: List[HardwareProfile] = [
    HardwareProfile("V1", "Intel Core i7-9700, 8 cores", 8, 24.0, parallelism=2),
    HardwareProfile("V2", "Intel Core i7-2720, 6 cores", 6, 32.0, parallelism=2),
    HardwareProfile("V3", "Intel Core i9-8950HK, 6 cores", 6, 31.0, parallelism=2),
    HardwareProfile("V4", "Intel Core i5-8250U, 4 cores", 4, 45.0, parallelism=1),
    HardwareProfile("V5", "Intel Core i5-5250U, 2 cores", 2, 49.0, parallelism=1),
]

#: AWS Local Zone instances D6-D9 from Table II.
DEDICATED_PROFILES: List[HardwareProfile] = [
    HardwareProfile(f"D{i}", "AWS Local Zone t3.xlarge", 4, 30.0, parallelism=1)
    for i in range(6, 10)
]

#: The "closest cloud" reference instance from Table II.
CLOUD_NODE = HardwareProfile("Cloud", "AWS EC2 t3.xlarge (us-east-2)", 4, 30.0, parallelism=1)

# ----------------------------------------------------------------------
# Emulation hardware (§V-D). Frame times chosen consistently with
# Table II scaling; absolute values are a documented substitution.
# ----------------------------------------------------------------------
EMULATION_PROFILES: Dict[str, HardwareProfile] = {
    # The §V-D1 fleet (4 medium + 4 xlarge + 1 2xlarge) must carry 15
    # full-rate users at moderate load — Fig. 6 shows most users between
    # 50 and 150 ms with only the locality-based method overloading
    # individual nodes — so the EC2 types get parallelism cores // 2.
    "t2.medium": HardwareProfile("t2.medium", "AWS EC2 t2.medium", 2, 46.0, parallelism=1),
    "t2.xlarge": HardwareProfile("t2.xlarge", "AWS EC2 t2.xlarge", 4, 30.0, parallelism=2),
    "t2.2xlarge": HardwareProfile("t2.2xlarge", "AWS EC2 t2.2xlarge", 8, 22.0, parallelism=4),
    "t2.micro": HardwareProfile("t2.micro", "AWS EC2 t2.micro (user device)", 1, 150.0),
}

_CATALOG: Dict[str, HardwareProfile] = {p.name: p for p in VOLUNTEER_PROFILES}
_CATALOG.update({p.name: p for p in DEDICATED_PROFILES})
_CATALOG[CLOUD_NODE.name] = CLOUD_NODE
_CATALOG.update(EMULATION_PROFILES)


def profile_by_name(name: str) -> HardwareProfile:
    """Look up a profile in the built-in catalog.

    Raises:
        KeyError: with the list of known names, if absent.
    """
    try:
        return _CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise KeyError(f"unknown hardware profile {name!r}; known: {known}") from None


def catalog_names() -> List[str]:
    """All profile names in the built-in catalog."""
    return sorted(_CATALOG)
