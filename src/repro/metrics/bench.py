"""BENCH_perf.json bookkeeping for the perf-benchmark harness.

``benchmarks/perf/*`` scripts each measure one axis (discovery-query
throughput, steady-state event throughput) and record their section into
a single merged report at the repo root, so the performance trajectory
of the fast path is tracked as one file across revisions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from repro.fsutil import atomic_write_text


def record_bench_section(path: Path, section: str, payload: Dict[str, Any]) -> None:
    """Merge ``payload`` into the report at ``path`` under ``section``.

    Other sections are preserved; an unreadable/corrupt report is
    replaced rather than crashing the benchmark that produced real data.
    The merged report is written atomically (tmp file + ``os.replace``,
    the same helper the sweep run store uses) so an interrupt mid-write
    can never corrupt the accumulated perf trajectory.
    """
    report: Dict[str, Any] = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict):
                report = loaded
        except (OSError, json.JSONDecodeError):
            pass
    report[section] = payload
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")


def read_bench_section(path: Path, section: str) -> Dict[str, Any]:
    """The recorded section, or {} if the report/section is missing."""
    if not path.exists():
        return {}
    try:
        loaded = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    value = loaded.get(section) if isinstance(loaded, dict) else None
    return value if isinstance(value, dict) else {}
