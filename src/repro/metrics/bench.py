"""BENCH_perf.json bookkeeping for the perf-benchmark harness.

``benchmarks/perf/*`` scripts each measure one axis (discovery-query
throughput, steady-state event throughput, per-platform sweep
throughput) and record their section into a single merged report at
the repo root, so the performance trajectory of the fast path is
tracked as one file across revisions. The ``sweep`` section carries a
``platforms`` sub-table — wall-clock and runs/s for each registered
execution platform (inline/pool/subprocess) at the benchmark grid.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.fsutil import atomic_write_text

#: Registered perf benchmarks: CLI name -> script under ``benchmarks/perf``.
PERF_BENCHMARKS: Dict[str, str] = {
    "discovery": "bench_discovery.py",
    "discovery_sharded": "bench_discovery_sharded.py",
    "steady_state": "bench_steady_state.py",
    "sweep": "bench_sweep.py",
    "trace_overhead": "bench_trace_overhead.py",
    "metro": "bench_metro.py",
}


def perf_bench_dir(start: Optional[Path] = None) -> Path:
    """Locate ``benchmarks/perf``: walk up from ``start`` (default cwd),
    falling back to the source checkout this module lives in."""
    here = (start if start is not None else Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        perf = candidate / "benchmarks" / "perf"
        if perf.is_dir():
            return perf
    fallback = Path(__file__).resolve().parents[3] / "benchmarks" / "perf"
    if fallback.is_dir():
        return fallback
    raise FileNotFoundError(
        "benchmarks/perf not found above the working directory or the "
        "source checkout; run from a repo checkout or pass an explicit dir"
    )


def run_perf_bench(
    name: str,
    argv: Sequence[str] = (),
    *,
    perf_dir: Optional[Path] = None,
) -> int:
    """Import a registered benchmark script and invoke its ``main(argv)``.

    Benchmark scripts are plain files (not a package), so they are loaded
    by path; each exposes ``main(argv) -> int`` and accepts ``--output``.
    """
    try:
        filename = PERF_BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(PERF_BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r} (known: {known})") from None
    path = (perf_dir if perf_dir is not None else perf_bench_dir()) / filename
    spec = importlib.util.spec_from_file_location(f"repro_bench_{name}", path)
    if spec is None or spec.loader is None:  # pragma: no cover - loader quirk
        raise ImportError(f"cannot load benchmark script {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    result = module.main(list(argv))
    return int(result) if result is not None else 0


def record_bench_section(path: Path, section: str, payload: Dict[str, Any]) -> None:
    """Merge ``payload`` into the report at ``path`` under ``section``.

    Other sections are preserved; an unreadable/corrupt report is
    replaced rather than crashing the benchmark that produced real data.
    The merged report is written atomically (tmp file + ``os.replace``,
    the same helper the sweep run store uses) so an interrupt mid-write
    can never corrupt the accumulated perf trajectory.
    """
    report: Dict[str, Any] = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict):
                report = loaded
        except (OSError, json.JSONDecodeError):
            pass
    report[section] = payload
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")


def read_bench_section(path: Path, section: str) -> Dict[str, Any]:
    """The recorded section, or {} if the report/section is missing."""
    if not path.exists():
        return {}
    try:
        loaded = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    value = loaded.get(section) if isinstance(loaded, dict) else None
    return value if isinstance(value, dict) else {}
