"""Measurement: latency traces, summary statistics and report rendering.

Everything the paper's evaluation plots flows through
:class:`~repro.metrics.collector.MetricsCollector`: per-frame end-to-end
latencies (tagged by user and serving edge), probe/test-workload/switch/
failure counters, and node-population changes. The stats and timeseries
helpers then reduce those streams into exactly the quantities the figures
report — averages over windows, CDFs, per-user fairness (std-dev), and
binned time traces.
"""

from repro.metrics.collector import FrameRecord, MetricsCollector
from repro.metrics.stats import (
    Summary,
    cdf_points,
    mean,
    percentile,
    stddev,
    summarize,
)
from repro.metrics.timeseries import TimeSeries, bin_series
from repro.metrics.report import format_table, format_cdf

__all__ = [
    "MetricsCollector",
    "FrameRecord",
    "Summary",
    "mean",
    "stddev",
    "percentile",
    "cdf_points",
    "summarize",
    "TimeSeries",
    "bin_series",
    "format_table",
    "format_cdf",
]
