"""Plain-text rendering of tables and CDFs for benchmark output.

The benchmark harness "prints the same rows/series the paper reports";
these helpers produce aligned ASCII tables and coarse CDF listings that
read well in pytest output.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with one decimal; everything else via ``str``.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(f"{cell:.1f}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match headers {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_cdf(
    points: Sequence[Tuple[float, float]],
    fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99),
    label: str = "latency (ms)",
) -> str:
    """Render selected quantiles of a CDF point list from ``cdf_points``."""
    if not points:
        raise ValueError("empty CDF")
    lines = [f"CDF of {label}:"]
    for target in fractions:
        value = points[-1][0]
        for v, frac in points:
            if frac >= target:
                value = v
                break
        lines.append(f"  p{int(target * 100):02d} = {value:.1f}")
    return "\n".join(lines)
