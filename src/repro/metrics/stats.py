"""Summary statistics over latency samples.

Pure functions on sequences of floats. ``numpy`` is used where it wins
(percentiles over large arrays); small-input paths stay in plain Python
so the functions behave on lists of length 0..2 without surprises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (an empty trace is a bug)."""
    if len(values) == 0:
        raise ValueError("mean of empty sequence")
    return float(sum(values)) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (the paper's fairness metric, Fig. 9d)."""
    if len(values) == 0:
        raise ValueError("stddev of empty sequence")
    if len(values) == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100), linear interpolation."""
    if len(values) == 0:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100]: {q}")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) pairs, sorted.

    The fraction at the i-th sorted sample is ``(i+1)/n`` — the standard
    step-function CDF used in the paper's Fig. 3.
    """
    n = len(values)
    if n == 0:
        raise ValueError("cdf of empty sequence")
    ordered = sorted(values)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


@dataclass(frozen=True)
class Summary:
    """A one-line statistical summary of a latency sample set."""

    count: int
    mean_ms: float
    std_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    min_ms: float
    max_ms: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean_ms:.1f} std={self.std_ms:.1f} "
            f"p50={self.p50_ms:.1f} p90={self.p90_ms:.1f} p99={self.p99_ms:.1f} "
            f"min={self.min_ms:.1f} max={self.max_ms:.1f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; raises on empty input."""
    if len(values) == 0:
        raise ValueError("summarize of empty sequence")
    arr = np.asarray(values, dtype=float)
    return Summary(
        count=int(arr.size),
        mean_ms=float(arr.mean()),
        std_ms=float(arr.std()),
        p50_ms=float(np.percentile(arr, 50)),
        p90_ms=float(np.percentile(arr, 90)),
        p99_ms=float(np.percentile(arr, 99)),
        min_ms=float(arr.min()),
        max_ms=float(arr.max()),
    )
