"""Time-binned series for performance traces (Figs. 4, 6, 8)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class TimeSeries:
    """An append-only (time, value) series with helpers.

    Times are simulation milliseconds; appends must be non-decreasing in
    time (the collector only ever appends "now").
    """

    name: str = ""
    times_ms: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time_ms: float, value: float) -> None:
        if self.times_ms and time_ms < self.times_ms[-1]:
            raise ValueError(
                f"time series {self.name!r} must be appended in order: "
                f"{time_ms} < {self.times_ms[-1]}"
            )
        self.times_ms.append(time_ms)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times_ms)

    def window(self, start_ms: float, end_ms: float) -> List[float]:
        """Values with ``start_ms <= t < end_ms``."""
        return [
            v
            for t, v in zip(self.times_ms, self.values)
            if start_ms <= t < end_ms
        ]

    def value_at(self, time_ms: float) -> Optional[float]:
        """Last value at or before ``time_ms`` (step-function semantics)."""
        result: Optional[float] = None
        for t, v in zip(self.times_ms, self.values):
            if t > time_ms:
                break
            result = v
        return result


def bin_series(
    times_ms: Sequence[float],
    values: Sequence[float],
    bin_ms: float,
    start_ms: float = 0.0,
    end_ms: Optional[float] = None,
) -> List[Tuple[float, float]]:
    """Average ``values`` into fixed time bins.

    Returns (bin_start_ms, mean value) for every bin that received at
    least one sample — the reduction used for the "average performance
    trace" plots.

    Raises:
        ValueError: on a non-positive bin width or mismatched lengths.
    """
    if bin_ms <= 0:
        raise ValueError(f"bin_ms must be positive: {bin_ms}")
    if len(times_ms) != len(values):
        raise ValueError("times and values must have equal length")
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for t, v in zip(times_ms, values):
        if t < start_ms:
            continue
        if end_ms is not None and t >= end_ms:
            continue
        index = int((t - start_ms) // bin_ms)
        sums[index] = sums.get(index, 0.0) + v
        counts[index] = counts.get(index, 0) + 1
    return [
        (start_ms + index * bin_ms, sums[index] / counts[index])
        for index in sorted(sums)
    ]
