"""The central metrics collector.

One collector instance is shared by every component of a running system
(simulated or live). Components report raw events; experiment harnesses
reduce them afterwards. Nothing in the selection algorithms ever *reads*
the collector — measurement is strictly one-way.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.metrics.timeseries import TimeSeries


@dataclass(frozen=True)
class FrameRecord:
    """One completed (or lost) offloading request."""

    user_id: str
    edge_id: str
    created_ms: float
    latency_ms: Optional[float]  # None = frame lost (node failed mid-flight)

    @property
    def lost(self) -> bool:
        return self.latency_ms is None


@dataclass
class MetricsCollector:
    """Accumulates every measurable event of a run.

    Attributes of interest to the figures:
        frames: all frame records (Figs. 3-8 derive from these).
        probes_sent: per-user count of ``Process_probe`` requests
            (Fig. 9a).
        test_invocations: per-node count of test-workload runs (Fig. 9b).
        failures: per-user count of *uncovered* failures, i.e. moments
            where every backup was dead too and the client had to fall
            back to re-discovery (Fig. 10b counts exactly these).
        switches: per-user count of voluntary better-node switches.
        covered_failovers: per-user count of failures absorbed by a
            backup node (no service disruption).
        alive_nodes: step time series of the node population (Fig. 8's
            grey stair line).
    """

    frames: List[FrameRecord] = field(default_factory=list)
    probes_sent: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    discovery_queries: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    test_invocations: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    join_accepts: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    join_rejects: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    failures: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    covered_failovers: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    switches: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: (user_id, sim time ms) of each uncovered failure / covered failover
    failure_events: List[Tuple[str, float]] = field(default_factory=list)
    failover_events: List[Tuple[str, float]] = field(default_factory=list)
    alive_nodes: TimeSeries = field(
        default_factory=lambda: TimeSeries(name="alive_nodes")
    )

    # ------------------------------------------------------------------
    # Reporting entry points
    # ------------------------------------------------------------------
    def record_frame(
        self,
        user_id: str,
        edge_id: str,
        created_ms: float,
        latency_ms: Optional[float],
    ) -> None:
        self.frames.append(FrameRecord(user_id, edge_id, created_ms, latency_ms))

    def record_probe(self, user_id: str, count: int = 1) -> None:
        self.probes_sent[user_id] += count

    def record_discovery(self, user_id: str) -> None:
        self.discovery_queries[user_id] += 1

    def record_test_invocation(self, node_id: str) -> None:
        self.test_invocations[node_id] += 1

    def record_join(self, user_id: str, accepted: bool) -> None:
        if accepted:
            self.join_accepts[user_id] += 1
        else:
            self.join_rejects[user_id] += 1

    def record_failure(self, user_id: str, now_ms: float = 0.0) -> None:
        self.failures[user_id] += 1
        self.failure_events.append((user_id, now_ms))

    def record_covered_failover(self, user_id: str, now_ms: float = 0.0) -> None:
        self.covered_failovers[user_id] += 1
        self.failover_events.append((user_id, now_ms))

    def record_switch(self, user_id: str) -> None:
        self.switches[user_id] += 1

    def record_alive_nodes(self, now_ms: float, count: int) -> None:
        self.alive_nodes.append(now_ms, float(count))

    # ------------------------------------------------------------------
    # Reductions used by experiment harnesses
    # ------------------------------------------------------------------
    def completed_latencies(
        self,
        start_ms: float = 0.0,
        end_ms: Optional[float] = None,
        user_id: Optional[str] = None,
    ) -> List[float]:
        """Latencies of completed frames in a window (optionally per user)."""
        result: List[float] = []
        for record in self.frames:
            if record.latency_ms is None:
                continue
            if record.created_ms < start_ms:
                continue
            if end_ms is not None and record.created_ms >= end_ms:
                continue
            if user_id is not None and record.user_id != user_id:
                continue
            result.append(record.latency_ms)
        return result

    def per_user_mean_latency(
        self, start_ms: float = 0.0, end_ms: Optional[float] = None
    ) -> Dict[str, float]:
        """Mean completed-frame latency per user over a window."""
        sums: Dict[str, float] = defaultdict(float)
        counts: Dict[str, int] = defaultdict(int)
        for record in self.frames:
            if record.latency_ms is None:
                continue
            if record.created_ms < start_ms:
                continue
            if end_ms is not None and record.created_ms >= end_ms:
                continue
            sums[record.user_id] += record.latency_ms
            counts[record.user_id] += 1
        return {user: sums[user] / counts[user] for user in sums}

    def lost_frames(self, user_id: Optional[str] = None) -> int:
        return sum(
            1
            for record in self.frames
            if record.lost and (user_id is None or record.user_id == user_id)
        )

    def total_probes(self) -> int:
        return sum(self.probes_sent.values())

    def total_test_invocations(self) -> int:
        return sum(self.test_invocations.values())

    def total_failures(self) -> int:
        return sum(self.failures.values())

    def total_switches(self) -> int:
        return sum(self.switches.values())
