"""The central metrics collector — a reducer over the trace-event bus.

One collector instance is shared by every component of a running system
(simulated or live). Since the observability redesign, components no
longer mutate the collector: they emit typed trace events on the
system's :class:`~repro.obs.tracer.Tracer`, and the collector — wired as
an always-on subscriber by :class:`~repro.core.system.EdgeSystem` —
*reduces* those events into the aggregates the experiment harnesses
read. Nothing in the selection algorithms ever reads the collector —
measurement is strictly one-way.

The pre-redesign mutation entry points (``record_frame`` & friends)
shipped one release as :class:`DeprecationWarning` shims and have been
removed: emit the corresponding trace event via ``Tracer.emit()`` (or
call :meth:`MetricsCollector.on_event` directly in tests).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.metrics.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import TraceEvent


@dataclass(frozen=True)
class FrameRecord:
    """One completed (or lost) offloading request."""

    user_id: str
    edge_id: str
    created_ms: float
    latency_ms: Optional[float]  # None = frame lost (node failed mid-flight)

    @property
    def lost(self) -> bool:
        return self.latency_ms is None


@dataclass
class MetricsCollector:
    """Accumulates every measurable event of a run.

    Attributes of interest to the figures:
        frames: all frame records (Figs. 3-8 derive from these).
        probes_sent: per-user count of ``Process_probe`` requests
            (Fig. 9a).
        test_invocations: per-node count of test-workload runs (Fig. 9b).
        failures: per-user count of *uncovered* failures, i.e. moments
            where every backup was dead too and the client had to fall
            back to re-discovery (Fig. 10b counts exactly these).
        switches: per-user count of voluntary better-node switches.
        covered_failovers: per-user count of failures absorbed by a
            backup node (no service disruption).
        alive_nodes: step time series of the node population (Fig. 8's
            grey stair line).
    """

    frames: List[FrameRecord] = field(default_factory=list)
    probes_sent: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    discovery_queries: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    test_invocations: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    join_accepts: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    join_rejects: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    failures: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    covered_failovers: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    switches: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: (user_id, sim time ms) of each uncovered failure / covered failover
    failure_events: List[Tuple[str, float]] = field(default_factory=list)
    failover_events: List[Tuple[str, float]] = field(default_factory=list)
    alive_nodes: TimeSeries = field(
        default_factory=lambda: TimeSeries(name="alive_nodes")
    )

    # ------------------------------------------------------------------
    # Trace-event reduction (the metrics-reporting API)
    # ------------------------------------------------------------------
    def on_event(self, event: "TraceEvent") -> None:
        """Reduce one trace event; unknown types are ignored.

        This is the collector's subscription entry point:
        ``tracer.subscribe(collector.on_event)`` wires a collector to a
        system's event bus (:class:`~repro.core.system.EdgeSystem` does
        this automatically). Detail events the collector has no
        aggregate for — phase spans, cache hits, probe answers — fall
        through the dispatch untouched.
        """
        handler = _REDUCERS.get(event.type)
        if handler is not None:
            handler(self, event)

    def _on_frame_done(self, event) -> None:
        self.frames.append(
            FrameRecord(event.user_id, event.node_id, event.created_ms,
                        event.latency_ms)
        )

    def _on_probe_sent(self, event) -> None:
        self.probes_sent[event.user_id] += 1

    def _on_discovery_issued(self, event) -> None:
        self.discovery_queries[event.user_id] += 1

    def _on_test_workload(self, event) -> None:
        self.test_invocations[event.node_id] += 1

    def _on_join_accept(self, event) -> None:
        self.join_accepts[event.user_id] += 1

    def _on_join_reject(self, event) -> None:
        self.join_rejects[event.user_id] += 1

    def _on_uncovered_failure(self, event) -> None:
        self.failures[event.user_id] += 1
        self.failure_events.append((event.user_id, event.t_ms))

    def _on_covered_failover(self, event) -> None:
        self.covered_failovers[event.user_id] += 1
        self.failover_events.append((event.user_id, event.t_ms))

    def _on_switch(self, event) -> None:
        self.switches[event.user_id] += 1

    def _on_population(self, event) -> None:
        self.alive_nodes.append(event.t_ms, float(event.count))

    # ------------------------------------------------------------------
    # Reductions used by experiment harnesses
    # ------------------------------------------------------------------
    def completed_latencies(
        self,
        start_ms: float = 0.0,
        end_ms: Optional[float] = None,
        user_id: Optional[str] = None,
    ) -> List[float]:
        """Latencies of completed frames in a window (optionally per user)."""
        result: List[float] = []
        for record in self.frames:
            if record.latency_ms is None:
                continue
            if record.created_ms < start_ms:
                continue
            if end_ms is not None and record.created_ms >= end_ms:
                continue
            if user_id is not None and record.user_id != user_id:
                continue
            result.append(record.latency_ms)
        return result

    def per_user_mean_latency(
        self, start_ms: float = 0.0, end_ms: Optional[float] = None
    ) -> Dict[str, float]:
        """Mean completed-frame latency per user over a window."""
        sums: Dict[str, float] = defaultdict(float)
        counts: Dict[str, int] = defaultdict(int)
        for record in self.frames:
            if record.latency_ms is None:
                continue
            if record.created_ms < start_ms:
                continue
            if end_ms is not None and record.created_ms >= end_ms:
                continue
            sums[record.user_id] += record.latency_ms
            counts[record.user_id] += 1
        return {user: sums[user] / counts[user] for user in sums}

    def lost_frames(self, user_id: Optional[str] = None) -> int:
        return sum(
            1
            for record in self.frames
            if record.lost and (user_id is None or record.user_id == user_id)
        )

    def total_probes(self) -> int:
        return sum(self.probes_sent.values())

    def total_test_invocations(self) -> int:
        return sum(self.test_invocations.values())

    def total_failures(self) -> int:
        return sum(self.failures.values())

    def total_switches(self) -> int:
        return sum(self.switches.values())


#: Event-type tag -> reducer method. Module-level so ``on_event`` pays a
#: single dict lookup per event on the hot path.
_REDUCERS: Dict[str, Callable[[MetricsCollector, object], None]] = {
    "frame_done": MetricsCollector._on_frame_done,
    "probe_sent": MetricsCollector._on_probe_sent,
    "discovery_issued": MetricsCollector._on_discovery_issued,
    "test_workload_invoked": MetricsCollector._on_test_workload,
    "join_accept": MetricsCollector._on_join_accept,
    "join_reject": MetricsCollector._on_join_reject,
    "uncovered_failure": MetricsCollector._on_uncovered_failure,
    "covered_failover": MetricsCollector._on_covered_failover,
    "switch": MetricsCollector._on_switch,
    "population": MetricsCollector._on_population,
}
