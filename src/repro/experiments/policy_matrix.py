"""The policy-matrix experiment: selection policies under repeated faults.

The scenario is a deliberate trap for memoryless rankers. ``trap-a``
and ``trap-b`` are the two best machines in the deployment (V1/V2,
24/32 ms per frame) and sit closest to every user, so LO and GO rank
them first and second whenever they answer probes. But the traps share
a failure domain: on a cadence set by ``churn_rate`` they fault
*together* — either both crash (``fault_family="node_crash"``,
restarting a few seconds later with empty populations and freshly
primed what-if caches — maximally tempting again) or both go gray
(``fault_family="gray"``: heartbeats stay crisp while frame service
slows 8x). Three slower-but-solid nodes ring the users at a modest
distance.

Memoryless policies re-join a trap after every episode AND keep the
other trap at the head of the backup list, so a crash episode costs
them a failover walk through a dead backup before a solid node answers
— a long recovery gap, repeated every episode. History-keeping
policies (:class:`~repro.policy.ReliabilityPolicy` above all) learn to
discount the whole failure domain, trading slightly worse steady-state
latency for far fewer and far shorter recovery gaps — visible directly
in the failover-gap p95.

``churn_rate`` is episodes per 15 s of sim time; the default horizon is
60 s, so ``churn_rate=2.0`` means eight fault episodes per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.core.system import EdgeSystem
from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import GrayNode, NodeCrash, Window
from repro.geo.point import GeoPoint
from repro.metrics.stats import percentile
from repro.net.topology import EndpointSpec
from repro.nodes.hardware import profile_by_name
from repro.obs.analyze import TraceAnalyzer
from repro.obs.tracer import Tracer

__all__ = [
    "PolicyMatrixResult",
    "FAULT_FAMILIES",
    "build_trap_plan",
    "run_policy_matrix",
]

FAULT_FAMILIES = ("node_crash", "gray")

#: One fault episode per this much sim time at ``churn_rate=1.0``.
EPISODE_PERIOD_MS = 15_000.0

TRAP_IDS = ("trap-a", "trap-b")


def build_trap_plan(
    fault_family: str,
    churn_rate: float,
    horizon_ms: float,
) -> FaultPlan:
    """Deterministic fault schedule against the trap failure domain.

    Episodes start at 5 s (after first attachments settle) and repeat
    every ``EPISODE_PERIOD_MS / churn_rate``; both traps fault in every
    episode. A crash episode restarts the nodes 3 s later; a gray
    episode lasts 6 s at 8x slowdown.
    """
    if fault_family not in FAULT_FAMILIES:
        raise ValueError(
            f"unknown fault_family {fault_family!r}; known: {FAULT_FAMILIES}"
        )
    if churn_rate <= 0:
        raise ValueError(f"churn_rate must be positive: {churn_rate}")
    period_ms = EPISODE_PERIOD_MS / churn_rate
    starts: List[float] = []
    t = 5_000.0
    while t < horizon_ms - 4_000.0:
        starts.append(t)
        t += period_ms
    if fault_family == "node_crash":
        return FaultPlan(
            crashes=tuple(
                NodeCrash(
                    rule_id=f"{trap}-crash-{i}",
                    node_id=trap,
                    at_ms=at,
                    restart_at_ms=at + 3_000.0,
                )
                for i, at in enumerate(starts)
                for trap in TRAP_IDS
            )
        )
    return FaultPlan(
        gray_nodes=tuple(
            GrayNode(
                rule_id=f"{trap}-gray-{i}",
                node_id=trap,
                window=Window(at, at + 6_000.0),
                slowdown=8.0,
            )
            for i, at in enumerate(starts)
            for trap in TRAP_IDS
        )
    )


@dataclass
class PolicyMatrixResult:
    """One policy-matrix cell, reduced to sweepable scalars."""

    policy: str
    fault_family: str
    churn_rate: float
    metrics: Dict[str, float] = field(default_factory=dict)


def run_policy_matrix(
    policy: str,
    *,
    fault_family: str = "node_crash",
    churn_rate: float = 1.0,
    horizon_ms: float = 60_000.0,
    n_users: int = 3,
    seed: int = 0,
    warmup_ms: float = 10_000.0,
    policy_params: Optional[Dict[str, object]] = None,
) -> PolicyMatrixResult:
    """Run one cell of the policy matrix and reduce it to scalars.

    Metrics are computed over the steady-state window ``t >= warmup_ms``
    (default: past the first fault episode). Every policy eats the first
    episode blind — there is no history yet to learn from — so including
    it would only blur the thing the matrix measures: whether a policy
    *learns* from that first burn or walks into the trap again.
    """
    plan = build_trap_plan(fault_family, churn_rate, horizon_ms)
    injector = FaultInjector(plan, seed=seed)
    tracer = Tracer()
    system = EdgeSystem(
        SystemConfig(
            seed=seed,
            top_n=3,
            probing_period_ms=2_000.0,
            attachment_lease_ms=6_000.0,
        ),
        trace=tracer,
        faults=injector,
        selection_policy=policy,
        selection_policy_params=policy_params,
    )
    center = GeoPoint(44.97, -93.25)
    # The trap failure domain: best hardware, right on top of the users.
    for trap, name, dx in zip(TRAP_IDS, ("V1", "V2"), (0.5, -0.5)):
        system.add_node(
            trap, profile_by_name(name), EndpointSpec(center.offset_km(dx, 0.5))
        )
    # The solid ring: slower machines, a few km out, never faulted.
    for i, name in enumerate(("V3", "V4", "V5")):
        system.add_node(
            f"solid-{name}",
            profile_by_name(name),
            EndpointSpec(center.offset_km(4.0 + i, -3.0 + 2.0 * i)),
        )
    clients: List[EdgeClient] = []
    for i in range(n_users):
        user_id = f"user-{i + 1:02d}"
        system.add_client_endpoint(
            user_id, EndpointSpec(center.offset_km(-0.4 * i, 0.4 * i))
        )
        client = EdgeClient(system, user_id)
        system.add_client(client)
        clients.append(client)

    system.run_for(horizon_ms)
    tracer.close()

    events = [e for e in tracer.events() if e.t_ms >= warmup_ms]
    analyzer = TraceAnalyzer(events)
    counts = analyzer.event_type_counts()
    latencies = [
        e.latency_ms
        for e in events
        if e.type == "frame_done" and e.latency_ms is not None
    ]
    gaps = [gap for _, gap in analyzer.failover_gaps()]
    completed = len(latencies)
    lost = sum(
        1
        for e in events
        if e.type == "frame_done" and e.latency_ms is None
    )
    total = completed + lost
    trap_joins = sum(
        1
        for e in events
        if e.type == "join_accept" and getattr(e, "node_id", None) in TRAP_IDS
    )
    metrics: Dict[str, float] = {
        "latency_p50_ms": percentile(latencies, 50.0) if latencies else 0.0,
        "latency_p95_ms": percentile(latencies, 95.0) if latencies else 0.0,
        "latency_p99_ms": percentile(latencies, 99.0) if latencies else 0.0,
        "failover_gap_p95_ms": percentile(gaps, 95.0) if gaps else 0.0,
        "failover_gap_mean_ms": (sum(gaps) / len(gaps)) if gaps else 0.0,
        "failover_gaps": float(len(gaps)),
        "covered_failovers": float(counts.get("covered_failover", 0)),
        "uncovered_failures": float(counts.get("uncovered_failure", 0)),
        "switches": float(counts.get("switch", 0)),
        "loss_rate": (lost / total) if total else 0.0,
        "trap_joins": float(trap_joins),
        "faults_injected": float(sum(injector.injected.values())),
    }
    return PolicyMatrixResult(
        policy=policy,
        fault_family=fault_family,
        churn_rate=churn_rate,
        metrics=metrics,
    )
