"""Experiment builders — one per figure/table of the paper's evaluation.

Each module exposes pure functions that construct a system, run it, and
return plain result objects; the ``benchmarks/`` harness prints them in
the paper's row/series shapes, and ``EXPERIMENTS.md`` records the
paper-vs-measured comparison.

| Paper artifact | Module | Entry point |
|---|---|---|
| Fig. 1  | network_study      | ``run_network_study`` |
| Table II| (hardware catalog) | ``repro.nodes.hardware`` |
| Fig. 3  | realworld          | ``run_single_user_cdf`` |
| Table III| realworld         | ``run_pairwise_selection`` |
| Fig. 4  | realworld          | ``run_failover_trace`` |
| Fig. 5  | realworld          | ``run_elasticity_sweep`` |
| Fig. 6  | emulation          | ``run_user_traces`` |
| Fig. 7  | emulation          | ``run_vs_optimal`` |
| Fig. 8  | churn_experiment   | ``run_churn_trace`` |
| Fig. 9  | churn_experiment   | ``run_topn_sweep`` |
| Fig. 10 | churn_experiment   | ``run_fault_tolerance`` |
"""

from repro.experiments.scenario import (
    EmulationScenario,
    RealWorldScenario,
    build_emulation_system,
    build_real_world_system,
)

__all__ = [
    "RealWorldScenario",
    "EmulationScenario",
    "build_real_world_system",
    "build_emulation_system",
]
