"""QoS-constrained selection and admission control (§IV-D extension).

"Users can first filter out edge candidates whose LO violates QoS
requirements and then select the node with lowest GO to optimize global
performance. In this case, new users can be rejected to join the system
if (1) no available edge nodes can satisfy the QoS requirements, or
(2) new joins lead to QoS violations of existing users."

This experiment loads the real-world deployment with an increasing user
population under a hard QoS bound and reports, per population size:

- how many users were admitted vs left unattached (admission control);
- the QoS violation rate among *admitted* users' frames;
- the same without QoS filtering, to show the trade the mechanism makes
  (everyone admitted, violations spread across the population).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.experiments.realworld import build_real_world_system
from repro.metrics.stats import mean


@dataclass
class QosCell:
    """One (population size, mode) measurement."""

    n_users: int
    admitted: int
    rejected: int
    violation_rate: float  # fraction of completed frames above the bound
    admitted_mean_ms: Optional[float]


@dataclass
class QosAdmissionResult:
    user_counts: List[int]
    qos_latency_ms: float
    with_qos: Dict[int, QosCell] = field(default_factory=dict)
    without_qos: Dict[int, QosCell] = field(default_factory=dict)


def _run_cell(
    config: SystemConfig,
    n_users: int,
    qos_latency_ms: float,
    *,
    enforce: bool,
    settle_ms: float,
    measure_ms: float,
    join_stagger_ms: float,
) -> QosCell:
    cell_config = config.with_(qos_latency_ms=qos_latency_ms if enforce else None)
    scenario = build_real_world_system(cell_config, n_users=n_users, include_cloud=False)
    system = scenario.system
    for i, user_id in enumerate(scenario.user_ids):
        client = EdgeClient(system, user_id)
        system.clients[user_id] = client
        system.sim.schedule(i * join_stagger_ms, client.start)
    start_measure = n_users * join_stagger_ms + settle_ms
    system.run_for(start_measure + measure_ms)

    admitted = [c for c in system.clients.values() if c.attached]
    window = system.metrics.completed_latencies(
        start_ms=start_measure, end_ms=start_measure + measure_ms
    )
    violations = sum(1 for v in window if v > qos_latency_ms)
    return QosCell(
        n_users=n_users,
        admitted=len(admitted),
        rejected=n_users - len(admitted),
        violation_rate=violations / len(window) if window else 0.0,
        admitted_mean_ms=mean(window) if window else None,
    )


def run_qos_admission(
    config: Optional[SystemConfig] = None,
    *,
    qos_latency_ms: float = 90.0,
    user_counts: Optional[List[int]] = None,
    settle_ms: float = 15_000.0,
    measure_ms: float = 15_000.0,
    join_stagger_ms: float = 2_000.0,
) -> QosAdmissionResult:
    """Sweep population size with and without the QoS filter."""
    config = config or SystemConfig()
    counts = user_counts or [5, 10, 15, 20]
    result = QosAdmissionResult(user_counts=counts, qos_latency_ms=qos_latency_ms)
    for n in counts:
        result.with_qos[n] = _run_cell(
            config,
            n,
            qos_latency_ms,
            enforce=True,
            settle_ms=settle_ms,
            measure_ms=measure_ms,
            join_stagger_ms=join_stagger_ms,
        )
        result.without_qos[n] = _run_cell(
            config,
            n,
            qos_latency_ms,
            enforce=False,
            settle_ms=settle_ms,
            measure_ms=measure_ms,
            join_stagger_ms=join_stagger_ms,
        )
    return result
