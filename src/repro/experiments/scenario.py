"""Scenario builders for the paper's two evaluation environments.

**Real world** (§V-C): 15 users + 5 volunteer laptops (Table II V1-V5)
within ~10 miles in the Minneapolis-Saint Paul metro, 4 AWS Local Zone
instances (D6-D9) and one regional cloud instance. Network behaviour
comes from the calibrated :class:`~repro.net.latency.DistanceRttModel`.

**Emulation** (§V-D): 9 EC2 volunteer nodes (4x t2.medium, 4x t2.xlarge,
1x t2.2xlarge) and 15 user devices "within 50 miles", with
distance-correlated pairwise RTTs spanning the paper's 8-55 ms range
(the tc latencies were configured "in the corresponding
geo-distribution"). Dynamically churned nodes get positions — and hence
stable pairwise latencies — the moment they spawn.

Builders return a scenario record naming every entity, so experiments
can attach clients of any strategy to the same physical world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.geo.region import MSP_CENTER, MetroArea, PlacementStyle
from repro.net.latency import DistanceRttModel, JitterModel, NetworkTier
from repro.net.topology import EndpointSpec, NetworkTopology
from repro.nodes.hardware import (
    CLOUD_NODE,
    DEDICATED_PROFILES,
    EMULATION_PROFILES,
    HardwareProfile,
    VOLUNTEER_PROFILES,
)

#: Where the Local Zone instances sit (a downtown data-center location).
LOCAL_ZONE_POINT = GeoPoint(44.9730, -93.2570)
#: The regional cloud (us-east-2-ish: ~1000 km away).
CLOUD_POINT = GeoPoint(40.0, -83.0)

#: Residential ISPs volunteers/users are spread across (affects the
#: same-ISP discount of the distance RTT model).
METRO_ISPS = ("isp-comcast", "isp-centurylink", "isp-usi")


@dataclass
class RealWorldScenario:
    """Handles to everything the real-world builders created."""

    system: EdgeSystem
    volunteer_ids: List[str]
    dedicated_ids: List[str]
    cloud_id: Optional[str]
    user_ids: List[str]

    @property
    def all_node_ids(self) -> List[str]:
        ids = list(self.volunteer_ids) + list(self.dedicated_ids)
        if self.cloud_id is not None:
            ids.append(self.cloud_id)
        return ids


def build_real_world_system(
    config: Optional[SystemConfig] = None,
    *,
    n_users: int = 15,
    include_volunteers: bool = True,
    include_dedicated: bool = True,
    include_cloud: bool = True,
    global_policy: Optional[GlobalSelectionPolicy] = None,
    volunteer_profiles: Optional[List[HardwareProfile]] = None,
) -> RealWorldScenario:
    """Build the Table II deployment (nodes only — attach clients yourself).

    User endpoints ``u01..`` are registered but no client objects are
    created; experiments decide the strategy per user.
    """
    config = config or SystemConfig()
    system = EdgeSystem(config, global_policy=global_policy, manager_point=CLOUD_POINT)
    placement_rng = system.streams.get("placement")
    metro = MetroArea(center=MSP_CENTER, radius_km=16.0, rng=placement_rng)

    volunteer_ids: List[str] = []
    if include_volunteers:
        for profile in volunteer_profiles or VOLUNTEER_PROFILES:
            point = metro.sample(PlacementStyle.GAUSSIAN)
            isp = METRO_ISPS[len(volunteer_ids) % len(METRO_ISPS)]
            system.add_node(
                profile.name,
                profile,
                EndpointSpec(
                    point,
                    tier=NetworkTier.HOME_WIFI,
                    isp=isp,
                    uplink_mbps=40.0,
                    downlink_mbps=300.0,
                    # "volunteer-based edge nodes ... with heterogeneous
                    # network access" (Fig. 1): last-mile quality varies a
                    # lot more than metro distance does. The spread keeps
                    # the class mean below the Local Zone's (Fig. 1's
                    # headline) while individual volunteers can land above
                    # it (Fig. 1's spread).
                    access_extra_ms=placement_rng.uniform(0.0, 12.0),
                ),
            )
            volunteer_ids.append(profile.name)

    dedicated_ids: List[str] = []
    if include_dedicated:
        for profile in DEDICATED_PROFILES:
            system.add_node(
                profile.name,
                profile,
                EndpointSpec(
                    LOCAL_ZONE_POINT,
                    tier=NetworkTier.LOCAL_ZONE,
                    uplink_mbps=1000.0,
                    downlink_mbps=1000.0,
                ),
                dedicated=True,
            )
            dedicated_ids.append(profile.name)

    cloud_id: Optional[str] = None
    if include_cloud:
        # The cloud is modelled as elastic (it can always add instances),
        # so its node carries high parallelism: offloading there costs
        # WAN latency, not contention. Documented in EXPERIMENTS.md.
        elastic_cloud = HardwareProfile(
            name=CLOUD_NODE.name,
            processor=CLOUD_NODE.processor,
            cores=CLOUD_NODE.cores,
            base_frame_ms=CLOUD_NODE.base_frame_ms,
            parallelism=32,
        )
        system.add_node(
            elastic_cloud.name,
            elastic_cloud,
            EndpointSpec(
                CLOUD_POINT,
                tier=NetworkTier.CLOUD,
                uplink_mbps=10_000.0,
                downlink_mbps=10_000.0,
            ),
            dedicated=True,
        )
        cloud_id = elastic_cloud.name

    user_ids: List[str] = []
    for i in range(n_users):
        user_id = f"u{i + 1:02d}"
        point = metro.sample(PlacementStyle.UNIFORM_DISC)
        isp = METRO_ISPS[i % len(METRO_ISPS)]
        system.add_client_endpoint(
            user_id,
            EndpointSpec(
                point,
                tier=NetworkTier.HOME_WIFI,
                isp=isp,
                uplink_mbps=20.0,
                downlink_mbps=200.0,
                access_extra_ms=placement_rng.uniform(0.0, 4.0),
            ),
        )
        user_ids.append(user_id)

    return RealWorldScenario(
        system=system,
        volunteer_ids=volunteer_ids,
        dedicated_ids=dedicated_ids,
        cloud_id=cloud_id,
        user_ids=user_ids,
    )


# ----------------------------------------------------------------------
# Emulation environment (§V-D)
# ----------------------------------------------------------------------
#: §V-D1 node fleet: 4x t2.medium, 4x t2.xlarge, 1x t2.2xlarge.
EMULATION_NODE_MIX = (
    ("t2.medium", 4),
    ("t2.xlarge", 4),
    ("t2.2xlarge", 1),
)
#: §V-D2 churn pool: 8x t2.medium, 8x t2.xlarge, 2x t2.2xlarge.
CHURN_NODE_MIX = (
    ("t2.medium", 8),
    ("t2.xlarge", 8),
    ("t2.2xlarge", 2),
)


@dataclass
class EmulationScenario:
    """Handles for the emulation builders."""

    system: EdgeSystem
    node_ids: List[str]
    user_ids: List[str]
    expected_rtt: Dict[tuple, float]


def emulation_node_profiles(
    mix: tuple = EMULATION_NODE_MIX,
) -> List[HardwareProfile]:
    """Expand a (profile name, count) mix into a profile list."""
    profiles: List[HardwareProfile] = []
    for name, count in mix:
        profiles.extend([EMULATION_PROFILES[name]] * count)
    return profiles


def build_emulation_system(
    config: Optional[SystemConfig] = None,
    *,
    n_users: int = 15,
    node_mix: tuple = EMULATION_NODE_MIX,
    spawn_nodes: bool = True,
    region_radius_km: float = 80.0,
    global_policy: Optional[GlobalSelectionPolicy] = None,
) -> EmulationScenario:
    """Build the §V-D1 emulation world.

    The paper configures pairwise latency "using tc with real-world
    measurement data", with RTTs of 8-55 ms "in the corresponding
    geo-distribution" of entities "within 50 miles" — i.e. the emulated
    latencies are distance-correlated. We reproduce that with the
    distance RTT model over an 80 km (~50 mi) region plus heterogeneous
    per-endpoint access overheads, which spans the same 8-55 ms range.
    Set ``spawn_nodes=False`` for churn experiments that create nodes
    from a trace instead.
    """
    config = config or SystemConfig()
    rtt_model = DistanceRttModel(
        jitter=JitterModel(sigma=0.06, spike_probability=0.005),
    )
    topology = NetworkTopology(rtt_model=rtt_model)
    system = EdgeSystem(config, topology=topology, global_policy=global_policy)
    placement_rng = system.streams.get("placement")
    metro = MetroArea(center=MSP_CENTER, radius_km=region_radius_km, rng=placement_rng)

    node_ids: List[str] = []
    if spawn_nodes:
        index = 1
        for name, count in node_mix:
            profile = EMULATION_PROFILES[name]
            for _ in range(count):
                node_id = f"e{index:02d}-{name}"
                system.add_node(
                    node_id,
                    profile,
                    EndpointSpec(
                        metro.sample(PlacementStyle.UNIFORM_DISC),
                        tier=NetworkTier.HOME_WIFI,
                        access_extra_ms=placement_rng.uniform(0.0, 12.0),
                    ),
                )
                node_ids.append(node_id)
                index += 1

    user_ids: List[str] = []
    for i in range(n_users):
        user_id = f"u{i + 1:02d}"
        system.add_client_endpoint(
            user_id,
            EndpointSpec(
                metro.sample(PlacementStyle.UNIFORM_DISC),
                tier=NetworkTier.HOME_WIFI,
                uplink_mbps=50.0,
                access_extra_ms=placement_rng.uniform(0.0, 12.0),
            ),
        )
        user_ids.append(user_id)

    expected = {
        (u, n): topology.expected_rtt_ms(u, n) for u in user_ids for n in node_ids
    }
    return EmulationScenario(
        system=system, node_ids=node_ids, user_ids=user_ids, expected_rtt=expected
    )


#: Convenience alias for churn experiments wanting a client factory type.
ClientFactory = Callable[[EdgeSystem, str], object]
