"""Emulation experiments (§V-D1): Fig. 6 per-user traces, Fig. 7 vs optimal.

The emulated world: 9 EC2 volunteer nodes (4x t2.medium, 4x t2.xlarge,
1x t2.2xlarge), 15 users joining one by one every 10 seconds, pairwise
RTTs fixed per pair in 8-55 ms. Fig. 6 traces each user's end-to-end
latency under three selection methods; Fig. 7 compares the settled
average (after all joins) against the offline optimal assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.baselines.geo_proximity import GeoProximityClient
from repro.baselines.optimal import OptimalInstance, solve_optimal
from repro.baselines.resource_aware import ResourceAwareWRRClient
from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.experiments.scenario import EmulationScenario, build_emulation_system
from repro.metrics.stats import mean
from repro.metrics.timeseries import bin_series

EMULATION_METHODS: Dict[str, Type[EdgeClient]] = {
    "geo_proximity": GeoProximityClient,
    "resource_aware": ResourceAwareWRRClient,
    "client_centric": EdgeClient,
}

#: §V-D1 timing: a new user joins every 10 s; all 15 are in by 150 s.
JOIN_INTERVAL_MS = 10_000.0
RUN_DURATION_MS = 180_000.0


@dataclass
class UserTraceResult:
    """Fig. 6: per-user latency traces for each method."""

    methods: List[str]
    #: method -> user -> [(bin_start_ms, mean_latency_ms)]
    traces: Dict[str, Dict[str, List[Tuple[float, float]]]] = field(
        default_factory=dict
    )
    #: method -> count of users whose trace ever exceeds 150 ms
    over_150_users: Dict[str, int] = field(default_factory=dict)


def _run_method(
    method: str,
    config: SystemConfig,
    *,
    n_users: int = 15,
    duration_ms: float = RUN_DURATION_MS,
) -> EmulationScenario:
    scenario = build_emulation_system(config, n_users=n_users)
    system = scenario.system
    client_cls = EMULATION_METHODS[method]
    for i, user_id in enumerate(scenario.user_ids):
        client = client_cls(system, user_id)
        system.clients[user_id] = client
        system.sim.schedule(i * JOIN_INTERVAL_MS, client.start)
    system.run_for(duration_ms)
    return scenario


def run_user_traces(
    config: Optional[SystemConfig] = None,
    *,
    bin_ms: float = 2_000.0,
    methods: Tuple[str, ...] = ("geo_proximity", "resource_aware", "client_centric"),
) -> UserTraceResult:
    """Reproduce Fig. 6: per-user latency traces under the three methods."""
    config = config or SystemConfig()
    result = UserTraceResult(methods=list(methods))
    for method in methods:
        scenario = _run_method(method, config)
        metrics = scenario.system.metrics
        per_user: Dict[str, List[Tuple[float, float]]] = {}
        over_150 = 0
        for user_id in scenario.user_ids:
            times: List[float] = []
            values: List[float] = []
            for record in metrics.frames:
                if record.user_id == user_id and record.latency_ms is not None:
                    times.append(record.created_ms)
                    values.append(record.latency_ms)
            trace = bin_series(times, values, bin_ms)
            per_user[user_id] = trace
            if any(v > 150.0 for _, v in trace):
                over_150 += 1
        result.traces[method] = per_user
        result.over_150_users[method] = over_150
    return result


@dataclass
class VsOptimalResult:
    """Fig. 7: settled average latency per method vs the offline optimal."""

    optimal_ms: float
    averages_ms: Dict[str, float]

    def overhead_pct(self, method: str) -> float:
        """How far above optimal a method lands, in percent."""
        return (self.averages_ms[method] / self.optimal_ms - 1.0) * 100.0


def run_vs_optimal(
    config: Optional[SystemConfig] = None,
    *,
    measure_start_ms: float = 155_000.0,
    measure_end_ms: float = RUN_DURATION_MS,
    methods: Tuple[str, ...] = ("geo_proximity", "resource_aware", "client_centric"),
) -> VsOptimalResult:
    """Reproduce Fig. 7.

    The optimal reference is computed exactly as the paper describes:
    "based on the application profile on [the] EC2 instance[s] we use
    and the emulated network setup" — the analytic queue model over the
    configured expected pairwise delays, solved offline.
    """
    config = config or SystemConfig()
    averages: Dict[str, float] = {}
    reference: Optional[EmulationScenario] = None
    for method in methods:
        scenario = _run_method(method, config)
        if reference is None:
            reference = scenario
        per_user = scenario.system.metrics.per_user_mean_latency(
            start_ms=measure_start_ms, end_ms=measure_end_ms
        )
        if not per_user:
            raise RuntimeError(f"no completed frames for {method}")
        averages[method] = mean(list(per_user.values()))

    assert reference is not None
    system = reference.system
    transfer = {
        (u, n): system.topology.expected_transfer_ms(
            u, n, system.app.frame_bytes
        )
        for u in reference.user_ids
        for n in reference.node_ids
    }
    instance = OptimalInstance(
        user_ids=reference.user_ids,
        node_ids=reference.node_ids,
        profiles={n: system.nodes[n].profile for n in reference.node_ids},
        expected_network_ms={
            pair: rtt + transfer[pair] for pair, rtt in reference.expected_rtt.items()
        },
        default_fps=system.app.max_fps,
    )
    _, optimal_cost = solve_optimal(instance)
    return VsOptimalResult(optimal_ms=optimal_cost, averages_ms=averages)
