"""Real-world experiments (§V-C): Fig. 3, Table III, Fig. 4, Fig. 5.

All builders run fresh, seeded simulations of the Table II deployment.
Runs that the paper conducted "separately ... to avoid interference"
(the Fig. 3 CDFs and the Table III pairwise matrix) are likewise
separate simulations per (user, node) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.baselines.dedicated_only import dedicated_only_policy
from repro.baselines.geo_proximity import GeoProximityClient
from repro.baselines.resource_aware import ResourceAwareWRRClient
from repro.baselines.static_pin import StaticPinClient
from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.experiments.scenario import RealWorldScenario, build_real_world_system
from repro.metrics.stats import cdf_points, mean


# ----------------------------------------------------------------------
# Fig. 3 — CDF of end-to-end latency from one user to 4 edge servers
# ----------------------------------------------------------------------
@dataclass
class SingleUserCdfResult:
    """Per-target-node latency samples for one user."""

    user_id: str
    latencies: Dict[str, List[float]]  # node id -> e2e samples (ms)

    def cdfs(self) -> Dict[str, List[Tuple[float, float]]]:
        return {node: cdf_points(samples) for node, samples in self.latencies.items()}

    def means(self) -> Dict[str, float]:
        return {node: mean(samples) for node, samples in self.latencies.items()}


def run_single_user_cdf(
    config: SystemConfig = SystemConfig(),
    *,
    target_nodes: Tuple[str, ...] = ("V1", "V2", "V4", "D6"),
    duration_ms: float = 30_000.0,
    user_index: int = 0,
) -> SingleUserCdfResult:
    """Pin one user to each target node in isolated runs (paper Fig. 3).

    The same seed rebuilds the identical world each run, so the only
    variable is the serving node.
    """
    latencies: Dict[str, List[float]] = {}
    user_id = ""
    for node_id in target_nodes:
        scenario = build_real_world_system(config, n_users=user_index + 1)
        system = scenario.system
        user_id = scenario.user_ids[user_index]
        client = StaticPinClient(system, user_id, target_node_id=node_id)
        system.add_client(client)
        system.run_for(duration_ms)
        samples = client.stats.latencies_ms
        if not samples:
            raise RuntimeError(f"no frames completed against {node_id}")
        latencies[node_id] = list(samples)
    return SingleUserCdfResult(user_id=user_id, latencies=latencies)


# ----------------------------------------------------------------------
# Table III — pairwise latency + selection results (TopN = 6)
# ----------------------------------------------------------------------
@dataclass
class PairwiseSelectionResult:
    """The Table III matrix: measured pairwise means and chosen nodes."""

    user_ids: List[str]
    node_ids: List[str]
    pairwise_ms: Dict[Tuple[str, str], float]
    selected: Dict[str, str]  # user -> node picked by client-centric

    def row(self, user_id: str) -> List[float]:
        return [self.pairwise_ms[(user_id, n)] for n in self.node_ids]


def run_pairwise_selection(
    config: Optional[SystemConfig] = None,
    *,
    n_probe_users: int = 3,
    measure_duration_ms: float = 15_000.0,
    select_duration_ms: float = 10_000.0,
) -> PairwiseSelectionResult:
    """Reproduce Table III.

    For each of ``n_probe_users`` users: (1) measure the mean end-to-end
    latency against every node in isolated pinned runs; (2) run the
    client-centric selection with ``TopN`` large enough to cover all
    nodes, and record which node it picks. The experiment is "conducted
    separately for [the] users to avoid interference".
    """
    config = config or SystemConfig()
    probe_all_config = config.with_(
        top_n=6, discovery_radius_km=2_000.0, wide_radius_km=5_000.0
    )

    template = build_real_world_system(probe_all_config, n_users=n_probe_users)
    node_ids = template.volunteer_ids + template.dedicated_ids[:1]
    if template.cloud_id is not None:
        node_ids.append(template.cloud_id)
    user_ids = template.user_ids[:n_probe_users]

    pairwise: Dict[Tuple[str, str], float] = {}
    selected: Dict[str, str] = {}
    for index, user_id in enumerate(user_ids):
        for node_id in node_ids:
            scenario = build_real_world_system(probe_all_config, n_users=index + 1)
            client = StaticPinClient(
                scenario.system, user_id, target_node_id=node_id
            )
            scenario.system.add_client(client)
            scenario.system.run_for(measure_duration_ms)
            pairwise[(user_id, node_id)] = client.stats.mean_latency_ms

        scenario = build_real_world_system(probe_all_config, n_users=index + 1)
        chooser = EdgeClient(scenario.system, user_id)
        scenario.system.add_client(chooser)
        scenario.system.run_for(select_duration_ms)
        if chooser.current_edge is None:
            raise RuntimeError(f"{user_id} failed to attach during selection run")
        selected[user_id] = chooser.current_edge

    return PairwiseSelectionResult(
        user_ids=user_ids,
        node_ids=node_ids,
        pairwise_ms=pairwise,
        selected=selected,
    )


# ----------------------------------------------------------------------
# Fig. 4 — reconnect vs immediate switch trace upon node failure
# ----------------------------------------------------------------------
@dataclass
class FailoverTraceResult:
    """Per-frame latency traces around a node failure, both approaches."""

    fail_at_ms: float
    proactive: List[Tuple[float, float]]  # (created_ms, latency_ms)
    reactive: List[Tuple[float, float]]

    def peak_latency(self, trace: List[Tuple[float, float]]) -> float:
        return max(latency for _, latency in trace)

    @property
    def reactive_peak_ms(self) -> float:
        return self.peak_latency(self.reactive)

    @property
    def proactive_peak_ms(self) -> float:
        return self.peak_latency(self.proactive)


def _run_failover_once(
    config: SystemConfig, fail_at_ms: float, duration_ms: float
) -> List[Tuple[float, float]]:
    scenario = build_real_world_system(config, n_users=1)
    system = scenario.system
    user_id = scenario.user_ids[0]
    client = EdgeClient(system, user_id)
    system.add_client(client)
    # Let the client settle, then kill whatever node it chose.
    system.run_for(fail_at_ms)
    victim = client.current_edge
    if victim is None:
        raise RuntimeError("client not attached before the scheduled failure")
    system.fail_node(victim)
    system.run_for(duration_ms - fail_at_ms)
    return [
        (record.created_ms, record.latency_ms)
        for record in system.metrics.frames
        if record.user_id == user_id and record.latency_ms is not None
    ]


def run_failover_trace(
    config: Optional[SystemConfig] = None,
    *,
    fail_at_ms: float = 10_000.0,
    duration_ms: float = 20_000.0,
) -> FailoverTraceResult:
    """Reproduce Fig. 4: proactive switch vs reactive re-connect.

    Proactive: the paper's client (TopN=3, standing backup connections).
    Reactive: TopN=1 — no backups, so the failure forces re-discovery
    over a cold connection.
    """
    config = config or SystemConfig()
    proactive = _run_failover_once(config.with_(top_n=3), fail_at_ms, duration_ms)
    reactive_config = config.with_(top_n=1)
    reactive = _run_failover_once(reactive_config, fail_at_ms, duration_ms)
    return FailoverTraceResult(
        fail_at_ms=fail_at_ms, proactive=proactive, reactive=reactive
    )


# ----------------------------------------------------------------------
# Fig. 5 — elasticity: average latency with increasing users
# ----------------------------------------------------------------------
STRATEGIES = (
    "client_centric",
    "geo_proximity",
    "resource_aware",
    "dedicated_only",
    "closest_cloud",
)


@dataclass
class ElasticityResult:
    """Average end-to-end latency per (strategy, user count)."""

    user_counts: List[int]
    averages_ms: Dict[str, List[float]] = field(default_factory=dict)

    def series(self, strategy: str) -> List[float]:
        return self.averages_ms[strategy]


def _build_for_strategy(
    strategy: str, config: SystemConfig, n_users: int
) -> Tuple[RealWorldScenario, Type[EdgeClient], dict]:
    if strategy == "dedicated_only":
        scenario = build_real_world_system(
            config,
            n_users=n_users,
            include_cloud=False,
            global_policy=dedicated_only_policy(
                config.discovery_radius_km, config.wide_radius_km
            ),
        )
        return scenario, EdgeClient, {}
    if strategy == "closest_cloud":
        scenario = build_real_world_system(
            config, n_users=n_users, include_volunteers=False, include_dedicated=False
        )
        return scenario, StaticPinClient, {"target_node_id": scenario.cloud_id}
    scenario = build_real_world_system(config, n_users=n_users, include_cloud=False)
    client_cls: Type[EdgeClient] = {
        "client_centric": EdgeClient,
        "geo_proximity": GeoProximityClient,
        "resource_aware": ResourceAwareWRRClient,
    }[strategy]
    return scenario, client_cls, {}


def run_elasticity_sweep(
    config: Optional[SystemConfig] = None,
    *,
    max_users: int = 15,
    user_counts: Optional[List[int]] = None,
    join_stagger_ms: float = 2_000.0,
    settle_ms: float = 15_000.0,
    measure_ms: float = 15_000.0,
    strategies: Tuple[str, ...] = STRATEGIES,
) -> ElasticityResult:
    """Reproduce Fig. 5: per-strategy average latency as users pile in.

    Each (strategy, n) cell is its own simulation: ``n`` users join
    ``join_stagger_ms`` apart, the system settles, and the average
    completed-frame latency over the measurement window is reported.
    """
    config = config or SystemConfig()
    counts = user_counts or list(range(1, max_users + 1))
    result = ElasticityResult(user_counts=counts)

    for strategy in strategies:
        series: List[float] = []
        for n in counts:
            scenario, client_cls, extra = _build_for_strategy(strategy, config, n)
            system = scenario.system
            for i, user_id in enumerate(scenario.user_ids):
                client = client_cls(system, user_id, **extra)
                system.clients[user_id] = client
                system.sim.schedule(i * join_stagger_ms, client.start)
            total_join = len(scenario.user_ids) * join_stagger_ms
            start_measure = total_join + settle_ms
            system.run_for(start_measure + measure_ms)
            # The paper's metric P(EA) = (1/n) * sum over users — every
            # user counts equally. Averaging raw frames instead would
            # underweight exactly the users a bad policy hurts most,
            # because overloaded users adaptively throttle and emit
            # fewer frames.
            per_user = system.metrics.per_user_mean_latency(
                start_ms=start_measure, end_ms=start_measure + measure_ms
            )
            if not per_user:
                raise RuntimeError(
                    f"no completed frames for {strategy} at n={n}"
                )
            series.append(mean(list(per_user.values())))
        result.averages_ms[strategy] = series
    return result
