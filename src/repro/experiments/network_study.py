"""Fig. 1 — network measurements: volunteers vs Local Zone vs cloud.

The paper's Fig. 1 shows RTTs measured from 15 home-WiFi participants in
the Minneapolis-Saint Paul metro to (1) five volunteer edge nodes,
(2) AWS Local Zone us-east-1-msp, (3) the closest cloud region
(us-east-2), and finds the volunteer nodes deliver the lowest propagation
delay. This experiment reproduces the measurement campaign over the
calibrated distance/tier RTT model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import SystemConfig
from repro.experiments.scenario import build_real_world_system
from repro.metrics.stats import Summary, summarize


@dataclass
class NetworkStudyResult:
    """RTT samples per target class, from all users."""

    samples: Dict[str, List[float]]  # class name -> RTT samples (ms)

    def summaries(self) -> Dict[str, Summary]:
        return {name: summarize(values) for name, values in self.samples.items()}


def run_network_study(
    config: SystemConfig = SystemConfig(),
    *,
    n_users: int = 15,
    probes_per_pair: int = 20,
) -> NetworkStudyResult:
    """Measure RTT from every user to every target class.

    Returns samples grouped as the paper's three x-axis groups:
    ``volunteer`` (5 nodes), ``local_zone`` (one D instance stands in for
    the Local Zone endpoint), ``cloud``.
    """
    if probes_per_pair < 1:
        raise ValueError(f"probes_per_pair must be >= 1: {probes_per_pair}")
    scenario = build_real_world_system(config, n_users=n_users)
    topology = scenario.system.topology

    groups = {
        "volunteer": scenario.volunteer_ids,
        "local_zone": scenario.dedicated_ids[:1],
        "cloud": [scenario.cloud_id] if scenario.cloud_id else [],
    }
    samples: Dict[str, List[float]] = {name: [] for name in groups}
    for user_id in scenario.user_ids:
        for group, node_ids in groups.items():
            for node_id in node_ids:
                for _ in range(probes_per_pair):
                    samples[group].append(topology.rtt_ms(user_id, node_id))
    return NetworkStudyResult(samples=samples)
