"""Churn experiments (§V-D2): Fig. 8 trace, Fig. 9 TopN sweep, Fig. 10.

Setup exactly per the paper: 10 static users; volunteer node arrivals
Poisson (k=4 per 30 s epoch) with Weibull lifetimes (mean 50 s); a
configuration with a total of 18 nodes over the 3-minute timeline is
selected; the 18 episodes are randomly matched with 8x t2.medium,
8x t2.xlarge and 2x t2.2xlarge instances; networking as in §V-D1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.churn.injector import ChurnInjector
from repro.churn.models import PoissonArrivalModel, WeibullLifetimeModel
from repro.churn.trace import ChurnTrace, generate_trace
from repro.core.client import EdgeClient
from repro.core.config import SystemConfig
from repro.experiments.scenario import (
    CHURN_NODE_MIX,
    EmulationScenario,
    build_emulation_system,
    emulation_node_profiles,
)
from repro.geo.region import MSP_CENTER
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import mean, stddev
from repro.metrics.timeseries import bin_series

HORIZON_MS = 180_000.0  # the paper's 3-minute timeline
TARGET_TOTAL_NODES = 18


def make_churn_trace(
    config: SystemConfig,
    *,
    horizon_ms: float = HORIZON_MS,
    target_total_nodes: Optional[int] = TARGET_TOTAL_NODES,
    min_alive: int = 2,
) -> ChurnTrace:
    """Generate the §V-D2 churn configuration (seeded by the config).

    The paper "randomly select[s] a configuration from multiple runs of
    this process" — i.e. the published trace is a hand-picked acceptable
    draw, not an arbitrary one. We encode the acceptance: the first node
    arrives within 5 s (users are not staring at an empty system) and
    the population never drops below ``min_alive`` after the first 10 s
    (matching the visible floor of Fig. 8's stair line; with zero alive
    nodes every failure is trivially uncovered and Fig. 10's TopN story
    cannot be asked at all).
    """
    rng = __import__("random").Random(config.seed * 977 + 13)
    arrivals = PoissonArrivalModel(k=4.0, epoch_ms=30_000.0)
    lifetimes = WeibullLifetimeModel(mean_ms=50_000.0)
    for _ in range(20_000):
        trace = generate_trace(
            rng,
            horizon_ms=horizon_ms,
            arrivals=arrivals,
            lifetimes=lifetimes,
            target_total_nodes=target_total_nodes,
        )
        if trace.episodes[0].join_ms > 5_000.0:
            continue
        floor = min(
            trace.alive_count_at(ms)
            for ms in range(10_000, int(horizon_ms) - 5_000, 1_000)
        )
        if floor >= min_alive:
            return trace
    raise RuntimeError("could not generate an acceptable churn configuration")


@dataclass
class ChurnRunResult:
    """One churn run's artifacts."""

    scenario: EmulationScenario
    trace: ChurnTrace
    metrics: MetricsCollector
    top_n: int

    # convenience reductions -------------------------------------------------
    def average_latency_ms(self, start_ms: float, end_ms: float) -> float:
        """Paper metric: mean of per-user mean latencies over a window."""
        per_user = self.metrics.per_user_mean_latency(start_ms, end_ms)
        if not per_user:
            raise RuntimeError("no completed frames in the window")
        return mean(list(per_user.values()))

    def fairness_std_ms(self, start_ms: float, end_ms: float) -> float:
        """Fig. 9(d): std-dev of per-user mean latency."""
        per_user = self.metrics.per_user_mean_latency(start_ms, end_ms)
        if not per_user:
            raise RuntimeError("no completed frames in the window")
        return stddev(list(per_user.values()))


def run_churn_once(
    config: Optional[SystemConfig] = None,
    *,
    n_users: int = 10,
    trace: Optional[ChurnTrace] = None,
    duration_ms: float = HORIZON_MS,
    proactive_connections: bool = True,
) -> ChurnRunResult:
    """Run one churn experiment with the client-centric approach.

    The same ``trace`` (and config seed) can be re-used across ``TopN``
    values so Fig. 9's sweep varies exactly one parameter.
    """
    config = config or SystemConfig()
    scenario = build_emulation_system(config, n_users=n_users, spawn_nodes=False)
    system = scenario.system
    trace = trace or make_churn_trace(config)
    injector = ChurnInjector(
        system,
        emulation_node_profiles(CHURN_NODE_MIX),
        center=MSP_CENTER,
        placement_radius_km=80.0,
    )
    injector.install(trace)
    for user_id in scenario.user_ids:
        client = EdgeClient(
            system, user_id, proactive_connections=proactive_connections
        )
        system.clients[user_id] = client
        client.start()
    system.run_for(duration_ms)
    return ChurnRunResult(
        scenario=scenario, trace=trace, metrics=system.metrics, top_n=config.top_n
    )


# ----------------------------------------------------------------------
# Fig. 8 — average performance trace + node population
# ----------------------------------------------------------------------
@dataclass
class ChurnTraceResult:
    """Fig. 8: average latency trace and the alive-node stair line."""

    latency_trace: List[Tuple[float, float]]  # (bin_start_ms, avg ms)
    population_steps: List[Tuple[float, int]]  # (time_ms, alive count)
    total_nodes: int


def run_churn_trace(
    config: Optional[SystemConfig] = None,
    *,
    bin_ms: float = 5_000.0,
) -> ChurnTraceResult:
    """Reproduce Fig. 8 (TopN = 3, 10 static users)."""
    config = (config or SystemConfig()).with_(top_n=3)
    result = run_churn_once(config)
    times: List[float] = []
    values: List[float] = []
    for record in result.metrics.frames:
        if record.latency_ms is not None:
            times.append(record.created_ms)
            values.append(record.latency_ms)
    return ChurnTraceResult(
        latency_trace=bin_series(times, values, bin_ms),
        population_steps=[(t, int(c)) for t, c in result.trace.population_steps()],
        total_nodes=len(result.trace),
    )


# ----------------------------------------------------------------------
# Fig. 9 — TopN sweep: overhead, latency, fairness
# ----------------------------------------------------------------------
@dataclass
class TopNSweepResult:
    """Fig. 9 (and Fig. 10b): per-TopN measurements over the same trace."""

    top_ns: List[int]
    probes: Dict[int, int] = field(default_factory=dict)  # (a)
    test_invocations: Dict[int, int] = field(default_factory=dict)  # (b)
    avg_latency_ms: Dict[int, float] = field(default_factory=dict)  # (c)
    fairness_std_ms: Dict[int, float] = field(default_factory=dict)  # (d)
    uncovered_failures: Dict[int, int] = field(default_factory=dict)  # Fig. 10b


def run_topn_sweep(
    config: Optional[SystemConfig] = None,
    *,
    top_ns: Tuple[int, ...] = (1, 2, 3, 4, 5),
    window: Tuple[float, float] = (60_000.0, 120_000.0),
) -> TopNSweepResult:
    """Reproduce Fig. 9: sweep TopN 1..5 over the same churn trace.

    (c) averages latency over the paper's 60-120 s window.
    """
    config = config or SystemConfig()
    trace = make_churn_trace(config)
    result = TopNSweepResult(top_ns=list(top_ns))
    for top_n in top_ns:
        run = run_churn_once(config.with_(top_n=top_n), trace=trace)
        result.probes[top_n] = run.metrics.total_probes()
        result.test_invocations[top_n] = run.metrics.total_test_invocations()
        result.avg_latency_ms[top_n] = run.average_latency_ms(*window)
        result.fairness_std_ms[top_n] = run.fairness_std_ms(*window)
        result.uncovered_failures[top_n] = run.metrics.total_failures()
    return result


# ----------------------------------------------------------------------
# Fig. 10 — fault tolerance
# ----------------------------------------------------------------------
@dataclass
class FaultToleranceResult:
    """Fig. 10: failover downtime comparison + failures per TopN."""

    proactive_recovery_ms: float  # (a) mean service downtime per failover
    reactive_recovery_ms: float
    proactive_events: int
    reactive_events: int
    failures_by_topn: Dict[int, int]  # (b)

    @property
    def downtime_ratio(self) -> float:
        """How many times longer reactive recovery takes."""
        if self.proactive_recovery_ms <= 0:
            return float("inf")
        return self.reactive_recovery_ms / self.proactive_recovery_ms


def _recovery_downtimes(metrics: MetricsCollector) -> List[float]:
    """Service downtime around each failover/failure event.

    Downtime = gap between the last frame completed before the event and
    the first frame completed after it, for the affected user. This is
    the "unacceptable delay gap for latency-critical applications" that
    Fig. 4/10a visualize — and unlike raw frame latencies it is not
    hidden by clients dropping frames that went stale during the outage.
    """
    events = list(metrics.failover_events) + list(metrics.failure_events)
    downtimes: List[float] = []
    for user_id, at_ms in events:
        last_before: Optional[float] = None
        first_after: Optional[float] = None
        for record in metrics.frames:
            if record.user_id != user_id or record.latency_ms is None:
                continue
            completed = record.created_ms + record.latency_ms
            if completed <= at_ms:
                if last_before is None or completed > last_before:
                    last_before = completed
            elif first_after is None or completed < first_after:
                first_after = completed
        if last_before is not None and first_after is not None:
            downtimes.append(first_after - last_before)
    return downtimes


def run_fault_tolerance(
    config: Optional[SystemConfig] = None,
    *,
    top_ns: Tuple[int, ...] = (1, 2, 3, 4, 5),
) -> FaultToleranceResult:
    """Reproduce Fig. 10.

    (a) contrasts recovery spikes between the proactive approach
    (TopN=3, standing backup connections) and the reactive re-connect
    approach (TopN=1, cold reconnection) over the same churn trace.
    (b) counts uncovered failures per TopN (from the Fig. 9 sweep
    configuration).
    """
    config = config or SystemConfig()
    trace = make_churn_trace(config)

    proactive = run_churn_once(config.with_(top_n=3), trace=trace)
    reactive = run_churn_once(
        config.with_(top_n=1), trace=trace, proactive_connections=False
    )
    pro_spikes = _recovery_downtimes(proactive.metrics)
    rea_spikes = _recovery_downtimes(reactive.metrics)

    failures: Dict[int, int] = {}
    for top_n in top_ns:
        run = run_churn_once(config.with_(top_n=top_n), trace=trace)
        failures[top_n] = run.metrics.total_failures()

    return FaultToleranceResult(
        proactive_recovery_ms=mean(pro_spikes) if pro_spikes else 0.0,
        reactive_recovery_ms=mean(rea_spikes) if rea_spikes else 0.0,
        proactive_events=len(pro_spikes),
        reactive_events=len(rea_spikes),
        failures_by_topn=failures,
    )
