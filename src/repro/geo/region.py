"""Metro-area placement of users and edge nodes.

The paper's real-world deployment placed 20 participants "all within 10
miles away from each other in Minneapolis-Saint Paul metropolitan area";
the emulation placed users/nodes "within 50 miles". :class:`MetroArea`
reproduces such layouts: a named centre point plus seeded samplers that
scatter entities with one of several spatial styles.

Styles:

- ``UNIFORM_DISC`` — uniform over a disc (area-correct, i.e. radius is
  sampled as ``R*sqrt(u)``).
- ``GAUSSIAN`` — 2-D normal around the centre, truncated at the radius;
  denser downtown, sparser suburbs, which matches residential volunteer
  distributions.
- ``CLUSTERED`` — a few Gaussian neighbourhood clusters; models
  suburb-level clumping of volunteers sharing an ISP.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.geo.point import GeoPoint

#: Approximate centre of the Minneapolis-Saint Paul metro, the paper's
#: real-world deployment area.
MSP_CENTER = GeoPoint(44.9778, -93.2650)


class PlacementStyle(enum.Enum):
    """Spatial distribution used when scattering entities."""

    UNIFORM_DISC = "uniform_disc"
    GAUSSIAN = "gaussian"
    CLUSTERED = "clustered"


@dataclass
class MetroArea:
    """A disc-shaped metropolitan deployment area.

    Args:
        center: geographic centre.
        radius_km: maximum distance of any placed entity from the centre.
        rng: random source; pass a seeded ``random.Random`` for
            reproducible layouts.
        n_clusters: number of neighbourhood clusters for ``CLUSTERED``.
    """

    center: GeoPoint = MSP_CENTER
    radius_km: float = 16.0  # ~10 miles
    rng: random.Random = field(default_factory=random.Random)
    n_clusters: int = 4
    _clusters: Optional[List[GeoPoint]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.radius_km <= 0:
            raise ValueError(f"radius_km must be positive: {self.radius_km}")
        if self.n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1: {self.n_clusters}")

    # ------------------------------------------------------------------
    def sample(self, style: PlacementStyle = PlacementStyle.UNIFORM_DISC) -> GeoPoint:
        """Sample one point with the given placement style."""
        if style is PlacementStyle.UNIFORM_DISC:
            return self._sample_uniform()
        if style is PlacementStyle.GAUSSIAN:
            return self._sample_gaussian()
        if style is PlacementStyle.CLUSTERED:
            return self._sample_clustered()
        raise ValueError(f"unknown placement style: {style}")

    def sample_many(
        self, count: int, style: PlacementStyle = PlacementStyle.UNIFORM_DISC
    ) -> List[GeoPoint]:
        """Sample ``count`` points."""
        if count < 0:
            raise ValueError(f"count must be >= 0: {count}")
        return [self.sample(style) for _ in range(count)]

    def contains(self, point: GeoPoint) -> bool:
        """True if ``point`` lies within the metro disc."""
        return self.center.distance_km(point) <= self.radius_km + 1e-9

    # ------------------------------------------------------------------
    def _offset_at(self, distance_km: float, bearing_rad: float) -> GeoPoint:
        north = distance_km * math.cos(bearing_rad)
        east = distance_km * math.sin(bearing_rad)
        return self.center.offset_km(north, east)

    def _sample_uniform(self) -> GeoPoint:
        # sqrt for an area-uniform radius distribution over the disc.
        distance = self.radius_km * math.sqrt(self.rng.random())
        bearing = self.rng.uniform(0.0, 2.0 * math.pi)
        return self._offset_at(distance, bearing)

    def _sample_gaussian(self) -> GeoPoint:
        sigma = self.radius_km / 2.5
        for _ in range(64):  # rejection-sample into the disc
            north = self.rng.gauss(0.0, sigma)
            east = self.rng.gauss(0.0, sigma)
            if math.hypot(north, east) <= self.radius_km:
                return self.center.offset_km(north, east)
        return self.center  # vanishingly unlikely fallback

    def _sample_clustered(self) -> GeoPoint:
        if self._clusters is None:
            self._clusters = [self._sample_uniform() for _ in range(self.n_clusters)]
        cluster = self.rng.choice(self._clusters)
        sigma = self.radius_km / 8.0
        for _ in range(64):
            candidate = GeoPoint(
                cluster.lat, cluster.lon
            ).offset_km(self.rng.gauss(0.0, sigma), self.rng.gauss(0.0, sigma))
            if self.contains(candidate):
                return candidate
        return cluster
