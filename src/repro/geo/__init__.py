"""Geography: coordinates, distance, GeoHash, and metro-area placement.

The Central Manager's global edge selection starts with a geo-proximity
filter implemented over GeoHash prefixes (paper §IV-B, citing [32]).
This package supplies:

- :class:`~repro.geo.point.GeoPoint` and
  :func:`~repro.geo.point.haversine_km` — positions and great-circle
  distance.
- :mod:`~repro.geo.geohash` — a complete, dependency-free GeoHash
  implementation (encode / decode / bounding box / neighbors / coverage
  expansion) so proximity search can widen its range "to include remote
  nodes which may be useful as a last resort".
- :class:`~repro.geo.region.MetroArea` — seeded generators that scatter
  users and volunteer nodes across a metropolitan area the way the
  paper's Minneapolis-Saint Paul deployment does.
"""

from repro.geo.geohash import (
    GEOHASH_ALPHABET,
    adjacent,
    bounding_box,
    decode,
    encode,
    neighbors,
    precision_for_radius_km,
)
from repro.geo.point import GeoPoint, haversine_km
from repro.geo.region import MetroArea, PlacementStyle
from repro.geo.spatial_index import GeohashSpatialIndex

__all__ = [
    "GeohashSpatialIndex",
    "GeoPoint",
    "haversine_km",
    "GEOHASH_ALPHABET",
    "encode",
    "decode",
    "bounding_box",
    "adjacent",
    "neighbors",
    "precision_for_radius_km",
    "MetroArea",
    "PlacementStyle",
]
