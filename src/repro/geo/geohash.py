"""A complete GeoHash implementation.

GeoHash (Niemeyer, 2008; see paper reference [32]) interleaves the bits of
a binary-search refinement of longitude and latitude and encodes them in a
base-32 alphabet. Two properties make it useful for edge discovery:

1. **Prefix containment** — every cell with hash prefix ``p`` lies inside
   the cell named ``p``; truncating a hash widens the search area.
2. **Locality (mostly)** — nearby points usually share long prefixes.
   The exception is cell-boundary effects, which is why proximity search
   must also include the 8 neighbors of the query cell
   (:func:`neighbors`); the Central Manager does exactly that.

Implemented from the specification (encode, decode with error bounds,
bounding box, adjacency in all 4 directions, 8-neighborhood, and a helper
mapping a search radius to the coarsest adequate precision).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.geo.point import GeoPoint

GEOHASH_ALPHABET = "0123456789bcdefghjkmnpqrstuvwxyz"
_CHAR_TO_VALUE: Dict[str, int] = {c: i for i, c in enumerate(GEOHASH_ALPHABET)}

# Adjacency tables from the reference GeoHash implementation.
# Keyed by direction and by parity of the hash length ("even"/"odd").
_NEIGHBOR_TABLE: Dict[str, Dict[str, str]] = {
    "n": {
        "even": "p0r21436x8zb9dcf5h7kjnmqesgutwvy",
        "odd": "bc01fg45238967deuvhjyznpkmstqrwx",
    },
    "s": {
        "even": "14365h7k9dcfesgujnmqp0r2twvyx8zb",
        "odd": "238967debc01fg45kmstqrwxuvhjyznp",
    },
    "e": {
        "even": "bc01fg45238967deuvhjyznpkmstqrwx",
        "odd": "p0r21436x8zb9dcf5h7kjnmqesgutwvy",
    },
    "w": {
        "even": "238967debc01fg45kmstqrwxuvhjyznp",
        "odd": "14365h7k9dcfesgujnmqp0r2twvyx8zb",
    },
}
_BORDER_TABLE: Dict[str, Dict[str, str]] = {
    "n": {"even": "prxz", "odd": "bcfguvyz"},
    "s": {"even": "028b", "odd": "0145hjnp"},
    "e": {"even": "bcfguvyz", "odd": "prxz"},
    "w": {"even": "0145hjnp", "odd": "028b"},
}


def encode(lat: float, lon: float, precision: int = 9) -> str:
    """Encode a latitude/longitude to a geohash of ``precision`` characters.

    Raises:
        ValueError: for out-of-range coordinates or non-positive precision.
    """
    if not -90.0 <= lat <= 90.0:
        raise ValueError(f"latitude out of range: {lat}")
    if not -180.0 <= lon <= 180.0:
        raise ValueError(f"longitude out of range: {lon}")
    if precision < 1:
        raise ValueError(f"precision must be >= 1, got {precision}")

    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    chars: List[str] = []
    bits = 0
    value = 0
    even_bit = True  # even bit positions refine longitude

    while len(chars) < precision:
        if even_bit:
            mid = (lon_lo + lon_hi) / 2.0
            if lon >= mid:
                value = (value << 1) | 1
                lon_lo = mid
            else:
                value <<= 1
                lon_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2.0
            if lat >= mid:
                value = (value << 1) | 1
                lat_lo = mid
            else:
                value <<= 1
                lat_hi = mid
        even_bit = not even_bit
        bits += 1
        if bits == 5:
            chars.append(GEOHASH_ALPHABET[value])
            bits = 0
            value = 0
    return "".join(chars)


def encode_point(point: GeoPoint, precision: int = 9) -> str:
    """Encode a :class:`GeoPoint`."""
    return encode(point.lat, point.lon, precision)


def bounding_box(geohash: str) -> Tuple[float, float, float, float]:
    """Return ``(lat_lo, lat_hi, lon_lo, lon_hi)`` of the cell.

    Raises:
        ValueError: for an empty hash or invalid characters.
    """
    if not geohash:
        raise ValueError("geohash must be non-empty")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    even_bit = True
    for char in geohash.lower():
        try:
            value = _CHAR_TO_VALUE[char]
        except KeyError:
            raise ValueError(f"invalid geohash character: {char!r}") from None
        for shift in range(4, -1, -1):
            bit = (value >> shift) & 1
            if even_bit:
                mid = (lon_lo + lon_hi) / 2.0
                if bit:
                    lon_lo = mid
                else:
                    lon_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2.0
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even_bit = not even_bit
    return lat_lo, lat_hi, lon_lo, lon_hi


def decode(geohash: str) -> GeoPoint:
    """Decode a geohash to the centre point of its cell."""
    lat_lo, lat_hi, lon_lo, lon_hi = bounding_box(geohash)
    return GeoPoint((lat_lo + lat_hi) / 2.0, (lon_lo + lon_hi) / 2.0)


def decode_with_error(geohash: str) -> Tuple[GeoPoint, float, float]:
    """Decode to (centre, lat_error, lon_error) half-widths in degrees."""
    lat_lo, lat_hi, lon_lo, lon_hi = bounding_box(geohash)
    centre = GeoPoint((lat_lo + lat_hi) / 2.0, (lon_lo + lon_hi) / 2.0)
    return centre, (lat_hi - lat_lo) / 2.0, (lon_hi - lon_lo) / 2.0


def adjacent(geohash: str, direction: str) -> str:
    """Return the geohash of the adjacent cell in ``direction``.

    Args:
        geohash: cell to move from.
        direction: one of ``"n"``, ``"s"``, ``"e"``, ``"w"``.

    Raises:
        ValueError: on bad direction or empty hash (the poles have no
            northern/southern neighbor at precision 1 in some cases; the
            reference algorithm wraps, which we keep).
    """
    geohash = geohash.lower()
    if direction not in ("n", "s", "e", "w"):
        raise ValueError(f"direction must be n/s/e/w, got {direction!r}")
    if not geohash:
        raise ValueError("geohash must be non-empty")

    last = geohash[-1]
    parent = geohash[:-1]
    parity = "even" if len(geohash) % 2 == 0 else "odd"

    if last in _BORDER_TABLE[direction][parity] and parent:
        parent = adjacent(parent, direction)
    index = _NEIGHBOR_TABLE[direction][parity].index(last)
    return parent + GEOHASH_ALPHABET[index]


def neighbors(geohash: str) -> List[str]:
    """The 8 surrounding cells, clockwise from north.

    Together with the cell itself these cover every point within one cell
    width — the set the Central Manager scans for local candidates.
    """
    n = adjacent(geohash, "n")
    s = adjacent(geohash, "s")
    return [
        n,
        adjacent(n, "e"),
        adjacent(geohash, "e"),
        adjacent(s, "e"),
        s,
        adjacent(s, "w"),
        adjacent(geohash, "w"),
        adjacent(n, "w"),
    ]


#: Approximate worst-case cell dimensions (km) per precision, at the
#: equator: (height, width). Width shrinks with latitude; using the
#: equatorial value keeps the radius->precision mapping conservative.
_CELL_KM: Dict[int, Tuple[float, float]] = {
    1: (5003.7, 5003.7),
    2: (1251.0, 625.5),
    3: (156.4, 156.4),
    4: (39.1, 19.5),
    5: (4.9, 4.9),
    6: (1.22, 0.61),
    7: (0.153, 0.153),
    8: (0.038, 0.019),
    9: (0.0048, 0.0048),
    10: (0.0012, 0.0006),
    11: (0.000149, 0.000149),
    12: (0.000037, 0.0000186),
}


def precision_for_radius_km(radius_km: float) -> int:
    """Coarsest precision whose cell still covers ``radius_km``.

    Used by the geo-proximity filter: a query at this precision plus its
    8 neighbors is guaranteed to contain every point within the radius.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km}")
    for precision in range(12, 0, -1):
        height, width = _CELL_KM[precision]
        if min(height, width) >= radius_km:
            return precision
    return 1


def covering_cells(point: GeoPoint, radius_km: float) -> List[str]:
    """Geohash cells (query cell + 8 neighbors) covering a disc.

    The returned precision is chosen via :func:`precision_for_radius_km`,
    so the 3x3 block of cells is a superset of the disc of ``radius_km``
    around ``point``.
    """
    precision = precision_for_radius_km(radius_km)
    centre = encode(point.lat, point.lon, precision)
    return [centre] + neighbors(centre)


def common_prefix_length(a: str, b: str) -> int:
    """Length of the shared geohash prefix — a crude proximity proxy."""
    length = 0
    for ca, cb in zip(a.lower(), b.lower()):
        if ca != cb:
            break
        length += 1
    return length


def cell_size_km(precision: int) -> Tuple[float, float]:
    """(height_km, width_km) of a cell at ``precision`` (equatorial)."""
    if precision not in _CELL_KM:
        raise ValueError(f"precision must be in 1..12, got {precision}")
    return _CELL_KM[precision]


def _check_tables() -> None:
    """Sanity check run at import: tables must be permutations."""
    for direction_tables in _NEIGHBOR_TABLE.values():
        for table in direction_tables.values():
            if sorted(table) != sorted(GEOHASH_ALPHABET):
                raise AssertionError("corrupt geohash neighbor table")


_check_tables()


# ----------------------------------------------------------------------
# Integer (vectorized) cell encoding — the metro-kernel fast path
# ----------------------------------------------------------------------
# A geohash of ``p`` characters is ``5p`` interleaved bits. Keeping the
# raw bit string as a ``uint64`` ("cell id") instead of a base-32 string
# lets the sharded metro kernel encode a million endpoints with a couple
# dozen whole-array numpy operations, take prefixes with a shift
# (``cell >> 5`` is exactly the parent geohash character truncation),
# and compute the 3x3 neighborhood with quantized-coordinate
# arithmetic. ``cell_to_geohash``/``geohash_to_cell`` prove the two
# representations are the same encoding (see tests).


def _bit_split(precision: int) -> Tuple[int, int]:
    """(total_bits, lon_bits) of a cell at ``precision``; lat gets the rest.

    Geohash interleaving starts with a longitude bit, so longitude owns
    the extra bit at odd precisions.
    """
    if not 1 <= precision <= 12:
        raise ValueError(f"precision must be in 1..12, got {precision}")
    total = 5 * precision
    return total, (total + 1) // 2


def encode_cells(lats, lons, precision: int):
    """Vectorized geohash of coordinate arrays as ``uint64`` cell ids.

    Bit-compatible with :func:`encode`: the returned integer is the
    geohash's 5*precision-bit string (see :func:`cell_to_geohash`).
    Accepts numpy arrays (or anything ``np.asarray`` takes) and returns
    a ``uint64`` array of the same shape.
    """
    import numpy as np

    total, lon_bits = _bit_split(precision)
    lat_bits = total - lon_bits
    lat_arr = np.asarray(lats, dtype=np.float64)
    lon_arr = np.asarray(lons, dtype=np.float64)
    # Vectorized form of encode()'s binary-search refinement. A closed
    # quantization formula (floor((x - lo)/span * 2^bits)) is NOT
    # equivalent: its additions round differently right at cell
    # boundaries (e.g. lon = -1e-87), so each axis replays the same
    # IEEE compare-against-midpoint sequence the scalar path runs.
    lat_q = _bisect_axis(np, lat_arr, -90.0, 90.0, lat_bits)
    lon_q = _bisect_axis(np, lon_arr, -180.0, 180.0, lon_bits)
    return interleave_cells(lat_q, lon_q, precision)


def _bisect_axis(np, values, lo: float, hi: float, bits: int):
    """Quantize one axis by ``bits`` rounds of midpoint bisection."""
    q = np.zeros(values.shape, dtype=np.uint64)
    lo_arr = np.full(values.shape, lo, dtype=np.float64)
    hi_arr = np.full(values.shape, hi, dtype=np.float64)
    one = np.uint64(1)
    for _ in range(bits):
        mid = (lo_arr + hi_arr) / 2.0
        ge = values >= mid
        q = (q << one) | ge.astype(np.uint64)
        lo_arr = np.where(ge, mid, lo_arr)
        hi_arr = np.where(ge, hi_arr, mid)
    return q


def interleave_cells(lat_q, lon_q, precision: int):
    """Interleave quantized (lat, lon) axes into cell ids (vectorized)."""
    import numpy as np

    total, lon_bits = _bit_split(precision)
    lat_bits = total - lon_bits
    one = np.uint64(1)
    cell = np.zeros(np.broadcast(lat_q, lon_q).shape, dtype=np.uint64)
    for i in range(lon_bits):  # lon bit i (MSB-first) -> cell bit total-1-2i
        bit = (np.asarray(lon_q, dtype=np.uint64) >> np.uint64(lon_bits - 1 - i)) & one
        cell |= bit << np.uint64(total - 1 - 2 * i)
    for i in range(lat_bits):  # lat bit i (MSB-first) -> cell bit total-2-2i
        bit = (np.asarray(lat_q, dtype=np.uint64) >> np.uint64(lat_bits - 1 - i)) & one
        cell |= bit << np.uint64(total - 2 - 2 * i)
    return cell


def split_cells(cells, precision: int):
    """De-interleave cell ids back into quantized (lat_q, lon_q) axes."""
    import numpy as np

    total, lon_bits = _bit_split(precision)
    lat_bits = total - lon_bits
    one = np.uint64(1)
    cells_arr = np.asarray(cells, dtype=np.uint64)
    lat_q = np.zeros(cells_arr.shape, dtype=np.uint64)
    lon_q = np.zeros(cells_arr.shape, dtype=np.uint64)
    for i in range(lon_bits):
        bit = (cells_arr >> np.uint64(total - 1 - 2 * i)) & one
        lon_q |= bit << np.uint64(lon_bits - 1 - i)
    for i in range(lat_bits):
        bit = (cells_arr >> np.uint64(total - 2 - 2 * i)) & one
        lat_q |= bit << np.uint64(lat_bits - 1 - i)
    return lat_q, lon_q


def cell_neighborhood(cells, precision: int):
    """The 3x3 block (cell itself + 8 neighbors) of each cell id.

    Returns a ``(len(cells), 9)`` ``uint64`` array. Latitude is clamped
    at the poles (the out-of-range row degenerates to the cell itself);
    longitude wraps at the antimeridian — both irrelevant at metro
    scale but kept well-defined.
    """
    import numpy as np

    total, lon_bits = _bit_split(precision)
    lat_bits = total - lon_bits
    lat_q, lon_q = split_cells(cells, precision)
    lat_max = np.uint64((1 << lat_bits) - 1)
    lon_mod = np.uint64(1 << lon_bits)
    out = np.empty((np.asarray(cells).size, 9), dtype=np.uint64)
    column = 0
    for dlat in (-1, 0, 1):
        for dlon in (-1, 0, 1):
            nlat = np.clip(
                lat_q.astype(np.int64) + dlat, 0, int(lat_max)
            ).astype(np.uint64)
            nlon = (
                (lon_q.astype(np.int64) + dlon) % int(lon_mod)
            ).astype(np.uint64)
            out[:, column] = interleave_cells(nlat, nlon, precision).reshape(-1)
            column += 1
    return out


def cell_to_geohash(cell: int, precision: int) -> str:
    """Render an integer cell id as its base-32 geohash string."""
    total, _ = _bit_split(precision)
    chars = []
    for i in range(precision):
        shift = total - 5 * (i + 1)
        chars.append(GEOHASH_ALPHABET[(int(cell) >> shift) & 0b11111])
    return "".join(chars)


def geohash_to_cell(geohash: str) -> int:
    """Parse a geohash string into its integer cell id."""
    if not geohash:
        raise ValueError("geohash must be non-empty")
    value = 0
    for char in geohash.lower():
        try:
            value = (value << 5) | _CHAR_TO_VALUE[char]
        except KeyError:
            raise ValueError(f"invalid geohash character: {char!r}") from None
    return value


def cell_parent(cell: int, levels: int = 1) -> int:
    """Truncate ``levels`` characters off a cell id (prefix widening)."""
    if levels < 0:
        raise ValueError(f"levels must be >= 0, got {levels}")
    return int(cell) >> (5 * levels)


# math is used by callers via precision math in docs; keep the import honest.
_ = math
