"""Geohash-bucketed spatial index for the Central Manager's registry.

The paper's global selection geo-filters candidates by GeoHash cell
prefix (§IV-B). The seed implementation re-derived that filter from a
full registry scan on every discovery query — O(N) per query, which is
the gating cost of client-centric selection at metro scale (cf. the
candidate-filtering bottlenecks discussed by Renau & Ullah,
arXiv:2510.08228, and Burbano et al., arXiv:2511.10146).

:class:`GeohashSpatialIndex` replaces the scan with cell-prefix buckets:
every indexed node is registered under each prefix of its geohash up to
``max_precision``, so a proximity query — the query cell plus its 8
neighbors at any precision — is a handful of dict lookups returning only
the statuses inside those cells. Inserts, updates and removals are
O(``max_precision``), so the index is maintained incrementally on every
heartbeat and expiry instead of being rebuilt.

The index is a *prefilter*, exactly like the scan it replaces: cells
overshoot the query disc, and callers still apply the exact haversine
cut. Because the final cut is identical, indexed queries return exactly
the same candidate set as a linear scan (a property the test suite
checks on randomized registries).
"""

from __future__ import annotations

from typing import Dict, Generic, Iterable, List, Protocol, Sequence, Set, TypeVar


class Located(Protocol):
    """Anything placeable in the index: an id plus a geohash.

    The Central Manager indexes
    :class:`~repro.core.messages.NodeStatus` objects; the index itself
    only reads these two fields (keeping :mod:`repro.geo` independent of
    the core message vocabulary).
    """

    node_id: str
    geohash: str


S = TypeVar("S", bound=Located)

#: Bucket depth. Precision 6 cells are ~0.6 km — deeper than any
#: realistic discovery radius; queries at deeper precisions degrade
#: gracefully (see :meth:`GeohashSpatialIndex.query_cells`).
DEFAULT_MAX_PRECISION = 6


class GeohashSpatialIndex(Generic[S]):
    """Incrementally-maintained geohash prefix buckets over node statuses.

    Args:
        max_precision: deepest prefix length bucketed. Queries at coarser
            or equal precision are direct bucket hits; deeper queries are
            truncated to ``max_precision`` (a superset, still corrected
            by the caller's exact distance cut).
    """

    __slots__ = ("max_precision", "_status", "_cell_of", "_buckets")

    def __init__(self, max_precision: int = DEFAULT_MAX_PRECISION) -> None:
        if max_precision < 1:
            raise ValueError(f"max_precision must be >= 1, got {max_precision}")
        self.max_precision = max_precision
        #: node_id -> latest status (single write per heartbeat; buckets
        #: hold ids only, so a status refresh never touches the buckets
        #: unless the node moved cells).
        self._status: Dict[str, S] = {}
        #: node_id -> the max_precision cell it is bucketed under.
        self._cell_of: Dict[str, str] = {}
        #: geohash prefix (len 1..max_precision) -> ids inside that cell.
        #: Dict-as-ordered-set: iteration follows insertion order, so
        #: query results are deterministic across processes (a plain
        #: set of strings would not be, under hash randomization).
        self._buckets: Dict[str, Dict[str, None]] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert(self, status: S) -> None:
        """Insert or refresh a node's status (handles cell changes)."""
        node_id = status.node_id
        cell = status.geohash[: self.max_precision]
        if not cell:
            raise ValueError(f"status for {node_id!r} has an empty geohash")
        old_cell = self._cell_of.get(node_id)
        if old_cell is not None and old_cell != cell:
            self._unbucket(node_id, old_cell)
            old_cell = None
        if old_cell is None:
            self._cell_of[node_id] = cell
            buckets = self._buckets
            for depth in range(1, len(cell) + 1):
                prefix = cell[:depth]
                members = buckets.get(prefix)
                if members is None:
                    buckets[prefix] = {node_id: None}
                else:
                    members[node_id] = None
        self._status[node_id] = status

    def remove(self, node_id: str) -> None:
        """Remove a node; a no-op for unknown ids."""
        cell = self._cell_of.pop(node_id, None)
        if cell is None:
            return
        self._status.pop(node_id, None)
        self._unbucket(node_id, cell)

    def _unbucket(self, node_id: str, cell: str) -> None:
        buckets = self._buckets
        for depth in range(1, len(cell) + 1):
            prefix = cell[:depth]
            members = buckets.get(prefix)
            if members is None:
                continue
            members.pop(node_id, None)
            if not members:
                del buckets[prefix]

    def clear(self) -> None:
        self._status.clear()
        self._cell_of.clear()
        self._buckets.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_cells(self, cells: Sequence[str]) -> List[S]:
        """Statuses of every node inside the given same-precision cells.

        Cells deeper than ``max_precision`` are truncated to it; since a
        parent cell contains all its children this only widens the
        candidate set, never narrows it, and the caller's exact distance
        cut restores precision. Duplicate cells (possible after
        truncation, or near the poles) are collapsed.
        """
        status = self._status
        buckets = self._buckets
        out: List[S] = []
        seen_cells: Set[str] = set()
        for cell in cells:
            prefix = cell[: self.max_precision]
            if prefix in seen_cells:
                continue
            seen_cells.add(prefix)
            members = buckets.get(prefix)
            if members:
                out.extend(status[node_id] for node_id in members)
        return out

    def statuses(self) -> Iterable[S]:
        """All indexed statuses (no particular order)."""
        return self._status.values()

    def node_ids(self) -> List[str]:
        return list(self._status)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._status

    def __len__(self) -> int:
        return len(self._status)

    def __repr__(self) -> str:
        return (
            f"GeohashSpatialIndex(nodes={len(self._status)}, "
            f"buckets={len(self._buckets)}, max_precision={self.max_precision})"
        )
